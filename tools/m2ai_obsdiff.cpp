// m2ai_obsdiff — perf-regression gate over two committed/emitted reports.
//
//   m2ai_obsdiff baseline.json candidate.json
//       [--field p50_ms]      span statistic to compare (metrics reports)
//       [--threshold 0.25]    relative regression gate (+25%)
//       [--min-abs 0.05]      absolute noise floor in the field's unit
//
// Accepts either obs metrics reports (--metrics-out output) or m2ai_bench
// suite reports (schema auto-detected). Prints a per-span delta table and
// exits 1 when any span regresses past BOTH gates, 2 on usage/parse errors,
// 0 otherwise — so CI can run it as-is as a perf gate.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "obs/diff.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: m2ai_obsdiff BASELINE.json CANDIDATE.json\n"
               "           [--field p50_ms] [--threshold 0.25] [--min-abs 0.05]\n"
               "exit codes: 0 no regression, 1 regression, 2 bad input\n");
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline, candidate;
  m2ai::obs::DiffOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "m2ai_obsdiff: %s needs a value\n", token.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (token == "--field") {
      options.field = value();
    } else if (token == "--threshold") {
      options.threshold = std::atof(value());
    } else if (token == "--min-abs") {
      options.min_abs = std::atof(value());
    } else if (token == "--help" || token == "-h") {
      return usage();
    } else if (!token.empty() && token[0] == '-') {
      std::fprintf(stderr, "m2ai_obsdiff: unknown flag '%s'\n", token.c_str());
      return usage();
    } else if (baseline.empty()) {
      baseline = token;
    } else if (candidate.empty()) {
      candidate = token;
    } else {
      return usage();
    }
  }
  if (baseline.empty() || candidate.empty()) return usage();
  if (options.threshold < 0.0) {
    std::fprintf(stderr, "m2ai_obsdiff: --threshold must be >= 0\n");
    return 2;
  }

  try {
    const m2ai::obs::DiffResult result = m2ai::obs::diff_reports(
        read_file(baseline), read_file(candidate), options);
    std::fputs(m2ai::obs::render_diff(result, options).c_str(), stdout);
    return result.has_regression ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m2ai_obsdiff: %s\n", e.what());
    return 2;
  }
}
