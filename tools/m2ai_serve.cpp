// m2ai_serve — load generator + driver for the streaming inference service.
//
// Simulates a fleet of readers: each of --streams replays the LLRP report
// stream of a real Pipeline sample (streams cycle over --activities distinct
// samples, each with its own calibrator), paced at --rate reports/sec/stream
// (0 = as fast as possible), for --duration wall seconds or --samples full
// sample replays per stream, whichever the flags select. All reports flow
// through serve::Service (SPSC ingest rings -> DSP workers -> micro-batched
// NN thread) and the run ends with a latency/throughput summary:
//
//   m2ai_serve --streams 100 --rate 2000 --duration 5 --workers 4
//              --bench-out bench_results/BENCH_serve.json
//              [--metrics-out metrics.json] [--trace-out trace.json]
//
// The bench JSON carries end-to-end p50/p99, sustained report/prediction
// rates, and streams-per-core (getrusage CPU time vs wall time) — the
// committed bench_results/BENCH_serve_*.json baselines come from here.
#include <sys/resource.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "kern/backend.hpp"
#include "kern/micro.hpp"
#include "nn/quantize.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "par/parallel_for.hpp"
#include "proto/wire.hpp"
#include "serve/service.hpp"
#include "util/args.hpp"

using namespace m2ai;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: m2ai_serve [--streams N] [--rate HZ] [--duration S]\n"
               "                  [--samples K] [--workers W] [--batch B]\n"
               "                  [--producers P] [--activities A] [--windows T]\n"
               "                  [--persons P] [--tags T] [--seed S] [--wire]\n"
               "                  [--wire-records R] [--backend ref|fast|int8]\n"
               "                  [--quant-mode max_abs|percentile] [--quant-pct P]\n"
               "                  [--bench-out FILE]\n"
               "                  [--metrics-out FILE] [--trace-out FILE]\n"
               "  --streams N    simulated reader streams (default 8)\n"
               "  --rate HZ      reports/sec per stream, 0 = unthrottled (default 0)\n"
               "  --duration S   wall-clock budget in seconds, 0 = no limit (default 0)\n"
               "  --samples K    sample replays per stream (default 1)\n"
               "  --workers W    DSP worker threads (default 2)\n"
               "  --batch B      NN micro-batch size (default 8)\n"
               "  --producers P  producer threads (default min(streams, 4))\n"
               "  --wire         serialize reports to JRD-4035-style frames and\n"
               "                 ingest via the wire-protocol parser (src/proto)\n"
               "  --wire-records R  tag records per inventory frame (default 1)\n"
               "  --backend B    kernel backend for inference: ref (default,\n"
               "                 bitwise-deterministic), fast (SIMD + batched\n"
               "                 NN micro-batch; falls back to ref without\n"
               "                 AVX2/FMA), or int8 (quantized matmuls, network\n"
               "                 calibrated in-process on the source samples).\n"
               "                 Env override: M2AI_KERN_BACKEND\n"
               "  --quant-mode M int8 calibration mode: max_abs (default) or\n"
               "                 percentile (--quant-pct, default 99.9)\n");
  return 2;
}

double cpu_seconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

struct StreamSource {
  const core::SampleRun* run = nullptr;
  double t_begin = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  try {
    args.require_known({"streams", "rate", "duration", "samples", "workers",
                        "batch", "producers", "activities", "windows", "persons",
                        "tags", "seed", "wire", "wire-records", "backend",
                        "quant-mode", "quant-pct", "bench-out", "metrics-out",
                        "trace-out", "help"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m2ai_serve: %s\n", e.what());
    return usage();
  }
  if (args.has("help")) return usage();

  const int num_streams = args.get_int("streams", 8);
  const double rate_hz = args.get_double("rate", 0.0);
  const double duration_sec = args.get_double("duration", 0.0);
  const int samples_per_stream = args.get_int("samples", 1);
  const int activities = args.get_int("activities", 3);
  const bool wire = args.has("wire");
  proto::WireOptions wire_options;
  wire_options.records_per_frame =
      static_cast<std::size_t>(args.get_int("wire-records", 1));
  if (num_streams < 1 || samples_per_stream < 1 || activities < 1 ||
      wire_options.records_per_frame < 1) {
    return usage();
  }

  // CLI flag wins over the M2AI_KERN_BACKEND environment override (already
  // applied at static init). A fast request on a CPU without AVX2/FMA
  // silently degrades to ref; the bench JSON records what actually ran.
  if (args.has("backend")) {
    try {
      kern::set_backend_by_name(args.get("backend", "ref"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "m2ai_serve: %s\n", e.what());
      return usage();
    }
  }
  const char* backend_name = kern::active().name;

  serve::ServeConfig serve_config;
  serve_config.dsp_workers = args.get_int("workers", 2);
  serve_config.max_batch = static_cast<std::size_t>(args.get_int("batch", 8));

  core::PipelineConfig pipeline_config;
  pipeline_config.num_persons = args.get_int("persons", 2);
  pipeline_config.tags_per_person = args.get_int("tags", 3);
  pipeline_config.windows_per_sample = args.get_int("windows", 16);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20180545));

  const std::string metrics_out = args.get("metrics-out", "");
  const std::string trace_out = args.get("trace-out", "");
  const std::string bench_out = args.get("bench-out", "");
  if (!metrics_out.empty() || !trace_out.empty()) obs::set_enabled(true);
  if (!trace_out.empty()) {
    obs::register_thread_name("main");
    obs::set_timeline_enabled(true);
  }

  // ---- Source material: a few real pipeline samples (reports + calibrator).
  // Simulation is the expensive part, so every stream replays one of these.
  std::printf("simulating %d source sample(s)...\n", activities);
  core::Pipeline pipeline(pipeline_config, seed);
  std::vector<core::SampleRun> runs;
  runs.reserve(static_cast<std::size_t>(activities));
  for (int a = 0; a < activities; ++a) {
    runs.push_back(pipeline.run_sample(1 + (a % 12), pipeline.fork_sample_rng()));
  }
  std::vector<StreamSource> sources(static_cast<std::size_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    const core::SampleRun& run = runs[static_cast<std::size_t>(s % activities)];
    sources[static_cast<std::size_t>(s)].run = &run;
    // Window 0 anchor: the batch pipeline frames [t0, t0 + T*window) with
    // t0 = bootstrap + half a window (see Pipeline::run_sample).
    sources[static_cast<std::size_t>(s)].t_begin =
        pipeline_config.phase_calibration
            ? pipeline_config.bootstrap_sec + 0.5 * pipeline_config.window_sec
            : 0.5 * pipeline_config.window_sec;
  }

  // ---- Service.
  const int num_classes = 12;
  core::ModelConfig model_config;
  auto network = std::make_unique<core::M2AINetwork>(
      model_config, pipeline_config.feature_mode,
      pipeline_config.num_persons * pipeline_config.tags_per_person,
      pipeline_config.num_antennas, num_classes);
  // Int8 serving needs calibrated scales; the source samples double as the
  // calibration set (they are exactly the distribution this run serves).
  if (kern::active_backend_kind() == kern::BackendKind::kInt8) {
    nn::CalibrationOptions quant_opts;
    try {
      quant_opts.mode = nn::calib_mode_from_name(args.get("quant-mode", "max_abs"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "m2ai_serve: %s\n", e.what());
      return usage();
    }
    quant_opts.percentile = args.get_double("quant-pct", 99.9);
    std::vector<const core::FrameSequence*> calib;
    calib.reserve(runs.size());
    for (const core::SampleRun& run : runs) calib.push_back(&run.sample.frames);
    network->calibrate(calib, quant_opts);
    std::printf("int8 calibration: %zu sequence(s), mode %s\n", calib.size(),
                nn::calib_mode_name(quant_opts.mode));
  }
  serve::Service service(serve_config, pipeline_config, std::move(network));
  for (int s = 0; s < num_streams; ++s) {
    const StreamSource& src = sources[static_cast<std::size_t>(s)];
    service.add_stream(src.run->calibrator.get(), src.t_begin);
  }
  service.start();

  // ---- Producers: each owns a disjoint set of streams (SPSC: one producer
  // per ingest ring) and replays reports paced to --rate.
  const int num_producers =
      std::max(1, std::min(args.get_int("producers", std::min(num_streams, 4)),
                           num_streams));
  std::printf(
      "serving %d streams (%d producers, %d dsp workers, batch %zu, "
      "backend %s)...\n",
      num_streams, num_producers, serve_config.dsp_workers,
      serve_config.max_batch, backend_name);

  using clock = std::chrono::steady_clock;
  const auto t_start = clock::now();
  const double cpu_start = cpu_seconds();
  std::vector<std::uint64_t> sent(static_cast<std::size_t>(num_producers), 0);
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(num_producers));
  for (int p = 0; p < num_producers; ++p) {
    producers.emplace_back([&, p] {
      obs::register_thread_name("serve-gen-" + std::to_string(p));
      struct Cursor {
        int stream;
        std::size_t next = 0;  // report index within the current replay
        int replay = 0;        // completed replays
        double t_offset = 0.0; // virtual-time shift of the current replay
        std::uint64_t sent = 0;
        bool done = false;
        std::vector<sim::TagReport> pending;  // wire mode: unframed reports
      };
      std::vector<Cursor> cursors;
      for (int s = p; s < num_streams; s += num_producers) {
        Cursor c{};
        c.stream = s;
        cursors.push_back(std::move(c));
      }
      // Wire mode: the producer is the reader-side serializer — reports are
      // framed (records_per_frame per inventory frame) and the service
      // ingests raw bytes through its per-stream FrameParser.
      const auto flush_pending = [&](Cursor& c) {
        if (c.pending.empty()) return;
        const std::vector<std::uint8_t> bytes =
            proto::serialize_stream(c.pending, wire_options);
        service.push_bytes(c.stream, bytes.data(), bytes.size());
        c.pending.clear();
      };
      std::uint64_t total = 0;
      bool running = true;
      while (running) {
        running = false;
        const double elapsed =
            std::chrono::duration<double>(clock::now() - t_start).count();
        if (duration_sec > 0.0 && elapsed >= duration_sec) break;
        bool progressed = false;
        for (Cursor& c : cursors) {
          if (c.done) continue;
          running = true;
          // Pacing: report k of this stream is due at wall time k / rate.
          if (rate_hz > 0.0 &&
              static_cast<double>(c.sent) / rate_hz > elapsed) {
            continue;
          }
          const auto& reports =
              sources[static_cast<std::size_t>(c.stream)].run->reports;
          sim::TagReport report = reports[c.next];
          report.time_sec += c.t_offset;
          if (wire) {
            c.pending.push_back(report);
            if (c.pending.size() >= wire_options.records_per_frame) {
              flush_pending(c);  // blocking while the ring drains
            }
          } else if (!service.offer(c.stream, report)) {
            continue;  // ring full, retry this report next pass
          }
          ++c.sent;
          ++total;
          progressed = true;
          if (++c.next >= reports.size()) {
            c.next = 0;
            c.t_offset += pipeline_config.sample_duration_sec();
            if (++c.replay >= samples_per_stream && duration_sec <= 0.0) {
              c.done = true;
            }
          }
        }
        if (!progressed && running) std::this_thread::yield();
      }
      // Sent-report accounting must be exact for the sustained check: frame
      // out whatever a duration cutoff left unflushed.
      if (wire) {
        for (Cursor& c : cursors) flush_pending(c);
      }
      sent[static_cast<std::size_t>(p)] = total;
    });
  }
  for (auto& t : producers) t.join();
  service.finish();
  const double wall_sec =
      std::chrono::duration<double>(clock::now() - t_start).count();
  const double cpu_sec = cpu_seconds() - cpu_start;

  // ---- Summary.
  const serve::ServiceStats stats = service.stats();
  std::uint64_t reports_sent = 0;
  for (std::uint64_t n : sent) reports_sent += n;
  const obs::HistogramSnapshot e2e =
      obs::registry().histogram("serve.e2e_ms").snapshot();
  const double cores = wall_sec > 0.0 ? cpu_sec / wall_sec : 0.0;
  const double streams_per_core =
      cores > 0.0 ? static_cast<double>(num_streams) / cores : 0.0;
  obs::registry().gauge("serve.streams").set(static_cast<double>(num_streams));
  obs::registry().gauge("serve.streams_per_core").set(streams_per_core);
  obs::registry().gauge("serve.reports_per_sec").set(
      wall_sec > 0.0 ? static_cast<double>(reports_sent) / wall_sec : 0.0);

  // Per-backend kernel micro-timings, measured in-process after the load so
  // the run's own numbers carry their kernel context.
  const kern::KernMicro kern_micro = kern::measure_micro(kern::active());
  for (const auto& [gauge_name, ns] : kern::micro_gauge_items(backend_name, kern_micro)) {
    obs::registry().gauge(gauge_name).set(ns);
  }

  std::printf(
      "done in %.2fs wall / %.2fs cpu (%.2f cores)\n"
      "  reports   sent %llu, assembled %llu, late-dropped %llu, "
      "invalid-dropped %llu\n"
      "  frames    %llu closed, %llu predictions in %llu batches\n"
      "  e2e       p50 %.3f ms, p99 %.3f ms, max %.3f ms\n"
      "  capacity  %.1f streams/core at this load\n"
      "  backend   %s: kern.%s.*.ns_per_op gemv %.0f, gemm_bias %.0f,\n"
      "            conv1d_row %.0f, noise_projection %.0f, gemv_s8 %.0f,\n"
      "            gemm_bias_s8 %.0f\n",
      wall_sec, cpu_sec, cores, static_cast<unsigned long long>(reports_sent),
      static_cast<unsigned long long>(stats.reports),
      static_cast<unsigned long long>(stats.late_dropped),
      static_cast<unsigned long long>(stats.invalid_dropped),
      static_cast<unsigned long long>(stats.frames),
      static_cast<unsigned long long>(stats.predictions),
      static_cast<unsigned long long>(stats.batches), e2e.p50, e2e.p99, e2e.max,
      streams_per_core, backend_name, backend_name, kern_micro.gemv_ns,
      kern_micro.gemm_bias_ns, kern_micro.conv1d_row_ns,
      kern_micro.noise_projection_ns, kern_micro.gemv_s8_ns,
      kern_micro.gemm_bias_s8_ns);
  if (wire) {
    std::printf(
        "  wire      %llu bytes in %llu frames -> %llu reports "
        "(%llu frame rejects, %llu record rejects, %llu resync bytes)\n",
        static_cast<unsigned long long>(stats.wire.bytes_fed),
        static_cast<unsigned long long>(stats.wire.frames),
        static_cast<unsigned long long>(stats.wire.reports),
        static_cast<unsigned long long>(stats.wire.rejected_frames()),
        static_cast<unsigned long long>(stats.wire.rejected_records()),
        static_cast<unsigned long long>(stats.wire.resync_bytes));
  }

  // Sustained = every enqueued report was assembled (none dropped late or
  // invalid, nothing lost on the wire, and the drain finished); the
  // serve-smoke CI job asserts on this field.
  const bool sustained = stats.late_dropped == 0 &&
                         stats.invalid_dropped == 0 &&
                         stats.reports == reports_sent;
  if (!bench_out.empty()) {
    std::ofstream out(bench_out);
    if (!out) {
      std::fprintf(stderr, "m2ai_serve: cannot write %s\n", bench_out.c_str());
      return 1;
    }
    char buf[3072];
    std::snprintf(
        buf, sizeof(buf),
        "{\n"
        "  \"schema\": \"m2ai_serve_bench_v1\",\n"
        "  \"backend\": \"%s\",\n"
        "  \"config\": {\"streams\": %d, \"rate_hz\": %g, \"duration_sec\": %g,\n"
        "             \"samples_per_stream\": %d, \"dsp_workers\": %d,\n"
        "             \"max_batch\": %zu, \"windows_per_sample\": %d, \"seed\": %llu,\n"
        "             \"wire\": %s},\n"
        "  \"wall_sec\": %.6f,\n"
        "  \"cpu_sec\": %.6f,\n"
        "  \"reports_sent\": %llu,\n"
        "  \"reports_assembled\": %llu,\n"
        "  \"late_dropped\": %llu,\n"
        "  \"invalid_dropped\": %llu,\n"
        "  \"wire_bytes\": %llu,\n"
        "  \"wire_frames\": %llu,\n"
        "  \"wire_rejects\": %llu,\n"
        "  \"frames\": %llu,\n"
        "  \"predictions\": %llu,\n"
        "  \"batches\": %llu,\n"
        "  \"reports_per_sec\": %.2f,\n"
        "  \"e2e_ms\": {\"p50\": %.6f, \"p95\": %.6f, \"p99\": %.6f, \"max\": %.6f},\n"
        "  \"kern_ns_per_op\": {\"gemv\": %.1f, \"gemm_bias\": %.1f,\n"
        "                     \"conv1d_row\": %.1f, \"noise_projection\": %.1f,\n"
        "                     \"gemv_s8\": %.1f, \"gemm_bias_s8\": %.1f},\n"
        "  \"streams_per_core\": %.3f,\n"
        "  \"sustained\": %s\n"
        "}\n",
        backend_name, num_streams, rate_hz, duration_sec, samples_per_stream,
        serve_config.dsp_workers, serve_config.max_batch,
        pipeline_config.windows_per_sample,
        static_cast<unsigned long long>(seed), wire ? "true" : "false",
        wall_sec, cpu_sec,
        static_cast<unsigned long long>(reports_sent),
        static_cast<unsigned long long>(stats.reports),
        static_cast<unsigned long long>(stats.late_dropped),
        static_cast<unsigned long long>(stats.invalid_dropped),
        static_cast<unsigned long long>(stats.wire.bytes_fed),
        static_cast<unsigned long long>(stats.wire.frames),
        static_cast<unsigned long long>(stats.wire.rejected_frames() +
                                        stats.wire.rejected_records()),
        static_cast<unsigned long long>(stats.frames),
        static_cast<unsigned long long>(stats.predictions),
        static_cast<unsigned long long>(stats.batches),
        wall_sec > 0.0 ? static_cast<double>(reports_sent) / wall_sec : 0.0,
        e2e.p50, e2e.p95, e2e.p99, e2e.max, kern_micro.gemv_ns,
        kern_micro.gemm_bias_ns, kern_micro.conv1d_row_ns,
        kern_micro.noise_projection_ns, kern_micro.gemv_s8_ns,
        kern_micro.gemm_bias_s8_ns, streams_per_core,
        sustained ? "true" : "false");
    out << buf;
    std::printf("bench summary written to %s\n", bench_out.c_str());
  }
  if (!metrics_out.empty()) {
    obs::write_report(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out);
    std::printf("timeline written to %s (open in ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  return sustained ? 0 : 1;
}
