// m2ai_proto_fuzz — deterministic mutation-corpus driver for the wire
// protocol parser (src/proto). Replays a seeded corpus of damaged reader
// byte streams through FrameParser and enforces the harness invariants
// (no crash, byte accounting exact, canary frame recovered after every
// mutation). CI runs this under ASan/UBSan in the proto-fuzz-smoke job;
// a failing --seed is a ready-made regression reproducer.
//
//   m2ai_proto_fuzz [--iterations N] [--seed S] [--max-chunk C]
//                   [--mutations M] [--metrics-out FILE]
#include <cstdio>
#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "proto/fuzz.hpp"
#include "util/args.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  try {
    args.require_known(
        {"iterations", "seed", "max-chunk", "mutations", "metrics-out", "help"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m2ai_proto_fuzz: %s\n", e.what());
    return 2;
  }
  if (args.has("help")) {
    std::fprintf(stderr,
                 "usage: m2ai_proto_fuzz [--iterations N] [--seed S]\n"
                 "                       [--max-chunk C] [--mutations M]\n"
                 "                       [--metrics-out FILE]\n");
    return 2;
  }

  proto::FuzzConfig config;
  config.iterations = args.get_int("iterations", 2500);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 0x5eed));
  config.max_chunk = static_cast<std::size_t>(args.get_int("max-chunk", 64));
  config.mutations_max = args.get_int("mutations", 8);

  const proto::FuzzResult r = proto::run_mutation_corpus(config);
  const proto::ParserStats& t = r.totals;
  std::printf(
      "proto-fuzz: %llu iterations, %llu frames serialized, %llu bytes fed\n"
      "  parsed    %llu frames (%llu inventory, %llu error), %llu reports\n"
      "  rejected  frames: checksum %llu, trailer %llu, oversized %llu, "
      "unknown %llu\n"
      "            records: pc_len %llu, tag_crc %llu, ext %llu, epc %llu, "
      "value %llu\n"
      "  skipped   %llu resync bytes, %llu truncated, %llu trailing extras\n"
      "  canaries  %llu/%llu recovered bitwise, %llu accounting failures\n",
      static_cast<unsigned long long>(r.iterations),
      static_cast<unsigned long long>(r.frames_serialized),
      static_cast<unsigned long long>(r.bytes_fed),
      static_cast<unsigned long long>(t.frames),
      static_cast<unsigned long long>(t.inventory_frames),
      static_cast<unsigned long long>(t.error_frames),
      static_cast<unsigned long long>(t.reports),
      static_cast<unsigned long long>(t.bad_checksum),
      static_cast<unsigned long long>(t.bad_trailer),
      static_cast<unsigned long long>(t.oversized_length),
      static_cast<unsigned long long>(t.unknown_frame),
      static_cast<unsigned long long>(t.bad_pc_length),
      static_cast<unsigned long long>(t.bad_tag_crc),
      static_cast<unsigned long long>(t.bad_extension),
      static_cast<unsigned long long>(t.bad_epc),
      static_cast<unsigned long long>(t.bad_value),
      static_cast<unsigned long long>(t.resync_bytes),
      static_cast<unsigned long long>(t.truncated_bytes),
      static_cast<unsigned long long>(t.trailing_extra_bytes),
      static_cast<unsigned long long>(r.canaries_recovered),
      static_cast<unsigned long long>(r.iterations),
      static_cast<unsigned long long>(r.accounting_failures));

  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) {
    obs::set_enabled(true);
    proto::publish_stats(t);
    obs::write_report(metrics_out);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!r.ok()) {
    std::fprintf(stderr, "m2ai_proto_fuzz: INVARIANT VIOLATION (seed %llu)\n",
                 static_cast<unsigned long long>(config.seed));
    return 1;
  }
  return 0;
}
