// m2ai_bench — the whole Fig. 9-17 evaluation suite as one command.
//
// Runs the registered experiments (bench/experiments) through the sharded
// runner: cells are dispatched over the deterministic parallel layer,
// generated datasets are shared through the content-addressed cache, and
// the merged per-figure CSVs in --out-dir are byte-identical to the serial
// standalone binaries at any --threads count and any shard split.
//
//   m2ai_bench --list                      enumerate experiments
//   m2ai_bench --all                       run the full suite
//   m2ai_bench --only fig11_objects,fig15_tags
//   m2ai_bench --all --threads 8           cell-level fan-out
//   m2ai_bench --all --smoke               reduced budget (scale 0.1)
//   m2ai_bench --all --scale 0.5           explicit budget scale
//   m2ai_bench --all --cache-dir .m2ai-cache   persist datasets on disk
//   m2ai_bench --all --shard 0/2 --shard-out a.tsv   run half the cells
//   m2ai_bench --merge a.tsv b.tsv         merge shards -> CSVs + report
//
// Every run writes a machine-readable suite report (wall time, per-
// experiment cell seconds, cache hit rate, speedup vs the serial-equivalent
// cost) to --suite-json (default: <out-dir>/BENCH_suite_<date>.json).
// --metrics-out/--trace/--trace-out expose the obs layer as in every bench
// binary; --trace-out additionally records a flight-recorder timeline and
// writes it as Chrome trace-event JSON for ui.perfetto.dev.
#include <cstdio>
#include <cstring>
#include <ctime>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "experiments/experiments.hpp"
#include "kern/backend.hpp"
#include "kern/micro.hpp"
#include "obs/metrics.hpp"
#include "par/parallel_for.hpp"

using namespace m2ai;

namespace {

struct Options {
  bool list = false;
  bool run_all = false;
  bool merge = false;
  std::vector<std::string> only;
  std::vector<std::string> shard_files;  // inputs for --merge
  int shard_index = 0;
  int shard_count = 1;
  std::string shard_out;
  std::string out_dir = "bench_results";
  std::string cache_dir;
  std::size_t cache_entries = 16;
  double scale = 0.0;  // 0 = default (env)
  std::string suite_json;
  std::string label = "suite";
};

void usage() {
  std::printf(
      "usage: m2ai_bench [--list | --all | --only id[,id...] | --merge file...]\n"
      "                  [--threads N] [--smoke | --scale X] [--shard I/N]\n"
      "                  [--shard-out FILE] [--out-dir DIR] [--cache-dir DIR]\n"
      "                  [--cache-entries N] [--suite-json FILE] [--label NAME]\n"
      "                  [--metrics-out FILE] [--trace] [--trace-out FILE]\n");
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::string current;
  for (char c : s) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

Options parse(int argc, char** argv) {
  Options opt;
  auto value = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) throw std::invalid_argument(std::string(flag) + " needs a value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--list") {
      opt.list = true;
    } else if (token == "--all") {
      opt.run_all = true;
    } else if (token == "--only") {
      for (auto& id : split_commas(value(i, "--only"))) opt.only.push_back(id);
    } else if (token == "--merge") {
      opt.merge = true;
      while (i + 1 < argc && argv[i + 1][0] != '-') opt.shard_files.push_back(argv[++i]);
    } else if (token == "--shard") {
      const std::string spec = value(i, "--shard");
      const std::size_t slash = spec.find('/');
      if (slash == std::string::npos) {
        throw std::invalid_argument("--shard expects I/N, got '" + spec + "'");
      }
      opt.shard_index = std::atoi(spec.substr(0, slash).c_str());
      opt.shard_count = std::atoi(spec.substr(slash + 1).c_str());
    } else if (token == "--shard-out") {
      opt.shard_out = value(i, "--shard-out");
    } else if (token == "--out-dir") {
      opt.out_dir = value(i, "--out-dir");
    } else if (token == "--cache-dir") {
      opt.cache_dir = value(i, "--cache-dir");
    } else if (token == "--cache-entries") {
      opt.cache_entries = static_cast<std::size_t>(
          std::atoll(value(i, "--cache-entries").c_str()));
    } else if (token == "--smoke") {
      opt.scale = 0.1;
      opt.label = "smoke";
    } else if (token == "--scale") {
      opt.scale = std::atof(value(i, "--scale").c_str());
    } else if (token == "--suite-json") {
      opt.suite_json = value(i, "--suite-json");
    } else if (token == "--label") {
      opt.label = value(i, "--label");
    } else if (token == "--help" || token == "-h") {
      usage();
      std::exit(0);
    } else {
      throw std::invalid_argument("unknown flag '" + token + "'");
    }
  }
  return opt;
}

std::string default_suite_json(const std::string& out_dir) {
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char date[32];
  std::strftime(date, sizeof(date), "%Y-%m-%d", &tm);
  return out_dir + "/BENCH_suite_" + date + ".json";
}

void print_summary(const exp::SuiteResult& result) {
  std::printf("\ncells run:            %zu\n", result.outcomes.size());
  std::printf("wall time:            %.2f s\n", result.wall_seconds);
  std::printf("serial-equivalent:    %.2f s\n", result.cell_seconds);
  if (result.wall_seconds > 0.0) {
    std::printf("speedup vs serial:    %.2fx\n",
                result.cell_seconds / result.wall_seconds);
  }
  std::printf("dataset cache:        %llu hits / %llu misses (hit rate %.0f%%)"
              ", disk %llu hits / %llu writes\n",
              static_cast<unsigned long long>(result.cache.hits),
              static_cast<unsigned long long>(result.cache.misses),
              result.cache.hit_rate() * 100.0,
              static_cast<unsigned long long>(result.cache.disk_hits),
              static_cast<unsigned long long>(result.cache.disk_writes));
  // Identify the kernel backend behind these numbers and its micro-costs so
  // the printed summary (and the gauges it mirrors) is self-describing.
  const char* backend_name = kern::active_backend_name();
  const kern::KernMicro micro = kern::measure_micro(kern::active());
  std::printf("kernel backend:       %s\n", backend_name);
  for (const auto& [gauge_name, ns] : kern::micro_gauge_items(backend_name, micro)) {
    obs::registry().gauge(gauge_name).set(ns);
    std::printf("  %-36s %.0f\n", gauge_name.c_str(), ns);
  }
}

int run(const Options& opt) {
  exp::Registry registry;
  bench::register_all_experiments(registry);

  if (opt.list) {
    util::Table table({"id", "figure", "cells", "title"});
    for (const exp::Experiment& e : registry.all()) {
      table.add_row({e.id, e.figure, std::to_string(e.cells.size()), e.title});
    }
    table.print();
    std::printf("total: %zu experiments, %zu cells\n", registry.all().size(),
                registry.total_cells());
    return 0;
  }

  const std::string suite_json =
      opt.suite_json.empty() ? default_suite_json(opt.out_dir) : opt.suite_json;

  if (opt.merge) {
    if (opt.shard_files.empty()) {
      std::fprintf(stderr, "--merge needs at least one shard file\n");
      return 1;
    }
    std::vector<exp::SuiteResult> shards;
    for (const std::string& path : opt.shard_files) {
      shards.push_back(exp::read_shard_file(path));
    }
    const exp::SuiteResult merged = exp::merge_results(registry, shards);
    exp::write_experiment_csvs(registry, merged.outcomes, opt.out_dir);
    exp::write_suite_report(suite_json, registry, merged, par::num_threads(),
                            bench::env_scale(), opt.label);
    print_summary(merged);
    std::printf("CSVs written to %s/, report to %s\n", opt.out_dir.c_str(),
                suite_json.c_str());
    return 0;
  }

  if (!opt.run_all && opt.only.empty()) {
    usage();
    return 1;
  }

  exp::RunnerOptions runner;
  runner.shard_index = opt.shard_index;
  runner.shard_count = opt.shard_count;
  runner.cache_dir = opt.cache_dir;
  runner.cache_capacity = opt.cache_entries;

  bench::print_header("Suite", "Sharded experiment runner (" +
                                   std::to_string(registry.total_cells()) +
                                   " cells registered)");
  const exp::SuiteResult result = exp::run_cells(registry, opt.only, runner);

  if (opt.shard_count > 1) {
    // A partial run: hand the outcome to a later --merge instead of CSVs.
    const std::string shard_out =
        opt.shard_out.empty()
            ? opt.out_dir + "/shard_" + std::to_string(opt.shard_index) + "_of_" +
                  std::to_string(opt.shard_count) + ".tsv"
            : opt.shard_out;
    exp::write_shard_file(shard_out, result);
    print_summary(result);
    std::printf("shard %d/%d written to %s — merge all shards with --merge\n",
                opt.shard_index, opt.shard_count, shard_out.c_str());
    return 0;
  }

  exp::write_experiment_csvs(registry, result.outcomes, opt.out_dir);
  for (const exp::Experiment& e : registry.all()) {
    bool covered = false;
    for (const exp::CellOutcome& out : result.outcomes) {
      if (out.experiment_id == e.id) { covered = true; break; }
    }
    if (!covered) continue;
    std::printf("\n--- %s — %s ---\n", e.figure.c_str(), e.title.c_str());
    bench::print_experiment_report(e, result.outcomes);
  }
  exp::write_suite_report(suite_json, registry, result, par::num_threads(),
                          bench::env_scale(), opt.label);
  print_summary(result);
  std::printf("CSVs written to %s/, report to %s\n", opt.out_dir.c_str(),
              suite_json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  argc = bench::init_observability(argc, argv);
  // The suite always counts cache traffic and cell timings, independent of
  // --metrics-out/--trace: the report JSON reads the same counters.
  obs::set_enabled(true);
  try {
    const Options opt = parse(argc, argv);
    if (opt.scale > 0.0) bench::set_scale_override(opt.scale);
    return run(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m2ai_bench: %s\n", e.what());
    return 1;
  }
}
