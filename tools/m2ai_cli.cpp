// m2ai — command-line front end to the library.
//
// Subcommands:
//   simulate  — synthesize one activity sample and dump the LLRP-style
//               report stream as CSV (the data a real deployment would log)
//   spectrum  — print the per-window pseudospectrum peaks of one sample
//   train     — generate a dataset, train the CNN+LSTM engine, report the
//               confusion matrix, and (optionally) save a checkpoint
//   eval      — load a checkpoint and evaluate it on freshly simulated data
//   catalog   — list the 12 activity scenarios
//
// Checkpoints produced by `train` assume the same pipeline/model settings
// at `eval` time (shapes are validated on load).
#include <cstdio>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "dsp/music.hpp"
#include "kern/backend.hpp"
#include "nn/quantize.hpp"
#include "nn/serialize.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "par/parallel_for.hpp"
#include "sim/activities.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace m2ai;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: m2ai <command> [flags]\n"
               "  catalog\n"
               "  simulate --activity N [--persons P] [--tags T] [--seed S] [--out FILE]\n"
               "  spectrum --activity N [--seed S]\n"
               "  train    [--samples N] [--epochs E] [--persons P] [--tags T]\n"
               "           [--antennas A] [--seed S] [--model FILE] [--verbose]\n"
               "           [--quant-mode max_abs|percentile] [--quant-pct P]\n"
               "  eval     --model FILE [--samples N] [--seed S]\n"
               "all commands accept --threads N (worker threads for dataset\n"
               "generation, training, and evaluation; default: all hardware\n"
               "threads; results and checkpoints are identical at any N),\n"
               "--metrics-out FILE (JSON, or CSV if FILE ends in .csv),\n"
               "--trace (span tree on stderr at exit),\n"
               "--trace-out FILE (Chrome trace-event JSON for ui.perfetto.dev),\n"
               "and --backend ref|fast|int8 (kernel backend for inference;\n"
               "fast uses SIMD and falls back to ref without AVX2/FMA; int8\n"
               "runs quantized matmuls — train writes FILE.quant calibration\n"
               "scales next to --model FILE, eval --backend int8 loads them;\n"
               "training always runs ref — env override M2AI_KERN_BACKEND)\n");
  return 2;
}

core::ExperimentConfig config_from(const util::Args& args) {
  core::ExperimentConfig config;
  config.samples_per_class = args.get_int("samples", 24);
  config.train.epochs = args.get_int("epochs", 20);
  config.pipeline.num_persons = args.get_int("persons", 2);
  config.pipeline.tags_per_person = args.get_int("tags", 3);
  config.pipeline.num_antennas = args.get_int("antennas", 4);
  config.pipeline.distance_m = args.get_double("distance", 4.0);
  config.pipeline.windows_per_sample = args.get_int("windows", 20);
  config.train.crop_frames = 16;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20180545));
  config.train.verbose = args.has("verbose");
  return config;
}

int cmd_catalog() {
  util::Table table({"id", "label", "scenario"});
  for (const auto& a : sim::activity_catalog()) {
    table.add_row({std::to_string(a.id), a.label, a.description});
  }
  table.print();
  return 0;
}

int cmd_simulate(const util::Args& args) {
  args.require_known({"activity", "persons", "tags", "seed", "out", "distance",
                      "windows", "antennas", "metrics-out", "trace", "trace-out",
                      "threads", "backend"});
  const int activity = args.get_int("activity", 1);
  core::ExperimentConfig config = config_from(args);
  core::Pipeline pipeline(config.pipeline, config.seed);
  pipeline.simulate_sample(activity);

  const std::string out = args.get("out", "reports.csv");
  util::CsvWriter csv(out, {"time_sec", "tag_id", "antenna", "channel",
                            "phase_rad", "rssi_dbm", "doppler_hz"});
  for (const auto& r : pipeline.last_reports()) {
    csv.add_row({util::Table::fmt(r.time_sec, 4), std::to_string(r.tag_id),
                 std::to_string(r.antenna), std::to_string(r.channel),
                 util::Table::fmt(r.phase_rad, 4), util::Table::fmt(r.rssi_dbm, 1),
                 util::Table::fmt(r.doppler_hz, 2)});
  }
  std::printf("wrote %zu LLRP reports for activity %d to %s\n",
              pipeline.last_reports().size(), activity, out.c_str());
  return 0;
}

int cmd_spectrum(const util::Args& args) {
  args.require_known({"activity", "persons", "tags", "seed", "distance", "windows",
                      "antennas", "metrics-out", "trace", "trace-out", "threads",
                      "backend"});
  const int activity = args.get_int("activity", 1);
  core::ExperimentConfig config = config_from(args);
  core::Pipeline pipeline(config.pipeline, config.seed);
  const core::Sample sample = pipeline.simulate_sample(activity);

  std::printf("pseudospectrum peaks per window (activity %s):\n",
              sim::activity_catalog()[static_cast<std::size_t>(activity - 1)]
                  .label.c_str());
  for (std::size_t w = 0; w < sample.frames.size(); ++w) {
    std::printf("  window %2zu:", w);
    for (int tag = 0; tag < sample.frames[w].pseudo.dim(0); ++tag) {
      std::vector<double> spec(180);
      for (int b = 0; b < 180; ++b) {
        spec[static_cast<std::size_t>(b)] = sample.frames[w].pseudo.at(tag, b);
      }
      const auto peaks = dsp::find_peaks(spec, 1, 0.5);
      std::printf(" tag%d@%3ddeg", tag + 1, peaks.empty() ? -1 : peaks[0]);
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_train(const util::Args& args) {
  args.require_known({"samples", "epochs", "persons", "tags", "antennas", "seed",
                      "model", "verbose", "distance", "windows", "metrics-out",
                      "trace", "trace-out", "threads", "backend", "quant-mode",
                      "quant-pct"});
  const core::ExperimentConfig config = config_from(args);
  util::log_info() << "simulating " << config.samples_per_class << " samples/class";
  const core::DataSplit split = core::generate_dataset(config);

  std::unique_ptr<core::M2AINetwork> network;
  const core::M2AIResult result = core::train_and_evaluate(config, split, &network);

  std::vector<std::string> labels;
  for (const auto& a : sim::activity_catalog()) labels.push_back(a.label);
  std::printf("%s\n", result.confusion.to_string(labels).c_str());
  std::printf("test accuracy: %.1f%% (%zu parameters, %.0f s training)\n",
              result.accuracy * 100.0, result.num_parameters, result.train_seconds);

  if (args.has("model")) {
    const std::string path = args.get("model", "m2ai_model.bin");
    nn::save_params(path, network->params());
    std::printf("checkpoint saved to %s\n", path.c_str());

    // Calibrate int8 scales on the training split and save them next to the
    // float checkpoint, so `eval --backend int8` can load both.
    nn::CalibrationOptions quant_opts;
    quant_opts.mode = nn::calib_mode_from_name(args.get("quant-mode", "max_abs"));
    quant_opts.percentile = args.get_double("quant-pct", 99.9);
    std::vector<const core::FrameSequence*> calib;
    calib.reserve(split.train.size());
    for (const core::Sample& s : split.train) calib.push_back(&s.frames);
    const nn::QuantScales scales = network->calibrate(calib, quant_opts);
    const std::string quant_path = path + ".quant";
    nn::save_quant_scales(quant_path, scales);
    std::printf("int8 calibration scales (%zu sequences, mode %s) saved to %s\n",
                calib.size(), nn::calib_mode_name(quant_opts.mode),
                quant_path.c_str());
  }
  return 0;
}

int cmd_eval(const util::Args& args) {
  args.require_known({"model", "samples", "persons", "tags", "antennas", "seed",
                      "distance", "windows", "epochs", "metrics-out", "trace",
                      "trace-out", "threads", "backend"});
  if (!args.has("model")) return usage();
  core::ExperimentConfig config = config_from(args);
  config.seed ^= 0x5eedu;  // evaluate on data the checkpoint never saw

  core::M2AINetwork network(config.model, config.pipeline.feature_mode,
                            config.pipeline.num_persons * config.pipeline.tags_per_person,
                            config.pipeline.num_antennas, sim::num_activities());
  nn::load_params(args.get("model", ""), network.params());

  // Under the int8 backend the quantized forward needs the calibration
  // scales written by `train --model FILE` (FILE.quant).
  if (kern::active_backend_kind() == kern::BackendKind::kInt8) {
    const std::string quant_path = args.get("model", "") + ".quant";
    network.apply_quant_scales(nn::load_quant_scales(quant_path));
    std::printf("int8 scales loaded from %s\n", quant_path.c_str());
  }

  core::Pipeline pipeline(config.pipeline, config.seed);
  core::ConfusionMatrix cm(sim::num_activities());
  const int per_class = std::max(1, config.samples_per_class / 4);
  for (int activity = 1; activity <= sim::num_activities(); ++activity) {
    for (int i = 0; i < per_class; ++i) {
      const core::Sample s = pipeline.simulate_sample(activity);
      // predict_batch is where the quantized forward lives; under ref/fast
      // a single-sequence batch is label-identical to predict().
      cm.add(s.label, network.predict_batch({&s.frames})[0]);
    }
  }
  std::vector<std::string> labels;
  for (const auto& a : sim::activity_catalog()) labels.push_back(a.label);
  std::printf("%s\n", cm.to_string(labels).c_str());
  std::printf("fresh-data accuracy: %.1f%% over %d sequences\n", cm.accuracy() * 100.0,
              cm.total());
  return 0;
}

// Enables the obs layer when --metrics-out/--trace/--trace-out are present;
// exports on destruction so every command (and early return) gets the report.
class ObservabilityScope {
 public:
  explicit ObservabilityScope(const util::Args& args)
      : metrics_out_(args.get("metrics-out", "")),
        trace_out_(args.get("trace-out", "")),
        trace_(args.has("trace")) {
    if (args.has("metrics-out") && metrics_out_.empty()) {
      std::fprintf(stderr, "warning: --metrics-out requires a file path; ignoring\n");
    }
    if (args.has("trace-out") && trace_out_.empty()) {
      std::fprintf(stderr, "warning: --trace-out requires a file path; ignoring\n");
    }
    if (!metrics_out_.empty() || !trace_out_.empty() || trace_) {
      obs::set_enabled(true);
    }
    if (!trace_out_.empty()) {
      obs::register_thread_name("main");
      obs::set_timeline_enabled(true);
    }
  }
  ~ObservabilityScope() {
    if (!metrics_out_.empty()) {
      try {
        obs::write_report(metrics_out_);
        std::fprintf(stderr, "metrics written to %s\n", metrics_out_.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "metrics export failed: %s\n", e.what());
      }
    }
    if (!trace_out_.empty()) {
      try {
        obs::write_chrome_trace(trace_out_);
        std::fprintf(stderr, "timeline written to %s (open in ui.perfetto.dev)\n",
                     trace_out_.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "timeline export failed: %s\n", e.what());
      }
    }
    if (trace_) std::fputs(obs::span_tree().c_str(), stderr);
  }

 private:
  std::string metrics_out_;
  std::string trace_out_;
  bool trace_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const util::Args args(argc - 1, argv + 1);
  ObservabilityScope obs_scope(args);
  // 0 = hardware default. The parallel layer is deterministic, so any
  // thread count reproduces --threads 1 bit for bit.
  par::set_num_threads(args.get_int("threads", 0));
  try {
    // CLI flag wins over M2AI_KERN_BACKEND (applied at static init).
    // Training paths are pinned to ref regardless — see DESIGN.md §11.
    if (args.has("backend")) kern::set_backend_by_name(args.get("backend", "ref"));
    if (command == "catalog") return cmd_catalog();
    if (command == "simulate") return cmd_simulate(args);
    if (command == "spectrum") return cmd_spectrum(args);
    if (command == "train") return cmd_train(args);
    if (command == "eval") return cmd_eval(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "m2ai %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
