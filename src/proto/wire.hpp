// JRD-4035-style binary wire protocol for reader report streams.
//
// Real UHF readers do not hand the host in-memory structs: they emit framed
// binary bytes over a serial link. This module implements the frame format
// of the JRD-4035 module family (M5Stack UHF unit and friends) so the
// serving layer can ingest what actual hardware produces:
//
//   +------+------+------+-------+-------+---------+------+------+
//   | 0xBB | Type | Cmd  | PL_HI | PL_LO | payload | CS   | 0x7E |
//   +------+------+------+-------+-------+---------+------+------+
//
//   * PL is the payload length in bytes, big-endian, capped at kMaxPayload.
//   * CS is the additive checksum: low byte of the sum over Type, Cmd, both
//     length bytes, and every payload byte.
//   * Type 0x02 / Cmd 0x27 is the inventory notification; Type 0x01 /
//     Cmd 0xFF is an error response whose 1-byte payload is the error code.
//
// An inventory payload is a sequence of tag records (multi-tag frames pack
// several), optionally followed by trailing extra bytes some modules append
// (the parser tolerates and counts them):
//
//   RSSI(1) | PC(2) | EPC(epc_words*2) | CRC(2) | EXT_LEN(1) | EXT(EXT_LEN)
//
//   * The PC word drives the EPC length: bits 15..11 are the EPC length in
//     16-bit words (Gen2), so records are self-delimiting — and a corrupted
//     PC word that disagrees with the payload size is detectable.
//   * CRC is the Gen2-style CRC-16 (ISO/IEC 13239, poly 0x1021, init
//     0xFFFF, complemented) over PC + EPC.
//   * The RSSI byte maps to dBm as byte/2 - 128 (0.5 dB steps, [-128,
//     -0.5] dBm) — half-dB values are exact in binary, so a quantized
//     RSSI round-trips bitwise.
//   * EXT is this simulator's vendor-extension block carrying the report
//     fields a commercial reader exposes out-of-band (LLRP custom
//     parameters on Impinj): antenna, hop channel, 12-bit phase, Doppler.
//     Two profiles exist (see WireProfile); the full profile transports the
//     exact IEEE-754 bits of every double field, which is what makes the
//     serialize->parse round trip bitwise-identical.
//
// The serializer is the sim::Reader side of the link: it turns the reader
// model's TagReports into byte streams. The receiving side lives in
// proto/parser.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/reader.hpp"

namespace m2ai::proto {

inline constexpr std::uint8_t kHeader = 0xBB;
inline constexpr std::uint8_t kTrailer = 0x7E;
inline constexpr std::uint8_t kTypeCommand = 0x00;
inline constexpr std::uint8_t kTypeResponse = 0x01;
inline constexpr std::uint8_t kTypeNotification = 0x02;
inline constexpr std::uint8_t kCmdInventory = 0x27;
inline constexpr std::uint8_t kCmdError = 0xFF;
// JRD-4035 "inventory fail" code: a poll interval in which no tag answered.
inline constexpr std::uint8_t kErrInventoryFail = 0x15;

inline constexpr std::size_t kMaxPayload = 1024;
// Header(1) + type(1) + cmd(1) + len(2) + payload + checksum(1) + trailer(1).
inline constexpr std::size_t kFrameOverhead = 7;
inline constexpr std::size_t kMaxFrameBytes = kFrameOverhead + kMaxPayload;

// Reported phase granularity: 1/4096 turn (12-bit), as the Impinj-class
// reader model quantizes (sim/reader.cpp).
inline constexpr int kPhaseSteps = 4096;

// Extension block profiles, selected by the record's EXT_LEN byte.
//   kFull (38 bytes): antenna u8 | channel u8 | phase steps u16 | doppler
//     sixteenths i16 | time f64 | phase f64 | rssi f64 | doppler f64 —
//     doubles as raw big-endian IEEE-754 bits; lossless.
//   kCompact (14 bytes): antenna u8 | channel u8 | phase steps u16 |
//     doppler sixteenths i16 | time u64 (microseconds) — what a bandwidth-
//     frugal embedded reader would send; phase/RSSI/Doppler reconstruct
//     bitwise when the reader quantized them, time is rounded to 1 us.
enum class WireProfile { kFull, kCompact };
inline constexpr std::uint8_t kExtLenFull = 38;
inline constexpr std::uint8_t kExtLenCompact = 14;

struct WireOptions {
  WireProfile profile = WireProfile::kFull;
  // EPC length in 16-bit words, [2, 31] (32..496 bits; >= 2 so the 4-byte
  // tag id always fits). 6 words is the ubiquitous 96-bit EPC.
  int epc_words = 6;
  // Per-tag EPC lengths (2 + tag_id % 30 words) to exercise PC-word-driven
  // variable-length parsing.
  bool vary_epc_length = false;
  // Tag records packed into one inventory notification frame.
  std::size_t records_per_frame = 1;
  // Extra bytes appended after the last record inside the payload, mimicking
  // the status bytes some modules tack on. Parsers must tolerate them.
  std::size_t trailing_extra_bytes = 0;
};

// Gen2-style CRC-16: ISO/IEC 13239, poly 0x1021 MSB-first, init 0xFFFF,
// complemented output ("123456789" -> 0xD64E).
std::uint16_t crc16_gen2(const std::uint8_t* data, std::size_t n);

// RSSI byte <-> dBm mapping: dbm = byte/2 - 128. Values outside
// [-128, -0.5] dBm clamp to the nearest encodable byte.
std::uint8_t rssi_dbm_to_byte(double dbm);
double rssi_byte_to_dbm(std::uint8_t byte);

// Phase <-> 12-bit step index. Encoding rounds to the nearest step and wraps
// step kPhaseSteps (exactly 2*pi) to 0, so decoded phase is always in
// [0, 2*pi); a reader-quantized phase (k * 2*pi/4096) round-trips bitwise.
std::uint16_t phase_to_steps(double phase_rad);
double steps_to_phase(std::uint16_t steps);

// PC word for an EPC of `words` 16-bit words (length in bits 15..11).
std::uint16_t pc_for_words(int words);
// EPC length this serializer uses for a tag under `options`.
int epc_words_for(std::uint32_t tag_id, const WireOptions& options);

// Append one inventory notification frame carrying `count` tag records.
// Throws std::invalid_argument if the records (plus trailing extras) exceed
// kMaxPayload or an option is out of range — serializer inputs are ours,
// unlike parser inputs.
void append_inventory_frame(const sim::TagReport* reports, std::size_t count,
                            const WireOptions& options,
                            std::vector<std::uint8_t>& out);

inline void append_report_frame(const sim::TagReport& report,
                                const WireOptions& options,
                                std::vector<std::uint8_t>& out) {
  append_inventory_frame(&report, 1, options, out);
}

// Append an error response frame (Type 0x01 / Cmd 0xFF, 1-byte code).
void append_error_frame(std::uint8_t code, std::vector<std::uint8_t>& out);

// Serialize a whole report stream: records grouped records_per_frame at a
// time (splitting early if a group would overflow kMaxPayload). This is the
// reader-side encoding of sim::Reader::run output.
std::vector<std::uint8_t> serialize_stream(
    const std::vector<sim::TagReport>& reports, const WireOptions& options);

}  // namespace m2ai::proto
