#include "proto/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace m2ai::proto {

namespace {

void put_u16(std::uint16_t v, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u64(std::uint64_t v, std::vector<std::uint8_t>& out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void put_f64(double v, std::vector<std::uint8_t>& out) {
  put_u64(std::bit_cast<std::uint64_t>(v), out);
}

// Record size on the wire for one report under `options`.
std::size_t record_bytes(std::uint32_t tag_id, const WireOptions& options) {
  const std::size_t epc =
      static_cast<std::size_t>(epc_words_for(tag_id, options)) * 2;
  const std::size_t ext = options.profile == WireProfile::kFull
                              ? kExtLenFull
                              : kExtLenCompact;
  return 1 + 2 + epc + 2 + 1 + ext;  // rssi, pc, epc, crc, ext_len, ext
}

void append_record(const sim::TagReport& r, const WireOptions& options,
                   std::vector<std::uint8_t>& out) {
  out.push_back(rssi_dbm_to_byte(r.rssi_dbm));

  const int words = epc_words_for(r.tag_id, options);
  const std::size_t pc_at = out.size();
  put_u16(pc_for_words(words), out);
  // EPC: "M2" fill pattern with the tag id in the last four bytes, so any
  // EPC length in [2, 31] words carries the identity.
  const int epc_len = words * 2;
  for (int i = 0; i < epc_len - 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((i & 1) ? 0x32 : 0x4D));  // "M2"
  }
  put_u16(static_cast<std::uint16_t>(r.tag_id >> 16), out);
  put_u16(static_cast<std::uint16_t>(r.tag_id & 0xFFFF), out);
  put_u16(crc16_gen2(out.data() + pc_at, out.size() - pc_at), out);

  const std::uint16_t steps = phase_to_steps(r.phase_rad);
  const double dop = std::clamp(r.doppler_hz * 16.0, -32768.0, 32767.0);
  const auto dop16 = static_cast<std::int16_t>(std::llround(dop));
  if (options.profile == WireProfile::kFull) {
    out.push_back(kExtLenFull);
    out.push_back(static_cast<std::uint8_t>(r.antenna & 0xFF));
    out.push_back(static_cast<std::uint8_t>(r.channel & 0xFF));
    put_u16(steps, out);
    put_u16(static_cast<std::uint16_t>(dop16), out);
    put_f64(r.time_sec, out);
    put_f64(r.phase_rad, out);
    put_f64(r.rssi_dbm, out);
    put_f64(r.doppler_hz, out);
  } else {
    out.push_back(kExtLenCompact);
    out.push_back(static_cast<std::uint8_t>(r.antenna & 0xFF));
    out.push_back(static_cast<std::uint8_t>(r.channel & 0xFF));
    put_u16(steps, out);
    put_u16(static_cast<std::uint16_t>(dop16), out);
    const double us = std::clamp(r.time_sec * 1e6, 0.0, 1.8e19);
    put_u64(static_cast<std::uint64_t>(std::llround(us)), out);
  }
}

void append_frame(std::uint8_t type, std::uint8_t cmd,
                  const std::uint8_t* payload, std::size_t len,
                  std::vector<std::uint8_t>& out) {
  if (len > kMaxPayload) {
    throw std::invalid_argument("proto: payload exceeds kMaxPayload");
  }
  out.push_back(kHeader);
  const std::size_t sum_at = out.size();
  out.push_back(type);
  out.push_back(cmd);
  put_u16(static_cast<std::uint16_t>(len), out);
  out.insert(out.end(), payload, payload + len);
  std::uint32_t sum = 0;
  for (std::size_t i = sum_at; i < out.size(); ++i) sum += out[i];
  out.push_back(static_cast<std::uint8_t>(sum & 0xFF));
  out.push_back(kTrailer);
}

}  // namespace

std::uint16_t crc16_gen2(const std::uint8_t* data, std::size_t n) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= static_cast<std::uint16_t>(static_cast<std::uint16_t>(data[i]) << 8);
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 0x8000)
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return static_cast<std::uint16_t>(~crc);
}

std::uint8_t rssi_dbm_to_byte(double dbm) {
  const double raw = std::llround((dbm + 128.0) * 2.0);
  return static_cast<std::uint8_t>(std::clamp(raw, 0.0, 255.0));
}

double rssi_byte_to_dbm(std::uint8_t byte) {
  return static_cast<double>(byte) / 2.0 - 128.0;
}

std::uint16_t phase_to_steps(double phase_rad) {
  const double step = 2.0 * M_PI / kPhaseSteps;
  const auto k = static_cast<long long>(std::llround(phase_rad / step));
  // Mask wraps step 4096 (exactly 2*pi) to 0; callers pass wrapped phases so
  // the mask is otherwise a no-op.
  return static_cast<std::uint16_t>(k & (kPhaseSteps - 1));
}

double steps_to_phase(std::uint16_t steps) {
  const double step = 2.0 * M_PI / kPhaseSteps;
  return static_cast<double>(steps & (kPhaseSteps - 1)) * step;
}

std::uint16_t pc_for_words(int words) {
  return static_cast<std::uint16_t>((words & 0x1F) << 11);
}

int epc_words_for(std::uint32_t tag_id, const WireOptions& options) {
  const int words = options.vary_epc_length
                        ? 2 + static_cast<int>(tag_id % 30)
                        : options.epc_words;
  if (words < 2 || words > 31) {
    throw std::invalid_argument("proto: epc_words must be in [2, 31]");
  }
  return words;
}

void append_inventory_frame(const sim::TagReport* reports, std::size_t count,
                            const WireOptions& options,
                            std::vector<std::uint8_t>& out) {
  if (count == 0) throw std::invalid_argument("proto: empty inventory frame");
  std::vector<std::uint8_t> payload;
  for (std::size_t i = 0; i < count; ++i) {
    append_record(reports[i], options, payload);
  }
  for (std::size_t i = 0; i < options.trailing_extra_bytes; ++i) {
    payload.push_back(static_cast<std::uint8_t>(0xA0 + (i & 0x0F)));
  }
  append_frame(kTypeNotification, kCmdInventory, payload.data(),
               payload.size(), out);
}

void append_error_frame(std::uint8_t code, std::vector<std::uint8_t>& out) {
  append_frame(kTypeResponse, kCmdError, &code, 1, out);
}

std::vector<std::uint8_t> serialize_stream(
    const std::vector<sim::TagReport>& reports, const WireOptions& options) {
  const std::size_t per_frame = std::max<std::size_t>(1, options.records_per_frame);
  std::vector<std::uint8_t> out;
  std::size_t begin = 0;
  while (begin < reports.size()) {
    // Group up to per_frame records, splitting early if the payload (with
    // trailing extras) would overflow.
    std::size_t bytes = options.trailing_extra_bytes;
    std::size_t end = begin;
    while (end < reports.size() && end - begin < per_frame) {
      const std::size_t next = bytes + record_bytes(reports[end].tag_id, options);
      if (next > kMaxPayload && end > begin) break;
      bytes = next;
      ++end;
    }
    append_inventory_frame(reports.data() + begin, end - begin, options, out);
    begin = end;
  }
  return out;
}

}  // namespace m2ai::proto
