#include "proto/parser.hpp"

#include <bit>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace m2ai::proto {

namespace {

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((static_cast<std::uint16_t>(p[0]) << 8) |
                                    p[1]);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

// Reader timestamps are session-relative seconds; anything beyond ~a century
// of uptime is corruption that happened to pass the 1-byte frame checksum.
// Bounding it here keeps downstream window arithmetic (floor + integer
// conversion) well-defined.
constexpr double kMaxPlausibleTimeSec = 4.0e9;

}  // namespace

void ParserStats::add(const ParserStats& other) {
  bytes_fed += other.bytes_fed;
  frame_bytes += other.frame_bytes;
  resync_bytes += other.resync_bytes;
  truncated_bytes += other.truncated_bytes;
  frames += other.frames;
  inventory_frames += other.inventory_frames;
  error_frames += other.error_frames;
  reports += other.reports;
  bad_checksum += other.bad_checksum;
  bad_trailer += other.bad_trailer;
  oversized_length += other.oversized_length;
  unknown_frame += other.unknown_frame;
  bad_pc_length += other.bad_pc_length;
  bad_tag_crc += other.bad_tag_crc;
  bad_extension += other.bad_extension;
  bad_epc += other.bad_epc;
  bad_value += other.bad_value;
  trailing_extra_bytes += other.trailing_extra_bytes;
  if (other.last_error_code != 0) last_error_code = other.last_error_code;
}

void publish_stats(const ParserStats& stats) {
  auto& reg = obs::registry();
  reg.counter("proto.bytes").add(stats.bytes_fed);
  reg.counter("proto.frames").add(stats.frames);
  reg.counter("proto.inventory_frames").add(stats.inventory_frames);
  reg.counter("proto.error_frames").add(stats.error_frames);
  reg.counter("proto.reports").add(stats.reports);
  reg.counter("proto.resync_bytes").add(stats.resync_bytes);
  reg.counter("proto.truncated_bytes").add(stats.truncated_bytes);
  reg.counter("proto.trailing_extra_bytes").add(stats.trailing_extra_bytes);
  reg.counter("proto.rejected.bad_checksum").add(stats.bad_checksum);
  reg.counter("proto.rejected.bad_trailer").add(stats.bad_trailer);
  reg.counter("proto.rejected.oversized_length").add(stats.oversized_length);
  reg.counter("proto.rejected.unknown_frame").add(stats.unknown_frame);
  reg.counter("proto.rejected.bad_pc_length").add(stats.bad_pc_length);
  reg.counter("proto.rejected.bad_tag_crc").add(stats.bad_tag_crc);
  reg.counter("proto.rejected.bad_extension").add(stats.bad_extension);
  reg.counter("proto.rejected.bad_epc").add(stats.bad_epc);
  reg.counter("proto.rejected.bad_value").add(stats.bad_value);
}

std::size_t FrameParser::feed(const std::uint8_t* data, std::size_t n,
                              std::vector<sim::TagReport>& out) {
  M2AI_OBS_SPAN("proto.feed");
  stats_.bytes_fed += n;
  buf_.insert(buf_.end(), data, data + n);
  const std::size_t before = out.size();
  for (;;) {
    // Hunt for a frame header; everything skipped is resync garbage.
    while (pos_ < buf_.size() && buf_[pos_] != kHeader) {
      ++pos_;
      ++stats_.resync_bytes;
    }
    const std::size_t avail = buf_.size() - pos_;
    if (avail < kFrameOverhead) break;  // shortest possible frame is 7 bytes
    const std::uint8_t* f = buf_.data() + pos_;
    const std::size_t len = get_u16(f + 3);
    if (len > kMaxPayload) {
      // A declared length beyond the cap can never complete: reject now
      // instead of buffering forever, and resume the hunt one byte in.
      ++stats_.oversized_length;
      ++pos_;
      ++stats_.resync_bytes;
      continue;
    }
    const std::size_t total = kFrameOverhead + len;
    if (avail < total) break;  // wait for the rest of the frame
    std::uint32_t sum = 0;
    for (std::size_t i = 1; i < 5 + len; ++i) sum += f[i];
    if (static_cast<std::uint8_t>(sum & 0xFF) != f[5 + len]) {
      ++stats_.bad_checksum;
      ++pos_;
      ++stats_.resync_bytes;
      continue;
    }
    if (f[6 + len] != kTrailer) {
      ++stats_.bad_trailer;
      ++pos_;
      ++stats_.resync_bytes;
      continue;
    }

    // Structurally valid frame.
    ++stats_.frames;
    stats_.frame_bytes += total;
    const std::uint8_t type = f[1];
    const std::uint8_t cmd = f[2];
    if (type == kTypeNotification && cmd == kCmdInventory) {
      ++stats_.inventory_frames;
      parse_inventory_payload(f + 5, len, out);
    } else if (type == kTypeResponse && cmd == kCmdError && len >= 1) {
      ++stats_.error_frames;
      stats_.last_error_code = f[5];
    } else {
      ++stats_.unknown_frame;
    }
    pos_ += total;
  }
  compact();
  return out.size() - before;
}

void FrameParser::parse_inventory_payload(const std::uint8_t* p,
                                          std::size_t len,
                                          std::vector<sim::TagReport>& out) {
  // Shortest record: rssi(1) + pc(2) + 0-word epc + crc(2) + ext_len(1).
  constexpr std::size_t kMinRecord = 6;
  std::size_t off = 0;
  while (len - off >= kMinRecord) {
    const std::uint16_t pc = get_u16(p + off + 1);
    const std::size_t epc_len = static_cast<std::size_t>((pc >> 11) & 0x1F) * 2;
    const std::size_t fixed = 1 + 2 + epc_len + 2 + 1;
    if (off + fixed > len) {
      // PC-driven length overruns the payload: the record boundary is lost,
      // so the rest of this frame's records are unrecoverable.
      ++stats_.bad_pc_length;
      return;
    }
    const std::uint8_t ext_len = p[off + fixed - 1];
    if (off + fixed + ext_len > len) {
      ++stats_.bad_extension;
      return;
    }
    const std::size_t rec_total = fixed + ext_len;
    if (crc16_gen2(p + off + 1, 2 + epc_len) != get_u16(p + off + 3 + epc_len)) {
      ++stats_.bad_tag_crc;
      off += rec_total;  // self-delimiting: only this record is lost
      continue;
    }
    if (epc_len < 4) {
      ++stats_.bad_epc;
      off += rec_total;
      continue;
    }
    if (ext_len != kExtLenFull && ext_len != kExtLenCompact) {
      ++stats_.bad_extension;
      off += rec_total;
      continue;
    }
    sim::TagReport report;
    if (!decode_record(p + off, epc_len, ext_len, report)) {
      ++stats_.bad_value;
      off += rec_total;
      continue;
    }
    ++stats_.reports;
    out.push_back(report);
    off += rec_total;
  }
  stats_.trailing_extra_bytes += len - off;
}

bool FrameParser::decode_record(const std::uint8_t* rec, std::size_t epc_len,
                                std::uint8_t ext_len,
                                sim::TagReport& out) const {
  const std::uint8_t* epc = rec + 3;
  const std::uint8_t* ext = rec + 3 + epc_len + 2 + 1;
  out.tag_id = get_u32(epc + epc_len - 4);
  out.antenna = ext[0];
  out.channel = ext[1];
  if (ext_len == kExtLenFull) {
    out.time_sec = get_f64(ext + 6);
    out.phase_rad = get_f64(ext + 14);
    out.rssi_dbm = get_f64(ext + 22);
    out.doppler_hz = get_f64(ext + 30);
  } else {
    out.phase_rad = steps_to_phase(get_u16(ext + 2));
    out.doppler_hz =
        static_cast<double>(static_cast<std::int16_t>(get_u16(ext + 4))) / 16.0;
    out.rssi_dbm = rssi_byte_to_dbm(rec[0]);
    out.time_sec = static_cast<double>(get_u64(ext + 6)) / 1e6;
  }
  // Field sanity: corruption in extension bytes is covered only by the weak
  // 1-byte frame checksum, so non-finite or absurd values do get this far.
  if (!std::isfinite(out.time_sec) || !std::isfinite(out.phase_rad) ||
      !std::isfinite(out.rssi_dbm) || !std::isfinite(out.doppler_hz)) {
    return false;
  }
  if (std::abs(out.time_sec) > kMaxPlausibleTimeSec) return false;
  return true;
}

void FrameParser::finish() {
  stats_.truncated_bytes += buffered();
  buf_.clear();
  pos_ = 0;
}

void FrameParser::reset() {
  buf_.clear();
  pos_ = 0;
  stats_ = ParserStats{};
}

void FrameParser::compact() {
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ >= 4096) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace m2ai::proto
