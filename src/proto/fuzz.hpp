// Deterministic mutation-fuzz harness for the wire-protocol parser.
//
// Each iteration serializes a fresh batch of synthetic TagReports under
// randomized wire options (profile, EPC lengths, records per frame,
// trailing extras, interleaved error frames), applies a seeded set of
// mutations (bit flips, byte stomps, insertions, deletions, duplications,
// truncation, stream splices), and replays the damaged bytes through a
// FrameParser in random-sized chunks. After the mutated stream, a pristine
// canary frame (followed by flush padding) proves the parser resynchronized.
//
// Checked invariants, per iteration:
//   * no crash / no over-read (the harness runs under ASan/UBSan in CI);
//   * byte accounting: bytes_fed == frame_bytes + resync_bytes +
//     truncated_bytes after finish() with nothing left buffered;
//   * the canary report is recovered bitwise-identical.
//
// Everything is derived from FuzzConfig::seed, so a corpus run is exactly
// reproducible — a failing seed is a regression test case.
#pragma once

#include <cstdint>

#include "proto/parser.hpp"

namespace m2ai::proto {

struct FuzzConfig {
  std::uint64_t seed = 0x5eed;
  int iterations = 2500;
  // Reports serialized per iteration, drawn from [3, reports_max].
  int reports_max = 10;
  // Mutations applied per iteration, drawn from [1, mutations_max].
  int mutations_max = 8;
  // Replay chunk sizes are drawn from [1, max_chunk].
  std::size_t max_chunk = 64;
};

struct FuzzResult {
  std::uint64_t iterations = 0;
  std::uint64_t frames_serialized = 0;  // pre-mutation frames fed overall
  std::uint64_t bytes_fed = 0;
  std::uint64_t canaries_recovered = 0;
  std::uint64_t canary_failures = 0;      // canary missing or not bitwise
  std::uint64_t accounting_failures = 0;  // byte identity violated
  ParserStats totals;                     // accumulated over all iterations

  bool ok() const { return canary_failures == 0 && accounting_failures == 0; }
};

FuzzResult run_mutation_corpus(const FuzzConfig& config);

}  // namespace m2ai::proto
