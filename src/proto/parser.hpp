// Incremental, resynchronizing parser for the JRD-4035-style wire protocol
// (frame layout in proto/wire.hpp).
//
// The parser consumes arbitrary byte chunks — a serial link does not respect
// frame boundaries — and yields sim::TagReports for every intact inventory
// record. Its contract, enforced by the seeded mutation corpus in
// tests/test_proto.cpp and tools/m2ai_proto_fuzz:
//
//   * never crashes and never reads outside the fed bytes, whatever the
//     input (all access is bounds-checked; ASan/UBSan CI);
//   * valid frames round-trip bitwise: serialize_stream -> feed reproduces
//     the original TagReports exactly (full wire profile);
//   * resynchronizes after garbage: bytes are skipped (and counted) until
//     the next 0xBB that starts a verifiable frame;
//   * every rejected byte and frame is attributed to a named counter — no
//     silent drops. The byte-accounting identity
//       bytes_fed == frame_bytes + resync_bytes + truncated_bytes + buffered()
//     holds after every feed() and, with buffered() == 0, after finish().
//
// Failure handling is two-level. Frame-level damage (bad checksum, bad
// trailer, oversized length) rejects the candidate frame and resumes the
// header hunt one byte past the rejected 0xBB, so a frame inside garbage is
// still found. Record-level damage inside a checksum-valid frame (PC word
// disagreeing with the payload size, tag CRC mismatch, unknown extension
// length, non-finite field bits) rejects the record; self-delimiting
// failures skip just that record, length corruption drops the rest of the
// frame's records.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/wire.hpp"
#include "sim/reader.hpp"

namespace m2ai::proto {

struct ParserStats {
  // Byte accounting (see identity above).
  std::uint64_t bytes_fed = 0;
  std::uint64_t frame_bytes = 0;      // bytes of structurally valid frames
  std::uint64_t resync_bytes = 0;     // skipped hunting for a frame start
  std::uint64_t truncated_bytes = 0;  // partial frame dropped by finish()

  // Structurally valid frames (header/length/checksum/trailer all good).
  std::uint64_t frames = 0;
  std::uint64_t inventory_frames = 0;
  std::uint64_t error_frames = 0;
  std::uint64_t reports = 0;  // decoded tag records

  // Frame-level reject causes.
  std::uint64_t bad_checksum = 0;
  std::uint64_t bad_trailer = 0;
  std::uint64_t oversized_length = 0;
  std::uint64_t unknown_frame = 0;  // valid framing, unknown type/cmd

  // Record-level reject causes (frame itself was intact).
  std::uint64_t bad_pc_length = 0;  // PC-driven EPC length overruns payload
  std::uint64_t bad_tag_crc = 0;
  std::uint64_t bad_extension = 0;  // unknown EXT_LEN or EXT overruns payload
  std::uint64_t bad_epc = 0;        // EPC too short to carry a tag id
  std::uint64_t bad_value = 0;      // non-finite / absurd decoded field

  // Bytes after the last full record in an inventory payload (tolerated).
  std::uint64_t trailing_extra_bytes = 0;

  std::uint8_t last_error_code = 0;

  std::uint64_t rejected_frames() const {
    return bad_checksum + bad_trailer + oversized_length + unknown_frame;
  }
  std::uint64_t rejected_records() const {
    return bad_pc_length + bad_tag_crc + bad_extension + bad_epc + bad_value;
  }

  // Fold `other` in (aggregating per-stream parsers into service totals).
  void add(const ParserStats& other);
};

// Mirror the stats into the obs registry as proto.* counters (one add per
// field, so call once per parser lifetime — e.g. at service finish).
void publish_stats(const ParserStats& stats);

class FrameParser {
 public:
  FrameParser() = default;

  // Consume a chunk; append every report completed by these bytes to `out`
  // in wire order. Returns the number of reports appended. Malformed input
  // never throws — it lands in the stats counters.
  std::size_t feed(const std::uint8_t* data, std::size_t n,
                   std::vector<sim::TagReport>& out);
  std::size_t feed(const std::vector<std::uint8_t>& data,
                   std::vector<sim::TagReport>& out) {
    return feed(data.data(), data.size(), out);
  }

  // End of stream: a buffered partial frame can never complete, so drop and
  // count it as truncated. The parser stays usable for a new stream.
  void finish();

  // Bytes held waiting for a frame to complete (< kMaxFrameBytes).
  std::size_t buffered() const { return buf_.size() - pos_; }

  const ParserStats& stats() const { return stats_; }

  // Forget buffered bytes and zero the counters.
  void reset();

 private:
  void parse_inventory_payload(const std::uint8_t* p, std::size_t len,
                               std::vector<sim::TagReport>& out);
  bool decode_record(const std::uint8_t* rec, std::size_t epc_len,
                     std::uint8_t ext_len, sim::TagReport& out) const;
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // first unconsumed byte in buf_
  ParserStats stats_;
};

}  // namespace m2ai::proto
