#include "proto/fuzz.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace m2ai::proto {

namespace {

// Synthetic but reader-shaped reports: quantized phase/RSSI/Doppler,
// monotone timestamps, small tag/antenna/channel ids.
sim::TagReport random_report(util::Rng& rng, double& t) {
  t += rng.uniform(1e-4, 5e-3);
  sim::TagReport r;
  r.time_sec = t;
  r.tag_id = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
  r.antenna = rng.uniform_int(0, 3);
  r.channel = rng.uniform_int(0, 49);
  const double step = 2.0 * M_PI / kPhaseSteps;
  r.phase_rad = static_cast<double>(rng.uniform_int(0, kPhaseSteps - 1)) * step;
  r.rssi_dbm = static_cast<double>(rng.uniform_int(-180, -20)) / 2.0;
  r.doppler_hz = static_cast<double>(rng.uniform_int(-800, 800)) / 16.0;
  return r;
}

// The canary tag id is outside the random_report range, so recovery can be
// asserted by identity, not by luck.
constexpr std::uint32_t kCanaryTag = 0xC0FFEE01;

sim::TagReport canary_report() {
  sim::TagReport r;
  r.time_sec = 123.456789012345;
  r.tag_id = kCanaryTag;
  r.antenna = 2;
  r.channel = 31;
  r.phase_rad = 1.5707963267948966;
  r.rssi_dbm = -61.5;
  r.doppler_hz = -3.1875;
  return r;
}

bool bitwise_equal(const sim::TagReport& a, const sim::TagReport& b) {
  return a.time_sec == b.time_sec && a.tag_id == b.tag_id &&
         a.antenna == b.antenna && a.channel == b.channel &&
         a.phase_rad == b.phase_rad && a.rssi_dbm == b.rssi_dbm &&
         a.doppler_hz == b.doppler_hz;
}

WireOptions random_options(util::Rng& rng) {
  WireOptions o;
  o.profile = rng.bernoulli(0.7) ? WireProfile::kFull : WireProfile::kCompact;
  o.epc_words = rng.uniform_int(2, 31);
  o.vary_epc_length = rng.bernoulli(0.3);
  o.records_per_frame = static_cast<std::size_t>(rng.uniform_int(1, 5));
  o.trailing_extra_bytes =
      rng.bernoulli(0.4) ? static_cast<std::size_t>(rng.uniform_int(1, 8)) : 0;
  return o;
}

void mutate(std::vector<std::uint8_t>& bytes, util::Rng& rng) {
  if (bytes.empty()) return;
  const auto pick = [&] {
    return static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::uint64_t>(bytes.size())));
  };
  switch (rng.uniform_int(0, 6)) {
    case 0:  // flip one bit
      bytes[pick()] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      break;
    case 1:  // stomp one byte
      bytes[pick()] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      break;
    case 2: {  // insert random bytes
      std::vector<std::uint8_t> junk(
          static_cast<std::size_t>(rng.uniform_int(1, 16)));
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      const std::size_t at = pick();
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   junk.begin(), junk.end());
      break;
    }
    case 3: {  // delete a slice
      const std::size_t at = pick();
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform_int(1, 16)), bytes.size() - at);
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                  bytes.begin() + static_cast<std::ptrdiff_t>(at + n));
      break;
    }
    case 4: {  // duplicate a slice in place
      const std::size_t at = pick();
      const std::size_t n = std::min<std::size_t>(
          static_cast<std::size_t>(rng.uniform_int(1, 24)), bytes.size() - at);
      std::vector<std::uint8_t> dup(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                                    bytes.begin() +
                                        static_cast<std::ptrdiff_t>(at + n));
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at), dup.begin(),
                   dup.end());
      break;
    }
    case 5:  // truncate the tail
      bytes.resize(pick());
      break;
    default: {  // swap two bytes
      const std::size_t a = pick();
      const std::size_t b = pick();
      std::swap(bytes[a], bytes[b]);
      break;
    }
  }
}

}  // namespace

FuzzResult run_mutation_corpus(const FuzzConfig& config) {
  util::Rng rng(config.seed);
  FuzzResult result;
  WireOptions canary_options;  // defaults: full profile, bitwise transport
  std::vector<std::uint8_t> canary_bytes;
  append_report_frame(canary_report(), canary_options, canary_bytes);

  for (int it = 0; it < config.iterations; ++it) {
    ++result.iterations;
    util::Rng iter_rng = rng.fork();

    // 1. A valid stream under randomized wire options, with error frames
    //    interleaved the way an idle poll interval would emit them.
    const WireOptions options = random_options(iter_rng);
    double t = iter_rng.uniform(0.0, 100.0);
    std::vector<sim::TagReport> reports(
        static_cast<std::size_t>(iter_rng.uniform_int(3, config.reports_max)));
    for (auto& r : reports) r = random_report(iter_rng, t);
    std::vector<std::uint8_t> bytes = serialize_stream(reports, options);
    if (iter_rng.bernoulli(0.5)) append_error_frame(kErrInventoryFail, bytes);
    if (iter_rng.bernoulli(0.2)) {
      // Splice: a second stream glued on mid-buffer, as if two reader
      // sessions were concatenated.
      std::vector<std::uint8_t> other =
          serialize_stream({canary_report()}, random_options(iter_rng));
      const std::size_t at = static_cast<std::size_t>(
          iter_rng.uniform_int(static_cast<std::uint64_t>(bytes.size() + 1)));
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   other.begin(), other.end());
    }
    result.frames_serialized +=
        (reports.size() + options.records_per_frame - 1) /
            options.records_per_frame +
        2;  // + error/splice frames, approximate lower bound is fine

    // 2. Seeded damage.
    const int mutations = iter_rng.uniform_int(1, config.mutations_max);
    for (int m = 0; m < mutations; ++m) mutate(bytes, iter_rng);

    // 3. Zero gap + canary. The gap is as long as the largest legal frame,
    //    so no bogus header manufactured by the damage can declare a length
    //    that swallows the canary — its trailer position would fall inside
    //    the zeros and fail. Canary recovery is therefore guaranteed if (and
    //    only if) resync works.
    bytes.insert(bytes.end(), kMaxFrameBytes, 0x00);
    bytes.insert(bytes.end(), canary_bytes.begin(), canary_bytes.end());

    // 4. Replay in random chunks.
    FrameParser parser;
    std::vector<sim::TagReport> out;
    std::size_t fed = 0;
    while (fed < bytes.size()) {
      const std::size_t chunk = std::min<std::size_t>(
          1 + static_cast<std::size_t>(
                  iter_rng.uniform_int(static_cast<std::uint64_t>(config.max_chunk))),
          bytes.size() - fed);
      parser.feed(bytes.data() + fed, chunk, out);
      fed += chunk;
    }
    parser.finish();

    // 5. Invariants.
    const ParserStats& st = parser.stats();
    result.bytes_fed += st.bytes_fed;
    if (st.bytes_fed != st.frame_bytes + st.resync_bytes + st.truncated_bytes ||
        parser.buffered() != 0) {
      ++result.accounting_failures;
    }
    const sim::TagReport canary = canary_report();
    bool recovered = false;
    for (const auto& r : out) {
      if (r.tag_id == kCanaryTag && bitwise_equal(r, canary)) {
        recovered = true;
        break;
      }
    }
    if (recovered) {
      ++result.canaries_recovered;
    } else {
      ++result.canary_failures;
    }
    result.totals.add(st);
  }
  return result;
}

}  // namespace m2ai::proto
