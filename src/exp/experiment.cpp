#include "exp/experiment.hpp"

#include <stdexcept>

namespace m2ai::exp {

Experiment& Registry::add(Experiment experiment) {
  if (experiment.id.empty()) {
    throw std::invalid_argument("exp::Registry: experiment id must be non-empty");
  }
  if (find(experiment.id) != nullptr) {
    throw std::invalid_argument("exp::Registry: duplicate experiment id '" +
                                experiment.id + "'");
  }
  for (const Cell& cell : experiment.cells) {
    if (!cell.run) {
      throw std::invalid_argument("exp::Registry: cell '" + cell.label +
                                  "' of '" + experiment.id + "' has no run fn");
    }
  }
  experiments_.push_back(std::move(experiment));
  return experiments_.back();
}

const Experiment* Registry::find(const std::string& id) const {
  for (const Experiment& e : experiments_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::size_t Registry::total_cells() const {
  std::size_t n = 0;
  for (const Experiment& e : experiments_) n += e.cells.size();
  return n;
}

}  // namespace m2ai::exp
