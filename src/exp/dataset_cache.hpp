// Content-addressed cache of generated datasets.
//
// Dataset generation (per-sample multipath simulation + MUSIC/periodogram
// framing) dominates the experiment suite's serial cost, and many sweep
// cells share one (PipelineConfig, seed): every Fig. 9 baseline, every
// Fig. 17 architecture, and each sweep's default cell reuse the default
// split. The cache keys splits by exp::dataset_fingerprint and serves them
// as shared_ptr<const DataSplit>, so a config is generated at most once per
// process (in-memory LRU) and — with a cache dir — at most once per
// machine (on-disk store, bitwise round trip).
//
// Concurrency: get() is single-flight. When several sweep cells running on
// different threads ask for the same fingerprint, one generates and the
// rest block on the same future; waiters count as hits (they regenerated
// nothing).
//
// Observability: hits/misses are mirrored into the obs registry as
// exp.cache.hit / exp.cache.miss / exp.cache.disk_hit / exp.cache.disk_write
// counters (when the obs layer is enabled) and always tracked in the
// internal stats() for the suite report.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/experiment.hpp"

namespace m2ai::exp {

struct CacheStats {
  std::uint64_t hits = 0;        // served from memory (or a shared in-flight build)
  std::uint64_t misses = 0;      // had to load from disk or generate
  std::uint64_t disk_hits = 0;   // of the misses, loaded from the disk store
  std::uint64_t disk_writes = 0; // freshly generated splits persisted to disk

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class DatasetCache {
 public:
  // `capacity` bounds the number of resident splits (>= 1). `disk_dir`
  // (optional) enables the on-disk store: splits are written as
  // <disk_dir>/<fingerprint>.m2aids and reloaded bitwise-identically.
  explicit DatasetCache(std::size_t capacity = 16, std::string disk_dir = "");

  // The split for `config`, generating it on first use. Thread-safe,
  // single-flight per fingerprint. Exceptions from generation propagate to
  // every waiter and the entry is dropped so a later call can retry.
  std::shared_ptr<const core::DataSplit> get(const core::ExperimentConfig& config);

  CacheStats stats() const;
  std::size_t resident() const;
  void clear();

  // On-disk serialization, exposed for tests. Round trips are bitwise
  // exact (raw IEEE floats). load returns nullptr on missing, truncated,
  // or corrupt files (the cache then regenerates).
  static void save_split(const std::string& path, const core::DataSplit& split);
  static std::shared_ptr<const core::DataSplit> load_split(const std::string& path);

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const core::DataSplit>> future;
    bool ready = false;  // set once the producer fulfilled the promise
  };

  std::shared_ptr<const core::DataSplit> produce(
      const core::ExperimentConfig& config, const std::string& fingerprint);
  void touch_locked(const std::string& fingerprint);
  void evict_locked();

  const std::size_t capacity_;
  const std::string disk_dir_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  CacheStats stats_;
};

}  // namespace m2ai::exp
