#include "exp/fingerprint.hpp"

#include <cstdio>
#include <cstring>

namespace m2ai::exp {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kFnvOffsetLo = 0xcbf29ce484222325ULL;
// Second lane: a different, fixed offset basis decorrelates the two 64-bit
// streams enough for cache keying.
constexpr std::uint64_t kFnvOffsetHi = 0x6c62272e07bb0142ULL;

// Field-boundary markers so ("ab", "c") cannot collide with ("a", "bc").
constexpr unsigned char kNameEnd = 0x1f;
constexpr unsigned char kFieldEnd = 0x1e;
}  // namespace

Fingerprinter::Fingerprinter() : lo_(kFnvOffsetLo), hi_(kFnvOffsetHi) {}

void Fingerprinter::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    lo_ = (lo_ ^ p[i]) * kFnvPrime;
    hi_ = (hi_ ^ p[i]) * kFnvPrime;
    hi_ ^= hi_ >> 29;  // extra diffusion keeps the lanes from shadowing
  }
}

void Fingerprinter::tagged(std::string_view name, char type_tag,
                           const void* payload, std::size_t payload_size) {
  bytes(name.data(), name.size());
  bytes(&kNameEnd, 1);
  bytes(&type_tag, 1);
  bytes(payload, payload_size);
  bytes(&kFieldEnd, 1);
}

void Fingerprinter::field(std::string_view name, bool v) {
  const unsigned char b = v ? 1 : 0;
  tagged(name, 'b', &b, 1);
}

void Fingerprinter::field(std::string_view name, int v) {
  field(name, static_cast<std::int64_t>(v));
}

void Fingerprinter::field(std::string_view name, std::int64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<unsigned char>((static_cast<std::uint64_t>(v) >> (8 * i)) & 0xff);
  }
  tagged(name, 'i', le, sizeof(le));
}

void Fingerprinter::field(std::string_view name, std::uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
  tagged(name, 'u', le, sizeof(le));
}

void Fingerprinter::field(std::string_view name, double v) {
  // The IEEE-754 bit pattern, not a decimal rendering: no precision loss,
  // no locale/format ambiguity. (-0.0 and 0.0 hash apart — acceptable for a
  // cache key, where a spurious miss only costs a regeneration.)
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) {
    le[i] = static_cast<unsigned char>((bits >> (8 * i)) & 0xff);
  }
  tagged(name, 'd', le, sizeof(le));
}

void Fingerprinter::field(std::string_view name, std::string_view v) {
  tagged(name, 's', v.data(), v.size());
}

std::string Fingerprinter::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
  return buf;
}

std::string dataset_fingerprint(const core::ExperimentConfig& config) {
  const core::PipelineConfig& p = config.pipeline;
  Fingerprinter fp;
  fp.field("schema", std::string_view("m2ai.dataset.v1"));
  fp.field("environment", static_cast<int>(p.environment));
  fp.field("num_persons", p.num_persons);
  fp.field("tags_per_person", p.tags_per_person);
  fp.field("distance_m", p.distance_m);
  fp.field("num_antennas", p.num_antennas);
  fp.field("frequency_hopping", p.frequency_hopping);
  fp.field("phase_calibration", p.phase_calibration);
  fp.field("bootstrap_sec", p.bootstrap_sec);
  fp.field("feature_mode", static_cast<int>(p.feature_mode));
  fp.field("cov.forward_backward", p.covariance.forward_backward);
  fp.field("cov.smoothing_subarray", p.covariance.smoothing_subarray);
  fp.field("cov.diagonal_loading", p.covariance.diagonal_loading);
  fp.field("music_num_sources", p.music_num_sources);
  fp.field("window_sec", p.window_sec);
  fp.field("windows_per_sample", p.windows_per_sample);
  fp.field("seed", config.seed);
  fp.field("samples_per_class", config.samples_per_class);
  fp.field("train_fraction", config.train_fraction);
  return fp.hex();
}

}  // namespace m2ai::exp
