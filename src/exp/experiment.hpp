// Experiment registry for the evaluation suite (Figs. 9-17, Table I, and
// the design ablations).
//
// An Experiment is a named sweep: an ordered list of Cells, each binding a
// label, a full core::ExperimentConfig, and a function producing the CSV
// rows for that cell. The standalone bench binaries and the m2ai_bench
// suite driver both execute cells through exp::run_cells, so a figure's
// CSV is byte-identical no matter how it was produced (serially, with any
// --threads count, or merged from shards).
//
// Cells must be pure functions of (config, split, rng): no shared mutable
// state, no ordering assumptions between cells. Randomness beyond the
// config seeds comes from ctx.rng, seeded from the stable key
// (suite_seed, experiment id, cell index, repetition) — the stream a cell
// receives is the same for every shard/thread/selection configuration.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "exp/dataset_cache.hpp"
#include "util/rng.hpp"

namespace m2ai::exp {

using Rows = std::vector<std::vector<std::string>>;

// What a cell body sees at run time.
struct CellContext {
  const core::ExperimentConfig& config;
  DatasetCache& cache;
  util::Rng rng;       // stable-keyed: shard- and selection-invariant
  int repetition = 0;

  // The (cached) dataset for `config`. Sweep cells sharing a pipeline
  // config and seed receive the same generated split.
  std::shared_ptr<const core::DataSplit> split() { return cache.get(config); }
};

struct Cell {
  std::string label;
  core::ExperimentConfig config;
  int repetition = 0;
  std::function<Rows(CellContext&)> run;
};

struct Experiment {
  std::string id;        // CSV stem and --only key, e.g. "fig11_objects"
  std::string figure;    // display tag, e.g. "Fig. 11"
  std::string title;
  std::vector<std::string> columns;  // CSV header
  std::vector<Cell> cells;
  // Standalone reports print the merged rows as an aligned table unless
  // the summarize hook renders its own view (Table I's confusion grid).
  bool table_in_report = true;
  // Optional: printed after the table from the merged rows (paper
  // comparison lines, derived statistics).
  std::function<void(const Rows&)> summarize;
};

class Registry {
 public:
  // Registration order is the canonical cell order for sharding, RNG
  // forking, and CSV merging. Throws on duplicate ids.
  Experiment& add(Experiment experiment);

  const std::vector<Experiment>& all() const { return experiments_; }
  const Experiment* find(const std::string& id) const;
  std::size_t total_cells() const;

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace m2ai::exp
