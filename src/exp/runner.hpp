// Sharded experiment runner: flattens registered experiments into
// (experiment, config, repetition) cells, dispatches them over the
// deterministic parallel layer, and merges per-cell rows back into the
// per-figure CSVs.
//
// Determinism contract: for a fixed registry and selection, the merged CSVs
// are byte-identical at any --threads count and any shard split, and equal
// to the serial standalone binaries. This holds because (a) every cell's
// result is a pure function of its config and its pre-forked RNG, (b) the
// underlying pipeline/trainer layers are thread-count-invariant (src/par),
// and (c) rows are emitted in registration order regardless of completion
// order.
#pragma once

#include <string>
#include <vector>

#include "exp/experiment.hpp"

namespace m2ai::exp {

struct RunnerOptions {
  // Shard selection: run cells whose global registration index i satisfies
  // i % shard_count == shard_index.
  int shard_index = 0;
  int shard_count = 1;
  // On-disk dataset store; empty = in-memory caching only.
  std::string cache_dir;
  std::size_t cache_capacity = 16;
  // Mixed into every cell's stable RNG key.
  std::uint64_t suite_seed = 0x4d32414942454e43ULL;  // "M2AIBENC"
  bool verbose = true;
};

struct CellOutcome {
  std::string experiment_id;
  int cell_index = 0;  // within the experiment
  int repetition = 0;
  std::string label;
  Rows rows;
  double seconds = 0.0;
};

struct SuiteResult {
  std::vector<CellOutcome> outcomes;  // global registration order
  double wall_seconds = 0.0;
  double cell_seconds = 0.0;  // sum over cells = serial-equivalent cost
  CacheStats cache;
};

// Runs the selected experiments' cells (all of them when `ids` is empty)
// under the current par::num_threads() setting. Throws on unknown ids or an
// invalid shard spec.
SuiteResult run_cells(const Registry& registry, const std::vector<std::string>& ids,
                      const RunnerOptions& options);

// Writes one CSV per experiment covered by `outcomes` into `out_dir`
// (created on demand), named <id>.csv with the experiment's column header.
// Throws if an experiment is only partially covered — merging all shards
// first is the caller's job.
void write_experiment_csvs(const Registry& registry,
                           const std::vector<CellOutcome>& outcomes,
                           const std::string& out_dir);

// Shard interchange: a text file of cell outcomes that a later merge run
// turns into the final CSVs. Round trips exactly (fields are escaped).
void write_shard_file(const std::string& path, const SuiteResult& result);
SuiteResult read_shard_file(const std::string& path);

// Concatenates shard results and restores global registration order.
// Throws on duplicate (experiment, cell, repetition) outcomes.
SuiteResult merge_results(const Registry& registry,
                          const std::vector<SuiteResult>& shards);

// Suite-level report: per-experiment wall time, cache hit rate, speedup vs
// the serial-equivalent cost.
std::string suite_report_json(const Registry& registry, const SuiteResult& result,
                              int threads, double scale, const std::string& label);
void write_suite_report(const std::string& path, const Registry& registry,
                        const SuiteResult& result, int threads, double scale,
                        const std::string& label);

}  // namespace m2ai::exp
