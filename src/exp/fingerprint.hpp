// Content-addressed fingerprints for experiment configurations.
//
// The dataset cache keys generated datasets by a stable fingerprint of
// every field `core::generate_dataset` depends on: the full PipelineConfig,
// the experiment seed, samples_per_class, and train_fraction. The hash is
// canonical field by field — each field contributes its name plus the raw
// little-endian bit pattern of its value (doubles via their IEEE-754 bits),
// so there is no float-formatting ambiguity: configs that merely *print*
// identically at low precision still hash apart, and equal configs hash
// equal on every platform with IEEE doubles.
//
// Model and training fields are deliberately excluded: the dataset is a
// pure function of the pipeline + seed, so architecture/epoch sweeps over
// one dataset (Fig. 17) share a single cache entry.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/experiment.hpp"

namespace m2ai::exp {

// Streaming 128-bit field hasher (two independent FNV-1a-64 lanes over a
// canonical byte encoding). Not cryptographic — collision resistance is
// sized for cache keying, not adversaries.
class Fingerprinter {
 public:
  Fingerprinter();

  void field(std::string_view name, bool v);
  void field(std::string_view name, int v);
  void field(std::string_view name, std::int64_t v);
  void field(std::string_view name, std::uint64_t v);
  void field(std::string_view name, double v);
  void field(std::string_view name, std::string_view v);

  // 32 lowercase hex characters (128 bits).
  std::string hex() const;

 private:
  void bytes(const void* data, std::size_t n);
  void tagged(std::string_view name, char type_tag, const void* payload,
              std::size_t payload_size);

  std::uint64_t lo_;
  std::uint64_t hi_;
};

// Fingerprint of everything dataset generation consumes. Two configs with
// the same dataset fingerprint produce bitwise-identical DataSplits.
std::string dataset_fingerprint(const core::ExperimentConfig& config);

}  // namespace m2ai::exp
