#include "exp/dataset_cache.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "exp/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace m2ai::exp {

namespace {

constexpr char kMagic[8] = {'M', '2', 'A', 'I', 'D', 'S', '1', '\0'};

// ---- binary primitives ----------------------------------------------------

void put_u64(std::ofstream& out, std::uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  out.write(reinterpret_cast<const char*>(le), 8);
}

void put_i32(std::ofstream& out, std::int32_t v) {
  put_u64(out, static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
}

bool get_u64(std::ifstream& in, std::uint64_t* v) {
  unsigned char le[8];
  if (!in.read(reinterpret_cast<char*>(le), 8)) return false;
  std::uint64_t out = 0;
  for (int i = 0; i < 8; ++i) out |= static_cast<std::uint64_t>(le[i]) << (8 * i);
  *v = out;
  return true;
}

bool get_i32(std::ifstream& in, std::int32_t* v) {
  std::uint64_t raw = 0;
  if (!get_u64(in, &raw)) return false;
  *v = static_cast<std::int32_t>(static_cast<std::uint32_t>(raw & 0xffffffffULL));
  return true;
}

// Tensors are stored as rank, dims, then the raw float payload. Raw IEEE
// bytes keep the round trip bitwise exact.
void put_tensor(std::ofstream& out, const nn::Tensor& t) {
  put_u64(out, static_cast<std::uint64_t>(t.rank()));
  for (int d = 0; d < t.rank(); ++d) put_i32(out, t.dim(d));
  put_u64(out, static_cast<std::uint64_t>(t.size()));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
}

// Sanity ceilings so a corrupt length cannot trigger a huge allocation.
constexpr std::uint64_t kMaxRank = 8;
constexpr std::uint64_t kMaxElements = 1ULL << 28;  // 1 GiB of floats

bool get_tensor(std::ifstream& in, nn::Tensor* t) {
  std::uint64_t rank = 0;
  if (!get_u64(in, &rank) || rank > kMaxRank) return false;
  std::vector<int> shape;
  std::uint64_t expected = rank == 0 ? 0 : 1;
  for (std::uint64_t d = 0; d < rank; ++d) {
    std::int32_t dim = 0;
    if (!get_i32(in, &dim) || dim < 0) return false;
    shape.push_back(dim);
    expected *= static_cast<std::uint64_t>(dim);
  }
  std::uint64_t count = 0;
  if (!get_u64(in, &count) || count != expected || count > kMaxElements) return false;
  nn::Tensor tensor = rank == 0 ? nn::Tensor() : nn::Tensor(shape);
  if (!in.read(reinterpret_cast<char*>(tensor.data()),
               static_cast<std::streamsize>(count * sizeof(float)))) {
    return false;
  }
  *t = std::move(tensor);
  return true;
}

void put_sample(std::ofstream& out, const core::Sample& s) {
  put_i32(out, s.label);
  put_i32(out, s.activity_id);
  put_u64(out, s.frames.size());
  for (const core::SpectrumFrame& f : s.frames) {
    put_u64(out, (f.has_pseudo ? 1ULL : 0ULL) | (f.has_aux ? 2ULL : 0ULL));
    put_tensor(out, f.pseudo);
    put_tensor(out, f.aux);
  }
}

constexpr std::uint64_t kMaxFrames = 1ULL << 20;
constexpr std::uint64_t kMaxSamples = 1ULL << 24;

bool get_sample(std::ifstream& in, core::Sample* s) {
  std::uint64_t num_frames = 0;
  if (!get_i32(in, &s->label) || !get_i32(in, &s->activity_id) ||
      !get_u64(in, &num_frames) || num_frames > kMaxFrames) {
    return false;
  }
  s->frames.resize(num_frames);
  for (core::SpectrumFrame& f : s->frames) {
    std::uint64_t flags = 0;
    if (!get_u64(in, &flags) || flags > 3) return false;
    f.has_pseudo = (flags & 1) != 0;
    f.has_aux = (flags & 2) != 0;
    if (!get_tensor(in, &f.pseudo) || !get_tensor(in, &f.aux)) return false;
  }
  return true;
}

}  // namespace

void DatasetCache::save_split(const std::string& path, const core::DataSplit& split) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("dataset cache: cannot open " + tmp);
    out.write(kMagic, sizeof(kMagic));
    put_i32(out, split.num_classes);
    put_u64(out, split.train.size());
    put_u64(out, split.test.size());
    for (const core::Sample& s : split.train) put_sample(out, s);
    for (const core::Sample& s : split.test) put_sample(out, s);
    if (!out.good()) throw std::runtime_error("dataset cache: failed writing " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::shared_ptr<const core::DataSplit> DatasetCache::load_split(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  char magic[sizeof(kMagic)];
  if (!in.read(magic, sizeof(magic)) ||
      !std::equal(std::begin(magic), std::end(magic), std::begin(kMagic))) {
    return nullptr;
  }
  auto split = std::make_shared<core::DataSplit>();
  std::uint64_t train_count = 0, test_count = 0;
  if (!get_i32(in, &split->num_classes) || split->num_classes < 0 ||
      !get_u64(in, &train_count) || train_count > kMaxSamples ||
      !get_u64(in, &test_count) || test_count > kMaxSamples) {
    return nullptr;
  }
  split->train.resize(train_count);
  split->test.resize(test_count);
  for (core::Sample& s : split->train) {
    if (!get_sample(in, &s)) return nullptr;
  }
  for (core::Sample& s : split->test) {
    if (!get_sample(in, &s)) return nullptr;
  }
  // Trailing garbage means the file is not one of ours.
  if (in.peek() != std::ifstream::traits_type::eof()) return nullptr;
  return split;
}

DatasetCache::DatasetCache(std::size_t capacity, std::string disk_dir)
    : capacity_(capacity == 0 ? 1 : capacity), disk_dir_(std::move(disk_dir)) {}

std::shared_ptr<const core::DataSplit> DatasetCache::get(
    const core::ExperimentConfig& config) {
  const std::string fingerprint = dataset_fingerprint(config);

  std::shared_future<std::shared_ptr<const core::DataSplit>> future;
  std::promise<std::shared_ptr<const core::DataSplit>> promise;
  bool producer = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(fingerprint);
    if (it != entries_.end()) {
      ++stats_.hits;
      obs::registry().counter("exp.cache.hit").add();
      obs::timeline_instant("cache.hit");
      touch_locked(fingerprint);
      future = it->second.future;
    } else {
      ++stats_.misses;
      obs::registry().counter("exp.cache.miss").add();
      obs::timeline_instant("cache.miss");
      producer = true;
      Entry entry;
      entry.future = promise.get_future().share();
      future = entry.future;
      entries_.emplace(fingerprint, std::move(entry));
      lru_.push_front(fingerprint);
      evict_locked();
    }
  }

  if (producer) {
    try {
      promise.set_value(produce(config, fingerprint));
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = entries_.find(fingerprint);
      if (it != entries_.end()) it->second.ready = true;
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mu_);
      entries_.erase(fingerprint);
      lru_.remove(fingerprint);
    }
  }
  return future.get();
}

std::shared_ptr<const core::DataSplit> DatasetCache::produce(
    const core::ExperimentConfig& config, const std::string& fingerprint) {
  M2AI_OBS_SPAN("dataset_cache_fill");
  if (!disk_dir_.empty()) {
    const std::string path = disk_dir_ + "/" + fingerprint + ".m2aids";
    if (auto split = load_split(path)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_hits;
      }
      obs::registry().counter("exp.cache.disk_hit").add();
      obs::timeline_instant("cache.disk_hit");
      util::log_info() << "dataset " << fingerprint << " loaded from cache dir";
      return split;
    }
  }

  auto split = std::make_shared<core::DataSplit>(core::generate_dataset(config));

  if (!disk_dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(disk_dir_, ec);
    try {
      save_split(disk_dir_ + "/" + fingerprint + ".m2aids", *split);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_writes;
      }
      obs::registry().counter("exp.cache.disk_write").add();
    } catch (const std::exception& e) {
      // A full or read-only cache dir must not fail the experiment.
      util::log_warn() << "dataset cache: " << e.what();
    }
  }
  return split;
}

void DatasetCache::touch_locked(const std::string& fingerprint) {
  lru_.remove(fingerprint);
  lru_.push_front(fingerprint);
}

void DatasetCache::evict_locked() {
  // Evict from the least recently used end; never evict in-flight builds
  // (waiters hold their futures, but the map entry is what dedups new
  // callers), so the cache may transiently exceed capacity.
  while (entries_.size() > capacity_) {
    bool evicted = false;
    for (auto it = lru_.end(); it != lru_.begin();) {
      --it;
      const auto entry = entries_.find(*it);
      if (entry != entries_.end() && entry->second.ready) {
        entries_.erase(entry);
        lru_.erase(it);
        evicted = true;
        break;
      }
    }
    if (!evicted) break;
  }
}

CacheStats DatasetCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t DatasetCache::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void DatasetCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
}

}  // namespace m2ai::exp
