#include "exp/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>

#include "kern/backend.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"

namespace m2ai::exp {

namespace {

struct FlatCell {
  const Experiment* experiment;
  const Cell* cell;
  int cell_index;
};

// Selected experiments in registration order (the canonical order for
// sharding and RNG forking). `ids` empty selects everything.
std::vector<const Experiment*> select(const Registry& registry,
                                      const std::vector<std::string>& ids) {
  std::set<std::string> wanted(ids.begin(), ids.end());
  for (const std::string& id : wanted) {
    if (registry.find(id) == nullptr) {
      throw std::invalid_argument("exp: unknown experiment '" + id + "'");
    }
  }
  std::vector<const Experiment*> out;
  for (const Experiment& e : registry.all()) {
    if (wanted.empty() || wanted.count(e.id) > 0) out.push_back(&e);
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

std::string num(double v, int precision = 6) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

// ---- shard-file field escaping --------------------------------------------

std::string escape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case '\\': out += '\\'; break;
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += s[i]; break;
    }
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char c : line) {
    if (c == '\t') {
      fields.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(current);
  return fields;
}

int experiment_order(const Registry& registry, const std::string& id) {
  int order = 0;
  for (const Experiment& e : registry.all()) {
    if (e.id == id) return order;
    ++order;
  }
  throw std::invalid_argument("exp: outcome for unknown experiment '" + id + "'");
}

}  // namespace

SuiteResult run_cells(const Registry& registry, const std::vector<std::string>& ids,
                      const RunnerOptions& options) {
  if (options.shard_count < 1 || options.shard_index < 0 ||
      options.shard_index >= options.shard_count) {
    throw std::invalid_argument("exp: invalid shard spec " +
                                std::to_string(options.shard_index) + "/" +
                                std::to_string(options.shard_count));
  }
  const std::vector<const Experiment*> experiments = select(registry, ids);

  // Flatten to the global cell list. Every cell's RNG is seeded from a
  // stable key — (suite_seed, experiment id, cell index, repetition) — not
  // from a shared fork sequence, so the stream a cell receives is invariant
  // under the shard split AND under --only selection: a standalone
  // single-experiment run draws exactly the suite's streams.
  std::vector<FlatCell> flat;
  for (const Experiment* e : experiments) {
    for (std::size_t c = 0; c < e->cells.size(); ++c) {
      flat.push_back(FlatCell{e, &e->cells[c], static_cast<int>(c)});
    }
  }
  auto cell_seed = [&options](const FlatCell& fc) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ options.suite_seed;
    auto mix = [&h](const void* data, std::size_t n) {
      const auto* p = static_cast<const unsigned char*>(data);
      for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
      }
    };
    mix(fc.experiment->id.data(), fc.experiment->id.size());
    const std::int32_t key[2] = {fc.cell_index, fc.cell->repetition};
    mix(key, sizeof(key));
    return h ^ (h >> 29);
  };
  std::vector<util::Rng> rngs;
  rngs.reserve(flat.size());
  for (const FlatCell& fc : flat) rngs.emplace_back(cell_seed(fc));

  std::vector<std::size_t> mine;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    if (static_cast<int>(i % static_cast<std::size_t>(options.shard_count)) ==
        options.shard_index) {
      mine.push_back(i);
    }
  }

  DatasetCache cache(options.cache_capacity, options.cache_dir);
  SuiteResult result;
  result.outcomes.resize(mine.size());

  // CI perf-gate hook: an injected per-cell sleep makes every exp_cell span
  // (and the suite's cell_seconds) regress by a known amount, proving the
  // m2ai_obsdiff gate actually trips. Ignored unless the env var is set.
  const char* inject_env = std::getenv("M2AI_PERF_INJECT_MS");
  const int inject_ms = inject_env != nullptr ? std::atoi(inject_env) : 0;

  // Flow arrows bind each dispatched cell to the worker that executes it
  // (id = global cell index + 1; Chrome flow ids must be non-zero).
  if (obs::timeline_enabled()) {
    for (std::size_t i : mine) obs::timeline_flow_start("exp_cell", i + 1);
  }

  const auto suite_start = std::chrono::steady_clock::now();
  auto run_one = [&](std::size_t slot) {
    obs::ScopedSpan span("exp_cell");
    const FlatCell& fc = flat[mine[slot]];
    obs::timeline_flow_end("exp_cell", mine[slot] + 1);
    span.arg("cell", fc.cell_index);
    span.arg("rep", fc.cell->repetition);
    span.arg_str("experiment", fc.experiment->id.c_str());
    if (options.verbose) {
      util::log_info() << "cell " << fc.experiment->id << "[" << fc.cell_index
                       << "] " << fc.cell->label;
    }
    const auto start = std::chrono::steady_clock::now();
    if (inject_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(inject_ms));
    }
    CellContext ctx{fc.cell->config, cache, rngs[mine[slot]], fc.cell->repetition};
    Rows rows = fc.cell->run(ctx);
    CellOutcome& out = result.outcomes[slot];
    out.experiment_id = fc.experiment->id;
    out.cell_index = fc.cell_index;
    out.repetition = fc.cell->repetition;
    out.label = fc.cell->label;
    out.rows = std::move(rows);
    out.seconds = seconds_since(start);
    obs::registry().counter("exp.cells.completed").add();
  };

  // With a single cell in this process, skip the cell-level fan-out so the
  // inner layers (dataset generation, batch training) keep their own
  // parallelism; with many cells, cell-level dispatch wins and the nested
  // regions fall back to serial. Results are identical either way — the
  // whole stack is thread-count-invariant.
  if (mine.size() == 1) {
    run_one(0);
  } else {
    par::parallel_for(mine.size(), run_one);
  }

  result.wall_seconds = seconds_since(suite_start);
  for (const CellOutcome& out : result.outcomes) result.cell_seconds += out.seconds;
  result.cache = cache.stats();

  obs::registry().gauge("exp.suite.wall_seconds").set(result.wall_seconds);
  obs::registry().gauge("exp.suite.cell_seconds").set(result.cell_seconds);
  obs::registry().gauge("exp.suite.cache_hit_rate").set(result.cache.hit_rate());
  return result;
}

void write_experiment_csvs(const Registry& registry,
                           const std::vector<CellOutcome>& outcomes,
                           const std::string& out_dir) {
  std::map<std::string, std::vector<const CellOutcome*>> by_id;
  for (const CellOutcome& out : outcomes) by_id[out.experiment_id].push_back(&out);

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  for (const Experiment& e : registry.all()) {
    const auto it = by_id.find(e.id);
    if (it == by_id.end()) continue;
    std::vector<const CellOutcome*>& cells = it->second;
    std::sort(cells.begin(), cells.end(),
              [](const CellOutcome* a, const CellOutcome* b) {
                if (a->cell_index != b->cell_index) return a->cell_index < b->cell_index;
                return a->repetition < b->repetition;
              });
    if (cells.size() != e.cells.size()) {
      throw std::runtime_error(
          "exp: experiment '" + e.id + "' has " + std::to_string(cells.size()) +
          " of " + std::to_string(e.cells.size()) +
          " cells — merge all shards before writing CSVs");
    }
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (cells[c]->cell_index != static_cast<int>(c)) {
        throw std::runtime_error("exp: experiment '" + e.id +
                                 "' is missing cell " + std::to_string(c));
      }
    }
    util::CsvWriter csv(out_dir + "/" + e.id + ".csv", e.columns);
    for (const CellOutcome* cell : cells) {
      for (const auto& row : cell->rows) csv.add_row(row);
    }
  }
}

void write_shard_file(const std::string& path, const SuiteResult& result) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("exp: cannot open shard file " + path);
  out << "m2ai-shard-v1\n";
  out << "meta\t" << num(result.wall_seconds, 17) << "\t"
      << num(result.cell_seconds, 17) << "\t" << result.cache.hits << "\t"
      << result.cache.misses << "\t" << result.cache.disk_hits << "\t"
      << result.cache.disk_writes << "\n";
  for (const CellOutcome& cell : result.outcomes) {
    out << "cell\t" << escape_field(cell.experiment_id) << "\t" << cell.cell_index
        << "\t" << cell.repetition << "\t" << num(cell.seconds, 17) << "\t"
        << escape_field(cell.label) << "\n";
    for (const auto& row : cell.rows) {
      out << "row";
      for (const std::string& field : row) out << "\t" << escape_field(field);
      out << "\n";
    }
  }
  if (!out.good()) throw std::runtime_error("exp: failed writing " + path);
}

SuiteResult read_shard_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("exp: cannot open shard file " + path);
  std::string line;
  if (!std::getline(in, line) || line != "m2ai-shard-v1") {
    throw std::runtime_error("exp: " + path + " is not a shard file");
  }
  SuiteResult result;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> fields = split_tabs(line);
    if (fields[0] == "meta") {
      if (fields.size() != 7) throw std::runtime_error("exp: bad meta in " + path);
      result.wall_seconds = std::stod(fields[1]);
      result.cell_seconds = std::stod(fields[2]);
      result.cache.hits = std::stoull(fields[3]);
      result.cache.misses = std::stoull(fields[4]);
      result.cache.disk_hits = std::stoull(fields[5]);
      result.cache.disk_writes = std::stoull(fields[6]);
    } else if (fields[0] == "cell") {
      if (fields.size() != 6) throw std::runtime_error("exp: bad cell in " + path);
      CellOutcome cell;
      cell.experiment_id = unescape_field(fields[1]);
      cell.cell_index = std::stoi(fields[2]);
      cell.repetition = std::stoi(fields[3]);
      cell.seconds = std::stod(fields[4]);
      cell.label = unescape_field(fields[5]);
      result.outcomes.push_back(std::move(cell));
    } else if (fields[0] == "row") {
      if (result.outcomes.empty()) {
        throw std::runtime_error("exp: row before cell in " + path);
      }
      std::vector<std::string> row;
      for (std::size_t i = 1; i < fields.size(); ++i) {
        row.push_back(unescape_field(fields[i]));
      }
      result.outcomes.back().rows.push_back(std::move(row));
    } else {
      throw std::runtime_error("exp: unknown record '" + fields[0] + "' in " + path);
    }
  }
  return result;
}

SuiteResult merge_results(const Registry& registry,
                          const std::vector<SuiteResult>& shards) {
  SuiteResult merged;
  for (const SuiteResult& shard : shards) {
    merged.outcomes.insert(merged.outcomes.end(), shard.outcomes.begin(),
                           shard.outcomes.end());
    merged.wall_seconds = std::max(merged.wall_seconds, shard.wall_seconds);
    merged.cell_seconds += shard.cell_seconds;
    merged.cache.hits += shard.cache.hits;
    merged.cache.misses += shard.cache.misses;
    merged.cache.disk_hits += shard.cache.disk_hits;
    merged.cache.disk_writes += shard.cache.disk_writes;
  }
  std::sort(merged.outcomes.begin(), merged.outcomes.end(),
            [&](const CellOutcome& a, const CellOutcome& b) {
              const int oa = experiment_order(registry, a.experiment_id);
              const int ob = experiment_order(registry, b.experiment_id);
              if (oa != ob) return oa < ob;
              if (a.cell_index != b.cell_index) return a.cell_index < b.cell_index;
              return a.repetition < b.repetition;
            });
  for (std::size_t i = 1; i < merged.outcomes.size(); ++i) {
    const CellOutcome& prev = merged.outcomes[i - 1];
    const CellOutcome& cur = merged.outcomes[i];
    if (prev.experiment_id == cur.experiment_id &&
        prev.cell_index == cur.cell_index && prev.repetition == cur.repetition) {
      throw std::runtime_error("exp: duplicate outcome for " + cur.experiment_id +
                               "[" + std::to_string(cur.cell_index) + "]");
    }
  }
  return merged;
}

std::string suite_report_json(const Registry& registry, const SuiteResult& result,
                              int threads, double scale, const std::string& label) {
  std::map<std::string, std::pair<int, double>> per_experiment;  // cells, seconds
  std::map<std::string, std::size_t> row_counts;
  for (const CellOutcome& out : result.outcomes) {
    auto& agg = per_experiment[out.experiment_id];
    agg.first += 1;
    agg.second += out.seconds;
    row_counts[out.experiment_id] += out.rows.size();
  }

  std::string json = "{\n  \"schema_version\": 1,\n  \"suite\": \"m2ai_bench\",\n";
  json += "  \"label\": \"" + obs::json_escape(label) + "\",\n";
  // Which kern backend produced these numbers — committed reports must be
  // self-describing across ref/fast/int8 runs.
  json += "  \"backend\": \"" + std::string(kern::active_backend_name()) + "\",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"scale\": " + num(scale) + ",\n";
  json += "  \"cells_run\": " + std::to_string(result.outcomes.size()) + ",\n";
  json += "  \"wall_seconds\": " + num(result.wall_seconds) + ",\n";
  json += "  \"serial_cell_seconds\": " + num(result.cell_seconds) + ",\n";
  const double speedup =
      result.wall_seconds > 0.0 ? result.cell_seconds / result.wall_seconds : 0.0;
  json += "  \"speedup_vs_serial\": " + num(speedup) + ",\n";
  json += "  \"cache\": {\"hits\": " + std::to_string(result.cache.hits) +
          ", \"misses\": " + std::to_string(result.cache.misses) +
          ", \"disk_hits\": " + std::to_string(result.cache.disk_hits) +
          ", \"disk_writes\": " + std::to_string(result.cache.disk_writes) +
          ", \"hit_rate\": " + num(result.cache.hit_rate()) + "},\n";
  json += "  \"experiments\": [";
  bool first = true;
  for (const Experiment& e : registry.all()) {
    const auto it = per_experiment.find(e.id);
    if (it == per_experiment.end()) continue;
    json += first ? "\n" : ",\n";
    first = false;
    json += "    {\"id\": \"" + obs::json_escape(e.id) + "\", \"figure\": \"" +
            obs::json_escape(e.figure) + "\", \"cells\": " +
            std::to_string(e.cells.size()) + ", \"cells_run\": " +
            std::to_string(it->second.first) + ", \"cell_seconds\": " +
            num(it->second.second) + ", \"rows\": " +
            std::to_string(row_counts[e.id]) + "}";
  }
  json += first ? "]\n}\n" : "\n  ]\n}\n";
  return json;
}

void write_suite_report(const std::string& path, const Registry& registry,
                        const SuiteResult& result, int threads, double scale,
                        const std::string& label) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("exp: cannot open " + path);
  out << suite_report_json(registry, result, threads, scale, label);
  if (!out.good()) throw std::runtime_error("exp: failed writing " + path);
}

}  // namespace m2ai::exp
