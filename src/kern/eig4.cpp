#include "kern/eig4.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace m2ai::kern {

namespace {

using cdouble = std::complex<double>;
constexpr std::size_t kN = 4;

inline cdouble& at(cdouble* m, std::size_t r, std::size_t c) { return m[r * kN + c]; }

// One complex Jacobi rotation annihilating a(p, q) — the same arithmetic, in
// the same order, as the generic dsp::eig_hermitian rotation.
void rotate(cdouble* a, cdouble* v, std::size_t p, std::size_t q) {
  const cdouble apq = at(a, p, q);
  const double mag = std::abs(apq);
  if (mag == 0.0) return;
  const double app = at(a, p, p).real();
  const double aqq = at(a, q, q).real();
  const double tau = (aqq - app) / (2.0 * mag);
  double t;
  if (tau >= 0.0) {
    t = -1.0 / (tau + std::sqrt(1.0 + tau * tau));
  } else {
    t = 1.0 / (-tau + std::sqrt(1.0 + tau * tau));
  }
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const cdouble eip = apq / mag;

  for (std::size_t k = 0; k < kN; ++k) {
    const cdouble akp = at(a, k, p);
    const cdouble akq = at(a, k, q);
    at(a, k, p) = c * akp + s * std::conj(eip) * akq;
    at(a, k, q) = -s * eip * akp + c * akq;
  }
  for (std::size_t k = 0; k < kN; ++k) {
    const cdouble apk = at(a, p, k);
    const cdouble aqk = at(a, q, k);
    at(a, p, k) = c * apk + s * eip * aqk;
    at(a, q, k) = -s * std::conj(eip) * apk + c * aqk;
  }
  for (std::size_t k = 0; k < kN; ++k) {
    const cdouble vkp = at(v, k, p);
    const cdouble vkq = at(v, k, q);
    at(v, k, p) = c * vkp + s * std::conj(eip) * vkq;
    at(v, k, q) = -s * eip * vkp + c * vkq;
  }
}

// Frobenius norm of the strictly off-diagonal part, summed in the same
// row-major order as CMatrix::offdiag_norm.
double offdiag_norm(const cdouble* a) {
  double s = 0.0;
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      if (r != c) s += std::norm(a[r * kN + c]);
    }
  }
  return std::sqrt(s);
}

}  // namespace

void eig_hermitian4(const cdouble* in, double tol, int max_sweeps,
                    double* values, cdouble* vectors) {
  // a <- (in + in^H) / 2, per element like the CMatrix expression.
  cdouble a[kN * kN];
  cdouble v[kN * kN];
  for (std::size_t r = 0; r < kN; ++r) {
    for (std::size_t c = 0; c < kN; ++c) {
      a[r * kN + c] = (in[r * kN + c] + std::conj(in[c * kN + r])) * 0.5;
      v[r * kN + c] = r == c ? cdouble{1.0, 0.0} : cdouble{0.0, 0.0};
    }
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (offdiag_norm(a) < tol) break;
    for (std::size_t p = 0; p + 1 < kN; ++p) {
      for (std::size_t q = p + 1; q < kN; ++q) {
        if (std::abs(at(a, p, q)) > tol / static_cast<double>(kN * kN)) {
          rotate(a, v, p, q);
        }
      }
    }
  }

  std::size_t order[kN];
  std::iota(order, order + kN, 0);
  std::sort(order, order + kN, [&](std::size_t i, std::size_t j) {
    return a[i * kN + i].real() > a[j * kN + j].real();
  });

  for (std::size_t k = 0; k < kN; ++k) {
    values[k] = a[order[k] * kN + order[k]].real();
    for (std::size_t r = 0; r < kN; ++r) vectors[r * kN + k] = v[r * kN + order[k]];
  }
}

}  // namespace m2ai::kern
