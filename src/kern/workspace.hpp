// Bump-allocated scratch arena for the compute-kernel layer.
//
// Hot loops (LSTM timesteps, conv rows, spectrum scans) used to allocate
// fresh Tensors/vectors on every call; the Workspace gives them reusable
// memory with three guarantees the kernels rely on:
//   - pointers returned by alloc() stay valid until the next reset() —
//     growth appends new blocks, existing blocks never move;
//   - reset() keeps the blocks, so a steady-state loop performs no heap
//     traffic at all after its first iteration; and
//   - every returned pointer is 64-byte aligned (cache-line / AVX-512
//     width), so the fast kernel backend can use aligned vector loads.
//     Requests are rounded up to 64-byte multiples internally to keep the
//     bump pointer aligned; floats_reserved() reports the rounded sizes.
//
// A Workspace is single-owner state (one per layer instance); it is NOT
// thread-safe and must not be shared across replicas.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace m2ai::kern {

class Workspace {
 public:
  // Uninitialized scratch of `n` floats (callers overwrite every element).
  float* alloc(std::size_t n);
  // Zero-initialized scratch (for accumulators).
  float* alloc_zero(std::size_t n);

  // Uninitialized int8 scratch for the quantized kernels, carved from the
  // float arena (4 int8 per float slot) — same 64-byte alignment and
  // valid-until-reset lifetime as alloc().
  std::int8_t* alloc_s8(std::size_t n) {
    return reinterpret_cast<std::int8_t*>(alloc((n + 3) / 4));
  }

  // Invalidate every pointer handed out since the last reset, keeping the
  // underlying blocks for reuse.
  void reset();

  // Total capacity across blocks (telemetry / tests).
  std::size_t floats_reserved() const;

 private:
  struct Block {
    std::unique_ptr<float[]> raw;  // owns base + alignment slack
    float* base = nullptr;         // first 64-byte-aligned float in raw
    std::size_t capacity = 0;
    std::size_t used = 0;
  };

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // first block with free room
};

}  // namespace m2ai::kern
