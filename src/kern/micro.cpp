#include "kern/micro.hpp"

#include <chrono>
#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace m2ai::kern {

KernMicro measure_micro(const Backend& be) {
  using clock = std::chrono::steady_clock;
  const auto time_ns = [](int iters, const auto& op) {
    op();  // warm up / fault in
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) op();
    return std::chrono::duration<double, std::nano>(clock::now() - t0).count() /
           iters;
  };
  const auto fill = [](std::vector<float>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = 0.01f * static_cast<float>(i % 23) - 0.1f;
    }
  };
  const auto fill_s8 = [](std::vector<std::int8_t>& v) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<std::int8_t>(static_cast<int>(i % 255) - 127);
    }
  };

  KernMicro m;
  {
    // LSTM gate GEMV: [4H, I+H] with H = 32, I = 32.
    const int rows = 128, cols = 64;
    std::vector<float> w(static_cast<std::size_t>(rows) * cols), x(cols),
        b(rows), y(rows);
    fill(w), fill(x), fill(b);
    m.gemv_ns = time_ns(
        2000, [&] { be.gemv(w.data(), x.data(), b.data(), y.data(), rows, cols); });
  }
  {
    // Micro-batch gate GEMM: 8 streams x [I+H] x [4H].
    const int mm = 8, kk = 64, nn = 128;
    std::vector<float> a(static_cast<std::size_t>(mm) * kk),
        bmat(static_cast<std::size_t>(kk) * nn), bias(nn),
        c(static_cast<std::size_t>(mm) * nn);
    fill(a), fill(bmat), fill(bias);
    m.gemm_bias_ns = time_ns(500, [&] {
      be.gemm_bias(a.data(), bmat.data(), bias.data(), c.data(), mm, kk, nn);
    });
  }
  {
    // CONV-E1 row: 180 angle bins, kernel 7, stride 2, padding 3.
    const int len = 180, kernel = 7, stride = 2, padding = 3, out_len = 90;
    std::vector<float> x(len), w(kernel), partial(out_len, 0.0f);
    fill(x), fill(w);
    m.conv1d_row_ns = time_ns(2000, [&] {
      be.conv1d_row_acc(x.data(), len, w.data(), kernel, stride, padding,
                        partial.data(), out_len);
    });
  }
  {
    // MUSIC projection: 180 bins x 4 antennas, 2 noise vectors (paper's M=2).
    const int bins = 180, n = 4, num_noise = 2;
    std::vector<std::complex<double>> un(static_cast<std::size_t>(num_noise) * n),
        steer(static_cast<std::size_t>(bins) * n);
    for (std::size_t i = 0; i < un.size(); ++i) {
      un[i] = {0.3 + 0.01 * static_cast<double>(i % 7),
               -0.2 + 0.02 * static_cast<double>(i % 5)};
    }
    for (std::size_t i = 0; i < steer.size(); ++i) {
      steer[i] = {std::cos(0.1 * static_cast<double>(i)),
                  std::sin(0.1 * static_cast<double>(i))};
    }
    std::vector<double> denom(bins);
    m.noise_projection_ns = time_ns(1000, [&] {
      be.noise_projection(un.data(), num_noise, steer.data(), bins, n,
                          denom.data());
    });
  }
  {
    // Quantized LSTM gate GEMV, same [128, 64] shape as the float one.
    const int rows = 128, cols = 64;
    std::vector<std::int8_t> w(static_cast<std::size_t>(rows) * cols), x(cols);
    std::vector<float> b(rows), y(rows);
    fill_s8(w), fill_s8(x), fill(b);
    m.gemv_s8_ns = time_ns(2000, [&] {
      be.gemv_s8(w.data(), x.data(), b.data(), y.data(), rows, cols, 0.001f);
    });
  }
  {
    // Quantized micro-batch gate GEMM: 8 x 64 x 128 (weight row-major [n,k]).
    const int mm = 8, kk = 64, nn = 128;
    std::vector<std::int8_t> a(static_cast<std::size_t>(mm) * kk),
        bt(static_cast<std::size_t>(nn) * kk);
    std::vector<float> bias(nn), c(static_cast<std::size_t>(mm) * nn);
    fill_s8(a), fill_s8(bt), fill(bias);
    m.gemm_bias_s8_ns = time_ns(500, [&] {
      be.gemm_bias_s8(a.data(), bt.data(), bias.data(), c.data(), mm, kk, nn,
                      0.001f);
    });
  }
  return m;
}

std::vector<std::pair<std::string, double>> micro_gauge_items(
    const char* backend_name, const KernMicro& micro) {
  const std::string prefix = std::string("kern.") + backend_name + ".";
  return {
      {prefix + "gemv.ns_per_op", micro.gemv_ns},
      {prefix + "gemm_bias.ns_per_op", micro.gemm_bias_ns},
      {prefix + "conv1d_row.ns_per_op", micro.conv1d_row_ns},
      {prefix + "noise_projection.ns_per_op", micro.noise_projection_ns},
      {prefix + "gemv_s8.ns_per_op", micro.gemv_s8_ns},
      {prefix + "gemm_bias_s8.ns_per_op", micro.gemm_bias_s8_ns},
  };
}

}  // namespace m2ai::kern
