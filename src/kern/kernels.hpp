// Deterministic compute microkernels for the DSP and NN hot paths.
//
// Determinism contract: every kernel accumulates each OUTPUT ELEMENT in the
// same serial order as the naive scalar loop it replaces (row-major, k
// ascending, float/double accumulators of the same width). Restructuring is
// only allowed ACROSS independent output elements — e.g. the k-outer /
// output-inner conv loop — never within one element's reduction, so results
// are bitwise-identical to the references at any thread count and (with
// -ffp-contract=off, set project-wide) at any optimization level.
//
// Kernels take raw pointers; callers own shape validation and aliasing
// rules (inputs must not alias outputs unless a kernel says otherwise).
#pragma once

#include <cmath>
#include <complex>
#include <cstddef>
#include <cstdint>

namespace m2ai::kern {

// Largest reduction depth the int8 kernels accept: every product is bounded
// by 127*127 = 16129, so any partial sum of k products (including the
// per-lane partials of a vectorized build) stays within int32 as long as
// k * 16129 <= INT32_MAX. Callers (nn/quantize.hpp) validate against this
// before preparing quantized weights; the kernels assume it.
inline constexpr int kMaxS8Depth = 2147483647 / (127 * 127);

// y[r] = (bias ? bias[r] : 0) + sum_k w[r*cols + k] * x[k], k ascending.
// Matches the naive Dense/LSTM-gate loops bit for bit.
inline void gemv(const float* w, const float* x, const float* bias, float* y,
                 int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* wr = w + static_cast<std::size_t>(r) * cols;
    float acc = bias != nullptr ? bias[r] : 0.0f;
    for (int k = 0; k < cols; ++k) acc += wr[k] * x[k];
    y[r] = acc;
  }
}

// Backward of y = W x + b with gradient accumulation, replicating the naive
// row loop exactly: per row r (optionally skipping g[r] == 0 rows, as the
// LSTM BPTT loop does), bias_g[r] += g[r], then for k ascending
// wg[r,k] += g[r]*x[k] and dx[k] += g[r]*w[r,k] — both updates inside the
// same k iteration, matching the reference interleaving.
inline void gemv_backward_acc(const float* w, float* wg, const float* x,
                              const float* g, float* bias_g, float* dx,
                              int rows, int cols, bool skip_zero_rows) {
  for (int r = 0; r < rows; ++r) {
    const float gr = g[r];
    if (skip_zero_rows && gr == 0.0f) continue;
    bias_g[r] += gr;
    const float* wr = w + static_cast<std::size_t>(r) * cols;
    float* wgr = wg + static_cast<std::size_t>(r) * cols;
    for (int k = 0; k < cols; ++k) {
      wgr[k] += gr * x[k];
      dx[k] += gr * wr[k];
    }
  }
}

// C[i,j] = sum_k A[i,k] * B[k,j] (C is fully overwritten). The loop nest is
// k-outer / j-inner so the compiler can vectorize over j, but each C[i,j]
// still receives its k terms in ascending order — bitwise-identical to the
// naive i/j/k triple loop with a scalar accumulator.
inline void gemm(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) ci[j] = 0.0f;
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float av = ai[kk];
      const float* bk = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
  }
}

// GEMM with a per-column bias: C[i,j] = (bias ? bias[j] : 0) + sum_k A[i,k] *
// B[k,j]. Each output element starts from its bias and accumulates k
// ascending — exactly gemv's per-element order — so batching B gemv calls
// with the same weight matrix into one gemm_bias call (A = stacked inputs,
// B = transposed weights) is bitwise-identical to the B separate gemv calls.
inline void gemm_bias(const float* a, const float* b, const float* bias, float* c,
                      int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    if (bias != nullptr) {
      for (int j = 0; j < n; ++j) ci[j] = bias[j];
    } else {
      for (int j = 0; j < n; ++j) ci[j] = 0.0f;
    }
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float av = ai[kk];
      const float* bk = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
  }
}

// One input-channel row of a strided/padded 1-D convolution:
//   partial[ol] += w[k] * x[ol*stride - padding + k]
// over exactly the taps that land inside [0, len). The k-outer / ol-inner
// ordering turns the per-output bounds tests of the naive loop into two
// integer bounds per tap, and each partial[ol] still accumulates its valid
// k's in ascending order — bitwise-identical to the naive per-element loop.
// `partial` must be zeroed (or hold the running per-channel partial sums the
// caller wants to extend) before the first call for an output row.
inline void conv1d_row_acc(const float* x, int len, const float* w, int kernel,
                           int stride, int padding, float* partial, int out_len) {
  for (int k = 0; k < kernel; ++k) {
    const int off = k - padding;  // x index at ol == 0
    int ol_lo = 0;
    if (off < 0) ol_lo = (-off + stride - 1) / stride;
    const int max_pos = len - 1 - off;
    if (max_pos < 0) continue;
    const int ol_hi = max_pos / stride + 1 < out_len ? max_pos / stride + 1 : out_len;
    const float wk = w[k];
    const float* xs = x + off;
    for (int ol = ol_lo; ol < ol_hi; ++ol) {
      partial[ol] += wk * xs[static_cast<std::size_t>(ol) * stride];
    }
  }
}

// MUSIC noise-subspace projection scan (Eq. 12 denominator):
//   denom[bin] = sum over noise vectors u_k (k ascending) of
//                |sum_i conj(un[k*n + i]) * steer[bin*n + i]|^2
// with the inner product accumulated i-ascending — the same order as the
// per-bin column()/inner() reference, minus its per-(bin, k) allocations.
inline void noise_projection(const std::complex<double>* un, int num_noise,
                             const std::complex<double>* steer, int num_bins,
                             int n, double* denom) {
  for (int bin = 0; bin < num_bins; ++bin) {
    const std::complex<double>* a = steer + static_cast<std::size_t>(bin) * n;
    double d = 0.0;
    for (int k = 0; k < num_noise; ++k) {
      const std::complex<double>* u = un + static_cast<std::size_t>(k) * n;
      std::complex<double> s{0.0, 0.0};
      for (int i = 0; i < n; ++i) s += std::conj(u[i]) * a[i];
      d += std::norm(s);
    }
    denom[bin] = d;
  }
}

// Quantized GEMV: y[r] = (bias ? bias[r] : 0) + scale * sum_k w[r,k] * x[k],
// the sum taken in an int32 accumulator. Integer accumulation is exact, so —
// unlike the float kernels — ANY summation order gives the same accumulator,
// and the requantize epilogue is a single float multiply then add (never
// fused: -ffp-contract=off everywhere this runs). Result: bitwise-identical
// output from the scalar and vectorized implementations. `scale` is the
// product of the weight and activation scales; cols must be <= kMaxS8Depth.
inline void gemv_s8(const std::int8_t* w, const std::int8_t* x, const float* bias,
                    float* y, int rows, int cols, float scale) {
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* wr = w + static_cast<std::size_t>(r) * cols;
    std::int32_t acc = 0;
    for (int k = 0; k < cols; ++k) {
      acc += static_cast<std::int32_t>(wr[k]) * static_cast<std::int32_t>(x[k]);
    }
    const float deq = scale * static_cast<float>(acc);
    y[r] = (bias != nullptr ? bias[r] : 0.0f) + deq;
  }
}

// Quantized GEMM + per-column bias:
//   C[i,j] = (bias ? bias[j] : 0) + scale * sum_k A[i,k] * Bt[j,k]
// NOTE the B operand is [n, k] ROW-major — i.e. the weight matrix in its
// natural [out, in] layout, NOT transposed like the float gemm_bias. Integer
// accumulation needs no ordering contract, and row-by-row dot products keep
// both operands contiguous for the vectorized build. k <= kMaxS8Depth.
inline void gemm_bias_s8(const std::int8_t* a, const std::int8_t* bt,
                         const float* bias, float* c, int m, int k, int n,
                         float scale) {
  for (int i = 0; i < m; ++i) {
    const std::int8_t* ai = a + static_cast<std::size_t>(i) * k;
    float* ci = c + static_cast<std::size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const std::int8_t* bj = bt + static_cast<std::size_t>(j) * k;
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(ai[kk]) * static_cast<std::int32_t>(bj[kk]);
      }
      const float deq = scale * static_cast<float>(acc);
      ci[j] = (bias != nullptr ? bias[j] : 0.0f) + deq;
    }
  }
}

// Symmetric s8 quantization of one value given the PRECOMPUTED reciprocal
// scale (0 means "scale was 0" and maps everything to 0). nearbyint under
// the default rounding mode is round-to-nearest-even — ties like 2.5 go to
// 2, 3.5 to 4, matching the static-RNE convert a vectorized build uses, so
// scalar and SIMD quantization agree bitwise.
inline std::int8_t quantize_one_s8(float x, float inv_scale) {
  const float scaled = x * inv_scale;
  float r = std::nearbyintf(scaled);
  if (r > 127.0f) r = 127.0f;
  if (r < -127.0f) r = -127.0f;
  return static_cast<std::int8_t>(r);
}

// q[i] = clamp(round_to_nearest_even(x[i] / scale), -127, 127). The hot
// activation-quantization step of the int8 inference path; dispatched via
// the backend table so the int8 build can run it 8-wide.
inline void quantize_s8(const float* x, std::size_t n, float scale,
                        std::int8_t* q) {
  const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
  for (std::size_t i = 0; i < n; ++i) q[i] = quantize_one_s8(x[i], inv);
}

}  // namespace m2ai::kern
