// FAST kernel backend. This translation unit is compiled with its own flag
// set (see src/CMakeLists.txt): -mavx2 -mfma when the compiler supports them,
// plus -ffp-contract=fast -ftree-slp-vectorize — deliberately overriding the
// project-wide determinism pins FOR THIS FILE ONLY. Nothing here is
// bitwise-reproducible and nothing here may be called from training code;
// results are epsilon-equivalent to kernels.hpp (tests/test_kern_backend.cpp).
//
// Because the whole TU may be built with AVX2/FMA code generation, none of
// its kernels may execute on a CPU without those ISAs — dispatch
// (backend.cpp) only activates this table when fast_backend_supported(),
// which does the runtime CPUID check. fast_backend_supported() itself is
// called before any vector instruction can run, so it must stay free of
// floating-point work.

#include "kern/backend.hpp"

#include <complex>
#include <cstddef>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define M2AI_FAST_AVX2 1
#else
#define M2AI_FAST_AVX2 0
#endif

namespace m2ai::kern {
namespace {

#if M2AI_FAST_AVX2

inline float hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_movehdup_ps(s));
  return _mm_cvtss_f32(s);
}

void fast_gemv(const float* w, const float* x, const float* bias, float* y,
               int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* wr = w + static_cast<std::size_t>(r) * cols;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    int k = 0;
    for (; k + 32 <= cols; k += 32) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(wr + k), _mm256_loadu_ps(x + k), acc0);
      acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(wr + k + 8), _mm256_loadu_ps(x + k + 8), acc1);
      acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(wr + k + 16), _mm256_loadu_ps(x + k + 16), acc2);
      acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(wr + k + 24), _mm256_loadu_ps(x + k + 24), acc3);
    }
    for (; k + 8 <= cols; k += 8) {
      acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(wr + k), _mm256_loadu_ps(x + k), acc0);
    }
    acc0 = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    float acc = hsum256(acc0);
    for (; k < cols; ++k) acc += wr[k] * x[k];
    y[r] = (bias != nullptr ? bias[r] : 0.0f) + acc;
  }
}

// Register-blocked GEMM + bias: 4 ymm accumulators span a 32-wide j block
// held in registers across the whole k loop (one broadcast-FMA per A
// element), with an outer k-panel loop keeping the touched B panel inside
// L1/L2 for large k.
void fast_gemm_bias(const float* a, const float* b, const float* bias, float* c,
                    int m, int k, int n) {
  constexpr int kJB = 32;        // j-block: 4 ymm registers
  constexpr int kKPanel = 512;   // k-panel: B panel of 512x32 floats = 64 KiB
  for (int i = 0; i < m; ++i) {
    const float* ai = a + static_cast<std::size_t>(i) * k;
    float* ci = c + static_cast<std::size_t>(i) * n;
    int j0 = 0;
    for (; j0 + kJB <= n; j0 += kJB) {
      __m256 acc0, acc1, acc2, acc3;
      if (bias != nullptr) {
        acc0 = _mm256_loadu_ps(bias + j0);
        acc1 = _mm256_loadu_ps(bias + j0 + 8);
        acc2 = _mm256_loadu_ps(bias + j0 + 16);
        acc3 = _mm256_loadu_ps(bias + j0 + 24);
      } else {
        acc0 = acc1 = acc2 = acc3 = _mm256_setzero_ps();
      }
      for (int k0 = 0; k0 < k; k0 += kKPanel) {
        const int k1 = k0 + kKPanel < k ? k0 + kKPanel : k;
        for (int kk = k0; kk < k1; ++kk) {
          const __m256 av = _mm256_broadcast_ss(ai + kk);
          const float* bk = b + static_cast<std::size_t>(kk) * n + j0;
          acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk), acc0);
          acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk + 8), acc1);
          acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk + 16), acc2);
          acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bk + 24), acc3);
        }
      }
      _mm256_storeu_ps(ci + j0, acc0);
      _mm256_storeu_ps(ci + j0 + 8, acc1);
      _mm256_storeu_ps(ci + j0 + 16, acc2);
      _mm256_storeu_ps(ci + j0 + 24, acc3);
    }
    for (; j0 + 8 <= n; j0 += 8) {
      __m256 acc = bias != nullptr ? _mm256_loadu_ps(bias + j0) : _mm256_setzero_ps();
      for (int kk = 0; kk < k; ++kk) {
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(ai + kk),
                              _mm256_loadu_ps(b + static_cast<std::size_t>(kk) * n + j0),
                              acc);
      }
      _mm256_storeu_ps(ci + j0, acc);
    }
    for (; j0 < n; ++j0) {
      float acc = bias != nullptr ? bias[j0] : 0.0f;
      for (int kk = 0; kk < k; ++kk) acc += ai[kk] * b[static_cast<std::size_t>(kk) * n + j0];
      ci[j0] = acc;
    }
  }
}

void fast_conv1d_row_acc(const float* x, int len, const float* w, int kernel,
                         int stride, int padding, float* partial, int out_len) {
  for (int k = 0; k < kernel; ++k) {
    const int off = k - padding;
    int ol_lo = 0;
    if (off < 0) ol_lo = (-off + stride - 1) / stride;
    const int max_pos = len - 1 - off;
    if (max_pos < 0) continue;
    const int ol_hi = max_pos / stride + 1 < out_len ? max_pos / stride + 1 : out_len;
    const float wk = w[k];
    const float* xs = x + off;
    int ol = ol_lo;
    const __m256 wv = _mm256_set1_ps(wk);
    if (stride == 1) {
      for (; ol + 8 <= ol_hi; ol += 8) {
        const __m256 p = _mm256_loadu_ps(partial + ol);
        _mm256_storeu_ps(partial + ol,
                         _mm256_fmadd_ps(wv, _mm256_loadu_ps(xs + ol), p));
      }
    } else {
      // Strided taps (the model's pseudo branch is stride 2/3/5): gather 8
      // stride-spaced inputs per step. Lane j reads xs[(ol+j)*stride], which
      // ol_hi already bounds, so the gather never over-reads.
      const __m256i idx = _mm256_mullo_epi32(
          _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7), _mm256_set1_epi32(stride));
      for (; ol + 8 <= ol_hi; ol += 8) {
        const __m256 p = _mm256_loadu_ps(partial + ol);
        const __m256 xv = _mm256_i32gather_ps(
            xs + static_cast<std::size_t>(ol) * stride, idx, 4);
        _mm256_storeu_ps(partial + ol, _mm256_fmadd_ps(wv, xv, p));
      }
    }
    for (; ol < ol_hi; ++ol) {
      partial[ol] += wk * xs[static_cast<std::size_t>(ol) * stride];
    }
  }
}

// Two complex<double> lanes per ymm: with u = [re0,im0,re1,im1] and a
// likewise, conj(u)*a has real parts ur*ar + ui*ai (u*a summed in pairs) and
// imaginary parts ur*ai - ui*ar (u * swap(a), sign-flipped on odd lanes,
// summed in pairs).
void fast_noise_projection(const std::complex<double>* un, int num_noise,
                           const std::complex<double>* steer, int num_bins,
                           int n, double* denom) {
  const __m256d sign = _mm256_set_pd(-1.0, 1.0, -1.0, 1.0);  // [1,-1,1,-1] in memory order
  for (int bin = 0; bin < num_bins; ++bin) {
    const double* a = reinterpret_cast<const double*>(steer + static_cast<std::size_t>(bin) * n);
    double d = 0.0;
    for (int k = 0; k < num_noise; ++k) {
      const double* u = reinterpret_cast<const double*>(un + static_cast<std::size_t>(k) * n);
      __m256d acc_re = _mm256_setzero_pd();
      __m256d acc_im = _mm256_setzero_pd();
      int i = 0;
      for (; i + 2 <= n; i += 2) {
        const __m256d uv = _mm256_loadu_pd(u + 2 * i);
        const __m256d av = _mm256_loadu_pd(a + 2 * i);
        acc_re = _mm256_fmadd_pd(uv, av, acc_re);
        const __m256d asw = _mm256_permute_pd(av, 0b0101);
        acc_im = _mm256_fmadd_pd(_mm256_mul_pd(uv, sign), asw, acc_im);
      }
      double re_lanes[4], im_lanes[4];
      _mm256_storeu_pd(re_lanes, acc_re);
      _mm256_storeu_pd(im_lanes, acc_im);
      double re = re_lanes[0] + re_lanes[1] + re_lanes[2] + re_lanes[3];
      double im = im_lanes[0] + im_lanes[1] + im_lanes[2] + im_lanes[3];
      for (; i < n; ++i) {
        const double ur = u[2 * i], ui = u[2 * i + 1];
        const double ar = a[2 * i], ai = a[2 * i + 1];
        re += ur * ar + ui * ai;
        im += ur * ai - ui * ar;
      }
      d += re * re + im * im;
    }
    denom[bin] = d;
  }
}

#else  // !M2AI_FAST_AVX2

// Generic fast build (compiler lacked -mavx2/-mfma, or non-x86 target): the
// same loop nests as the reference, but written out locally so THIS TU's
// flags (-ffp-contract=fast -ftree-slp-vectorize) apply — calling the
// kernels.hpp inline functions could link against a determinism-pinned copy
// from another TU. Runs on any CPU, so fast_backend_supported() is true.

void fast_gemv(const float* w, const float* x, const float* bias, float* y,
               int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* wr = w + static_cast<std::size_t>(r) * cols;
    float acc = bias != nullptr ? bias[r] : 0.0f;
    for (int k = 0; k < cols; ++k) acc += wr[k] * x[k];
    y[r] = acc;
  }
}

void fast_gemm_bias(const float* a, const float* b, const float* bias, float* c,
                    int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    float* ci = c + static_cast<std::size_t>(i) * n;
    if (bias != nullptr) {
      for (int j = 0; j < n; ++j) ci[j] = bias[j];
    } else {
      for (int j = 0; j < n; ++j) ci[j] = 0.0f;
    }
    const float* ai = a + static_cast<std::size_t>(i) * k;
    for (int kk = 0; kk < k; ++kk) {
      const float av = ai[kk];
      const float* bk = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
  }
}

void fast_conv1d_row_acc(const float* x, int len, const float* w, int kernel,
                         int stride, int padding, float* partial, int out_len) {
  for (int k = 0; k < kernel; ++k) {
    const int off = k - padding;
    int ol_lo = 0;
    if (off < 0) ol_lo = (-off + stride - 1) / stride;
    const int max_pos = len - 1 - off;
    if (max_pos < 0) continue;
    const int ol_hi = max_pos / stride + 1 < out_len ? max_pos / stride + 1 : out_len;
    const float wk = w[k];
    const float* xs = x + off;
    for (int ol = ol_lo; ol < ol_hi; ++ol) {
      partial[ol] += wk * xs[static_cast<std::size_t>(ol) * stride];
    }
  }
}

void fast_noise_projection(const std::complex<double>* un, int num_noise,
                           const std::complex<double>* steer, int num_bins,
                           int n, double* denom) {
  for (int bin = 0; bin < num_bins; ++bin) {
    const std::complex<double>* a = steer + static_cast<std::size_t>(bin) * n;
    double d = 0.0;
    for (int k = 0; k < num_noise; ++k) {
      const std::complex<double>* u = un + static_cast<std::size_t>(k) * n;
      double re = 0.0, im = 0.0;
      for (int i = 0; i < n; ++i) {
        const double ur = u[i].real(), ui = u[i].imag();
        const double ar = a[i].real(), ai = a[i].imag();
        re += ur * ar + ui * ai;
        im += ur * ai - ui * ar;
      }
      d += re * re + im * im;
    }
    denom[bin] = d;
  }
}

#endif  // M2AI_FAST_AVX2

}  // namespace

const Backend& fast_backend() {
  // s8 entries point at the determinism-pinned scalar wrappers in backend.cpp
  // — this TU's -ffp-contract=fast would break the s8 bitwise contract.
  static const Backend kFast{
      "fast",
      &fast_gemv,
      &fast_gemm_bias,
      &fast_conv1d_row_acc,
      &fast_noise_projection,
      &detail::ref_gemv_s8,
      &detail::ref_gemm_bias_s8,
      &detail::ref_quantize_s8,
  };
  return kFast;
}

bool fast_backend_supported() {
#if M2AI_FAST_AVX2
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return true;
#endif
}

}  // namespace m2ai::kern
