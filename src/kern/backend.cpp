#include "kern/backend.hpp"

#include <cstdlib>
#include <stdexcept>

#include "kern/kernels.hpp"

namespace m2ai::kern {

namespace detail {
std::atomic<const Backend*> g_active{nullptr};
}  // namespace detail

const Backend& reference_backend() {
  static const Backend kReference{
      "ref",          &gemv,
      &gemm_bias,     &conv1d_row_acc,
      &noise_projection,
  };
  return kReference;
}

BackendKind set_backend(BackendKind requested) {
  const Backend* table = &reference_backend();
  BackendKind actual = BackendKind::kReference;
  if (requested == BackendKind::kFast && fast_backend_supported()) {
    table = &fast_backend();
    actual = BackendKind::kFast;
  }
  detail::g_active.store(table, std::memory_order_relaxed);
  return actual;
}

BackendKind set_backend_by_name(const std::string& name) {
  if (name == "ref" || name == "reference") return set_backend(BackendKind::kReference);
  if (name == "fast") return set_backend(BackendKind::kFast);
  throw std::invalid_argument("unknown kernel backend '" + name +
                              "' (expected 'ref' or 'fast')");
}

BackendKind active_backend_kind() {
  const Backend* b = detail::g_active.load(std::memory_order_relaxed);
  return (b == &fast_backend()) ? BackendKind::kFast : BackendKind::kReference;
}

namespace {
// Applies M2AI_KERN_BACKEND before main() runs so even code that never
// touches the CLI flag (tests, library embedders) honors the override. An
// unparseable value is ignored — the tools re-apply and validate --backend
// themselves, and a library must not abort on a stray variable.
const bool g_env_applied = [] {
  const char* env = std::getenv("M2AI_KERN_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    try {
      set_backend_by_name(env);
    } catch (const std::invalid_argument&) {
    }
  }
  return true;
}();
}  // namespace

}  // namespace m2ai::kern
