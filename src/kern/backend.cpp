#include "kern/backend.hpp"

#include <cstdlib>
#include <stdexcept>

#include "kern/kernels.hpp"
#include "util/log.hpp"

namespace m2ai::kern {

namespace detail {
std::atomic<const Backend*> g_active{nullptr};

// Defined here — the determinism-pinned TU — so the requantize epilogue can
// never be FMA-contracted, keeping s8 results bitwise-identical across every
// table that points at these (ref and fast).
void ref_gemv_s8(const std::int8_t* w, const std::int8_t* x, const float* bias,
                 float* y, int rows, int cols, float scale) {
  gemv_s8(w, x, bias, y, rows, cols, scale);
}

void ref_gemm_bias_s8(const std::int8_t* a, const std::int8_t* bt,
                      const float* bias, float* c, int m, int k, int n,
                      float scale) {
  gemm_bias_s8(a, bt, bias, c, m, k, n, scale);
}

void ref_quantize_s8(const float* x, std::size_t n, float scale,
                     std::int8_t* q) {
  quantize_s8(x, n, scale, q);
}
}  // namespace detail

const Backend& reference_backend() {
  static const Backend kReference{
      "ref",
      &gemv,
      &gemm_bias,
      &conv1d_row_acc,
      &noise_projection,
      &detail::ref_gemv_s8,
      &detail::ref_gemm_bias_s8,
      &detail::ref_quantize_s8,
  };
  return kReference;
}

BackendKind set_backend(BackendKind requested) {
  const Backend* table = &reference_backend();
  BackendKind actual = BackendKind::kReference;
  if (requested == BackendKind::kFast && fast_backend_supported()) {
    table = &fast_backend();
    actual = BackendKind::kFast;
  } else if (requested == BackendKind::kInt8 && int8_backend_supported()) {
    table = &int8_backend();
    actual = BackendKind::kInt8;
  }
  detail::g_active.store(table, std::memory_order_relaxed);
  return actual;
}

BackendKind set_backend_by_name(const std::string& name) {
  if (name == "ref" || name == "reference") return set_backend(BackendKind::kReference);
  if (name == "fast") return set_backend(BackendKind::kFast);
  if (name == "int8") return set_backend(BackendKind::kInt8);
  throw std::invalid_argument("unknown kernel backend '" + name +
                              "' (expected 'ref', 'fast', or 'int8')");
}

BackendKind active_backend_kind() {
  const Backend* b = detail::g_active.load(std::memory_order_relaxed);
  if (b == &fast_backend()) return BackendKind::kFast;
  if (b == &int8_backend()) return BackendKind::kInt8;
  return BackendKind::kReference;
}

const char* active_backend_name() { return active().name; }

BackendKind apply_env_backend() {
  const char* env = std::getenv("M2AI_KERN_BACKEND");
  if (env == nullptr || env[0] == '\0') return active_backend_kind();
  try {
    const BackendKind actual = set_backend_by_name(env);
    if (actual == BackendKind::kReference && std::string(env) != "ref" &&
        std::string(env) != "reference") {
      util::log_warn() << "M2AI_KERN_BACKEND='" << env
                       << "' is not supported on this CPU; using reference backend";
    }
    return actual;
  } catch (const std::invalid_argument&) {
    util::log_warn() << "unknown M2AI_KERN_BACKEND value '" << env
                     << "' (expected 'ref', 'fast', or 'int8'); "
                     << "falling back to reference backend";
    return set_backend(BackendKind::kReference);
  }
}

namespace {
// Applies M2AI_KERN_BACKEND before main() runs so even code that never
// touches the CLI flag (tests, library embedders) honors the override.
const bool g_env_applied = [] {
  apply_env_backend();
  return true;
}();
}  // namespace

}  // namespace m2ai::kern
