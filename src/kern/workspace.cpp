#include "kern/workspace.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace m2ai::kern {

namespace {
constexpr std::size_t kMinBlockFloats = 4096;
constexpr std::size_t kAlignBytes = 64;
constexpr std::size_t kAlignFloats = kAlignBytes / sizeof(float);

// Round a float count up to a whole number of 64-byte lines. Keeping both
// block capacities and individual requests line-granular means the bump
// pointer (base + used) is 64-byte aligned before and after every alloc.
std::size_t round_up(std::size_t n) {
  return (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}
}  // namespace

float* Workspace::alloc(std::size_t n) {
  if (n == 0) n = 1;  // keep returned pointers distinct and dereferenceable
  n = round_up(n);
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    if (b.capacity - b.used >= n) {
      float* p = b.base + b.used;
      b.used += n;
      return p;
    }
    // The active block is too full for this request; later blocks (from a
    // previous, larger generation) may still fit it. Never backtrack: used
    // regions of earlier blocks hold live pointers.
    ++active_;
  }
  const std::size_t last_cap = blocks_.empty() ? 0 : blocks_.back().capacity;
  Block b;
  b.capacity = std::max({kMinBlockFloats, 2 * last_cap, n});
  // Over-allocate one line and slide to the first aligned float —
  // make_unique only guarantees alignof(float).
  b.raw = std::make_unique<float[]>(b.capacity + kAlignFloats);
  const std::uintptr_t addr = reinterpret_cast<std::uintptr_t>(b.raw.get());
  const std::uintptr_t aligned = (addr + kAlignBytes - 1) / kAlignBytes * kAlignBytes;
  b.base = b.raw.get() + (aligned - addr) / sizeof(float);
  b.used = n;
  blocks_.push_back(std::move(b));
  active_ = blocks_.size() - 1;
  return blocks_.back().base;
}

float* Workspace::alloc_zero(std::size_t n) {
  float* p = alloc(n);
  std::memset(p, 0, (n == 0 ? 1 : n) * sizeof(float));
  return p;
}

void Workspace::reset() {
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
}

std::size_t Workspace::floats_reserved() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

}  // namespace m2ai::kern
