#include "kern/workspace.hpp"

#include <algorithm>
#include <cstring>

namespace m2ai::kern {

namespace {
constexpr std::size_t kMinBlockFloats = 4096;
}

float* Workspace::alloc(std::size_t n) {
  if (n == 0) n = 1;  // keep returned pointers distinct and dereferenceable
  while (active_ < blocks_.size()) {
    Block& b = blocks_[active_];
    if (b.capacity - b.used >= n) {
      float* p = b.data.get() + b.used;
      b.used += n;
      return p;
    }
    // The active block is too full for this request; later blocks (from a
    // previous, larger generation) may still fit it. Never backtrack: used
    // regions of earlier blocks hold live pointers.
    ++active_;
  }
  const std::size_t last_cap = blocks_.empty() ? 0 : blocks_.back().capacity;
  Block b;
  b.capacity = std::max({kMinBlockFloats, 2 * last_cap, n});
  b.data = std::make_unique<float[]>(b.capacity);
  b.used = n;
  blocks_.push_back(std::move(b));
  active_ = blocks_.size() - 1;
  return blocks_.back().data.get();
}

float* Workspace::alloc_zero(std::size_t n) {
  float* p = alloc(n);
  std::memset(p, 0, (n == 0 ? 1 : n) * sizeof(float));
  return p;
}

void Workspace::reset() {
  for (Block& b : blocks_) b.used = 0;
  active_ = 0;
}

std::size_t Workspace::floats_reserved() const {
  std::size_t total = 0;
  for (const Block& b : blocks_) total += b.capacity;
  return total;
}

}  // namespace m2ai::kern
