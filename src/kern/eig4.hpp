// Specialized 4x4 complex-Hermitian Jacobi eigendecomposition.
//
// The 4-antenna array makes every MUSIC covariance a 4x4 Hermitian matrix,
// and dsp::eig_hermitian was the single most expensive leaf of the profiled
// pipeline (~500 ms over 172k windows) — almost entirely CMatrix heap
// traffic around a fixed-size computation. This kernel runs the identical
// cyclic Jacobi iteration (same rotation order, same convergence tests, same
// descending sort) on stack arrays; dsp::eig_hermitian dispatches to it for
// n == 4 and its results are bitwise-identical to the generic path.
#pragma once

#include <complex>

namespace m2ai::kern {

// `in` is the 4x4 row-major input (symmetrized internally like the generic
// path); on return `values` holds the eigenvalues descending and
// `vectors[r*4 + k]` row-major eigenvector matrix (column k pairs with
// values[k]).
void eig_hermitian4(const std::complex<double>* in, double tol, int max_sweeps,
                    double* values, std::complex<double>* vectors);

}  // namespace m2ai::kern
