// INT8 kernel backend. This translation unit keeps the project-wide
// determinism pins (-ffp-contract=off, -fno-tree-slp-vectorize) and only
// appends -mavx2 when the compiler supports it (see src/CMakeLists.txt) —
// unlike backend_fast.cpp it does NOT enable contraction. That is deliberate:
// the int8 kernels accumulate in int32 (exact, order-independent) and finish
// with a single requantize epilogue `y = bias + scale * float(acc)` whose two
// float operations must stay unfused, making the AVX2 path below
// BITWISE-IDENTICAL to the scalar reference in kernels.hpp. The equivalence
// suite (tests/test_kern_backend.cpp) asserts exact equality, not epsilon.
//
// The AVX2 kernels sign-extend both operands to int16 ONCE per call into
// thread-local scratch (zero-padded to a 16-lane multiple, so the hot loops
// have no tails) and then run pure _mm256_madd_epi16 dot loops — the signed
// sibling of the maddubs idiom, no unsigned offset correction needed. The
// widen-first layout matters: cvtepi8_epi16 is a shuffle-port op, and doing
// it inside the dot loop makes the kernel shuffle-bound (2 shuffles per 16
// products per output); hoisting it costs (rows+1)·k/16 shuffles total and
// leaves the inner loop at loads+madd+add only. Register blocking (4 rows
// per x load in gemv, 4 weight rows per activation load in gemm) amortizes
// the shared operand's loads. Zero padding is exact (0·0 contributes 0) and
// lane partials cannot overflow because callers bound the reduction depth
// by kMaxS8Depth (see kernels.hpp).
//
// When the whole TU is built with AVX2 code generation, dispatch only
// activates this table when int8_backend_supported() — the runtime CPUID
// check — says the host can run it.

#include "kern/backend.hpp"

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kern/kernels.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#define M2AI_INT8_AVX2 1
#else
#define M2AI_INT8_AVX2 0
#endif

namespace m2ai::kern {
namespace {

#if M2AI_INT8_AVX2

// Per-thread widened-operand scratch. Reused across calls; each serving /
// DSP / test thread gets its own copy, so kernels stay re-entrant.
thread_local std::vector<std::int16_t> g_wide_lhs;
thread_local std::vector<std::int16_t> g_wide_rhs;

// Sign-extend `rows` s8 rows of length k (row stride k) into int16 rows of
// padded stride kp (kp = k rounded up to a multiple of 16), zero-filling the
// pad so the dot loops below need no tail handling.
inline void widen_rows_s8_s16(const std::int8_t* src, int rows, int k, int kp,
                              std::int16_t* dst) {
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* s = src + static_cast<std::size_t>(r) * k;
    std::int16_t* d = dst + static_cast<std::size_t>(r) * kp;
    int i = 0;
    for (; i + 16 <= k; i += 16) {
      const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                          _mm256_cvtepi8_epi16(v));
    }
    for (; i < k; ++i) d[i] = s[i];
    for (; i < kp; ++i) d[i] = 0;
  }
}

// Horizontal int32 sum — exact, so lane order is irrelevant.
inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

void int8_gemv_s8(const std::int8_t* w, const std::int8_t* x, const float* bias,
                  float* y, int rows, int cols, float scale) {
  const int kp = (cols + 15) & ~15;
  g_wide_lhs.resize(static_cast<std::size_t>(rows) * kp);
  g_wide_rhs.resize(static_cast<std::size_t>(kp));
  widen_rows_s8_s16(w, rows, cols, kp, g_wide_lhs.data());
  widen_rows_s8_s16(x, 1, cols, kp, g_wide_rhs.data());
  const std::int16_t* w16 = g_wide_lhs.data();
  const std::int16_t* x16 = g_wide_rhs.data();

  int r = 0;
  for (; r + 4 <= rows; r += 4) {
    const std::int16_t* w0 = w16 + static_cast<std::size_t>(r) * kp;
    const std::int16_t* w1 = w0 + kp;
    const std::int16_t* w2 = w1 + kp;
    const std::int16_t* w3 = w2 + kp;
    __m256i acc0 = _mm256_setzero_si256();
    __m256i acc1 = _mm256_setzero_si256();
    __m256i acc2 = _mm256_setzero_si256();
    __m256i acc3 = _mm256_setzero_si256();
    for (int i = 0; i < kp; i += 16) {
      const __m256i xv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x16 + i));
      acc0 = _mm256_add_epi32(
          acc0, _mm256_madd_epi16(
                    xv, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w0 + i))));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_madd_epi16(
                    xv, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w1 + i))));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_madd_epi16(
                    xv, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w2 + i))));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_madd_epi16(
                    xv, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i*>(w3 + i))));
    }
    const std::int32_t accs[4] = {hsum_epi32(acc0), hsum_epi32(acc1),
                                  hsum_epi32(acc2), hsum_epi32(acc3)};
    for (int t = 0; t < 4; ++t) {
      // Same expression as the scalar reference: convert, multiply, add —
      // identical IEEE operations in identical order, hence bitwise-equal.
      const float deq = scale * static_cast<float>(accs[t]);
      y[r + t] = (bias != nullptr ? bias[r + t] : 0.0f) + deq;
    }
  }
  for (; r < rows; ++r) {
    const std::int16_t* wr = w16 + static_cast<std::size_t>(r) * kp;
    __m256i acc = _mm256_setzero_si256();
    for (int i = 0; i < kp; i += 16) {
      acc = _mm256_add_epi32(
          acc, _mm256_madd_epi16(
                   _mm256_loadu_si256(
                       reinterpret_cast<const __m256i*>(x16 + i)),
                   _mm256_loadu_si256(
                       reinterpret_cast<const __m256i*>(wr + i))));
    }
    const float deq = scale * static_cast<float>(hsum_epi32(acc));
    y[r] = (bias != nullptr ? bias[r] : 0.0f) + deq;
  }
}

void int8_gemm_bias_s8(const std::int8_t* a, const std::int8_t* bt,
                       const float* bias, float* c, int m, int k, int n,
                       float scale) {
  const int kp = (k + 15) & ~15;
  g_wide_lhs.resize(static_cast<std::size_t>(m) * kp);
  g_wide_rhs.resize(static_cast<std::size_t>(n) * kp);
  widen_rows_s8_s16(a, m, k, kp, g_wide_lhs.data());
  widen_rows_s8_s16(bt, n, k, kp, g_wide_rhs.data());
  const std::int16_t* a16 = g_wide_lhs.data();
  const std::int16_t* b16 = g_wide_rhs.data();

  for (int i = 0; i < m; ++i) {
    const std::int16_t* ai = a16 + static_cast<std::size_t>(i) * kp;
    float* ci = c + static_cast<std::size_t>(i) * n;
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int16_t* b0 = b16 + static_cast<std::size_t>(j) * kp;
      const std::int16_t* b1 = b0 + kp;
      const std::int16_t* b2 = b1 + kp;
      const std::int16_t* b3 = b2 + kp;
      __m256i acc0 = _mm256_setzero_si256();
      __m256i acc1 = _mm256_setzero_si256();
      __m256i acc2 = _mm256_setzero_si256();
      __m256i acc3 = _mm256_setzero_si256();
      for (int p = 0; p < kp; p += 16) {
        const __m256i av =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ai + p));
        acc0 = _mm256_add_epi32(
            acc0, _mm256_madd_epi16(
                      av, _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(b0 + p))));
        acc1 = _mm256_add_epi32(
            acc1, _mm256_madd_epi16(
                      av, _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(b1 + p))));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      av, _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(b2 + p))));
        acc3 = _mm256_add_epi32(
            acc3, _mm256_madd_epi16(
                      av, _mm256_loadu_si256(
                              reinterpret_cast<const __m256i*>(b3 + p))));
      }
      const std::int32_t accs[4] = {hsum_epi32(acc0), hsum_epi32(acc1),
                                    hsum_epi32(acc2), hsum_epi32(acc3)};
      for (int t = 0; t < 4; ++t) {
        const float deq = scale * static_cast<float>(accs[t]);
        ci[j + t] = (bias != nullptr ? bias[j + t] : 0.0f) + deq;
      }
    }
    for (; j < n; ++j) {
      const std::int16_t* bj = b16 + static_cast<std::size_t>(j) * kp;
      __m256i acc = _mm256_setzero_si256();
      for (int p = 0; p < kp; p += 16) {
        acc = _mm256_add_epi32(
            acc, _mm256_madd_epi16(
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(ai + p)),
                     _mm256_loadu_si256(
                         reinterpret_cast<const __m256i*>(bj + p))));
      }
      const float deq = scale * static_cast<float>(hsum_epi32(acc));
      ci[j] = (bias != nullptr ? bias[j] : 0.0f) + deq;
    }
  }
}

void int8_quantize_s8(const float* x, std::size_t n, float scale,
                      std::int8_t* q) {
  const float inv = scale > 0.0f ? 1.0f / scale : 0.0f;
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256 vmax = _mm256_set1_ps(127.0f);
  const __m256 vmin = _mm256_set1_ps(-127.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Same op sequence as the scalar reference: multiply, round-to-nearest-
    // even (static mode — matches nearbyint under the untouched default FP
    // environment), clamp. The convert is exact because v is already
    // integral in [-127, 127], and the signed packs cannot saturate.
    __m256 v = _mm256_mul_ps(_mm256_loadu_ps(x + i), vinv);
    v = _mm256_round_ps(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    v = _mm256_min_ps(v, vmax);
    v = _mm256_max_ps(v, vmin);
    const __m256i vi = _mm256_cvtps_epi32(v);
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(vi),
                                        _mm256_extracti128_si256(vi, 1));
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i), p8);
  }
  for (; i < n; ++i) q[i] = quantize_one_s8(x[i], inv);
}

#else  // !M2AI_INT8_AVX2

// Generic build (compiler lacked -mavx2, or non-x86 target): the scalar
// kernels from kernels.hpp, compiled here under the same determinism pins as
// backend.cpp — bitwise-identical by construction. Runs on any CPU.

void int8_gemv_s8(const std::int8_t* w, const std::int8_t* x, const float* bias,
                  float* y, int rows, int cols, float scale) {
  gemv_s8(w, x, bias, y, rows, cols, scale);
}

void int8_gemm_bias_s8(const std::int8_t* a, const std::int8_t* bt,
                       const float* bias, float* c, int m, int k, int n,
                       float scale) {
  gemm_bias_s8(a, bt, bias, c, m, k, n, scale);
}

void int8_quantize_s8(const float* x, std::size_t n, float scale,
                      std::int8_t* q) {
  quantize_s8(x, n, scale, q);
}

#endif  // M2AI_INT8_AVX2

}  // namespace

const Backend& int8_backend() {
  // Float kernels alias the best float table the host supports — conv
  // branches, gate nonlinearities, softmax, and MUSIC stay float under int8.
  static const Backend kInt8 = [] {
    Backend b = fast_backend_supported() ? fast_backend() : reference_backend();
    b.name = "int8";
    b.gemv_s8 = &int8_gemv_s8;
    b.gemm_bias_s8 = &int8_gemm_bias_s8;
    b.quantize_s8 = &int8_quantize_s8;
    return b;
  }();
  return kInt8;
}

bool int8_backend_supported() {
#if M2AI_INT8_AVX2
  return __builtin_cpu_supports("avx2");
#else
  return true;
#endif
}

}  // namespace m2ai::kern
