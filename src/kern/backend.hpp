// Dual-mode kernel backends: one dispatch table, two implementations.
//
// The REFERENCE backend is the fixed-accumulation-order kernel set from
// kernels.hpp, compiled with the project-wide determinism flags
// (-ffp-contract=off, -fno-tree-slp-vectorize): bitwise-identical to the
// naive scalar loops at any optimization level, the default everywhere, and
// the only backend used for training/experiments that must reproduce
// checkpoints bit for bit.
//
// The FAST backend (backend_fast.cpp) is compiled in its own translation
// unit with FMA/AVX2-capable flags (project-wide flags untouched):
// vectorized + cache-blocked gemv/gemm/conv rows and a vectorized MUSIC
// noise-projection scan. Its results are epsilon-equivalent, not bitwise —
// FMA contraction and vector-lane reduction reorder the sums — which is fine
// for inference/serving and guarded by the equivalence suite
// (tests/test_kern_backend.cpp).
//
// Selection: reference by default; `M2AI_KERN_BACKEND={ref,fast}` in the
// environment or --backend on the tools overrides it. Requesting `fast` on a
// host whose CPU lacks the ISA the fast TU was compiled for falls back to
// reference (CPUID-style runtime detection, fast_backend_supported()).
// set_backend is an atomic pointer swap: call it before spawning worker
// threads; concurrent dispatch through active() is always safe.
#pragma once

#include <atomic>
#include <complex>
#include <string>

namespace m2ai::kern {

// Function-pointer table of every dispatched kernel. Signatures match the
// inline reference kernels in kernels.hpp (gemm carries the per-column bias
// of gemm_bias — the batched-inference form).
struct Backend {
  const char* name;
  void (*gemv)(const float* w, const float* x, const float* bias, float* y,
               int rows, int cols);
  void (*gemm_bias)(const float* a, const float* b, const float* bias, float* c,
                    int m, int k, int n);
  void (*conv1d_row_acc)(const float* x, int len, const float* w, int kernel,
                         int stride, int padding, float* partial, int out_len);
  void (*noise_projection)(const std::complex<double>* un, int num_noise,
                           const std::complex<double>* steer, int num_bins,
                           int n, double* denom);
};

enum class BackendKind { kReference, kFast };

const Backend& reference_backend();
// The fast table itself (AVX2/FMA when the TU was compiled with the ISA,
// otherwise a contraction-enabled generic build). Dispatch never hands this
// out unless fast_backend_supported() — use active() instead of calling
// these kernels directly on unknown hosts.
const Backend& fast_backend();
// True when the fast table's code can run on this CPU (runtime CPUID check
// against the ISA the fast TU was compiled for).
bool fast_backend_supported();

// Activates `requested` and returns the kind actually active: a fast request
// degrades to kReference when fast_backend_supported() is false.
BackendKind set_backend(BackendKind requested);
// Parses "ref"/"reference" or "fast" (throws std::invalid_argument on
// anything else) and activates it; same fallback rule as set_backend.
BackendKind set_backend_by_name(const std::string& name);
BackendKind active_backend_kind();

namespace detail {
// nullptr means "reference" so zero-initialization is a valid state and the
// hot path never depends on static-initialization order. A dynamic
// initializer in backend.cpp applies M2AI_KERN_BACKEND on program start.
extern std::atomic<const Backend*> g_active;
}  // namespace detail

// The dispatch point: one relaxed atomic load per call site.
inline const Backend& active() {
  const Backend* b = detail::g_active.load(std::memory_order_relaxed);
  return b != nullptr ? *b : reference_backend();
}

}  // namespace m2ai::kern
