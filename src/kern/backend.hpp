// Dual-mode kernel backends: one dispatch table, two implementations.
//
// The REFERENCE backend is the fixed-accumulation-order kernel set from
// kernels.hpp, compiled with the project-wide determinism flags
// (-ffp-contract=off, -fno-tree-slp-vectorize): bitwise-identical to the
// naive scalar loops at any optimization level, the default everywhere, and
// the only backend used for training/experiments that must reproduce
// checkpoints bit for bit.
//
// The FAST backend (backend_fast.cpp) is compiled in its own translation
// unit with FMA/AVX2-capable flags (project-wide flags untouched):
// vectorized + cache-blocked gemv/gemm/conv rows and a vectorized MUSIC
// noise-projection scan. Its results are epsilon-equivalent, not bitwise —
// FMA contraction and vector-lane reduction reorder the sums — which is fine
// for inference/serving and guarded by the equivalence suite
// (tests/test_kern_backend.cpp).
//
// The INT8 backend (backend_int8.cpp) adds quantized gemv_s8/gemm_bias_s8
// kernels: int32 accumulation with a single requantize-to-float epilogue.
// Because integer accumulation is exact and the epilogue is one unfused
// multiply-add, the scalar and AVX2 int8 kernels are BITWISE identical —
// the epsilon story of the fast backend only applies to its float kernels.
// The int8 table's float kernels alias the best supported float table (fast
// when the CPU allows it, reference otherwise).
//
// Selection: reference by default; `M2AI_KERN_BACKEND={ref,fast,int8}` in
// the environment or --backend on the tools overrides it. Requesting `fast`
// or `int8` on a host whose CPU lacks the ISA the TU was compiled for falls
// back to reference (CPUID-style runtime detection). set_backend is an
// atomic pointer swap: call it before spawning worker threads; concurrent
// dispatch through active() is always safe.
#pragma once

#include <atomic>
#include <complex>
#include <cstddef>
#include <cstdint>
#include <string>

namespace m2ai::kern {

// Function-pointer table of every dispatched kernel. Signatures match the
// inline reference kernels in kernels.hpp (gemm carries the per-column bias
// of gemm_bias — the batched-inference form; the *_s8 kernels take the
// combined weight*activation scale and, for gemm_bias_s8, the weight operand
// in row-major [n, k] layout).
struct Backend {
  const char* name;
  void (*gemv)(const float* w, const float* x, const float* bias, float* y,
               int rows, int cols);
  void (*gemm_bias)(const float* a, const float* b, const float* bias, float* c,
                    int m, int k, int n);
  void (*conv1d_row_acc)(const float* x, int len, const float* w, int kernel,
                         int stride, int padding, float* partial, int out_len);
  void (*noise_projection)(const std::complex<double>* un, int num_noise,
                           const std::complex<double>* steer, int num_bins,
                           int n, double* denom);
  void (*gemv_s8)(const std::int8_t* w, const std::int8_t* x, const float* bias,
                  float* y, int rows, int cols, float scale);
  void (*gemm_bias_s8)(const std::int8_t* a, const std::int8_t* bt,
                       const float* bias, float* c, int m, int k, int n,
                       float scale);
  // Symmetric activation quantization q = clamp(rne(x/scale), ±127) — the
  // per-call producer of the *_s8 operands. RNE is mode-independent in the
  // vector build and default-mode nearbyint in the scalar one, so this entry
  // is bitwise-identical across tables just like the s8 matmuls.
  void (*quantize_s8)(const float* x, std::size_t n, float scale,
                      std::int8_t* q);
};

enum class BackendKind { kReference, kFast, kInt8 };

const Backend& reference_backend();
// The fast table itself (AVX2/FMA when the TU was compiled with the ISA,
// otherwise a contraction-enabled generic build). Dispatch never hands this
// out unless fast_backend_supported() — use active() instead of calling
// these kernels directly on unknown hosts.
const Backend& fast_backend();
// True when the fast table's code can run on this CPU (runtime CPUID check
// against the ISA the fast TU was compiled for).
bool fast_backend_supported();
// The int8 table: quantized s8 kernels from backend_int8.cpp (AVX2 when the
// TU was compiled with the ISA, scalar otherwise) plus the best supported
// float kernels for everything that stays float. Use active(), not this.
const Backend& int8_backend();
// True when the int8 table's code can run on this CPU.
bool int8_backend_supported();

// Activates `requested` and returns the kind actually active: a fast/int8
// request degrades to kReference when the matching *_supported() is false.
BackendKind set_backend(BackendKind requested);
// Parses "ref"/"reference", "fast", or "int8" (throws std::invalid_argument
// on anything else) and activates it; same fallback rule as set_backend.
BackendKind set_backend_by_name(const std::string& name);
BackendKind active_backend_kind();
// Name of the table active() currently dispatches to ("ref"/"fast"/"int8").
const char* active_backend_name();

// Applies M2AI_KERN_BACKEND from the environment and returns the kind
// actually active afterwards. An unknown value logs a warning and explicitly
// activates the reference backend (never a silent typo->ref coercion that
// leaves a previously selected backend running); unset/empty leaves the
// current selection untouched. Called once before main() by a dynamic
// initializer, and directly by the regression tests.
BackendKind apply_env_backend();

namespace detail {
// nullptr means "reference" so zero-initialization is a valid state and the
// hot path never depends on static-initialization order. A dynamic
// initializer in backend.cpp applies M2AI_KERN_BACKEND on program start.
extern std::atomic<const Backend*> g_active;
// Scalar s8 kernels compiled in the determinism-pinned TU (backend.cpp).
// The ref AND fast tables point here — the fast TU's -ffp-contract=fast
// could fuse the requantize epilogue and break the s8 bitwise contract.
void ref_gemv_s8(const std::int8_t* w, const std::int8_t* x, const float* bias,
                 float* y, int rows, int cols, float scale);
void ref_gemm_bias_s8(const std::int8_t* a, const std::int8_t* bt,
                      const float* bias, float* c, int m, int k, int n,
                      float scale);
void ref_quantize_s8(const float* x, std::size_t n, float scale,
                     std::int8_t* q);
}  // namespace detail

// The dispatch point: one relaxed atomic load per call site.
inline const Backend& active() {
  const Backend* b = detail::g_active.load(std::memory_order_relaxed);
  return b != nullptr ? *b : reference_backend();
}

}  // namespace m2ai::kern
