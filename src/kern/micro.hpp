// Per-backend kernel micro-benchmark at serving-shaped inputs (LSTM-gate
// gemv, micro-batch gemm, CONV-E1 row, MUSIC scan, and the quantized s8
// variants of the matmuls). Shared by tools/m2ai_serve and tools/m2ai_bench
// so every committed bench JSON and printed summary is self-describing:
// it names the active backend and carries its kern.<backend>.<kernel>.
// ns_per_op gauges, comparable across ref/fast/int8.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "kern/backend.hpp"

namespace m2ai::kern {

struct KernMicro {
  double gemv_ns = 0.0;
  double gemm_bias_ns = 0.0;
  double conv1d_row_ns = 0.0;
  double noise_projection_ns = 0.0;
  double gemv_s8_ns = 0.0;
  double gemm_bias_s8_ns = 0.0;
};

// Times each dispatched kernel of `be` and returns ns/op per kernel.
KernMicro measure_micro(const Backend& be);

// ("kern.<backend-name>.<kernel>.ns_per_op", ns) pairs for gauge export —
// callers own the obs registry so this library does not depend on it.
std::vector<std::pair<std::string, double>> micro_gauge_items(
    const char* backend_name, const KernMicro& micro);

}  // namespace m2ai::kern
