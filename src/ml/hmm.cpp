#include "ml/hmm.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace m2ai::ml {

namespace {
constexpr double kMinVariance = 1e-4;
constexpr double kMinProb = 1e-8;
}  // namespace

GaussianHmm::GaussianHmm(int num_states, int feature_dim, std::uint64_t seed)
    : num_states_(num_states), feature_dim_(feature_dim) {
  if (num_states < 1 || feature_dim < 1) {
    throw std::invalid_argument("GaussianHmm: bad dimensions");
  }
  util::Rng rng(seed);
  const auto s = static_cast<std::size_t>(num_states);
  const auto d = static_cast<std::size_t>(feature_dim);

  // Left-to-right bias: start in early states, prefer self/next transitions.
  initial_.assign(s, 0.0);
  for (std::size_t i = 0; i < s; ++i) {
    initial_[i] = (i == 0) ? 0.7 : 0.3 / static_cast<double>(std::max<std::size_t>(s - 1, 1));
  }
  transition_.assign(s, std::vector<double>(s, 0.0));
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < s; ++j) {
      if (j == i) transition_[i][j] = 0.6;
      else if (j == (i + 1) % s) transition_[i][j] = 0.3;
      else transition_[i][j] = 0.1 / static_cast<double>(std::max<std::size_t>(s - 2, 1));
    }
    // Normalize.
    double row = 0.0;
    for (double v : transition_[i]) row += v;
    for (double& v : transition_[i]) v /= row;
  }
  mean_.assign(s, std::vector<double>(d, 0.0));
  variance_.assign(s, std::vector<double>(d, 1.0));
  for (auto& m : mean_) {
    for (auto& v : m) v = rng.normal(0.0, 0.1);
  }
}

double GaussianHmm::emission_log_prob(int s, const std::vector<float>& x) const {
  const auto ss = static_cast<std::size_t>(s);
  double lp = 0.0;
  for (std::size_t j = 0; j < x.size(); ++j) {
    const double var = variance_[ss][j];
    const double dev = x[j] - mean_[ss][j];
    lp -= 0.5 * (dev * dev / var + std::log(2.0 * M_PI * var));
  }
  return lp;
}

double GaussianHmm::forward(const FeatureSequence& seq,
                            std::vector<std::vector<double>>* alpha_out,
                            std::vector<double>* scales_out) const {
  const std::size_t t_len = seq.size();
  const auto s = static_cast<std::size_t>(num_states_);
  std::vector<std::vector<double>> alpha(t_len, std::vector<double>(s, 0.0));
  std::vector<double> scales(t_len, 0.0);

  double log_like = 0.0;
  for (std::size_t t = 0; t < t_len; ++t) {
    // Emission probabilities normalized per step for numerical stability.
    std::vector<double> logb(s);
    double max_logb = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < s; ++i) {
      logb[i] = emission_log_prob(static_cast<int>(i), seq[t]);
      max_logb = std::max(max_logb, logb[i]);
    }
    double scale = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      const double b = std::exp(logb[i] - max_logb);
      double prior;
      if (t == 0) {
        prior = initial_[i];
      } else {
        prior = 0.0;
        for (std::size_t j = 0; j < s; ++j) prior += alpha[t - 1][j] * transition_[j][i];
      }
      alpha[t][i] = prior * b;
      scale += alpha[t][i];
    }
    scale = std::max(scale, kMinProb);
    for (std::size_t i = 0; i < s; ++i) alpha[t][i] /= scale;
    scales[t] = scale;
    log_like += std::log(scale) + max_logb;
  }
  if (alpha_out) *alpha_out = std::move(alpha);
  if (scales_out) *scales_out = std::move(scales);
  return log_like;
}

double GaussianHmm::log_likelihood(const FeatureSequence& sequence) const {
  if (sequence.empty()) return -std::numeric_limits<double>::infinity();
  return forward(sequence, nullptr, nullptr);
}

void GaussianHmm::fit(const std::vector<FeatureSequence>& sequences, int iterations) {
  if (sequences.empty()) throw std::invalid_argument("GaussianHmm: no sequences");
  const auto s = static_cast<std::size_t>(num_states_);
  const auto d = static_cast<std::size_t>(feature_dim_);

  // Seed emissions from the data: segment each sequence into S chunks and
  // average (the left-to-right prior).
  {
    std::vector<std::vector<double>> sum(s, std::vector<double>(d, 0.0));
    std::vector<std::vector<double>> sum2(s, std::vector<double>(d, 0.0));
    std::vector<double> count(s, 0.0);
    for (const auto& seq : sequences) {
      for (std::size_t t = 0; t < seq.size(); ++t) {
        const std::size_t state =
            std::min(s - 1, t * s / std::max<std::size_t>(seq.size(), 1));
        for (std::size_t j = 0; j < d; ++j) {
          sum[state][j] += seq[t][j];
          sum2[state][j] += static_cast<double>(seq[t][j]) * seq[t][j];
        }
        count[state] += 1.0;
      }
    }
    for (std::size_t i = 0; i < s; ++i) {
      if (count[i] < 1.0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        mean_[i][j] = sum[i][j] / count[i];
        variance_[i][j] =
            std::max(kMinVariance, sum2[i][j] / count[i] - mean_[i][j] * mean_[i][j]);
      }
    }
  }

  for (int iter = 0; iter < iterations; ++iter) {
    std::vector<double> new_initial(s, kMinProb);
    std::vector<std::vector<double>> trans_num(s, std::vector<double>(s, kMinProb));
    std::vector<double> trans_den(s, kMinProb * static_cast<double>(num_states_));
    std::vector<std::vector<double>> mean_num(s, std::vector<double>(d, 0.0));
    std::vector<std::vector<double>> var_num(s, std::vector<double>(d, 0.0));
    std::vector<double> gamma_sum(s, kMinProb);

    for (const auto& seq : sequences) {
      if (seq.empty()) continue;
      const std::size_t t_len = seq.size();
      std::vector<std::vector<double>> alpha;
      std::vector<double> scales;
      forward(seq, &alpha, &scales);

      // Scaled backward pass.
      std::vector<std::vector<double>> beta(t_len, std::vector<double>(s, 0.0));
      for (std::size_t i = 0; i < s; ++i) beta[t_len - 1][i] = 1.0;
      for (std::size_t t = t_len - 1; t-- > 0;) {
        std::vector<double> b_next(s);
        double max_logb = -std::numeric_limits<double>::infinity();
        std::vector<double> logb(s);
        for (std::size_t i = 0; i < s; ++i) {
          logb[i] = emission_log_prob(static_cast<int>(i), seq[t + 1]);
          max_logb = std::max(max_logb, logb[i]);
        }
        for (std::size_t i = 0; i < s; ++i) b_next[i] = std::exp(logb[i] - max_logb);
        double norm = 0.0;
        for (std::size_t i = 0; i < s; ++i) {
          double acc = 0.0;
          for (std::size_t j = 0; j < s; ++j) {
            acc += transition_[i][j] * b_next[j] * beta[t + 1][j];
          }
          beta[t][i] = acc;
          norm = std::max(norm, acc);
        }
        norm = std::max(norm, kMinProb);
        for (std::size_t i = 0; i < s; ++i) beta[t][i] /= norm;
      }

      // Accumulate statistics.
      for (std::size_t t = 0; t < t_len; ++t) {
        std::vector<double> gamma(s);
        double z = 0.0;
        for (std::size_t i = 0; i < s; ++i) {
          gamma[i] = alpha[t][i] * beta[t][i];
          z += gamma[i];
        }
        z = std::max(z, kMinProb);
        for (std::size_t i = 0; i < s; ++i) {
          gamma[i] /= z;
          gamma_sum[i] += gamma[i];
          if (t == 0) new_initial[i] += gamma[i];
          for (std::size_t j = 0; j < d; ++j) {
            mean_num[i][j] += gamma[i] * seq[t][j];
            const double dev = seq[t][j] - mean_[i][j];
            var_num[i][j] += gamma[i] * dev * dev;
          }
        }
        if (t + 1 < t_len) {
          // Xi(i, j) proportional to alpha_t(i) a_ij b_j(o_{t+1}) beta_{t+1}(j).
          std::vector<double> logb(s);
          double max_logb = -std::numeric_limits<double>::infinity();
          for (std::size_t j = 0; j < s; ++j) {
            logb[j] = emission_log_prob(static_cast<int>(j), seq[t + 1]);
            max_logb = std::max(max_logb, logb[j]);
          }
          double xi_z = 0.0;
          std::vector<std::vector<double>> xi(s, std::vector<double>(s, 0.0));
          for (std::size_t i = 0; i < s; ++i) {
            for (std::size_t j = 0; j < s; ++j) {
              xi[i][j] = alpha[t][i] * transition_[i][j] *
                         std::exp(logb[j] - max_logb) * beta[t + 1][j];
              xi_z += xi[i][j];
            }
          }
          xi_z = std::max(xi_z, kMinProb);
          for (std::size_t i = 0; i < s; ++i) {
            for (std::size_t j = 0; j < s; ++j) {
              trans_num[i][j] += xi[i][j] / xi_z;
              trans_den[i] += xi[i][j] / xi_z;
            }
          }
        }
      }
    }

    // M step.
    double init_z = 0.0;
    for (double v : new_initial) init_z += v;
    for (std::size_t i = 0; i < s; ++i) {
      initial_[i] = new_initial[i] / init_z;
      for (std::size_t j = 0; j < s; ++j) {
        transition_[i][j] = trans_num[i][j] / trans_den[i];
      }
      for (std::size_t j = 0; j < d; ++j) {
        mean_[i][j] = mean_num[i][j] / gamma_sum[i];
        variance_[i][j] = std::max(kMinVariance, var_num[i][j] / gamma_sum[i]);
      }
    }
  }
}

void HmmSequenceClassifier::fit(const std::vector<FeatureSequence>& sequences,
                                const std::vector<int>& labels, int num_classes) {
  if (sequences.empty() || sequences.size() != labels.size()) {
    throw std::invalid_argument("HmmSequenceClassifier: bad training data");
  }
  const int dim = static_cast<int>(sequences.front().front().size());
  models_.clear();
  for (int c = 0; c < num_classes; ++c) {
    std::vector<FeatureSequence> members;
    for (std::size_t i = 0; i < sequences.size(); ++i) {
      if (labels[i] == c) members.push_back(sequences[i]);
    }
    GaussianHmm model(num_states_, dim, seed_ + static_cast<std::uint64_t>(c));
    if (!members.empty()) model.fit(members, iterations_);
    models_.push_back(std::move(model));
  }
}

int HmmSequenceClassifier::predict(const FeatureSequence& sequence) const {
  if (models_.empty()) throw std::logic_error("HmmSequenceClassifier: not fitted");
  int best = 0;
  double best_ll = -std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < models_.size(); ++c) {
    const double ll = models_[c].log_likelihood(sequence);
    if (ll > best_ll) {
      best_ll = ll;
      best = static_cast<int>(c);
    }
  }
  return best;
}

double HmmSequenceClassifier::accuracy(const std::vector<FeatureSequence>& sequences,
                                       const std::vector<int>& labels) const {
  if (sequences.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    if (predict(sequences[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(sequences.size());
}

}  // namespace m2ai::ml
