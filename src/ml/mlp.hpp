// Multi-layer perceptron baseline (Fig. 9's "Neural Net"): one hidden ReLU
// layer trained per-frame with Adam, built on the nn library.
#pragma once

#include <memory>

#include "ml/dataset.hpp"
#include "nn/sequential.hpp"

namespace m2ai::ml {

class MlpClassifier : public Classifier {
 public:
  explicit MlpClassifier(int hidden = 64, int epochs = 25, double lr = 1e-3,
                         std::uint64_t seed = 53)
      : hidden_(hidden), epochs_(epochs), lr_(lr), seed_(seed) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "Neural Net (MLP)"; }

 private:
  int hidden_;
  int epochs_;
  double lr_;
  std::uint64_t seed_;
  int num_classes_ = 0;
  std::unique_ptr<nn::Sequential> net_;
};

}  // namespace m2ai::ml
