#include "ml/naive_bayes.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::ml {

void GaussianNaiveBayes::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("GaussianNaiveBayes: empty train set");
  num_classes_ = train.num_classes;
  const std::size_t d = train.dim();

  std::vector<std::size_t> count(static_cast<std::size_t>(num_classes_), 0);
  mean_.assign(static_cast<std::size_t>(num_classes_), std::vector<double>(d, 0.0));
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto c = static_cast<std::size_t>(train.labels[i]);
    ++count[c];
    for (std::size_t j = 0; j < d; ++j) mean_[c][j] += train.features[i][j];
  }
  for (std::size_t c = 0; c < mean_.size(); ++c) {
    for (auto& m : mean_[c]) m /= std::max<std::size_t>(count[c], 1);
  }

  std::vector<std::vector<double>> var(static_cast<std::size_t>(num_classes_),
                                       std::vector<double>(d, 0.0));
  double max_var = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto c = static_cast<std::size_t>(train.labels[i]);
    for (std::size_t j = 0; j < d; ++j) {
      const double dev = train.features[i][j] - mean_[c][j];
      var[c][j] += dev * dev;
    }
  }
  for (std::size_t c = 0; c < var.size(); ++c) {
    for (std::size_t j = 0; j < d; ++j) {
      var[c][j] /= std::max<std::size_t>(count[c], 1);
      max_var = std::max(max_var, var[c][j]);
    }
  }
  const double eps = var_smoothing_ * std::max(max_var, 1e-9);

  inv_var_.assign(static_cast<std::size_t>(num_classes_), std::vector<double>(d, 0.0));
  log_var_.assign(static_cast<std::size_t>(num_classes_), std::vector<double>(d, 0.0));
  log_prior_.assign(static_cast<std::size_t>(num_classes_), -1e18);
  for (int c = 0; c < num_classes_; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    if (count[cc] == 0) continue;
    log_prior_[cc] = std::log(static_cast<double>(count[cc]) /
                              static_cast<double>(train.size()));
    for (std::size_t j = 0; j < d; ++j) {
      const double v = var[cc][j] + eps;
      inv_var_[cc][j] = 1.0 / v;
      log_var_[cc][j] = std::log(v);
    }
  }
}

int GaussianNaiveBayes::predict(const std::vector<float>& x) const {
  if (mean_.empty()) throw std::logic_error("GaussianNaiveBayes: not fitted");
  int best = 0;
  double best_ll = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    double ll = log_prior_[cc];
    if (ll <= -1e17) continue;
    for (std::size_t j = 0; j < x.size(); ++j) {
      const double dev = x[j] - mean_[cc][j];
      ll -= 0.5 * (dev * dev * inv_var_[cc][j] + log_var_[cc][j]);
    }
    if (ll > best_ll) {
      best_ll = ll;
      best = c;
    }
  }
  return best;
}

}  // namespace m2ai::ml
