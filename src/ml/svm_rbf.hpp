// One-vs-rest RBF-kernel SVM trained with kernelized Pegasos: the model is
// a sparse combination of training points whose coefficients grow when the
// point violates the margin. Suited to the few-thousand-frame training sets
// used by the Fig. 9 baselines.
#pragma once

#include "ml/dataset.hpp"

namespace m2ai::ml {

class RbfSvm : public Classifier {
 public:
  // gamma <= 0 selects 1/(dim * feature variance), scikit-style "scale".
  explicit RbfSvm(double lambda = 1e-3, double gamma = -1.0, int epochs = 8,
                  std::uint64_t seed = 23)
      : lambda_(lambda), gamma_(gamma), epochs_(epochs), seed_(seed) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "RBF SVM"; }

 private:
  double kernel(const std::vector<float>& a, const std::vector<float>& b) const;
  double decision(const std::vector<float>& x, int c) const;

  double lambda_;
  double gamma_;
  int epochs_;
  std::uint64_t seed_;
  int num_classes_ = 0;
  Dataset support_;                       // all training points
  std::vector<std::vector<double>> alpha_;  // [class][train index]
  long steps_ = 1;
};

}  // namespace m2ai::ml
