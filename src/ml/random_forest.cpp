#include "ml/random_forest.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::ml {

void RandomForest::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("RandomForest: empty train set");
  num_classes_ = train.num_classes;
  trees_.clear();
  util::Rng rng(seed_);
  const int max_features =
      std::max(1, static_cast<int>(std::sqrt(static_cast<double>(train.dim()))));

  for (int t = 0; t < num_trees_; ++t) {
    // Bootstrap sample.
    Dataset boot;
    boot.num_classes = train.num_classes;
    for (std::size_t i = 0; i < train.size(); ++i) {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::uint64_t>(train.size())));
      boot.add(train.features[pick], train.labels[pick]);
    }
    TreeOptions opts;
    opts.max_depth = max_depth_;
    opts.min_samples_split = 4;
    opts.max_features = max_features;
    opts.seed = rng.next_u64();
    auto tree = std::make_unique<DecisionTree>(opts);
    tree->fit(boot);
    trees_.push_back(std::move(tree));
  }
}

int RandomForest::predict(const std::vector<float>& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  std::vector<int> votes;
  votes.reserve(trees_.size());
  for (const auto& tree : trees_) votes.push_back(tree->predict(x));
  return majority_vote(votes, num_classes_);
}

}  // namespace m2ai::ml
