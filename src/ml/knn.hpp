// k-Nearest Neighbors (Euclidean, majority vote among the k closest).
#pragma once

#include "ml/dataset.hpp"

namespace m2ai::ml {

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(int k = 5) : k_(k) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "Nearest Neighbors"; }

 private:
  int k_;
  Dataset train_;
};

}  // namespace m2ai::ml
