// Multi-class AdaBoost (SAMME) over shallow decision trees.
#pragma once

#include <memory>

#include "ml/decision_tree.hpp"

namespace m2ai::ml {

class AdaBoost : public Classifier {
 public:
  explicit AdaBoost(int num_rounds = 40, int stump_depth = 2,
                    std::uint64_t seed = 47)
      : num_rounds_(num_rounds), stump_depth_(stump_depth), seed_(seed) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "AdaBoost"; }

 private:
  int num_rounds_;
  int stump_depth_;
  std::uint64_t seed_;
  int num_classes_ = 0;
  std::vector<std::unique_ptr<DecisionTree>> learners_;
  std::vector<double> alphas_;
};

}  // namespace m2ai::ml
