// Gaussian process classifier, one-vs-rest with an RBF kernel.
//
// Exact GP classification needs a non-Gaussian likelihood (Laplace/EP); for
// the Fig. 9 baseline comparison we use the standard label-regression
// approximation: GP regression on +-1 targets per class, predicting the
// class with the largest posterior mean. The kernel matrix solve is exact
// (Cholesky), so this inherits the O(n^3) cost that makes GPs practical
// only on the subsampled frame sets the experiment harness feeds baselines.
#pragma once

#include "ml/dataset.hpp"

namespace m2ai::ml {

class GaussianProcessClassifier : public Classifier {
 public:
  // gamma <= 0 selects 1/(dim * feature variance). `noise` is the diagonal
  // observation noise added to the kernel matrix.
  explicit GaussianProcessClassifier(double gamma = -1.0, double noise = 1e-2)
      : gamma_(gamma), noise_(noise) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "Gaussian Process"; }

 private:
  double kernel(const std::vector<float>& a, const std::vector<float>& b) const;

  double gamma_;
  double noise_;
  int num_classes_ = 0;
  Dataset train_;
  // alpha_[c] = (K + noise I)^-1 y_c, y_c in {-1,+1}.
  std::vector<std::vector<double>> alpha_;
};

}  // namespace m2ai::ml
