// Random forest: bagged CART trees over bootstrap samples with sqrt(d)
// feature subsampling per split.
#pragma once

#include <memory>

#include "ml/decision_tree.hpp"

namespace m2ai::ml {

class RandomForest : public Classifier {
 public:
  explicit RandomForest(int num_trees = 30, int max_depth = 14,
                        std::uint64_t seed = 41)
      : num_trees_(num_trees), max_depth_(max_depth), seed_(seed) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "Random Forest"; }

 private:
  int num_trees_;
  int max_depth_;
  std::uint64_t seed_;
  int num_classes_ = 0;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
};

}  // namespace m2ai::ml
