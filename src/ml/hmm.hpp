// Hidden Markov Model sequence classifier — the tool prior RFID activity
// work leaned on (FEMO [10], discussed in Secs. I and VIII of the paper).
// One left-to-right-initialized Gaussian HMM per activity class, trained
// with Baum-Welch (scaled forward-backward); a sequence is classified by
// the class whose model gives the highest log-likelihood.
//
// This is the eleventh baseline of the Fig. 9 comparison: unlike the
// frame-level classifiers it DOES see temporal structure, but with
// hand-fixed emission families and no learned feature extraction — exactly
// the limitation the paper argues makes HMMs insufficient here.
#pragma once

#include <vector>

#include "util/rng.hpp"

namespace m2ai::ml {

// Feature sequence: seq[t] is the frame-feature vector at step t.
using FeatureSequence = std::vector<std::vector<float>>;

// A single Gaussian HMM with diagonal covariances.
class GaussianHmm {
 public:
  GaussianHmm(int num_states, int feature_dim, std::uint64_t seed);

  // Baum-Welch over the given sequences.
  void fit(const std::vector<FeatureSequence>& sequences, int iterations = 12);

  // Scaled log-likelihood of one sequence (-inf for empty input).
  double log_likelihood(const FeatureSequence& sequence) const;

  int num_states() const { return num_states_; }

 private:
  // Emission log-density of observation `x` under state `s`.
  double emission_log_prob(int s, const std::vector<float>& x) const;
  // Scaled forward pass; returns per-step scale factors (their log-sum is
  // the sequence log-likelihood) and fills alpha (normalized).
  double forward(const FeatureSequence& seq, std::vector<std::vector<double>>* alpha,
                 std::vector<double>* scales) const;

  int num_states_;
  int feature_dim_;
  std::vector<double> initial_;                    // [S]
  std::vector<std::vector<double>> transition_;    // [S][S]
  std::vector<std::vector<double>> mean_;          // [S][D]
  std::vector<std::vector<double>> variance_;      // [S][D]
};

// One-vs-rest bank of per-class HMMs.
class HmmSequenceClassifier {
 public:
  explicit HmmSequenceClassifier(int num_states = 4, int iterations = 12,
                                 std::uint64_t seed = 61)
      : num_states_(num_states), iterations_(iterations), seed_(seed) {}

  void fit(const std::vector<FeatureSequence>& sequences,
           const std::vector<int>& labels, int num_classes);

  int predict(const FeatureSequence& sequence) const;

  double accuracy(const std::vector<FeatureSequence>& sequences,
                  const std::vector<int>& labels) const;

  const char* name() const { return "HMM (Gaussian)"; }

 private:
  int num_states_;
  int iterations_;
  std::uint64_t seed_;
  std::vector<GaussianHmm> models_;  // one per class
};

}  // namespace m2ai::ml
