#include "ml/svm_linear.hpp"

#include <numeric>
#include <stdexcept>

namespace m2ai::ml {

void LinearSvm::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("LinearSvm: empty train set");
  num_classes_ = train.num_classes;
  dim_ = train.dim();
  weights_.assign(static_cast<std::size_t>(num_classes_), std::vector<double>(dim_, 0.0));
  biases_.assign(static_cast<std::size_t>(num_classes_), 0.0);

  util::Rng rng(seed_);
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  long t = 0;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      ++t;
      const double eta = 1.0 / (lambda_ * static_cast<double>(t));
      const auto& x = train.features[idx];
      for (int c = 0; c < num_classes_; ++c) {
        auto& w = weights_[static_cast<std::size_t>(c)];
        const double y = (train.labels[idx] == c) ? 1.0 : -1.0;
        double margin = biases_[static_cast<std::size_t>(c)];
        for (std::size_t j = 0; j < dim_; ++j) margin += w[j] * x[j];
        margin *= y;
        // Pegasos step: shrink, then add the subgradient if inside margin.
        const double shrink = 1.0 - eta * lambda_;
        for (std::size_t j = 0; j < dim_; ++j) w[j] *= shrink;
        if (margin < 1.0) {
          for (std::size_t j = 0; j < dim_; ++j) w[j] += eta * y * x[j];
          biases_[static_cast<std::size_t>(c)] += eta * y;
        }
      }
    }
  }
}

double LinearSvm::score(const std::vector<float>& x, int c) const {
  const auto& w = weights_.at(static_cast<std::size_t>(c));
  double s = biases_[static_cast<std::size_t>(c)];
  for (std::size_t j = 0; j < dim_; ++j) s += w[j] * x[j];
  return s;
}

int LinearSvm::predict(const std::vector<float>& x) const {
  int best = 0;
  double best_score = score(x, 0);
  for (int c = 1; c < num_classes_; ++c) {
    const double s = score(x, c);
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

}  // namespace m2ai::ml
