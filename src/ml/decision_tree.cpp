#include "ml/decision_tree.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace m2ai::ml {

namespace {

// Weighted majority label among `indices`.
int weighted_majority(const Dataset& data, const std::vector<double>& weights,
                      const std::vector<std::size_t>& indices, int num_classes) {
  std::vector<double> mass(static_cast<std::size_t>(num_classes), 0.0);
  for (std::size_t i : indices) mass[static_cast<std::size_t>(data.labels[i])] += weights[i];
  int best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (mass[static_cast<std::size_t>(c)] > mass[static_cast<std::size_t>(best)]) best = c;
  }
  return best;
}

double gini(const std::vector<double>& mass, double total) {
  if (total <= 0.0) return 0.0;
  double g = 1.0;
  for (double m : mass) {
    const double p = m / total;
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::fit(const Dataset& train) {
  const std::vector<double> uniform(train.size(), 1.0 / static_cast<double>(train.size()));
  fit_weighted(train, uniform);
}

void DecisionTree::fit_weighted(const Dataset& train, const std::vector<double>& weights) {
  if (train.size() == 0) throw std::invalid_argument("DecisionTree: empty train set");
  if (weights.size() != train.size()) {
    throw std::invalid_argument("DecisionTree: weight/example count mismatch");
  }
  num_classes_ = train.num_classes;
  std::vector<std::size_t> indices(train.size());
  std::iota(indices.begin(), indices.end(), 0);
  util::Rng rng(options_.seed);
  root_ = build(train, weights, indices, 0, rng);
}

std::unique_ptr<DecisionTree::Node> DecisionTree::build(
    const Dataset& data, const std::vector<double>& weights,
    const std::vector<std::size_t>& indices, int depth, util::Rng& rng) const {
  auto node = std::make_unique<Node>();
  node->label = weighted_majority(data, weights, indices, num_classes_);

  // Stop: depth, size, or purity.
  bool pure = true;
  for (std::size_t i : indices) {
    if (data.labels[i] != data.labels[indices.front()]) {
      pure = false;
      break;
    }
  }
  if (pure || depth >= options_.max_depth ||
      static_cast<int>(indices.size()) < options_.min_samples_split) {
    return node;
  }

  const int dim = static_cast<int>(data.dim());
  // Candidate feature subset.
  std::vector<int> feats(static_cast<std::size_t>(dim));
  std::iota(feats.begin(), feats.end(), 0);
  int num_feats = options_.max_features > 0 ? std::min(options_.max_features, dim) : dim;
  if (num_feats < dim) rng.shuffle(feats);

  double best_score = 1e18;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, std::size_t>> sorted;
  sorted.reserve(indices.size());
  for (int fi = 0; fi < num_feats; ++fi) {
    const int f = feats[static_cast<std::size_t>(fi)];
    sorted.clear();
    for (std::size_t i : indices) sorted.emplace_back(data.features[i][static_cast<std::size_t>(f)], i);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    // Sweep split points, maintaining left/right class mass.
    std::vector<double> left_mass(static_cast<std::size_t>(num_classes_), 0.0);
    std::vector<double> right_mass(static_cast<std::size_t>(num_classes_), 0.0);
    double left_total = 0.0, right_total = 0.0;
    for (const auto& [v, i] : sorted) {
      right_mass[static_cast<std::size_t>(data.labels[i])] += weights[i];
      right_total += weights[i];
    }
    for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
      const std::size_t i = sorted[k].second;
      const double w = weights[i];
      left_mass[static_cast<std::size_t>(data.labels[i])] += w;
      left_total += w;
      right_mass[static_cast<std::size_t>(data.labels[i])] -= w;
      right_total -= w;
      if (sorted[k].first == sorted[k + 1].first) continue;  // no split between ties
      const double score =
          left_total * gini(left_mass, left_total) + right_total * gini(right_mass, right_total);
      if (score < best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5f * (sorted[k].first + sorted[k + 1].first);
      }
    }
  }

  if (best_feature < 0) return node;  // all candidate features constant

  std::vector<std::size_t> left_idx, right_idx;
  for (std::size_t i : indices) {
    if (data.features[i][static_cast<std::size_t>(best_feature)] <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node;

  node->feature = best_feature;
  node->threshold = best_threshold;
  node->left = build(data, weights, left_idx, depth + 1, rng);
  node->right = build(data, weights, right_idx, depth + 1, rng);
  return node;
}

int DecisionTree::predict(const std::vector<float>& x) const {
  if (!root_) throw std::logic_error("DecisionTree: not fitted");
  const Node* node = root_.get();
  while (node->feature >= 0) {
    node = (x[static_cast<std::size_t>(node->feature)] <= node->threshold)
               ? node->left.get()
               : node->right.get();
  }
  return node->label;
}

int DecisionTree::node_depth(const Node* node) {
  if (!node || node->feature < 0) return 0;
  return 1 + std::max(node_depth(node->left.get()), node_depth(node->right.get()));
}

int DecisionTree::depth() const { return node_depth(root_.get()); }

}  // namespace m2ai::ml
