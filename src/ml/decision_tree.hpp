// CART decision tree (Gini impurity, axis-aligned splits) — also the base
// learner for the random forest and, in stump form, AdaBoost.
#pragma once

#include <memory>

#include "ml/dataset.hpp"

namespace m2ai::ml {

struct TreeOptions {
  int max_depth = 12;
  int min_samples_split = 4;
  // Features examined per split; <= 0 means all (set to sqrt(d) by forests).
  int max_features = -1;
  std::uint64_t seed = 31;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  void fit(const Dataset& train) override;
  // Weighted fit used by AdaBoost; `weights` must sum to ~1.
  void fit_weighted(const Dataset& train, const std::vector<double>& weights);
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "Decision Tree"; }

  int depth() const;

 private:
  struct Node {
    int feature = -1;           // -1 for leaves
    float threshold = 0.0f;
    int label = 0;              // leaf prediction
    std::unique_ptr<Node> left;   // feature <= threshold
    std::unique_ptr<Node> right;  // feature  > threshold
  };

  std::unique_ptr<Node> build(const Dataset& data,
                              const std::vector<double>& weights,
                              const std::vector<std::size_t>& indices, int depth,
                              util::Rng& rng) const;
  static int node_depth(const Node* node);

  TreeOptions options_;
  std::unique_ptr<Node> root_;
  int num_classes_ = 0;
};

}  // namespace m2ai::ml
