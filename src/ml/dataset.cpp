#include "ml/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace m2ai::ml {

void Dataset::add(std::vector<float> x, int y) {
  if (!features.empty() && x.size() != features.front().size()) {
    throw std::invalid_argument("Dataset::add: inconsistent feature dimension");
  }
  features.push_back(std::move(x));
  labels.push_back(y);
  num_classes = std::max(num_classes, y + 1);
}

Dataset Dataset::shuffled(util::Rng& rng) const {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Dataset out;
  out.num_classes = num_classes;
  for (std::size_t i : order) out.add(features[i], labels[i]);
  return out;
}

Dataset Dataset::subsample(std::size_t max_examples, util::Rng& rng) const {
  if (size() <= max_examples) return *this;
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Dataset out;
  out.num_classes = num_classes;
  for (std::size_t i = 0; i < max_examples; ++i) {
    out.add(features[order[i]], labels[order[i]]);
  }
  return out;
}

void StandardScaler::fit(const Dataset& data) {
  if (data.size() == 0) throw std::invalid_argument("StandardScaler: empty dataset");
  const std::size_t d = data.dim();
  mean_.assign(d, 0.0f);
  inv_std_.assign(d, 1.0f);
  for (const auto& x : data.features) {
    for (std::size_t j = 0; j < d; ++j) mean_[j] += x[j];
  }
  for (auto& m : mean_) m /= static_cast<float>(data.size());
  std::vector<double> var(d, 0.0);
  for (const auto& x : data.features) {
    for (std::size_t j = 0; j < d; ++j) {
      const double dev = x[j] - mean_[j];
      var[j] += dev * dev;
    }
  }
  for (std::size_t j = 0; j < d; ++j) {
    const double s = std::sqrt(var[j] / static_cast<double>(data.size()));
    inv_std_[j] = s > 1e-8 ? static_cast<float>(1.0 / s) : 1.0f;
  }
}

std::vector<float> StandardScaler::transform(const std::vector<float>& x) const {
  std::vector<float> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) out[j] = (x[j] - mean_[j]) * inv_std_[j];
  return out;
}

Dataset StandardScaler::transform(const Dataset& data) const {
  Dataset out;
  out.num_classes = data.num_classes;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.add(transform(data.features[i]), data.labels[i]);
  }
  return out;
}

double Classifier::accuracy(const Dataset& test) const {
  if (test.size() == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (predict(test.features[i]) == test.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

int majority_vote(const std::vector<int>& votes, int num_classes) {
  std::vector<int> counts(static_cast<std::size_t>(std::max(num_classes, 1)), 0);
  for (int v : votes) {
    if (v >= 0 && v < num_classes) ++counts[static_cast<std::size_t>(v)];
  }
  int best = 0;
  for (int c = 1; c < num_classes; ++c) {
    if (counts[static_cast<std::size_t>(c)] > counts[static_cast<std::size_t>(best)]) {
      best = c;
    }
  }
  return best;
}

}  // namespace m2ai::ml
