// Gaussian naive Bayes ("Bayesian Net" in Fig. 9): per-class independent
// Gaussians per feature with variance smoothing.
#pragma once

#include "ml/dataset.hpp"

namespace m2ai::ml {

class GaussianNaiveBayes : public Classifier {
 public:
  explicit GaussianNaiveBayes(double var_smoothing = 1e-6)
      : var_smoothing_(var_smoothing) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "Naive Bayes"; }

 private:
  double var_smoothing_;
  int num_classes_ = 0;
  std::vector<double> log_prior_;
  std::vector<std::vector<double>> mean_;     // [class][feature]
  std::vector<std::vector<double>> inv_var_;  // [class][feature]
  std::vector<std::vector<double>> log_var_;  // [class][feature]
};

}  // namespace m2ai::ml
