// Quadratic Discriminant Analysis with shrinkage-regularized per-class
// covariances (needed because spectral frame features are high-dimensional
// relative to the per-class sample count).
#pragma once

#include "ml/dataset.hpp"

namespace m2ai::ml {

class Qda : public Classifier {
 public:
  // `shrinkage` blends the full covariance toward its diagonal.
  explicit Qda(double shrinkage = 0.2, double ridge = 1e-4)
      : shrinkage_(shrinkage), ridge_(ridge) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "QDA"; }

 private:
  double shrinkage_;
  double ridge_;
  int num_classes_ = 0;
  std::size_t dim_ = 0;
  std::vector<double> log_prior_;
  std::vector<std::vector<double>> mean_;      // [class][feature]
  std::vector<std::vector<double>> chol_;      // [class][d*d] Cholesky factor
  std::vector<double> log_det_;                // [class]
};

}  // namespace m2ai::ml
