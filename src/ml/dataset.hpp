// Feature-vector dataset and the common classifier interface shared by the
// ten conventional baselines of Fig. 9.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace m2ai::ml {

struct Dataset {
  std::vector<std::vector<float>> features;
  std::vector<int> labels;
  int num_classes = 0;

  std::size_t size() const { return features.size(); }
  std::size_t dim() const { return features.empty() ? 0 : features.front().size(); }
  void add(std::vector<float> x, int y);
  // Deterministic shuffled copy.
  Dataset shuffled(util::Rng& rng) const;
  // At most `max_examples`, sampled without replacement.
  Dataset subsample(std::size_t max_examples, util::Rng& rng) const;
};

// Z-score feature scaling fit on train, applied to both splits. Features
// with zero variance pass through unchanged.
class StandardScaler {
 public:
  void fit(const Dataset& data);
  std::vector<float> transform(const std::vector<float>& x) const;
  Dataset transform(const Dataset& data) const;

 private:
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

class Classifier {
 public:
  virtual ~Classifier() = default;
  virtual void fit(const Dataset& train) = 0;
  virtual int predict(const std::vector<float>& x) const = 0;
  virtual std::string name() const = 0;

  // Fraction of correctly classified examples.
  double accuracy(const Dataset& test) const;
};

// Majority vote over per-frame predictions; ties break toward the smaller
// label (deterministic).
int majority_vote(const std::vector<int>& votes, int num_classes);

}  // namespace m2ai::ml
