#include "ml/qda.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/linalg.hpp"

namespace m2ai::ml {

void Qda::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("Qda: empty train set");
  num_classes_ = train.num_classes;
  dim_ = train.dim();
  const std::size_t d = dim_;

  mean_.assign(static_cast<std::size_t>(num_classes_), std::vector<double>(d, 0.0));
  chol_.assign(static_cast<std::size_t>(num_classes_), {});
  log_det_.assign(static_cast<std::size_t>(num_classes_), 0.0);
  log_prior_.assign(static_cast<std::size_t>(num_classes_), -1e18);

  std::vector<std::vector<std::size_t>> members(static_cast<std::size_t>(num_classes_));
  for (std::size_t i = 0; i < train.size(); ++i) {
    members[static_cast<std::size_t>(train.labels[i])].push_back(i);
  }

  for (int c = 0; c < num_classes_; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    const auto& idx = members[cc];
    if (idx.empty()) continue;
    log_prior_[cc] = std::log(static_cast<double>(idx.size()) /
                              static_cast<double>(train.size()));
    for (std::size_t i : idx) {
      for (std::size_t j = 0; j < d; ++j) mean_[cc][j] += train.features[i][j];
    }
    for (auto& m : mean_[cc]) m /= static_cast<double>(idx.size());

    std::vector<double> cov(d * d, 0.0);
    for (std::size_t i : idx) {
      for (std::size_t a = 0; a < d; ++a) {
        const double da = train.features[i][a] - mean_[cc][a];
        for (std::size_t b = a; b < d; ++b) {
          cov[a * d + b] += da * (train.features[i][b] - mean_[cc][b]);
        }
      }
    }
    const double denom = std::max<double>(static_cast<double>(idx.size()) - 1.0, 1.0);
    double avg_diag = 0.0;
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = a; b < d; ++b) {
        cov[a * d + b] /= denom;
        cov[b * d + a] = cov[a * d + b];
      }
      avg_diag += cov[a * d + a];
    }
    avg_diag /= static_cast<double>(d);

    // Shrink off-diagonals and add ridge.
    for (std::size_t a = 0; a < d; ++a) {
      for (std::size_t b = 0; b < d; ++b) {
        if (a != b) cov[a * d + b] *= (1.0 - shrinkage_);
      }
      cov[a * d + a] += ridge_ * std::max(avg_diag, 1e-9);
    }

    chol_[cc] = robust_cholesky(std::move(cov), d);
    log_det_[cc] = cholesky_log_det(chol_[cc], d);
  }
}

int Qda::predict(const std::vector<float>& x) const {
  if (mean_.empty()) throw std::logic_error("Qda: not fitted");
  int best = 0;
  double best_score = -1e300;
  std::vector<double> dev(dim_);
  for (int c = 0; c < num_classes_; ++c) {
    const auto cc = static_cast<std::size_t>(c);
    if (log_prior_[cc] <= -1e17 || chol_[cc].empty()) continue;
    for (std::size_t j = 0; j < dim_; ++j) dev[j] = x[j] - mean_[cc][j];
    const std::vector<double> solved = cholesky_solve(chol_[cc], dim_, dev);
    double maha = 0.0;
    for (std::size_t j = 0; j < dim_; ++j) maha += dev[j] * solved[j];
    const double score = log_prior_[cc] - 0.5 * (maha + log_det_[cc]);
    if (score > best_score) {
      best_score = score;
      best = c;
    }
  }
  return best;
}

}  // namespace m2ai::ml
