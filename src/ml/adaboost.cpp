#include "ml/adaboost.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::ml {

void AdaBoost::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("AdaBoost: empty train set");
  num_classes_ = train.num_classes;
  learners_.clear();
  alphas_.clear();

  const std::size_t n = train.size();
  std::vector<double> w(n, 1.0 / static_cast<double>(n));
  util::Rng rng(seed_);

  for (int round = 0; round < num_rounds_; ++round) {
    TreeOptions opts;
    opts.max_depth = stump_depth_;
    opts.min_samples_split = 2;
    opts.seed = rng.next_u64();
    auto learner = std::make_unique<DecisionTree>(opts);
    learner->fit_weighted(train, w);

    double err = 0.0;
    std::vector<bool> wrong(n, false);
    for (std::size_t i = 0; i < n; ++i) {
      wrong[i] = learner->predict(train.features[i]) != train.labels[i];
      if (wrong[i]) err += w[i];
    }
    // SAMME: valid while err < 1 - 1/K.
    const double guard = 1.0 - 1.0 / static_cast<double>(num_classes_);
    if (err >= guard) break;
    err = std::max(err, 1e-10);
    const double alpha =
        std::log((1.0 - err) / err) + std::log(static_cast<double>(num_classes_) - 1.0);

    double z = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (wrong[i]) w[i] *= std::exp(alpha);
      z += w[i];
    }
    for (double& wi : w) wi /= z;

    learners_.push_back(std::move(learner));
    alphas_.push_back(alpha);
    if (err < 1e-9) break;  // perfect learner: further rounds are no-ops
  }

  // Degenerate case: keep at least one learner.
  if (learners_.empty()) {
    TreeOptions opts;
    opts.max_depth = stump_depth_;
    opts.seed = rng.next_u64();
    auto learner = std::make_unique<DecisionTree>(opts);
    learner->fit(train);
    learners_.push_back(std::move(learner));
    alphas_.push_back(1.0);
  }
}

int AdaBoost::predict(const std::vector<float>& x) const {
  if (learners_.empty()) throw std::logic_error("AdaBoost: not fitted");
  std::vector<double> score(static_cast<std::size_t>(num_classes_), 0.0);
  for (std::size_t t = 0; t < learners_.size(); ++t) {
    score[static_cast<std::size_t>(learners_[t]->predict(x))] += alphas_[t];
  }
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (score[static_cast<std::size_t>(c)] > score[static_cast<std::size_t>(best)]) best = c;
  }
  return best;
}

}  // namespace m2ai::ml
