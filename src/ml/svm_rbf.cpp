#include "ml/svm_rbf.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace m2ai::ml {

double RbfSvm::kernel(const std::vector<float>& a, const std::vector<float>& b) const {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    d2 += diff * diff;
  }
  return std::exp(-gamma_ * d2);
}

void RbfSvm::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("RbfSvm: empty train set");
  support_ = train;
  num_classes_ = train.num_classes;
  const std::size_t n = train.size();

  if (gamma_ <= 0.0) {
    // "scale": 1 / (dim * var(features)).
    double var = 0.0, mean = 0.0;
    std::size_t count = 0;
    for (const auto& x : train.features) {
      for (float v : x) {
        mean += v;
        ++count;
      }
    }
    mean /= static_cast<double>(count);
    for (const auto& x : train.features) {
      for (float v : x) var += (v - mean) * (v - mean);
    }
    var /= static_cast<double>(count);
    gamma_ = 1.0 / (static_cast<double>(train.dim()) * std::max(var, 1e-9));
  }

  alpha_.assign(static_cast<std::size_t>(num_classes_), std::vector<double>(n, 0.0));

  // Precompute the kernel matrix (training sets are capped by the caller).
  std::vector<std::vector<double>> k(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      k[i][j] = k[j][i] = kernel(train.features[i], train.features[j]);
    }
  }

  util::Rng rng(seed_);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  long t = 0;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    rng.shuffle(order);
    for (std::size_t idx : order) {
      ++t;
      for (int c = 0; c < num_classes_; ++c) {
        const double y = (train.labels[idx] == c) ? 1.0 : -1.0;
        // f(x_idx) under the current (scaled) kernel expansion.
        double f = 0.0;
        const auto& a = alpha_[static_cast<std::size_t>(c)];
        for (std::size_t j = 0; j < n; ++j) {
          if (a[j] != 0.0) f += a[j] * k[idx][j];
        }
        f /= (lambda_ * static_cast<double>(t));
        if (y * f < 1.0) {
          alpha_[static_cast<std::size_t>(c)][idx] += y;
        }
      }
    }
  }
  steps_ = t;
}

double RbfSvm::decision(const std::vector<float>& x, int c) const {
  const auto& a = alpha_[static_cast<std::size_t>(c)];
  double f = 0.0;
  for (std::size_t j = 0; j < support_.size(); ++j) {
    if (a[j] != 0.0) f += a[j] * kernel(x, support_.features[j]);
  }
  return f / (lambda_ * static_cast<double>(steps_));
}

int RbfSvm::predict(const std::vector<float>& x) const {
  // Evaluate the kernel against each support point once, shared by all
  // one-vs-rest machines.
  const std::size_t n = support_.size();
  std::vector<double> kx(n);
  for (std::size_t j = 0; j < n; ++j) kx[j] = kernel(x, support_.features[j]);

  int best = 0;
  double best_score = 0.0;
  for (int c = 0; c < num_classes_; ++c) {
    const auto& a = alpha_[static_cast<std::size_t>(c)];
    double f = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (a[j] != 0.0) f += a[j] * kx[j];
    }
    if (c == 0 || f > best_score) {
      best_score = f;
      best = c;
    }
  }
  return best;
}

}  // namespace m2ai::ml
