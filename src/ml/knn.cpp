#include "ml/knn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace m2ai::ml {

void KnnClassifier::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("KnnClassifier: empty train set");
  train_ = train;
}

int KnnClassifier::predict(const std::vector<float>& x) const {
  const std::size_t n = train_.size();
  const int k = std::min<int>(k_, static_cast<int>(n));
  // Partial selection of the k nearest squared distances.
  std::vector<std::pair<double, int>> dist;
  dist.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& f = train_.features[i];
    double d = 0.0;
    for (std::size_t j = 0; j < f.size(); ++j) {
      const double diff = f[j] - x[j];
      d += diff * diff;
    }
    dist.emplace_back(d, train_.labels[i]);
  }
  std::nth_element(dist.begin(), dist.begin() + (k - 1), dist.end());
  std::vector<int> votes;
  votes.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) votes.push_back(dist[static_cast<std::size_t>(i)].second);
  return majority_vote(votes, train_.num_classes);
}

}  // namespace m2ai::ml
