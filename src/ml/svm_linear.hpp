// One-vs-rest linear SVM trained with Pegasos (primal SGD on the hinge
// loss with lambda-regularization) — the runner-up of Fig. 9.
#pragma once

#include "ml/dataset.hpp"

namespace m2ai::ml {

class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(double lambda = 1e-4, int epochs = 30,
                     std::uint64_t seed = 17)
      : lambda_(lambda), epochs_(epochs), seed_(seed) {}

  void fit(const Dataset& train) override;
  int predict(const std::vector<float>& x) const override;
  std::string name() const override { return "Linear SVM"; }

  // Decision score of class c for x (used by tests).
  double score(const std::vector<float>& x, int c) const;

 private:
  double lambda_;
  int epochs_;
  std::uint64_t seed_;
  int num_classes_ = 0;
  std::size_t dim_ = 0;
  std::vector<std::vector<double>> weights_;  // per class
  std::vector<double> biases_;
};

}  // namespace m2ai::ml
