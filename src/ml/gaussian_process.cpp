#include "ml/gaussian_process.hpp"

#include <cmath>
#include <stdexcept>

#include "ml/linalg.hpp"

namespace m2ai::ml {

double GaussianProcessClassifier::kernel(const std::vector<float>& a,
                                         const std::vector<float>& b) const {
  double d2 = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double diff = a[j] - b[j];
    d2 += diff * diff;
  }
  return std::exp(-gamma_ * d2);
}

void GaussianProcessClassifier::fit(const Dataset& train) {
  if (train.size() == 0) {
    throw std::invalid_argument("GaussianProcessClassifier: empty train set");
  }
  train_ = train;
  num_classes_ = train.num_classes;
  const std::size_t n = train.size();

  if (gamma_ <= 0.0) {
    double var = 0.0, mean = 0.0;
    std::size_t count = 0;
    for (const auto& x : train.features) {
      for (float v : x) {
        mean += v;
        ++count;
      }
    }
    mean /= static_cast<double>(count);
    for (const auto& x : train.features) {
      for (float v : x) var += (v - mean) * (v - mean);
    }
    var /= static_cast<double>(count);
    gamma_ = 1.0 / (static_cast<double>(train.dim()) * std::max(var, 1e-9));
  }

  std::vector<double> k(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(train.features[i], train.features[j]);
      k[i * n + j] = v;
      k[j * n + i] = v;
    }
    k[i * n + i] += noise_;
  }
  const std::vector<double> chol = robust_cholesky(std::move(k), n);

  alpha_.assign(static_cast<std::size_t>(num_classes_), {});
  for (int c = 0; c < num_classes_; ++c) {
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) y[i] = train.labels[i] == c ? 1.0 : -1.0;
    alpha_[static_cast<std::size_t>(c)] = cholesky_solve(chol, n, std::move(y));
  }
}

int GaussianProcessClassifier::predict(const std::vector<float>& x) const {
  if (alpha_.empty()) throw std::logic_error("GaussianProcessClassifier: not fitted");
  const std::size_t n = train_.size();
  std::vector<double> kx(n);
  for (std::size_t j = 0; j < n; ++j) kx[j] = kernel(x, train_.features[j]);

  int best = 0;
  double best_score = -1e300;
  for (int c = 0; c < num_classes_; ++c) {
    double mean = 0.0;
    const auto& a = alpha_[static_cast<std::size_t>(c)];
    for (std::size_t j = 0; j < n; ++j) mean += a[j] * kx[j];
    if (mean > best_score) {
      best_score = mean;
      best = c;
    }
  }
  return best;
}

}  // namespace m2ai::ml
