#include "ml/mlp.hpp"

#include <numeric>
#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/softmax.hpp"

namespace m2ai::ml {

void MlpClassifier::fit(const Dataset& train) {
  if (train.size() == 0) throw std::invalid_argument("MlpClassifier: empty train set");
  num_classes_ = train.num_classes;
  util::Rng rng(seed_);

  net_ = std::make_unique<nn::Sequential>();
  net_->emplace<nn::Dense>(static_cast<int>(train.dim()), hidden_, rng);
  net_->emplace<nn::ReLU>();
  net_->emplace<nn::Dense>(hidden_, num_classes_, rng);

  nn::Adam opt(lr_);
  const auto params = net_->params();
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  constexpr int kBatch = 16;
  for (int epoch = 0; epoch < epochs_; ++epoch) {
    rng.shuffle(order);
    int in_batch = 0;
    for (std::size_t idx : order) {
      nn::Tensor x = nn::Tensor::from(std::vector<float>(train.features[idx].begin(),
                                                         train.features[idx].end()));
      const nn::Tensor logits = net_->forward(x, /*train=*/true);
      const auto lag = nn::softmax_cross_entropy(logits, train.labels[idx]);
      net_->backward(lag.grad_logits);
      if (++in_batch == kBatch) {
        nn::clip_gradient_norm(params, 5.0);
        opt.step(params);
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      nn::clip_gradient_norm(params, 5.0);
      opt.step(params);
    }
  }
}

int MlpClassifier::predict(const std::vector<float>& x) const {
  if (!net_) throw std::logic_error("MlpClassifier: not fitted");
  nn::Tensor input = nn::Tensor::from(std::vector<float>(x.begin(), x.end()));
  const nn::Tensor logits =
      const_cast<nn::Sequential&>(*net_).forward(input, /*train=*/false);
  int best = 0;
  for (std::size_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[static_cast<std::size_t>(best)]) best = static_cast<int>(i);
  }
  return best;
}

}  // namespace m2ai::ml
