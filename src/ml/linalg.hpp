// Small real dense linear algebra for the statistical baselines (QDA,
// Gaussian process): symmetric positive-definite solves via Cholesky.
// Header-only; matrices are row-major vector<double> with explicit n.
#pragma once

#include <cmath>
#include <stdexcept>
#include <vector>

namespace m2ai::ml {

// In-place Cholesky A = L L^T on the lower triangle. Returns false if the
// matrix is not positive definite (caller should add regularization).
inline bool cholesky(std::vector<double>& a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) return false;
    const double ljj = std::sqrt(d);
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / ljj;
    }
  }
  return true;
}

// Solve L y = b then L^T x = y given the Cholesky factor in `l`.
inline std::vector<double> cholesky_solve(const std::vector<double>& l, std::size_t n,
                                          std::vector<double> b) {
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l[i * n + k] * b[k];
    b[i] = s / l[i * n + i];
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l[k * n + ii] * b[k];
    b[ii] = s / l[ii * n + ii];
  }
  return b;
}

// log det(A) = 2 * sum log L_ii from the Cholesky factor.
inline double cholesky_log_det(const std::vector<double>& l, std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += std::log(l[i * n + i]);
  return 2.0 * s;
}

// Cholesky with escalating ridge regularization; throws only if the matrix
// stays indefinite after heavy loading.
inline std::vector<double> robust_cholesky(std::vector<double> a, std::size_t n) {
  double ridge = 0.0;
  double scale = 0.0;
  for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(a[i * n + i]));
  if (scale <= 0.0) scale = 1.0;
  for (int attempt = 0; attempt < 12; ++attempt) {
    std::vector<double> work = a;
    if (ridge > 0.0) {
      for (std::size_t i = 0; i < n; ++i) work[i * n + i] += ridge;
    }
    if (cholesky(work, n)) return work;
    ridge = (ridge == 0.0) ? 1e-10 * scale : ridge * 10.0;
  }
  throw std::runtime_error("robust_cholesky: matrix not positive definite");
}

}  // namespace m2ai::ml
