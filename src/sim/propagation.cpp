#include "sim/propagation.hpp"

#include <cmath>

namespace m2ai::sim {

namespace {

// Free-space one-way amplitude gain at distance L (Friis, amplitude form),
// normalized so gain(1 m) = 1.
double friis_gain(double length_m) { return 1.0 / std::max(length_m, 0.5); }

double db_to_amplitude(double loss_db) { return std::pow(10.0, -loss_db / 20.0); }

// 3-D length of a path whose 2-D ground projection has length `ground_m`
// and whose endpoints differ in height by `dz`.
double path_length_3d(double ground_m, double dz) {
  return std::sqrt(ground_m * ground_m + dz * dz);
}

}  // namespace

PropagationModel::PropagationModel(const Environment& env, PropagationOptions options)
    : env_(env), options_(options) {}

int PropagationModel::count_blockers(rf::Vec2 a, rf::Vec2 b,
                                     const std::vector<BodyDisk>& bodies,
                                     int skip_person_near_a) const {
  int blockers = 0;
  for (const BodyDisk& body : bodies) {
    // Never let the wearer's own cylinder block the segment right at the
    // tag: the tag sits on the body surface.
    if (body.person_index == skip_person_near_a &&
        rf::distance(a, body.center) < body.radius + 0.15) {
      continue;
    }
    if (rf::segment_hits_circle(a, b, body.center, body.radius)) ++blockers;
  }
  return blockers;
}

std::vector<PathContribution> PropagationModel::paths(
    const Vec3& tag, const Vec3& antenna, const std::vector<BodyDisk>& bodies,
    int owner_index, rf::Vec2 array_origin, rf::Vec2 array_axis) const {
  const rf::Vec2 tag2{tag.x, tag.y};
  const rf::Vec2 ant2{antenna.x, antenna.y};
  const double dz = tag.z - antenna.z;

  std::vector<PathContribution> out;
  const double floor_gain = options_.min_relative_gain;

  auto push = [&](PathKind kind, double ground_len, double extra_loss_db,
                  rf::Vec2 arrival_from, int blockers) {
    const double len = path_length_3d(ground_len, dz);
    double gain = friis_gain(len) * db_to_amplitude(extra_loss_db);
    gain *= db_to_amplitude(options_.body_loss_db * blockers);
    if (gain < floor_gain) return;
    PathContribution p;
    p.kind = kind;
    p.length_m = len;
    p.gain = gain;
    p.aoa_deg = rf::bearing_deg(array_origin, array_axis, arrival_from);
    p.blocked_by = blockers;
    out.push_back(p);
  };

  // Direct path.
  {
    const int blockers = count_blockers(tag2, ant2, bodies, owner_index);
    push(PathKind::kDirect, rf::distance(tag2, ant2), 0.0, tag2, blockers);
  }

  // First-order wall reflections: mirror the tag across each wall; the ray
  // antenna -> image crosses the wall at the specular point.
  if (options_.enable_wall_reflections) {
    for (const rf::Wall& wall : env_.walls) {
      const rf::Vec2 image = rf::mirror(tag2, wall);
      const auto hit = rf::wall_intersection(ant2, image, wall);
      if (!hit) continue;
      // Occlusion on both legs: tag -> wall point, wall point -> antenna.
      const int blockers = count_blockers(tag2, *hit, bodies, owner_index) +
                           count_blockers(*hit, ant2, bodies, -1);
      const double ground = rf::distance(tag2, *hit) + rf::distance(*hit, ant2);
      // The reflected wave arrives from the direction of the specular point.
      push(PathKind::kWallReflection, ground, wall.reflection_loss_db, *hit,
           blockers);
    }
  }

  // Scatterer deflections.
  if (options_.enable_scatterers) {
    for (const Scatterer& sc : env_.scatterers) {
      const int blockers =
          count_blockers(tag2, sc.position, bodies, owner_index) +
          count_blockers(sc.position, ant2, bodies, -1);
      const double ground =
          rf::distance(tag2, sc.position) + rf::distance(sc.position, ant2);
      push(PathKind::kScatterer, ground, sc.scatter_loss_db, sc.position, blockers);
    }
  }

  return out;
}

std::complex<double> PropagationModel::channel(
    const std::vector<PathContribution>& paths, double wavelength_m) const {
  std::complex<double> h{0.0, 0.0};
  for (const PathContribution& p : paths) {
    // Round-trip phase along the ray's own path (see header).
    const double phase = -2.0 * M_PI * (2.0 * p.length_m) / wavelength_m;
    h += p.gain * std::polar(1.0, phase);
  }
  return h;
}

}  // namespace m2ai::sim
