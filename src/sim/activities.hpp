// The 12 multi-person activity scenarios of Sec. VI-A (Fig. 8). The paper's
// sketches are unlabeled, so the catalog below instantiates 12 distinct
// two-person interaction patterns built from the motion primitives in
// person.hpp; each run randomizes volunteer body parameters, start poses,
// and phase offsets, giving realistic intra-class variance.
#pragma once

#include <string>
#include <vector>

#include "sim/environment.hpp"
#include "sim/person.hpp"
#include "util/rng.hpp"

namespace m2ai::sim {

struct ActivityScenario {
  int id = 0;               // 1-based: A_01 .. A_12
  std::string label;        // "A_01"
  std::string description;  // human-readable summary
};

// The fixed 12-scenario catalog.
const std::vector<ActivityScenario>& activity_catalog();
int num_activities();

struct PlacementOptions {
  // Nominal distance from the antenna array to the persons (m). The paper
  // places volunteers 3-6 m away by default and sweeps 1-4 m in Fig. 13.
  double distance_m = 4.0;
  // Lateral spread between persons (m).
  double lateral_spread_m = 1.4;
  // Randomize placement within +-30% of the nominal values.
  bool jitter = true;
};

// Instantiate persons for `activity_id` (1-based) with `num_persons` actors
// (1..3). Persons beyond the scenario's scripted pair repeat the pattern
// with independent randomization. `array_front` is the point on the floor in
// front of the antenna array toward which persons face.
std::vector<Person> instantiate_activity(int activity_id, int num_persons,
                                         const Environment& env,
                                         rf::Vec2 array_front,
                                         const PlacementOptions& placement,
                                         util::Rng& rng);

}  // namespace m2ai::sim
