// Indoor environments: room geometry, reflective walls, and furniture
// scatterers. Two presets mirror the paper's testbeds (Sec. VI-A): a
// 13.75 m x 10.50 m laboratory dense with cabinets/desks (high multipath)
// and an 8.75 m x 7.50 m empty hall (low multipath).
#pragma once

#include <string>
#include <vector>

#include "rf/geometry.hpp"

namespace m2ai::sim {

// A furniture-scale scatterer: deflects signals tag -> scatterer -> antenna.
struct Scatterer {
  rf::Vec2 position;
  double radius = 0.3;          // occlusion radius (m)
  double scatter_loss_db = 10.0;  // extra loss on the deflected path
};

struct Environment {
  std::string name;
  double width = 10.0;   // x extent (m); the antenna array sits on y = 0 side
  double depth = 8.0;    // y extent (m)
  std::vector<rf::Wall> walls;
  std::vector<Scatterer> scatterers;

  // Paper's high-multipath laboratory.
  static Environment laboratory();
  // Paper's low-multipath empty hall.
  static Environment hall();
  // Free space: no walls, no scatterers (useful in unit tests).
  static Environment open_space(double width = 20.0, double depth = 20.0);
};

}  // namespace m2ai::sim
