// A Scene binds an environment, the persons acting in it, the tags they
// wear, and the reader's antenna-array geometry — everything the reader
// needs to synthesize backscatter reports at a given instant.
#pragma once

#include <cstdint>
#include <vector>

#include "rf/constants.hpp"
#include "sim/environment.hpp"
#include "sim/person.hpp"
#include "sim/propagation.hpp"

namespace m2ai::sim {

// Reader antenna-array geometry: a horizontal ULA along `axis` (unit 2-D
// vector) centered at `center` (3-D; the paper mounts it at 1.25 m height).
struct ArrayGeometry {
  Vec3 center{0.0, 0.0, 1.25};
  rf::Vec2 axis{1.0, 0.0};
  int num_antennas = 4;
  double separation_m = rf::kAntennaSeparationM;

  Vec3 antenna_position(int index) const;
  rf::Vec2 origin2d() const { return {center.x, center.y}; }
};

struct TagInfo {
  std::uint32_t id = 0;
  int person_index = 0;
  BodySite site = BodySite::kHand;
};

class Scene {
 public:
  // Attaches `tags_per_person` tags (hand, then arm, then shoulder) to every
  // person. Tag ids are dense, starting at 1.
  Scene(Environment env, std::vector<Person> persons, ArrayGeometry array,
        int tags_per_person = 3, PropagationOptions prop_options = {});

  const Environment& environment() const { return env_; }
  const ArrayGeometry& array() const { return array_; }
  const std::vector<Person>& persons() const { return persons_; }
  const std::vector<TagInfo>& tags() const { return tags_; }
  const PropagationModel& propagation() const { return propagation_; }

  // Tag position at time t; `motion_frozen` pins every person to their t=0
  // pose (used for the stationary calibration bootstrap).
  Vec3 tag_position(std::size_t tag_index, double t_sec) const;

  // Every person's body cylinder at time t.
  std::vector<BodyDisk> bodies_at(double t_sec) const;

  void set_motion_frozen(bool frozen) { motion_frozen_ = frozen; }
  bool motion_frozen() const { return motion_frozen_; }

  // Multipath rays from a tag to an antenna right now.
  std::vector<PathContribution> paths_at(std::size_t tag_index, int antenna,
                                         double t_sec) const;

 private:
  Environment env_;
  std::vector<Person> persons_;
  ArrayGeometry array_;
  std::vector<TagInfo> tags_;
  PropagationModel propagation_;
  bool motion_frozen_ = false;
};

}  // namespace m2ai::sim
