#include "sim/environment.hpp"

namespace m2ai::sim {

namespace {
// Four perimeter walls for a w x d room with the origin at a corner.
std::vector<rf::Wall> perimeter(double width, double depth, double loss_db) {
  return {
      {/*vertical=*/false, /*position=*/0.0, /*lo=*/0.0, /*hi=*/width, loss_db},
      {/*vertical=*/false, /*position=*/depth, /*lo=*/0.0, /*hi=*/width, loss_db},
      {/*vertical=*/true, /*position=*/0.0, /*lo=*/0.0, /*hi=*/depth, loss_db},
      {/*vertical=*/true, /*position=*/width, /*lo=*/0.0, /*hi=*/depth, loss_db},
  };
}
}  // namespace

Environment Environment::laboratory() {
  Environment env;
  env.name = "laboratory";
  env.width = 13.75;
  env.depth = 10.50;
  env.walls = perimeter(env.width, env.depth, /*loss_db=*/5.0);
  // File cabinets and writing desks (Sec. VI-A) scattered through the room.
  env.scatterers = {
      {{2.0, 2.5}, 0.35, 9.0},  {{11.5, 2.0}, 0.35, 9.0},
      {{3.5, 6.0}, 0.40, 10.0}, {{10.0, 6.5}, 0.40, 10.0},
      {{6.8, 8.5}, 0.45, 11.0}, {{1.5, 8.8}, 0.35, 9.0},
      {{12.3, 8.2}, 0.35, 9.0}, {{7.2, 3.2}, 0.30, 12.0},
  };
  return env;
}

Environment Environment::hall() {
  Environment env;
  env.name = "hall";
  env.width = 8.75;
  env.depth = 7.50;
  // Bare walls only; slightly more reflective (hard surfaces) but no clutter.
  env.walls = perimeter(env.width, env.depth, /*loss_db=*/4.0);
  env.scatterers = {};
  return env;
}

Environment Environment::open_space(double width, double depth) {
  Environment env;
  env.name = "open-space";
  env.width = width;
  env.depth = depth;
  return env;
}

}  // namespace m2ai::sim
