// Model of a commercial UHF reader (Impinj Speedway R420 class) speaking an
// LLRP-style report interface.
//
// Faithful to Sec. V of the paper:
//   * 4 antenna ports in time-division multiplexing, 25 ms inventory slot;
//   * FCC frequency hopping: 50 channels, 902.75-927.25 MHz, 500 kHz steps,
//     400 ms dwell (all channels visited once per 20 s);
//   * reported phase carries (a) a per-(tag, antenna, channel) offset that
//     is linear in frequency plus a small fixed ripple (Fig. 3), (b) a
//     random pi ambiguity per read, (c) 12-bit quantization, (d) noise;
//   * RSSI in dBm with 0.5 dB granularity and noise;
//   * reads are dropped when the backscatter power falls below the tag's
//     energy-harvesting sensitivity (weak-signal dropout).
#pragma once

#include <cstdint>
#include <vector>

#include "rf/channel_plan.hpp"
#include "sim/scene.hpp"
#include "util/rng.hpp"

namespace m2ai::sim {

// One LLRP tag observation, the only interface the DSP pipeline sees.
// Mirrors the low-level report fields Sec. III of the paper names: phase,
// RSSI, and Doppler shift.
struct TagReport {
  double time_sec = 0.0;
  std::uint32_t tag_id = 0;
  int antenna = 0;        // port index, 0-based
  int channel = 0;        // hop channel index, 0-based
  double phase_rad = 0.0; // reported phase in [0, 2*pi)
  double rssi_dbm = 0.0;
  // Doppler shift (Hz) estimated over the read burst: -2*v_radial/lambda
  // for the dominant ray, quantized to the Impinj report granularity
  // (1/16 Hz).
  double doppler_hz = 0.0;
};

// Quantize a wrapped phase to the Impinj report granularity (1/4096 turn).
// A phase just under 2*pi rounds up to step 4096 — exactly 2*pi — which
// must wrap back to step 0 so the result is always in [0, 2*pi), even if a
// caller skips a later wrap_2pi. Input must already be in [0, 2*pi].
double quantize_phase(double phase_rad);

struct ReaderConfig {
  double slot_sec = rf::kAntennaSlotSec;
  double dwell_sec = rf::kDwellTimeSec;
  int reads_per_tag_per_slot = 2;

  bool hopping = true;          // false pins the reader to the common channel
  bool pi_ambiguity = true;
  // Doppler estimation triples the propagation evaluations per read; turn
  // it off when the consumer only needs phase/RSSI.
  bool report_doppler = true;
  bool quantize = true;         // 12-bit phase, 0.5 dB RSSI
  double phase_noise_std_rad = 0.08;
  double rssi_noise_std_db = 0.6;

  // Maps the dimensionless simulated channel magnitude to dBm.
  double rssi_reference_dbm = -38.0;
  // Below this reported power the tag fails to respond with rising
  // probability (fully dead 12 dB further down).
  double sensitivity_dbm = -82.0;

  // Per-tag hardware phase response (Fig. 3): offset(tag, ant, ch) =
  // slope * (f_ch - f_r) + intercept + ripple(ch). Slope drawn uniformly
  // from [min, max] rad/MHz per (tag, antenna).
  double offset_slope_min_rad_per_mhz = 0.25;
  double offset_slope_max_rad_per_mhz = 0.90;
  double offset_ripple_std_rad = 0.05;
};

class Reader {
 public:
  // `max_tags` sizes the per-tag hardware offset tables; `rng` seeds the
  // hop sequence, the offset draw, and all measurement noise.
  Reader(ReaderConfig config, int num_antennas, int max_tags, util::Rng rng);

  // Simulate inventory over [t_begin, t_end); appends reports in time order.
  std::vector<TagReport> run(const Scene& scene, double t_begin, double t_end);

  // Channel in use at time t (common channel when hopping is disabled).
  int channel_at(double t_sec) const;
  // Antenna port active at time t.
  int antenna_at(double t_sec) const;

  const ReaderConfig& config() const { return config_; }

  // Ground-truth hardware offset (for tests).
  double hardware_offset(std::uint32_t tag_id, int antenna, int channel) const;

 private:
  ReaderConfig config_;
  int num_antennas_;
  rf::HopSequence hops_;
  util::Rng rng_;
  // offset tables indexed [tag_id-1][antenna][channel]
  std::vector<std::vector<std::vector<double>>> offsets_;
};

}  // namespace m2ai::sim
