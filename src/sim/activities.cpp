#include "sim/activities.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace m2ai::sim {

namespace {

// Scripted motion for one actor slot of a scenario.
struct ActorScript {
  MotionSpec motion;
};

// Up to three actor slots per scenario (slot 2 reuses slot 0's script with
// fresh randomization when only two are scripted).
struct Script {
  ActivityScenario meta;
  std::vector<ActorScript> actors;
};

MotionSpec spec(GaitType g, double gf, double ga, TorsoType t, double tf,
                LimbType l, double lf) {
  MotionSpec m;
  m.gait = g;
  m.gait_freq_hz = gf;
  m.gait_amplitude_m = ga;
  m.torso = t;
  m.torso_freq_hz = tf;
  m.limb = l;
  m.limb_freq_hz = lf;
  return m;
}

const std::vector<Script>& scripts() {
  static const std::vector<Script> kScripts = [] {
    std::vector<Script> s;
    auto add = [&s](std::string desc, MotionSpec a, MotionSpec b) {
      Script sc;
      sc.meta.id = static_cast<int>(s.size()) + 1;
      char label[16];
      std::snprintf(label, sizeof(label), "A_%02d", sc.meta.id);
      sc.meta.label = label;
      sc.meta.description = std::move(desc);
      sc.actors = {{a}, {b}};
      s.push_back(std::move(sc));
    };

    // A_01: both stand in place and wave.
    add("both wave while standing",
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kWave, 1.0),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kWave, 0.85));
    // A_02: one paces toward/away from the reader, the other stands still.
    add("one paces to/from reader, one stands",
        spec(GaitType::kWalkLine, 0.22, 1.1, TorsoType::kNone, 0.5, LimbType::kSwingArms, 0.7),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kNone, 1.0));
    // A_03: both walk parallel lateral lines (crossing in front of the array).
    add("both pace laterally",
        spec(GaitType::kWalkLateral, 0.20, 1.2, TorsoType::kNone, 0.5, LimbType::kSwingArms, 0.6),
        spec(GaitType::kWalkLateral, 0.24, 1.0, TorsoType::kNone, 0.5, LimbType::kSwingArms, 1.0));
    // A_04: one squats repeatedly, the other stands and waves.
    add("one squats, one waves",
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kSquat, 0.35, LimbType::kNone, 1.0),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kWave, 1.0));
    // A_05: one orbits the other (periodic body occlusion of paths).
    add("one circles around the other",
        spec(GaitType::kWalkCircle, 0.14, 1.0, TorsoType::kNone, 0.5, LimbType::kNone, 1.0),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kNone, 1.0));
    // A_06: both jump in place.
    add("both jump",
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kJump, 0.6, LimbType::kNone, 1.0),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kJump, 0.7, LimbType::kNone, 1.0));
    // A_07: push-pull interaction: one pushes toward the other, who bends away.
    add("one pushes, one leans away",
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kPushPull, 1.1),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kBend, 0.5, LimbType::kNone, 1.0));
    // A_08: one sits down and stays seated, the other paces.
    add("one sits down, one paces",
        spec(GaitType::kSitDown, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kNone, 1.0),
        spec(GaitType::kWalkLine, 0.20, 1.0, TorsoType::kNone, 0.5, LimbType::kSwingArms, 0.7));
    // A_09: both exercise with alternating arm swings (march in place).
    add("both swing arms (march)",
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kSwingArms, 1.0),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kSwingArms, 1.15));
    // A_10: one repeatedly bends to pick something up, the other circles.
    add("one bends to pick up, one circles",
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kBend, 0.4, LimbType::kNone, 1.0),
        spec(GaitType::kWalkCircle, 0.16, 0.9, TorsoType::kNone, 0.5, LimbType::kNone, 1.0));
    // A_11: one turns in place, the other does push-pull reaching.
    add("one spins in place, one reaches",
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kTurn, 0.30, LimbType::kNone, 1.0),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kPushPull, 0.9));
    // A_12: one paces while waving, the other raises/lowers a hand.
    add("one paces and waves, one raises hand",
        spec(GaitType::kWalkLine, 0.20, 0.9, TorsoType::kNone, 0.5, LimbType::kWave, 1.0),
        spec(GaitType::kStand, 0.25, 1.0, TorsoType::kNone, 0.5, LimbType::kRaiseLower, 0.5));
    return s;
  }();
  return kScripts;
}

}  // namespace

const std::vector<ActivityScenario>& activity_catalog() {
  static const std::vector<ActivityScenario> kCatalog = [] {
    std::vector<ActivityScenario> c;
    for (const Script& s : scripts()) c.push_back(s.meta);
    return c;
  }();
  return kCatalog;
}

int num_activities() { return static_cast<int>(activity_catalog().size()); }

std::vector<Person> instantiate_activity(int activity_id, int num_persons,
                                         const Environment& env,
                                         rf::Vec2 array_front,
                                         const PlacementOptions& placement,
                                         util::Rng& rng) {
  if (activity_id < 1 || activity_id > num_activities()) {
    throw std::out_of_range("instantiate_activity: bad activity id");
  }
  if (num_persons < 1 || num_persons > 3) {
    throw std::out_of_range("instantiate_activity: 1..3 persons supported");
  }
  const Script& script = scripts()[static_cast<std::size_t>(activity_id - 1)];

  std::vector<Person> persons;
  persons.reserve(static_cast<std::size_t>(num_persons));
  for (int i = 0; i < num_persons; ++i) {
    const ActorScript& actor =
        script.actors[static_cast<std::size_t>(i) % script.actors.size()];
    BodyParams body = BodyParams::random_volunteer(rng);

    // Place actors on a lateral line `distance_m` in front of the array,
    // facing it, with jittered spacing; keep them inside the room.
    const double jitter_d = placement.jitter ? rng.uniform(-0.15, 0.15) : 0.0;
    const double jitter_l = placement.jitter ? rng.uniform(-0.12, 0.12) : 0.0;
    const double lateral =
        (static_cast<double>(i) - 0.5 * static_cast<double>(num_persons - 1)) *
            placement.lateral_spread_m +
        jitter_l;
    rf::Vec2 start{array_front.x + lateral,
                   array_front.y + placement.distance_m * (1.0 + jitter_d * 0.25)};
    start.x = std::clamp(start.x, 0.6, env.width - 0.6);
    start.y = std::clamp(start.y, 0.8, env.depth - 0.6);

    // Face the array (which sits toward -y from the person).
    const double heading =
        std::atan2(array_front.y - start.y, array_front.x - start.x);
    persons.emplace_back(body, start, heading, actor.motion);
  }
  return persons;
}

}  // namespace m2ai::sim
