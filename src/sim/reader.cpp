#include "sim/reader.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "dsp/phase.hpp"
#include "obs/metrics.hpp"
#include "rf/constants.hpp"

namespace m2ai::sim {

double quantize_phase(double phase_rad) {
  const double step = 2.0 * M_PI / 4096.0;
  double q = std::round(phase_rad / step) * step;
  // step is 2*pi scaled by a power of two, so 4096 steps is exactly 2*pi:
  // wrap the boundary case to step 0 (bitwise what wrap_2pi would return).
  if (q >= 2.0 * M_PI) q = 0.0;
  return q;
}

Reader::Reader(ReaderConfig config, int num_antennas, int max_tags, util::Rng rng)
    : config_(config), num_antennas_(num_antennas), hops_(rng.fork()), rng_(rng.fork()) {
  if (num_antennas < 1) throw std::invalid_argument("Reader: need >= 1 antenna");
  // Draw the fixed hardware phase response per (tag, antenna): a linear
  // slope over frequency plus a small per-channel ripple (Fig. 3).
  util::Rng hw = rng.fork();
  offsets_.resize(static_cast<std::size_t>(max_tags));
  for (auto& per_tag : offsets_) {
    // Slope and intercept are properties of the tag's antenna response and
    // the reader oscillator, shared across the reader's (cable-matched)
    // ports; per-port mismatch is a small residual. Keeping the large terms
    // common across antennas preserves the inter-antenna coherence that AoA
    // estimation relies on — matching a calibrated commercial array.
    const double slope = hw.uniform(config_.offset_slope_min_rad_per_mhz,
                                    config_.offset_slope_max_rad_per_mhz) *
                         (hw.bernoulli(0.5) ? 1.0 : -1.0);
    const double intercept = hw.uniform(0.0, 2.0 * M_PI);
    per_tag.resize(static_cast<std::size_t>(num_antennas));
    for (auto& per_ant : per_tag) {
      const double port_mismatch = hw.normal(0.0, 0.05);
      per_ant.resize(rf::kNumChannels);
      for (int ch = 0; ch < rf::kNumChannels; ++ch) {
        const double df_mhz =
            (rf::channel_frequency_hz(ch) - rf::kCommonFrequencyHz) / 1e6;
        // The reader's pi ambiguity is a per-channel half-cycle offset fixed
        // for the session (Wei & Zhang, MobiCom'16); as a constant it folds
        // into the hardware offset and is removed by Eq. 1 calibration.
        const double half_cycle =
            (config_.pi_ambiguity && hw.bernoulli(0.5)) ? M_PI : 0.0;
        per_ant[static_cast<std::size_t>(ch)] =
            dsp::wrap_2pi(slope * df_mhz + intercept + half_cycle + port_mismatch +
                          hw.normal(0.0, config_.offset_ripple_std_rad));
      }
    }
  }
}

int Reader::channel_at(double t_sec) const {
  return config_.hopping ? hops_.channel_at(t_sec) : rf::common_channel();
}

int Reader::antenna_at(double t_sec) const {
  const long slot = static_cast<long>(std::floor(t_sec / config_.slot_sec));
  return static_cast<int>(slot % num_antennas_);
}

double Reader::hardware_offset(std::uint32_t tag_id, int antenna, int channel) const {
  return offsets_.at(tag_id - 1)
      .at(static_cast<std::size_t>(antenna))[static_cast<std::size_t>(channel)];
}

std::vector<TagReport> Reader::run(const Scene& scene, double t_begin, double t_end) {
  const bool observed = obs::enabled();
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<TagReport> reports;
  const auto& tags = scene.tags();
  const double slot = config_.slot_sec;

  for (double slot_start = std::floor(t_begin / slot) * slot; slot_start < t_end;
       slot_start += slot) {
    const int antenna = antenna_at(slot_start + 1e-9);
    for (std::size_t ti = 0; ti < tags.size(); ++ti) {
      for (int read = 0; read < config_.reads_per_tag_per_slot; ++read) {
        // Reads land at jittered instants inside the slot.
        const double frac = (static_cast<double>(read) + rng_.uniform(0.1, 0.9)) /
                            static_cast<double>(config_.reads_per_tag_per_slot);
        const double t = slot_start + frac * slot;
        if (t < t_begin || t >= t_end) continue;

        const int channel = channel_at(t);
        const double lambda = rf::channel_wavelength_m(channel);

        const auto paths = scene.paths_at(ti, antenna, t);
        if (paths.empty()) continue;
        const std::complex<double> h = scene.propagation().channel(paths, lambda);
        const double mag = std::abs(h);
        if (mag <= 0.0) continue;

        // Weak-signal dropout: below sensitivity the tag cannot harvest
        // enough energy to respond (Sec. VII: "beyond 6 meters, the RFID tag
        // may not harvest enough energy").
        const double power_dbm = config_.rssi_reference_dbm + 20.0 * std::log10(mag);
        const double margin_db = power_dbm - config_.sensitivity_dbm;
        if (margin_db < 0.0) {
          const double p_respond = std::max(0.0, 1.0 + margin_db / 12.0);
          if (!rng_.bernoulli(p_respond)) continue;
        }

        double phase = std::arg(h);
        phase += hardware_offset(tags[ti].id, antenna, channel);
        phase += rng_.normal(0.0, config_.phase_noise_std_rad);
        phase = dsp::wrap_2pi(phase);

        double rssi = power_dbm + rng_.normal(0.0, config_.rssi_noise_std_db);

        // Doppler over the read burst: radial velocity of the dominant
        // (direct) ray via a symmetric finite difference of the channel
        // phase, f_d = dphi/dt / (2*pi). Deterministic — the estimate's
        // noise comes from the motion itself at this granularity.
        double doppler = 0.0;
        if (config_.report_doppler) {
          const double dt = 2e-3;  // ~EPC Gen2 read burst duration
          const auto paths_before = scene.paths_at(ti, antenna, t - dt / 2);
          const auto paths_after = scene.paths_at(ti, antenna, t + dt / 2);
          if (!paths_before.empty() && !paths_after.empty()) {
            const double phi0 =
                std::arg(scene.propagation().channel(paths_before, lambda));
            const double phi1 =
                std::arg(scene.propagation().channel(paths_after, lambda));
            doppler = dsp::wrap_pi(phi1 - phi0) / dt / (2.0 * M_PI);
          }
        }

        if (config_.quantize) {
          // Impinj reports phase in 1/4096 turn steps, RSSI in 0.5 dB, and
          // Doppler in 1/16 Hz. quantize_phase owns the boundary where a
          // phase just under 2*pi rounds up to exactly 2*pi.
          phase = quantize_phase(phase);
          rssi = std::round(rssi * 2.0) / 2.0;
          doppler = std::round(doppler * 16.0) / 16.0;
        }

        reports.push_back(TagReport{t, tags[ti].id, antenna, channel,
                                    dsp::wrap_2pi(phase), rssi, doppler});
      }
    }
  }
  std::sort(reports.begin(), reports.end(),
            [](const TagReport& a, const TagReport& b) { return a.time_sec < b.time_sec; });
  if (observed) {
    obs::registry().counter("reader.readings").add(reports.size());
    obs::registry().counter("reader.runs").add(1);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    if (wall > 0.0) {
      obs::registry().gauge("reader.readings_per_sec").set(
          static_cast<double>(reports.size()) / wall);
    }
  }
  return reports;
}

}  // namespace m2ai::sim
