#include "sim/scene.hpp"

#include <stdexcept>

namespace m2ai::sim {

Vec3 ArrayGeometry::antenna_position(int index) const {
  // Elements centered on `center`, spread along `axis`.
  const double offset =
      (static_cast<double>(index) - 0.5 * static_cast<double>(num_antennas - 1)) *
      separation_m;
  return Vec3{center.x + axis.x * offset, center.y + axis.y * offset, center.z};
}

Scene::Scene(Environment env, std::vector<Person> persons, ArrayGeometry array,
             int tags_per_person, PropagationOptions prop_options)
    : env_(std::move(env)),
      persons_(std::move(persons)),
      array_(array),
      propagation_(env_, prop_options) {
  if (tags_per_person < 1 || tags_per_person > kNumBodySites) {
    throw std::out_of_range("Scene: 1..3 tags per person");
  }
  std::uint32_t next_id = 1;
  for (std::size_t p = 0; p < persons_.size(); ++p) {
    for (int s = 0; s < tags_per_person; ++s) {
      tags_.push_back(TagInfo{next_id++, static_cast<int>(p), static_cast<BodySite>(s)});
    }
  }
}

Vec3 Scene::tag_position(std::size_t tag_index, double t_sec) const {
  const TagInfo& tag = tags_.at(tag_index);
  const double t = motion_frozen_ ? 0.0 : t_sec;
  return persons_[static_cast<std::size_t>(tag.person_index)].tag_position(tag.site, t);
}

std::vector<BodyDisk> Scene::bodies_at(double t_sec) const {
  const double t = motion_frozen_ ? 0.0 : t_sec;
  std::vector<BodyDisk> disks;
  disks.reserve(persons_.size());
  for (std::size_t p = 0; p < persons_.size(); ++p) {
    disks.push_back(BodyDisk{persons_[p].center_at(t), persons_[p].body_radius(),
                             static_cast<int>(p)});
  }
  return disks;
}

std::vector<PathContribution> Scene::paths_at(std::size_t tag_index, int antenna,
                                              double t_sec) const {
  const TagInfo& info = tags_.at(tag_index);
  const Vec3 tag = tag_position(tag_index, t_sec);
  const Vec3 ant = array_.antenna_position(antenna);
  std::vector<PathContribution> paths =
      propagation_.paths(tag, ant, bodies_at(t_sec), info.person_index,
                         array_.origin2d(), array_.axis);
  // Tag orientation / wearer shadowing modulates the tag's backscatter as a
  // whole (it changes what the tag radiates, not a single ray).
  const double t = motion_frozen_ ? 0.0 : t_sec;
  const double gain = persons_[static_cast<std::size_t>(info.person_index)].tag_gain(
      info.site, t, rf::Vec2{ant.x, ant.y});
  for (PathContribution& p : paths) p.gain *= gain;
  return paths;
}

}  // namespace m2ai::sim
