#include "sim/person.hpp"

#include <cmath>

namespace m2ai::sim {

const char* body_site_name(BodySite site) {
  switch (site) {
    case BodySite::kHand: return "hand";
    case BodySite::kArm: return "arm";
    case BodySite::kShoulder: return "shoulder";
  }
  return "?";
}

BodyParams BodyParams::random_volunteer(util::Rng& rng) {
  BodyParams p;
  p.height_m = rng.uniform(1.55, 1.90);
  p.body_radius_m = rng.uniform(0.16, 0.26);
  p.arm_length_m = 0.36 * p.height_m + rng.uniform(-0.03, 0.03);
  p.speed_scale = rng.uniform(0.85, 1.18);
  p.amplitude_scale = rng.uniform(0.85, 1.18);
  p.phase_offset = rng.uniform(0.0, 2.0 * M_PI);
  return p;
}

Person::Person(BodyParams params, rf::Vec2 start, double heading_rad, MotionSpec motion)
    : params_(params), start_(start), heading_(heading_rad), motion_(motion) {}

namespace {
// Smooth 0->1 transition used for the one-shot sit-down gait.
double smooth_step(double t, double t0, double duration) {
  const double u = (t - t0) / duration;
  if (u <= 0.0) return 0.0;
  if (u >= 1.0) return 1.0;
  return u * u * (3.0 - 2.0 * u);
}
}  // namespace

double Person::heading_at(double t_sec) const {
  if (motion_.torso == TorsoType::kTurn) {
    // Full rotation roughly every 1/torso_freq seconds.
    return heading_ + 2.0 * M_PI * motion_.torso_freq_hz * params_.speed_scale * t_sec;
  }
  return heading_;
}

rf::Vec2 Person::center_at(double t_sec) const {
  const double w = 2.0 * M_PI * motion_.gait_freq_hz * params_.speed_scale;
  const double amp = motion_.gait_amplitude_m * params_.amplitude_scale;
  const double ph = params_.phase_offset;
  const rf::Vec2 fwd{std::cos(heading_), std::sin(heading_)};
  const rf::Vec2 side{-fwd.y, fwd.x};

  switch (motion_.gait) {
    case GaitType::kStand: {
      // Gentle postural sway, a few centimetres.
      const double sway = 0.03 * params_.amplitude_scale;
      return start_ + fwd * (sway * std::sin(0.4 * w * t_sec + ph)) +
             side * (sway * std::cos(0.3 * w * t_sec + ph));
    }
    case GaitType::kWalkLine:
      return start_ + fwd * (amp * std::sin(w * t_sec + ph));
    case GaitType::kWalkLateral:
      return start_ + side * (amp * std::sin(w * t_sec + ph));
    case GaitType::kWalkCircle: {
      // Orbit a point `amp` ahead of the start pose.
      const rf::Vec2 orbit_center = start_ + fwd * amp;
      const double ang = w * t_sec + ph;
      return orbit_center + rf::Vec2{amp * std::cos(ang), amp * std::sin(ang)};
    }
    case GaitType::kSitDown:
      return start_;  // height handled in height_scale()
  }
  return start_;
}

double Person::height_scale(double t_sec) const {
  double scale = 1.0;
  const double speed = params_.speed_scale;
  if (motion_.gait == GaitType::kSitDown) {
    // Sit at ~1.5 s, taking ~1 s; seated height about 0.62 of standing.
    scale *= 1.0 - 0.38 * smooth_step(t_sec, 1.5 / speed, 1.0 / speed);
  }
  if (motion_.torso == TorsoType::kSquat) {
    const double w = 2.0 * M_PI * motion_.torso_freq_hz * speed;
    // 0..0.3 compression, smooth periodic squat.
    scale *= 1.0 - 0.15 * params_.amplitude_scale *
                       (1.0 - std::cos(w * t_sec + params_.phase_offset));
  }
  if (motion_.torso == TorsoType::kJump) {
    // Crouch before each hop (the negative half-cycle of the hop phase).
    const double w = 2.0 * M_PI * motion_.torso_freq_hz * params_.speed_scale;
    const double s = std::sin(w * t_sec + params_.phase_offset);
    if (s < 0.0) scale *= 1.0 + 0.12 * params_.amplitude_scale * s;
  }
  return scale;
}

double Person::jump_offset(double t_sec) const {
  if (motion_.torso != TorsoType::kJump) return 0.0;
  const double w = 2.0 * M_PI * motion_.torso_freq_hz * params_.speed_scale;
  const double s = std::sin(w * t_sec + params_.phase_offset);
  // Only the positive half-cycle lifts the body off the ground.
  return s > 0.0 ? 0.30 * params_.amplitude_scale * s : 0.0;
}

double Person::bend_angle(double t_sec) const {
  if (motion_.torso != TorsoType::kBend) return 0.0;
  const double w = 2.0 * M_PI * motion_.torso_freq_hz * params_.speed_scale;
  // 0 .. ~60 degrees forward bend.
  return 0.5 * params_.amplitude_scale *
         (1.0 - std::cos(w * t_sec + params_.phase_offset));
}

double Person::tag_gain(BodySite site, double t_sec, rf::Vec2 toward) const {
  const rf::Vec2 c = center_at(t_sec);
  const double heading = heading_at(t_sec);

  // Wearer shadowing: tags sit on the front of the body; facing away from
  // the receiver attenuates the backscatter by up to ~12 dB.
  const rf::Vec2 fwd{std::cos(heading), std::sin(heading)};
  const rf::Vec2 dir = (toward - c).normalized();
  const double facing = fwd.dot(dir);  // 1 facing receiver, -1 facing away
  double gain = 0.25 + 0.75 * (0.5 + 0.5 * facing);

  // Posture-driven tilt.
  const double speed = params_.speed_scale;
  if (motion_.torso == TorsoType::kSquat) {
    const double w = 2.0 * M_PI * motion_.torso_freq_hz * speed;
    const double compression =
        0.5 * (1.0 - std::cos(w * t_sec + params_.phase_offset));  // 0..1
    gain *= 1.0 - 0.45 * compression;
  }
  if (motion_.torso == TorsoType::kJump) {
    // Sharp dips while airborne: the whole body (and every tag on it) is in
    // free motion, far off its polarization-matched stance.
    gain *= 1.0 - 1.8 * jump_offset(t_sec);
  }
  {
    const double bend = bend_angle(t_sec);
    if (bend > 0.0 && site != BodySite::kHand) {
      gain *= std::max(0.25, std::cos(1.2 * bend));
    }
  }
  // Limb swings rock the hand/arm tag through polarization mismatch. The
  // modulation is asymmetric (tilting toward one side mismatches more than
  // the other), so its fundamental sits at the limb frequency itself.
  if (motion_.limb != LimbType::kNone && site != BodySite::kShoulder) {
    const double lw = 2.0 * M_PI * motion_.limb_freq_hz * speed;
    const double swing = std::sin(lw * t_sec + params_.phase_offset);
    const double depth = (site == BodySite::kHand) ? 0.40 : 0.20;
    gain *= 1.0 - depth * (0.5 + 0.5 * swing);
  }
  if (motion_.gait == GaitType::kSitDown) {
    // Seated posture slouches the tag plane slightly off broadside.
    gain *= 1.0 - 0.25 * smooth_step(t_sec, 1.5 / speed, 1.0 / speed);
  }
  return std::max(gain, 0.05);
}

Vec3 Person::tag_position(BodySite site, double t_sec) const {
  const rf::Vec2 c = center_at(t_sec);
  const double heading = heading_at(t_sec);
  const rf::Vec2 fwd{std::cos(heading), std::sin(heading)};
  const rf::Vec2 side{-fwd.y, fwd.x};
  const double h = params_.height_m;
  const double hs = height_scale(t_sec);
  const double jump = jump_offset(t_sec);
  const double bend = bend_angle(t_sec);

  // Base (upright, motionless) site offsets in the body frame.
  double lateral = 0.0, forward = 0.0, height = 0.0;
  switch (site) {
    case BodySite::kShoulder:
      lateral = 0.15;
      forward = 0.0;
      height = 0.82 * h;
      break;
    case BodySite::kArm:  // upper arm / elbow
      lateral = 0.24;
      forward = 0.02;
      height = 0.68 * h;
      break;
    case BodySite::kHand:
      lateral = 0.28;
      forward = 0.10;
      height = 0.52 * h;
      break;
  }

  // Forward bend pivots the upper body about hip height.
  const double hip = 0.55 * h;
  if (bend > 0.0 && height > hip) {
    const double lever = height - hip;
    forward += lever * std::sin(bend);
    height = hip + lever * std::cos(bend);
  }

  // Limb motion.
  const double lw = 2.0 * M_PI * motion_.limb_freq_hz * params_.speed_scale;
  const double lph = params_.phase_offset;
  const double arm = params_.arm_length_m * params_.amplitude_scale;
  const double limb_gain = (site == BodySite::kHand) ? 1.0
                           : (site == BodySite::kArm) ? 0.45
                                                      : 0.08;
  switch (motion_.limb) {
    case LimbType::kNone:
      break;
    case LimbType::kWave:
      lateral += limb_gain * 0.45 * arm * std::sin(lw * t_sec + lph);
      height += limb_gain * 0.25 * arm * std::abs(std::sin(lw * t_sec + lph));
      break;
    case LimbType::kPushPull:
      forward += limb_gain * 0.55 * arm * (0.5 + 0.5 * std::sin(lw * t_sec + lph));
      break;
    case LimbType::kSwingArms:
      forward += limb_gain * 0.50 * arm * std::sin(lw * t_sec + lph);
      break;
    case LimbType::kRaiseLower:
      height += limb_gain * 0.80 * arm * (0.5 + 0.5 * std::sin(lw * t_sec + lph));
      break;
  }

  const rf::Vec2 xy = c + side * lateral + fwd * forward;
  return Vec3{xy.x, xy.y, height * hs + jump};
}

}  // namespace m2ai::sim
