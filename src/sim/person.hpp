// Kinematic model of a person ("object of activity identification"): a
// moving body cylinder plus three tag sites (hand, arm, shoulder — the
// paper's default placement) whose 3-D trajectories are produced by a
// layered motion program: gait (whole-body translation), torso modifier
// (squat/jump/bend/turn), and limb motion (hand/arm oscillation).
#pragma once

#include <string>

#include "rf/geometry.hpp"
#include "util/rng.hpp"

namespace m2ai::sim {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

enum class BodySite { kHand = 0, kArm = 1, kShoulder = 2 };
inline constexpr int kNumBodySites = 3;
const char* body_site_name(BodySite site);

// Whole-body translation.
enum class GaitType {
  kStand,      // in place, gentle sway
  kWalkLine,   // oscillate along the heading direction
  kWalkLateral,  // oscillate perpendicular to the heading
  kWalkCircle,   // orbit around a point in front of the start pose
  kSitDown,      // lower into a chair once, then remain seated
};

// Whole-body posture modifier.
enum class TorsoType {
  kNone,
  kSquat,  // periodic vertical compression
  kJump,   // periodic vertical hops
  kBend,   // periodic forward bend (pick-something-up)
  kTurn,   // continuous rotation in place
};

// Hand/arm motion layered on top.
enum class LimbType {
  kNone,
  kWave,       // lateral hand wave
  kPushPull,   // hand extends/retracts along the heading
  kSwingArms,  // alternating fore-aft arm swing (exercise/march)
  kRaiseLower, // hand raises overhead and lowers
};

struct MotionSpec {
  GaitType gait = GaitType::kStand;
  double gait_freq_hz = 0.25;     // oscillation rate of the gait
  double gait_amplitude_m = 1.0;  // travel amplitude (or circle radius)
  TorsoType torso = TorsoType::kNone;
  double torso_freq_hz = 0.5;
  LimbType limb = LimbType::kNone;
  double limb_freq_hz = 1.2;
};

// Per-volunteer randomization (Sec. VI-A: volunteers vary in age, gender,
// height, weight).
struct BodyParams {
  double height_m = 1.70;       // 1.55 .. 1.90
  double body_radius_m = 0.20;  // occlusion cylinder radius
  double arm_length_m = 0.65;
  double speed_scale = 1.0;     // multiplies all motion frequencies
  double amplitude_scale = 1.0; // multiplies all motion amplitudes
  double phase_offset = 0.0;    // de-synchronizes periodic motions

  static BodyParams random_volunteer(util::Rng& rng);
};

class Person {
 public:
  Person(BodyParams params, rf::Vec2 start, double heading_rad, MotionSpec motion);

  // Body cylinder at time t (for occlusion tests).
  rf::Vec2 center_at(double t_sec) const;
  double body_radius() const { return params_.body_radius_m; }

  // 3-D position of a tag site at time t.
  Vec3 tag_position(BodySite site, double t_sec) const;

  // Effective radiated-gain factor in (0, 1] of a tag toward a receiver at
  // `toward`, at time t. Two real-world effects dominate a passive tag's
  // backscatter power and are modelled here: (a) wearer shadowing — the
  // body blocks a tag on its front when it faces away from the receiver —
  // and (b) posture-driven tag tilt (squat/jump/bend/limb swing rotate the
  // tag's antenna off its polarization-matched plane).
  double tag_gain(BodySite site, double t_sec, rf::Vec2 toward) const;

  const BodyParams& params() const { return params_; }
  const MotionSpec& motion() const { return motion_; }

 private:
  double heading_at(double t_sec) const;
  // Vertical scale from torso/gait state in [0.5, 1]; 1 = upright.
  double height_scale(double t_sec) const;
  double jump_offset(double t_sec) const;
  double bend_angle(double t_sec) const;

  BodyParams params_;
  rf::Vec2 start_;
  double heading_;
  MotionSpec motion_;
};

}  // namespace m2ai::sim
