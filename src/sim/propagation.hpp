// Multipath propagation between a tag and a reader antenna.
//
// Paths modelled per (tag, antenna) pair:
//   * the direct (line-of-sight) path;
//   * first-order specular reflections off each wall (image method);
//   * deflections via furniture scatterers (tag -> scatterer -> antenna).
//
// Any path segment passing through a person's body cylinder is attenuated
// (body occlusion), which is exactly the Fig. 2(b) effect: a moving person
// blocks a path, lowering its peak and perturbing the others.
//
// Following the paper's own signal model (Sec. III-B treats the tag as a
// narrowband source with per-path one-way geometry, phases counted round
// trip), the channel for antenna n is
//     h_n = sum_p g_p * exp(-j * 2*pi * (2 * L_p) / lambda),
// i.e. each ray carries the round-trip phase of its own path. Cross-path
// forward/backward products of a full monostatic model are second-order and
// omitted, matching Eqs. 3-6 of the paper (see DESIGN.md).
#pragma once

#include <complex>
#include <vector>

#include "rf/geometry.hpp"
#include "sim/environment.hpp"
#include "sim/person.hpp"

namespace m2ai::sim {

enum class PathKind { kDirect, kWallReflection, kScatterer };

struct PathContribution {
  PathKind kind = PathKind::kDirect;
  double length_m = 0.0;    // one-way 3-D path length
  double gain = 0.0;        // linear amplitude gain (includes occlusion)
  double aoa_deg = 0.0;     // arrival angle at the array (ground truth)
  int blocked_by = 0;       // number of body cylinders intersected
};

// Snapshot of every body cylinder in the scene at one instant.
struct BodyDisk {
  rf::Vec2 center;
  double radius = 0.0;
  int person_index = -1;
};

struct PropagationOptions {
  // Extra attenuation per intersected body cylinder (dB). ~10 dB is typical
  // for a human torso at 900 MHz.
  double body_loss_db = 11.0;
  // Paths weaker than this fraction of the direct free-space gain at 1 m
  // are dropped.
  double min_relative_gain = 1e-4;
  bool enable_wall_reflections = true;
  bool enable_scatterers = true;
};

class PropagationModel {
 public:
  PropagationModel(const Environment& env, PropagationOptions options = {});

  // All propagation paths from `tag` to `antenna` given the current body
  // disks. `owner_index` is the person wearing the tag: their own cylinder
  // never occludes the segment end at the tag (the tag sits on their body),
  // but can still occlude scatterer legs on the far side.
  std::vector<PathContribution> paths(const Vec3& tag, const Vec3& antenna,
                                      const std::vector<BodyDisk>& bodies,
                                      int owner_index,
                                      rf::Vec2 array_origin,
                                      rf::Vec2 array_axis) const;

  // Complex one-way-summed channel with round-trip phases at `wavelength`.
  std::complex<double> channel(const std::vector<PathContribution>& paths,
                               double wavelength_m) const;

  const Environment& environment() const { return env_; }
  const PropagationOptions& options() const { return options_; }

 private:
  int count_blockers(rf::Vec2 a, rf::Vec2 b, const std::vector<BodyDisk>& bodies,
                     int skip_person_near_a) const;

  Environment env_;
  PropagationOptions options_;
};

}  // namespace m2ai::sim
