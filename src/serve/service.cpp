#include "serve/service.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "kern/backend.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace m2ai::serve {

namespace {
// Flow ids shared by the DSP-side "serve.request" origin and the NN-side
// target so Perfetto draws an arrow from each window close to its
// prediction. Offset keeps them clear of other flow id spaces.
constexpr std::uint64_t kFlowBase = 0x5e12'0000'0000'0000ULL;
}  // namespace

Service::Service(ServeConfig serve, core::PipelineConfig pipeline,
                 std::unique_ptr<core::M2AINetwork> network)
    : serve_(serve), pipeline_(pipeline), network_(std::move(network)) {
  if (serve_.dsp_workers < 1) {
    throw std::invalid_argument("Service: dsp_workers must be >= 1");
  }
  if (network_ == nullptr) {
    throw std::invalid_argument("Service: network must not be null");
  }
  sequence_frames_ = serve_.sequence_frames > 0 ? serve_.sequence_frames
                                                : pipeline_.windows_per_sample;
  if (sequence_frames_ < 1) {
    throw std::invalid_argument("Service: sequence_frames must be >= 1");
  }
}

Service::~Service() {
  try {
    finish();
  } catch (...) {
    // Destructor must not throw; finish() only throws on logic errors that
    // would already have surfaced in normal use.
  }
}

int Service::num_tags() const {
  return pipeline_.num_persons * pipeline_.tags_per_person;
}

int Service::add_stream(const dsp::PhaseCalibrator* calibrator, double t_begin) {
  if (started_) {
    throw std::logic_error("Service::add_stream: call before start()");
  }
  auto stream = std::make_unique<Stream>();
  stream->assembler = std::make_unique<StreamAssembler>(pipeline_, calibrator,
                                                        num_tags(), t_begin);
  stream->ingest =
      std::make_unique<par::SpscQueue<StampedReport>>(serve_.ingest_capacity);
  streams_.push_back(std::move(stream));
  return static_cast<int>(streams_.size()) - 1;
}

void Service::start() {
  if (started_) throw std::logic_error("Service::start: already started");
  started_ = true;
  const int workers = serve_.dsp_workers;
  requests_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    requests_.push_back(
        std::make_unique<par::SpscQueue<Request>>(serve_.request_capacity));
  }
  nn_thread_ = std::thread([this] { nn_loop(); });
  dsp_threads_.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    dsp_threads_.emplace_back([this, w] { dsp_loop(w); });
  }
}

bool Service::offer(int stream, const sim::TagReport& report) {
  Stream& s = *streams_[static_cast<std::size_t>(stream)];
  return s.ingest->try_push(
      StampedReport{report, obs::timeline_now_ns()});
}

void Service::push(int stream, const sim::TagReport& report) {
  while (!offer(stream, report)) std::this_thread::yield();
}

void Service::push_bytes(int stream, const std::uint8_t* data, std::size_t n) {
  Stream& s = *streams_[static_cast<std::size_t>(stream)];
  s.parse_buf.clear();
  s.parser.feed(data, n, s.parse_buf);
  for (const sim::TagReport& report : s.parse_buf) push(stream, report);
}

void Service::finish() {
  if (!started_ || finished_) {
    finished_ = true;
    return;
  }
  finished_ = true;
  for (auto& s : streams_) s->producer_done.store(true, std::memory_order_release);
  for (auto& t : dsp_threads_) t.join();
  // All workers have flushed and bumped workers_done_; the NN thread exits
  // once every request ring is empty.
  nn_thread_.join();
  // Producers are done (finish() contract), so the wire parsers are safe to
  // close from here: a buffered partial frame becomes truncated_bytes.
  for (auto& s : streams_) s->parser.finish();

  // Export the aggregate as serve.* gauges and proto.* counters so every
  // drop in the ingest path — late, invalid, or rejected on the wire — is
  // visible in the metrics report, not just in per-call stats() snapshots.
  const ServiceStats st = stats();
  auto& reg = obs::registry();
  reg.gauge("serve.reports").set(static_cast<double>(st.reports));
  reg.gauge("serve.late_dropped").set(static_cast<double>(st.late_dropped));
  reg.gauge("serve.invalid_dropped").set(static_cast<double>(st.invalid_dropped));
  reg.gauge("serve.snapshots").set(static_cast<double>(st.snapshots));
  reg.gauge("serve.frames").set(static_cast<double>(st.frames));
  reg.gauge("serve.predictions_total").set(static_cast<double>(st.predictions));
  reg.gauge("serve.batches").set(static_cast<double>(st.batches));
  proto::publish_stats(st.wire);
}

const std::vector<Prediction>& Service::predictions(int stream) const {
  return streams_[static_cast<std::size_t>(stream)]->predictions;
}

ServiceStats Service::stats() const {
  ServiceStats st;
  for (const auto& s : streams_) {
    // Fold every assembler field — a counter that exists per stream but is
    // dropped here would make its rejects invisible end to end.
    const AssemblerStats& a = s->assembler->stats();
    st.reports += a.reports;
    st.late_dropped += a.late_dropped;
    st.invalid_dropped += a.invalid_dropped;
    st.snapshots += a.snapshots;
    st.wire.add(s->parser.stats());
  }
  st.frames = frames_total_.load(std::memory_order_relaxed);
  st.predictions = predictions_total_.load(std::memory_order_relaxed);
  st.batches = batches_total_.load(std::memory_order_relaxed);
  return st;
}

void Service::enqueue_request(int worker, Request request) {
  // Backpressure: a full request ring stalls this DSP worker (and, as its
  // ingest rings fill, eventually the producers) instead of dropping work.
  auto& ring = *requests_[static_cast<std::size_t>(worker)];
  while (!ring.try_push(std::move(request))) std::this_thread::yield();
}

void Service::on_frames(int stream_index, int worker,
                        std::vector<core::SpectrumFrame> frames,
                        std::uint64_t enqueue_ns) {
  Stream& s = *streams_[static_cast<std::size_t>(stream_index)];
  const auto seq_len = static_cast<std::size_t>(sequence_frames_);
  for (auto& frame : frames) {
    s.recent.push_back(std::move(frame));
    if (s.recent.size() > seq_len) s.recent.pop_front();
    ++s.frames_closed;
    frames_total_.fetch_add(1, std::memory_order_relaxed);
    obs::registry().counter("serve.frames").add();
    if (s.recent.size() < seq_len) continue;

    Request request;
    request.stream = stream_index;
    request.frame_index = s.frames_closed - 1;
    request.enqueue_ns = enqueue_ns;
    request.flow = kFlowBase + flow_seq_.fetch_add(1, std::memory_order_relaxed);
    request.frames.assign(s.recent.begin(), s.recent.end());
    s.requested_any = true;
    obs::timeline_flow_start("serve.request", request.flow);
    enqueue_request(worker, std::move(request));
  }
}

void Service::dsp_loop(int worker) {
  obs::register_thread_name("serve-dsp-" + std::to_string(worker));
  const auto owns = [this, worker](std::size_t i) {
    return static_cast<int>(i % static_cast<std::size_t>(serve_.dsp_workers)) ==
           worker;
  };
  bool all_done = false;
  while (!all_done) {
    all_done = true;
    bool idle = true;
    for (std::size_t i = 0; i < streams_.size(); ++i) {
      if (!owns(i)) continue;
      Stream& s = *streams_[i];
      StampedReport sr;
      // Bounded drain per visit keeps one hot stream from starving the
      // worker's other streams.
      for (int budget = 256; budget > 0 && s.ingest->try_pop(sr); --budget) {
        idle = false;
        on_frames(static_cast<int>(i), worker, s.assembler->ingest(sr.report),
                  sr.enqueue_ns);
      }
      if (!(s.producer_done.load(std::memory_order_acquire) &&
            s.ingest->empty_approx())) {
        all_done = false;
      }
    }
    if (idle && !all_done) std::this_thread::yield();
  }
  // End of every owned stream: close the in-progress window, and if a stream
  // never accumulated a full sequence, predict once on what it has.
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (!owns(i)) continue;
    Stream& s = *streams_[i];
    const std::uint64_t now = obs::timeline_now_ns();
    on_frames(static_cast<int>(i), worker, s.assembler->flush(), now);
    if (!s.requested_any && !s.recent.empty()) {
      Request request;
      request.stream = static_cast<int>(i);
      request.frame_index = s.frames_closed - 1;
      request.enqueue_ns = now;
      request.flow = kFlowBase + flow_seq_.fetch_add(1, std::memory_order_relaxed);
      request.frames.assign(s.recent.begin(), s.recent.end());
      s.requested_any = true;
      obs::timeline_flow_start("serve.request", request.flow);
      enqueue_request(worker, std::move(request));
    }
  }
  workers_done_.fetch_add(1, std::memory_order_release);
}

void Service::nn_loop() {
  obs::register_thread_name("serve-nn");
  obs::Histogram& e2e = obs::registry().histogram("serve.e2e_ms");
  obs::Counter& predictions = obs::registry().counter("serve.predictions");
  std::vector<Request> batch;
  for (;;) {
    batch.clear();
    for (auto& ring : requests_) {
      Request r;
      while (batch.size() < serve_.max_batch && ring->try_pop(r)) {
        batch.push_back(std::move(r));
      }
      if (batch.size() >= serve_.max_batch) break;
    }
    if (batch.empty()) {
      if (workers_done_.load(std::memory_order_acquire) == serve_.dsp_workers) {
        bool drained = true;
        for (auto& ring : requests_) drained = drained && ring->empty_approx();
        if (drained) break;
      }
      std::this_thread::yield();
      continue;
    }
    M2AI_OBS_SPAN("serve.nn_batch");
    batches_total_.fetch_add(1, std::memory_order_relaxed);
    // Under the fast backend the whole micro-batch runs as one batched
    // inference — one gemm across streams per LSTM timestep. The reference
    // path keeps the per-request predict() calls below so its serving
    // behavior stays identical to the pre-backend code. The int8 backend
    // batches even a single request: predict_batch is where the quantized
    // forward lives, and the s8 gemm wins at any batch size.
    std::vector<int> batch_labels;
    const kern::BackendKind kind = kern::active_backend_kind();
    if ((batch.size() > 1 && kind == kern::BackendKind::kFast) ||
        (kind == kern::BackendKind::kInt8 && network_->quant_ready())) {
      std::vector<const core::FrameSequence*> seqs;
      seqs.reserve(batch.size());
      for (const Request& r : batch) seqs.push_back(&r.frames);
      obs::ScopedSpan span("serve.predict_batch");
      span.arg("requests", static_cast<std::int64_t>(batch.size()));
      batch_labels = network_->predict_batch(seqs);
    }
    for (std::size_t bi = 0; bi < batch.size(); ++bi) {
      Request& request = batch[bi];
      obs::timeline_flow_end("serve.request", request.flow);
      int label = 0;
      if (!batch_labels.empty()) {
        label = batch_labels[bi];
      } else {
        obs::ScopedSpan span("serve.predict");
        span.arg("stream", request.stream);
        span.arg("frame", static_cast<std::int64_t>(request.frame_index));
        label = network_->predict(request.frames);
      }
      const double latency_ms =
          static_cast<double>(obs::timeline_now_ns() - request.enqueue_ns) / 1e6;
      // record_always: ServiceStats and the bench summary need the latency
      // distribution even when the obs switch is off.
      e2e.record_always(latency_ms);
      predictions.add();
      predictions_total_.fetch_add(1, std::memory_order_relaxed);
      streams_[static_cast<std::size_t>(request.stream)]->predictions.push_back(
          Prediction{request.frame_index, label, latency_ms});
    }
  }
}

}  // namespace m2ai::serve
