// Incrementally maintained spatial covariance for the streaming serve path.
//
// The batch pipeline buffers every aligned snapshot of a window and computes
// the covariance in one burst at window close (dsp::sample_covariance). At
// serving time that burst lands exactly when the frame is due — the worst
// moment. IncrementalCovariance spreads the cost across arrivals instead:
// each completed snapshot applies one rank-1 update (dsp::accumulate_outer)
// to a running outer-product sum, and window close only pays the cheap
// finalization (smoothing / forward-backward / loading).
//
// Numerical contract:
//   * push-only (tumbling windows): the running sum sees the same rank-1
//     additions, in the same order, as a batch recompute over the same
//     snapshots — covariance() is BITWISE identical to
//     dsp::sample_covariance(window, options).
//   * with evictions (sliding windows): downdates subtract what an earlier
//     add contributed, which does not round-trip in floating point, so the
//     sum drifts from the batch value by accumulated rounding (epsilon
//     scale per eviction). A full recompute over the retained window restores
//     bitwise agreement; evict_oldest() triggers one automatically every
//     `resync_every` downdates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "dsp/covariance.hpp"

namespace m2ai::serve {

class IncrementalCovariance {
 public:
  // `num_antennas` fixes the snapshot length N (sum is N x N).
  // `resync_every` = downdates between automatic full recomputes; 0 disables
  // automatic resync (callers drive resync() themselves).
  explicit IncrementalCovariance(int num_antennas, std::size_t resync_every = 64);

  // Append one aligned snapshot (length N): sum += x x^H, window grows.
  void push(std::vector<dsp::cdouble> snapshot);

  // Remove the oldest retained snapshot: sum -= x x^H. No-op on an empty
  // window. Counts toward the automatic-resync budget.
  void evict_oldest();

  // Recompute the sum from the retained window in push order — bitwise the
  // batch accumulation. Resets the downdate counter.
  void resync();

  // Drop all snapshots and zero the sum (start of a new tumbling window).
  void clear();

  std::size_t size() const { return window_.size(); }
  bool empty() const { return window_.empty(); }
  std::size_t downdates_since_resync() const { return downdates_since_resync_; }
  std::uint64_t resyncs() const { return resyncs_; }

  // Finalized covariance over the retained window (throws if empty, like
  // sample_covariance). Bitwise equal to
  // dsp::sample_covariance({window begin..end}, options) when no eviction
  // happened since the last resync; within rounding drift otherwise.
  dsp::CMatrix covariance(const dsp::CovarianceOptions& options = {}) const;

  const std::deque<std::vector<dsp::cdouble>>& window() const { return window_; }

 private:
  std::size_t num_antennas_;
  std::size_t resync_every_;
  std::size_t downdates_since_resync_ = 0;
  std::uint64_t resyncs_ = 0;
  dsp::CMatrix sum_;
  std::deque<std::vector<dsp::cdouble>> window_;
};

}  // namespace m2ai::serve
