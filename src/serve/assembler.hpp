// Online frame assembly: the streaming counterpart of core::FrameBuilder.
//
// FrameBuilder takes the complete report vector of a sample and produces all
// T frames in one call. At serving time reports arrive one at a time, so the
// assembler keeps per-(tag, antenna) accumulators for the window in
// progress, completes an aligned snapshot the moment every antenna has seen
// its k-th reading (and applies it to the tag's IncrementalCovariance as a
// rank-1 update right then), and emits the finished SpectrumFrame when a
// report crosses the window boundary.
//
// Equivalence contract (tested by ServeAssembler.BitwiseMatchesFrameBuilder):
// fed the same time-ordered reports, ingest()+flush() produce frames whose
// tensors are bitwise identical to FrameBuilder::build over the same window
// grid. The pseudospectrum comes from the incrementally maintained
// covariance — exact because windows tumble, so the covariance only ever
// sees push-order rank-1 additions (see serve/incremental.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "core/frames.hpp"
#include "serve/incremental.hpp"

namespace m2ai::serve {

struct AssemblerStats {
  std::uint64_t reports = 0;         // in-range reports accumulated
  std::uint64_t late_dropped = 0;    // reports for an already-closed window
  std::uint64_t invalid_dropped = 0; // out-of-range tag_id/antenna/channel
  std::uint64_t snapshots = 0;       // aligned snapshots completed
  std::uint64_t frames = 0;          // windows closed
};

class StreamAssembler {
 public:
  // Same construction contract as FrameBuilder; `t_begin` anchors window 0
  // (reports before it are dropped as late).
  StreamAssembler(const core::PipelineConfig& config,
                  const dsp::PhaseCalibrator* calibrator, int num_tags,
                  double t_begin);

  // Feed one report. Reports must be time-ordered (the reader model emits
  // them that way; a late report is dropped and counted). Returns the frames
  // this arrival closed: empty while the report falls into the window in
  // progress, one frame per boundary crossed otherwise (windows nobody
  // reported in close as zero frames, exactly like FrameBuilder).
  std::vector<core::SpectrumFrame> ingest(const sim::TagReport& report);

  // Close the window in progress (end of stream). No-op before the first
  // in-range report.
  std::vector<core::SpectrumFrame> flush();

  // Index of the window in progress (0-based; -1 before any in-range report).
  long window_index() const { return started_ ? current_window_ : -1; }

  const AssemblerStats& stats() const { return stats_; }

 private:
  // Streaming mirror of FrameBuilder::TagWindow plus the incremental state.
  struct TagAccum {
    std::vector<std::vector<double>> phases;      // [antenna][k], arrival order
    std::vector<std::vector<double>> amplitudes;
    std::vector<std::vector<double>> rssis;
    std::vector<std::vector<dsp::cdouble>> snapshots;  // aligned, completed
    IncrementalCovariance cov;
    std::size_t pushed = 0;  // snapshots applied to cov == snapshots.size()

    explicit TagAccum(int num_antennas);
  };

  core::SpectrumFrame close_window();
  void reset_accums();

  core::PipelineConfig config_;
  const dsp::PhaseCalibrator* calibrator_;
  int num_tags_;
  double t_begin_;
  // Supplies the MusicEstimator configured exactly as the batch path's (same
  // options derivation), so estimate_from_covariance resolves angles against
  // the identical steering table.
  core::FrameBuilder builder_;
  bool started_ = false;
  long current_window_ = 0;
  std::vector<TagAccum> tags_;
  AssemblerStats stats_;
};

}  // namespace m2ai::serve
