// Online inference service: many report streams -> one M2AINetwork.
//
// Topology (all channels are bounded lock-free SPSC rings, par/spsc_queue):
//
//   producer threads          DSP workers                 NN thread
//   (one per stream) --ring-> (stream s owned by          (single model)
//                              worker s % K)    --ring->
//
// Each DSP worker owns a disjoint set of streams: it drains their ingest
// rings, feeds the per-stream StreamAssembler (incremental covariance +
// frame assembly), keeps the sliding sequence of the last T frames, and —
// every time a window closes with a full sequence available — enqueues an
// inference request on its private ring to the NN thread. The NN thread
// drains the worker rings in micro-batches (up to max_batch requests per
// wake) so one network serves hundreds of streams without a lock anywhere on
// the steady-state path.
//
// Determinism: a stream's predictions depend only on its own report
// sequence — assembly is per-stream state, the network is pure per predict()
// call, and the single NN thread serializes calls — so the labels for N
// streams replaying the same reports are identical at any worker count or
// stream count (ServeService.DeterministicAcrossStreamCounts).
//
// Latency accounting: every report is stamped at enqueue; a prediction's
// end-to-end latency runs from the stamp of the report that closed its
// window to the moment predict() returns, recorded in the
// "serve.e2e_ms" histogram (recorded even when the obs switch is off, so
// ServiceStats is always meaningful).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "par/spsc_queue.hpp"
#include "proto/parser.hpp"
#include "serve/assembler.hpp"

namespace m2ai::serve {

struct ServeConfig {
  int dsp_workers = 2;
  // Frames per inference sequence; 0 uses pipeline.windows_per_sample.
  int sequence_frames = 0;
  // NN micro-batch: max requests drained per wake of the NN thread.
  std::size_t max_batch = 8;
  std::size_t ingest_capacity = 4096;   // per-stream report ring
  std::size_t request_capacity = 256;   // per-worker request ring
};

struct Prediction {
  std::size_t frame_index = 0;  // window index whose close triggered this
  int label = 0;
  double latency_ms = 0.0;
};

// Aggregate over every per-stream assembler (all AssemblerStats fields — a
// reject that is counted per stream but lost in the aggregate is still a
// silent drop end to end) plus the NN-side totals and, when byte ingest is
// used, the per-stream wire parsers.
struct ServiceStats {
  std::uint64_t reports = 0;
  std::uint64_t late_dropped = 0;
  std::uint64_t invalid_dropped = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t frames = 0;
  std::uint64_t predictions = 0;
  std::uint64_t batches = 0;  // NN wakes that processed >= 1 request
  // Wire ingest (push_bytes): summed proto::FrameParser stats. All zero when
  // every stream pushed in-memory reports.
  proto::ParserStats wire;
};

class Service {
 public:
  // Takes ownership of the network; `pipeline` must match the configuration
  // the reports were produced under (window_sec, antennas, tags, features).
  Service(ServeConfig serve, core::PipelineConfig pipeline,
          std::unique_ptr<core::M2AINetwork> network);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  // Register a stream before start(). `calibrator` may be null and must
  // outlive the service; `t_begin` anchors the stream's window 0. Returns
  // the stream id used by offer()/push()/predictions().
  int add_stream(const dsp::PhaseCalibrator* calibrator, double t_begin);

  int num_tags() const;

  void start();

  // Non-blocking ingest; false when the stream's ring is full. At most one
  // producer thread per stream (SPSC contract).
  bool offer(int stream, const sim::TagReport& report);
  // Blocking ingest (yields until the ring drains).
  void push(int stream, const sim::TagReport& report);

  // Wire ingest: feed a raw reader byte chunk (JRD-4035-style frames, see
  // src/proto) through the stream's FrameParser and push every decoded
  // report (blocking, like push()). Parser state is producer-private — the
  // same one-producer-per-stream contract as offer()/push(); mixing
  // push_bytes and push on one stream is allowed but chunk/report order is
  // the caller's problem. Malformed bytes never throw; they land in the
  // parser's per-cause counters, surfaced via stats().wire after finish().
  void push_bytes(int stream, const std::uint8_t* data, std::size_t n);

  // Ends ingest: flushes every assembler, drains all queues, joins all
  // threads. Call after every producer has stopped pushing. Idempotent.
  void finish();

  // Per-stream predictions in frame order. Stable only after finish().
  const std::vector<Prediction>& predictions(int stream) const;

  // Aggregate counters. Exact after finish(); a racy snapshot before.
  ServiceStats stats() const;

 private:
  struct StampedReport {
    sim::TagReport report;
    std::uint64_t enqueue_ns = 0;
  };
  struct Request {
    int stream = 0;
    std::size_t frame_index = 0;
    std::uint64_t enqueue_ns = 0;
    std::uint64_t flow = 0;  // timeline flow arrow: window close -> prediction
    core::FrameSequence frames;
  };
  struct Stream {
    std::unique_ptr<StreamAssembler> assembler;
    std::unique_ptr<par::SpscQueue<StampedReport>> ingest;
    // Wire ingest state, touched only by the stream's producer thread until
    // finish() (which runs after all producers stopped).
    proto::FrameParser parser;
    std::vector<sim::TagReport> parse_buf;
    std::atomic<bool> producer_done{false};
    // DSP-worker-private sliding sequence state.
    std::deque<core::SpectrumFrame> recent;
    std::size_t frames_closed = 0;
    bool requested_any = false;
    // NN-thread-private until finish().
    std::vector<Prediction> predictions;
  };

  void dsp_loop(int worker);
  void nn_loop();
  void on_frames(int stream_index, int worker,
                 std::vector<core::SpectrumFrame> frames,
                 std::uint64_t enqueue_ns);
  void enqueue_request(int worker, Request request);

  ServeConfig serve_;
  core::PipelineConfig pipeline_;
  std::unique_ptr<core::M2AINetwork> network_;
  int sequence_frames_;

  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<std::unique_ptr<par::SpscQueue<Request>>> requests_;  // per worker
  std::vector<std::thread> dsp_threads_;
  std::thread nn_thread_;
  std::atomic<int> workers_done_{0};
  bool started_ = false;
  bool finished_ = false;

  std::atomic<std::uint64_t> frames_total_{0};
  std::atomic<std::uint64_t> predictions_total_{0};
  std::atomic<std::uint64_t> batches_total_{0};
  std::atomic<std::uint64_t> flow_seq_{0};
};

}  // namespace m2ai::serve
