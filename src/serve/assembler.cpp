#include "serve/assembler.hpp"

#include <cmath>

#include "dsp/periodogram.hpp"
#include "dsp/phase.hpp"
#include "obs/trace.hpp"
#include "rf/constants.hpp"

namespace m2ai::serve {

StreamAssembler::TagAccum::TagAccum(int num_antennas)
    : phases(static_cast<std::size_t>(num_antennas)),
      amplitudes(static_cast<std::size_t>(num_antennas)),
      rssis(static_cast<std::size_t>(num_antennas)),
      cov(num_antennas, /*resync_every=*/0) {}

StreamAssembler::StreamAssembler(const core::PipelineConfig& config,
                                 const dsp::PhaseCalibrator* calibrator,
                                 int num_tags, double t_begin)
    : config_(config),
      calibrator_(calibrator),
      num_tags_(num_tags),
      t_begin_(t_begin),
      builder_(config, calibrator, num_tags) {
  tags_.reserve(static_cast<std::size_t>(num_tags));
  for (int t = 0; t < num_tags; ++t) tags_.emplace_back(config.num_antennas);
}

std::vector<core::SpectrumFrame> StreamAssembler::ingest(
    const sim::TagReport& report) {
  std::vector<core::SpectrumFrame> closed;
  const double rel = report.time_sec - t_begin_;
  const long w = static_cast<long>(std::floor(rel / config_.window_sec));
  if (w < 0 || (started_ && w < current_window_)) {
    ++stats_.late_dropped;
    return closed;
  }
  if (!started_) {
    // Window 0 opens at the first in-range report even if that report lands
    // in a later window — the skipped windows close as zero frames so frame
    // index always equals window index.
    started_ = true;
    current_window_ = 0;
  }
  while (current_window_ < w) {
    closed.push_back(close_window());
    ++current_window_;
  }

  // A report the stream cannot place is dropped with accounting, never
  // silently: wire-ingested streams see corrupt-but-checksum-valid ids, and
  // an out-of-range channel would throw inside the calibrator below.
  const int tag = static_cast<int>(report.tag_id) - 1;
  if (tag < 0 || tag >= num_tags_ || report.antenna < 0 ||
      report.antenna >= config_.num_antennas || report.channel < 0 ||
      report.channel >= rf::kNumChannels) {
    ++stats_.invalid_dropped;
    return closed;
  }

  // Same calibration application as FrameBuilder::build (Eq. 1).
  double psi = report.phase_rad;
  if (calibrator_ != nullptr) {
    psi = calibrator_->apply(report.tag_id, report.antenna, report.channel, psi);
  }
  TagAccum& acc = tags_[static_cast<std::size_t>(tag)];
  const auto ant = static_cast<std::size_t>(report.antenna);
  acc.phases[ant].push_back(psi);
  acc.amplitudes[ant].push_back(core::rssi_to_amplitude(report.rssi_dbm));
  acc.rssis[ant].push_back(report.rssi_dbm);
  ++stats_.reports;

  // Complete every aligned snapshot this reading unlocked: snapshot k exists
  // once each antenna has >= k+1 readings. Completing them here — instead of
  // at window close — is what lets the covariance absorb them as rank-1
  // updates in arrival order (the same order the batch loop uses, hence the
  // bitwise contract).
  const auto num_ant = static_cast<std::size_t>(config_.num_antennas);
  std::size_t min_count = acc.phases[0].size();
  for (std::size_t a = 1; a < num_ant; ++a) {
    min_count = std::min(min_count, acc.phases[a].size());
  }
  while (acc.pushed < min_count) {
    std::vector<dsp::cdouble> snap(num_ant);
    for (std::size_t a = 0; a < num_ant; ++a) {
      snap[a] = std::polar(acc.amplitudes[a][acc.pushed], acc.phases[a][acc.pushed]);
    }
    acc.snapshots.push_back(snap);
    acc.cov.push(std::move(snap));
    ++acc.pushed;
    ++stats_.snapshots;
  }
  return closed;
}

std::vector<core::SpectrumFrame> StreamAssembler::flush() {
  std::vector<core::SpectrumFrame> closed;
  if (!started_) return closed;
  closed.push_back(close_window());
  ++current_window_;
  return closed;
}

core::SpectrumFrame StreamAssembler::close_window() {
  M2AI_OBS_SPAN("serve.frame");
  // Mirrors FrameBuilder::make_frame row by row; the spectral path differs
  // only in sourcing the covariance from the incremental sum.
  const int num_ant = config_.num_antennas;
  const core::FeatureMode mode = config_.feature_mode;
  core::SpectrumFrame frame;
  frame.has_pseudo = (mode == core::FeatureMode::kM2AI ||
                      mode == core::FeatureMode::kMusicOnly);
  frame.has_aux = (mode != core::FeatureMode::kMusicOnly);
  if (frame.has_pseudo) frame.pseudo = nn::Tensor({num_tags_, rf::kNumAngleBins});
  if (frame.has_aux) frame.aux = nn::Tensor({num_tags_, num_ant});

  for (int tag = 0; tag < num_tags_; ++tag) {
    TagAccum& acc = tags_[static_cast<std::size_t>(tag)];

    if (mode == core::FeatureMode::kPhaseOnly) {
      for (int a = 0; a < num_ant; ++a) {
        const auto& ph = acc.phases[static_cast<std::size_t>(a)];
        if (ph.empty()) continue;
        frame.aux.at(tag, a) = static_cast<float>(
            dsp::wrap_2pi(dsp::circular_mean(ph)) / (2.0 * M_PI));
      }
      continue;
    }
    if (mode == core::FeatureMode::kRssiOnly) {
      for (int a = 0; a < num_ant; ++a) {
        const auto& r = acc.rssis[static_cast<std::size_t>(a)];
        if (r.empty()) continue;
        double s = 0.0;
        for (double v : r) s += v;
        frame.aux.at(tag, a) =
            static_cast<float>((s / static_cast<double>(r.size()) + 90.0) / 60.0);
      }
      continue;
    }

    // Spectral modes: same skip rule as the batch path — fewer than two
    // aligned snapshots leaves a zero row.
    if (acc.pushed < 2) continue;
    if (frame.has_pseudo) {
      const dsp::MusicResult music = builder_.music().estimate_from_covariance(
          acc.cov.covariance(config_.covariance));
      for (int bin = 0; bin < rf::kNumAngleBins; ++bin) {
        frame.pseudo.at(tag, bin) =
            static_cast<float>(music.spectrum[static_cast<std::size_t>(bin)]);
      }
    }
    if (frame.has_aux) {
      const std::vector<double> period = dsp::averaged_periodogram(acc.snapshots);
      for (int a = 0; a < num_ant; ++a) {
        frame.aux.at(tag, a) =
            core::compress_power(period[static_cast<std::size_t>(a)]);
      }
    }
  }
  reset_accums();
  ++stats_.frames;
  return frame;
}

void StreamAssembler::reset_accums() {
  for (TagAccum& acc : tags_) {
    for (auto& v : acc.phases) v.clear();
    for (auto& v : acc.amplitudes) v.clear();
    for (auto& v : acc.rssis) v.clear();
    acc.snapshots.clear();
    acc.cov.clear();
    acc.pushed = 0;
  }
}

}  // namespace m2ai::serve
