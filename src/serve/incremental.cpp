#include "serve/incremental.hpp"

#include <stdexcept>
#include <utility>

namespace m2ai::serve {

IncrementalCovariance::IncrementalCovariance(int num_antennas,
                                             std::size_t resync_every)
    : num_antennas_(static_cast<std::size_t>(num_antennas)),
      resync_every_(resync_every),
      sum_(num_antennas_, num_antennas_) {
  if (num_antennas <= 0) {
    throw std::invalid_argument("IncrementalCovariance: num_antennas must be > 0");
  }
}

void IncrementalCovariance::push(std::vector<dsp::cdouble> snapshot) {
  dsp::accumulate_outer(sum_, snapshot);
  window_.push_back(std::move(snapshot));
}

void IncrementalCovariance::evict_oldest() {
  if (window_.empty()) return;
  dsp::downdate_outer(sum_, window_.front());
  window_.pop_front();
  ++downdates_since_resync_;
  if (resync_every_ > 0 && downdates_since_resync_ >= resync_every_) resync();
}

void IncrementalCovariance::resync() {
  sum_ = dsp::CMatrix(num_antennas_, num_antennas_);
  for (const auto& snap : window_) dsp::accumulate_outer(sum_, snap);
  downdates_since_resync_ = 0;
  ++resyncs_;
}

void IncrementalCovariance::clear() {
  sum_ = dsp::CMatrix(num_antennas_, num_antennas_);
  window_.clear();
  downdates_since_resync_ = 0;
}

dsp::CMatrix IncrementalCovariance::covariance(
    const dsp::CovarianceOptions& options) const {
  return dsp::finalize_covariance(sum_, window_.size(), options);
}

}  // namespace m2ai::serve
