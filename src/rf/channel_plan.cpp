#include "rf/channel_plan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace m2ai::rf {

double channel_frequency_hz(int ch) {
  return kBandLowHz + kBandStepHz * static_cast<double>(ch);
}

double channel_wavelength_m(int ch) {
  return kSpeedOfLight / channel_frequency_hz(ch);
}

int nearest_channel(double freq_hz) {
  const double raw = (freq_hz - kBandLowHz) / kBandStepHz;
  const int ch = static_cast<int>(std::lround(raw));
  return std::clamp(ch, 0, kNumChannels - 1);
}

int common_channel() { return nearest_channel(kCommonFrequencyHz); }

HopSequence::HopSequence(util::Rng rng) : rng_(rng), base_seed_(rng_.next_u64()) {}

long HopSequence::hop_index(double t_sec) const {
  return static_cast<long>(std::floor(t_sec / kDwellTimeSec));
}

std::vector<int> HopSequence::cycle_order(long cycle) const {
  std::vector<int> order(kNumChannels);
  std::iota(order.begin(), order.end(), 0);
  util::Rng cycle_rng(base_seed_ ^ (0x5851f42d4c957f2dULL * static_cast<std::uint64_t>(cycle + 1)));
  cycle_rng.shuffle(order);
  return order;
}

int HopSequence::channel_at(double t_sec) const {
  const long hop = hop_index(t_sec);
  const long cycle = hop / kNumChannels;
  const long pos = hop % kNumChannels;
  return cycle_order(cycle)[static_cast<std::size_t>(pos)];
}

}  // namespace m2ai::rf
