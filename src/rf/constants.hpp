// Physical and regulatory constants used throughout the RF substrate.
#pragma once

namespace m2ai::rf {

// Speed of light (m/s).
inline constexpr double kSpeedOfLight = 299'792'458.0;

// FCC UHF RFID band (Hz). Readers hop between 902.75 and 927.25 MHz in
// 500 kHz steps -> 50 channels (Sec. III-A and Sec. V of the paper).
inline constexpr double kBandLowHz = 902.75e6;
inline constexpr double kBandStepHz = 0.5e6;
inline constexpr int kNumChannels = 50;

// Common (reference) frequency all phases are calibrated to (Sec. V).
inline constexpr double kCommonFrequencyHz = 910.25e6;

// Channel dwell time before the reader hops (Sec. V: 400 ms).
inline constexpr double kDwellTimeSec = 0.4;

// Inventory duration per antenna port in the TDM antenna array (Sec. V: 25 ms).
inline constexpr double kAntennaSlotSec = 0.025;

// Wavelength at the common frequency ("the typical wavelength λ is 0.32 m").
inline constexpr double kTypicalWavelengthM = kSpeedOfLight / kCommonFrequencyHz;

// Antenna pair separation d = λ/8 = 0.04 m (Sec. V "Antennas Settings"):
// λ/2 for grating-lobe-free AoA, halved once because backscatter phase is
// round-trip, halved again because the Impinj phase report has a π ambiguity.
inline constexpr double kAntennaSeparationM = 0.04;

// Number of AoA bins in the pseudospectrum frame (0..179 degrees).
inline constexpr int kNumAngleBins = 180;

}  // namespace m2ai::rf
