// 2-D geometry used by the propagation model. The antenna array is
// horizontal, so AoA lives in the horizontal plane; heights enter only as a
// fixed contribution folded into path lengths by the caller.
#pragma once

#include <cmath>
#include <optional>
#include <vector>

namespace m2ai::rf {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(Vec2 o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(Vec2 o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  double dot(Vec2 o) const { return x * o.x + y * o.y; }
  double norm() const { return std::sqrt(x * x + y * y); }
  double norm2() const { return x * x + y * y; }
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{0.0, 0.0};
  }
};

inline Vec2 operator*(double s, Vec2 v) { return v * s; }

double distance(Vec2 a, Vec2 b);

// An axis-aligned wall segment, described by which coordinate is fixed.
struct Wall {
  bool vertical = false;  // vertical wall: fixed x; horizontal wall: fixed y
  double position = 0.0;  // the fixed coordinate
  double lo = 0.0;        // extent along the free coordinate
  double hi = 0.0;
  double reflection_loss_db = 6.0;  // attenuation added on specular reflection
};

// Mirror image of point `p` across the (infinite line through the) wall.
Vec2 mirror(Vec2 p, const Wall& wall);

// Point where segment a->b crosses the wall's line, if the crossing lies
// within both the segment and the wall's extent.
std::optional<Vec2> wall_intersection(Vec2 a, Vec2 b, const Wall& wall);

// Shortest distance from point `p` to segment a->b.
double point_segment_distance(Vec2 p, Vec2 a, Vec2 b);

// True if the segment a->b passes within `radius` of `center`, excluding
// endpoints that ARE the obstacle (caller filters those).
bool segment_hits_circle(Vec2 a, Vec2 b, Vec2 center, double radius);

// Angle of point `p` as seen from `origin`, measured in degrees in [0, 180]
// against the array axis direction `axis` (unit vector): the AoA convention
// of a uniform linear array (broadside = 90 degrees).
double bearing_deg(Vec2 origin, Vec2 axis, Vec2 p);

}  // namespace m2ai::rf
