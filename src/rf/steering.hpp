// Uniform-linear-array (ULA) steering vectors (Eq. 8 of the paper).
//
// Convention: element n (n = 0..N-1) sits at +n*d_eff along the array axis;
// a plane wave from angle theta (degrees, 0..180 measured from the axis,
// broadside = 90) arrives earlier at higher-index elements, so the response
// is exp(+j * 2*pi * n * (d_eff / lambda) * cos(theta)).
//
// `d_eff` is the EFFECTIVE element separation seen by the phase data fed to
// the estimator. Backscatter phases are round trip, so a physical spacing d
// gives d_eff = 2*d; the paper's d = lambda/8 keeps the round-trip aperture
// at lambda/4, i.e. inter-element increments within [-pi/2, pi/2] — immune
// to the reader's half-cycle (pi) reporting offset, which is constant per
// channel and removed by Eq. 1 calibration (see DESIGN.md).
#pragma once

#include <complex>
#include <vector>

namespace m2ai::rf {

using cdouble = std::complex<double>;

// Steering vector a(theta) for an N-element ULA.
std::vector<cdouble> steering_vector(double theta_deg, int num_antennas,
                                     double effective_separation_m,
                                     double wavelength_m);

// Effective separation produced by the round-trip backscatter channel plus
// the phase doubling used to cancel the reader's pi ambiguity:
// one-way physical d -> 2d (round trip) -> 4d (doubling).
double effective_separation(double physical_separation_m);

}  // namespace m2ai::rf
