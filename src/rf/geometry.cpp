#include "rf/geometry.hpp"

#include <algorithm>

namespace m2ai::rf {

double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

Vec2 mirror(Vec2 p, const Wall& wall) {
  if (wall.vertical) return {2.0 * wall.position - p.x, p.y};
  return {p.x, 2.0 * wall.position - p.y};
}

std::optional<Vec2> wall_intersection(Vec2 a, Vec2 b, const Wall& wall) {
  // Parametrize a + t*(b-a), find t where the fixed coordinate equals the
  // wall position, then check both the segment range and the wall extent.
  const double fa = wall.vertical ? a.x : a.y;
  const double fb = wall.vertical ? b.x : b.y;
  const double denom = fb - fa;
  if (std::abs(denom) < 1e-12) return std::nullopt;  // parallel to the wall
  const double t = (wall.position - fa) / denom;
  if (t < 0.0 || t > 1.0) return std::nullopt;
  const Vec2 hit = a + (b - a) * t;
  const double free = wall.vertical ? hit.y : hit.x;
  if (free < wall.lo || free > wall.hi) return std::nullopt;
  return hit;
}

double point_segment_distance(Vec2 p, Vec2 a, Vec2 b) {
  const Vec2 ab = b - a;
  const double len2 = ab.norm2();
  if (len2 <= 0.0) return distance(p, a);
  const double t = std::clamp((p - a).dot(ab) / len2, 0.0, 1.0);
  return distance(p, a + ab * t);
}

bool segment_hits_circle(Vec2 a, Vec2 b, Vec2 center, double radius) {
  return point_segment_distance(center, a, b) < radius;
}

double bearing_deg(Vec2 origin, Vec2 axis, Vec2 p) {
  const Vec2 d = (p - origin).normalized();
  const double c = std::clamp(d.dot(axis.normalized()), -1.0, 1.0);
  return std::acos(c) * 180.0 / M_PI;
}

}  // namespace m2ai::rf
