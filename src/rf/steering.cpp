#include "rf/steering.hpp"

#include <cmath>

namespace m2ai::rf {

std::vector<cdouble> steering_vector(double theta_deg, int num_antennas,
                                     double effective_separation_m,
                                     double wavelength_m) {
  std::vector<cdouble> a(static_cast<std::size_t>(num_antennas));
  const double phi = 2.0 * M_PI * effective_separation_m / wavelength_m *
                     std::cos(theta_deg * M_PI / 180.0);
  // Element n sits at +n*d along the array axis, so a wave from angle theta
  // (measured from the axis) arrives EARLIER at higher-index elements:
  // phase +n * 2*pi*(d_eff/lambda)*cos(theta).
  for (int n = 0; n < num_antennas; ++n) {
    a[static_cast<std::size_t>(n)] = std::polar(1.0, phi * static_cast<double>(n));
  }
  return a;
}

double effective_separation(double physical_separation_m) {
  return 2.0 * physical_separation_m;
}

}  // namespace m2ai::rf
