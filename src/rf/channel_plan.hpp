// The FCC frequency-hopping channel plan of a UHF RFID reader.
#pragma once

#include <vector>

#include "rf/constants.hpp"
#include "util/rng.hpp"

namespace m2ai::rf {

// Center frequency (Hz) of channel index `ch` in [0, kNumChannels).
double channel_frequency_hz(int ch);

// Wavelength (m) at channel `ch`.
double channel_wavelength_m(int ch);

// Index of the channel closest to `freq_hz`; clamped to the plan.
int nearest_channel(double freq_hz);

// Index of the common/reference channel (910.25 MHz).
int common_channel();

// A pseudo-random hopping sequence as mandated by FCC part 15: every channel
// is visited once per 50-hop cycle, in an order shuffled per cycle.
class HopSequence {
 public:
  explicit HopSequence(util::Rng rng);

  // Channel in use at time `t_sec` given the dwell time.
  int channel_at(double t_sec) const;

  // The hop index (monotonic counter) at time `t_sec`.
  long hop_index(double t_sec) const;

 private:
  // Deterministically expands cycle `c` into a permutation of all channels.
  std::vector<int> cycle_order(long cycle) const;

  mutable util::Rng rng_;
  std::uint64_t base_seed_;
};

}  // namespace m2ai::rf
