#include "nn/gradcheck.hpp"

#include <cmath>

#include "nn/optimizer.hpp"

namespace m2ai::nn {

namespace {
struct ErrorTally {
  std::size_t total = 0;
  std::size_t within = 0;
};

void update_errors(double analytic, double numeric, double tolerance, double atol,
                   GradCheckResult& result, ErrorTally& tally) {
  const double abs_err = std::abs(analytic - numeric);
  result.max_abs_error = std::max(result.max_abs_error, abs_err);
  ++tally.total;
  if (abs_err <= atol) {
    // Below the float32 finite-difference noise floor: counts as a match,
    // does not contribute to the relative-error maximum.
    ++tally.within;
    return;
  }
  const double denom = std::max({std::abs(analytic), std::abs(numeric), 1e-4});
  result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
  if (abs_err / denom < tolerance) ++tally.within;
}
}  // namespace

GradCheckResult check_param_gradients(const std::function<double()>& loss_fn,
                                      const std::vector<Param*>& params,
                                      double epsilon, double tolerance, double atol) {
  GradCheckResult result;

  // Capture analytic gradients from one clean pass.
  zero_gradients(params);
  (void)loss_fn();
  std::vector<Tensor> analytic;
  analytic.reserve(params.size());
  for (Param* p : params) analytic.push_back(p->grad);

  ErrorTally tally;
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param* p = params[pi];
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(epsilon);
      zero_gradients(params);
      const double loss_plus = loss_fn();
      p->value[i] = saved - static_cast<float>(epsilon);
      zero_gradients(params);
      const double loss_minus = loss_fn();
      p->value[i] = saved;
      const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
      update_errors(analytic[pi][i], numeric, tolerance, atol, result, tally);
    }
  }
  zero_gradients(params);
  result.fraction_within =
      tally.total ? static_cast<double>(tally.within) / static_cast<double>(tally.total)
                  : 0.0;
  result.ok = result.max_rel_error < tolerance;
  return result;
}

GradCheckResult check_input_gradient(const std::function<double(const Tensor&)>& run,
                                     const Tensor& input, const Tensor& analytic_grad,
                                     double epsilon, double tolerance, double atol) {
  GradCheckResult result;
  ErrorTally tally;
  Tensor x = input;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(epsilon);
    const double loss_plus = run(x);
    x[i] = saved - static_cast<float>(epsilon);
    const double loss_minus = run(x);
    x[i] = saved;
    const double numeric = (loss_plus - loss_minus) / (2.0 * epsilon);
    update_errors(analytic_grad[i], numeric, tolerance, atol, result, tally);
  }
  result.fraction_within =
      tally.total ? static_cast<double>(tally.within) / static_cast<double>(tally.total)
                  : 0.0;
  result.ok = result.max_rel_error < tolerance;
  return result;
}

}  // namespace m2ai::nn
