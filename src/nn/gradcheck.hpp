// Numerical gradient checking: the property test that keeps every layer's
// backward pass honest.
#pragma once

#include <functional>

#include "nn/layer.hpp"

namespace m2ai::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  // Fraction of checked components whose relative error is within the
  // tolerance. Networks with ReLU kinks legitimately fail the max-error
  // criterion on a few components (finite differences straddle the kink);
  // the fraction metric stays meaningful there.
  double fraction_within = 0.0;
  bool ok = false;
};

// Compares the analytic parameter gradients of `loss_fn` (which must run a
// full forward+backward and return the scalar loss, leaving gradients
// accumulated in `params`) against central finite differences.
//
// `atol` is an absolute-error floor: components whose |analytic - numeric|
// is below it are treated as matching and excluded from max_rel_error. The
// float32 forward pass limits the finite-difference resolution to roughly
// loss * 1e-7 / epsilon, so for near-zero gradients the relative criterion
// measures rounding noise, not correctness (a genuinely wrong derivative —
// sign flip, missing term — produces absolute errors orders of magnitude
// above the floor).
GradCheckResult check_param_gradients(const std::function<double()>& loss_fn,
                                      const std::vector<Param*>& params,
                                      double epsilon = 1e-3, double tolerance = 2e-2,
                                      double atol = 1e-4);

// Checks dLoss/dInput for a layer on a given input via finite differences.
// `run` must evaluate loss(input) WITHOUT touching layer gradients.
GradCheckResult check_input_gradient(const std::function<double(const Tensor&)>& run,
                                     const Tensor& input, const Tensor& analytic_grad,
                                     double epsilon = 1e-3, double tolerance = 2e-2,
                                     double atol = 1e-4);

}  // namespace m2ai::nn
