#include "nn/tensor.hpp"

#include <cmath>
#include <numeric>
#include <sstream>

namespace m2ai::nn {

Tensor::Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
  std::size_t total = 1;
  for (int d : shape_) {
    if (d <= 0) throw std::invalid_argument("Tensor: non-positive dimension");
    total *= static_cast<std::size_t>(d);
  }
  data_.assign(total, 0.0f);
}

Tensor Tensor::from(std::vector<float> values) {
  Tensor t({static_cast<int>(values.size())});
  t.data_ = std::move(values);
  return t;
}

std::size_t Tensor::index1(int i) const {
#ifndef NDEBUG
  if (rank() != 1 || i < 0 || i >= shape_[0]) throw std::out_of_range("Tensor::at(i)");
#endif
  return static_cast<std::size_t>(i);
}

std::size_t Tensor::index2(int i, int j) const {
#ifndef NDEBUG
  if (rank() != 2 || i < 0 || i >= shape_[0] || j < 0 || j >= shape_[1]) {
    throw std::out_of_range("Tensor::at(i,j)");
  }
#endif
  return static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
         static_cast<std::size_t>(j);
}

std::size_t Tensor::index3(int i, int j, int k) const {
#ifndef NDEBUG
  if (rank() != 3 || i < 0 || i >= shape_[0] || j < 0 || j >= shape_[1] || k < 0 ||
      k >= shape_[2]) {
    throw std::out_of_range("Tensor::at(i,j,k)");
  }
#endif
  return (static_cast<std::size_t>(i) * static_cast<std::size_t>(shape_[1]) +
          static_cast<std::size_t>(j)) *
             static_cast<std::size_t>(shape_[2]) +
         static_cast<std::size_t>(k);
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(std::vector<int> shape) const {
  Tensor out(std::move(shape));
  if (out.size() != size()) throw std::invalid_argument("Tensor::reshaped: size mismatch");
  out.data_ = data_;
  return out;
}

Tensor Tensor::flattened() const {
  return reshaped({static_cast<int>(size())});
}

void Tensor::add_scaled(const Tensor& other, float scale) {
  if (other.size() != size()) throw std::invalid_argument("Tensor::add_scaled: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += scale * other.data_[i];
}

void Tensor::scale(float s) {
  for (float& v : data_) v *= s;
}

float Tensor::l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

void Tensor::randomize_normal(util::Rng& rng, float stddev) {
  for (float& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

void Tensor::randomize_uniform(util::Rng& rng, float lo, float hi) {
  for (float& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) out << 'x';
    out << shape_[i];
  }
  out << ']';
  return out.str();
}

Tensor concat(const Tensor& a, const Tensor& b) {
  Tensor out({static_cast<int>(a.size() + b.size())});
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
  return out;
}

}  // namespace m2ai::nn
