// Layer interface of the learning engine.
//
// Weight sharing over time (the same CNN applied to every spectrum frame of
// a sequence) is supported through a LIFO cache discipline: each forward()
// pushes its activation cache, each backward() pops the most recent one.
// The training loop therefore runs forward over t = 0..T-1 and backward over
// t = T-1..0, and parameter gradients ACCUMULATE across those calls until
// the optimizer consumes and clears them.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace m2ai::nn {

// A learnable parameter and its accumulated gradient.
struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  explicit Param(std::string param_name, std::vector<int> shape)
      : name(std::move(param_name)), value(shape), grad(shape) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Forward pass on one example; pushes a cache entry when `train` is true.
  virtual Tensor forward(const Tensor& input, bool train) = 0;

  // Backward pass for the most recent un-popped forward() call; returns the
  // gradient w.r.t. that call's input and accumulates parameter gradients.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // Learnable parameters (may be empty).
  virtual std::vector<Param*> params() { return {}; }

  // Drop any cached activations (e.g. after an aborted sequence).
  virtual void clear_cache() {}

  // Re-derive this layer's private random stream from `base` (stochastic
  // layers fork from it; deterministic layers ignore it). The data-parallel
  // trainer reseeds every replica from a per-sample stream fixed before the
  // fan-out, so the randomness a sample sees never depends on which replica
  // (or thread count) processed it.
  virtual void reseed(util::Rng& base) { (void)base; }

  virtual std::string name() const = 0;
};

}  // namespace m2ai::nn
