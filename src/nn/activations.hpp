// Element-wise activation layers.
#pragma once

#include <deque>

#include "nn/layer.hpp"

namespace m2ai::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void clear_cache() override { cache_.clear(); }
  std::string name() const override { return "ReLU"; }

 private:
  std::deque<Tensor> cache_;  // inputs
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void clear_cache() override { cache_.clear(); }
  std::string name() const override { return "Tanh"; }

 private:
  std::deque<Tensor> cache_;  // outputs (tanh'(x) = 1 - y^2)
};

}  // namespace m2ai::nn
