#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace m2ai::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4d324149;  // "M2AI"
constexpr std::uint32_t kVersion = 1;
// No tensor in the library is deeper than rank 3; anything beyond this is a
// corrupt length field, not a real checkpoint.
constexpr std::uint32_t kMaxRank = 8;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Byte-budgeted reader: every length field is validated against the bytes
// actually left in the file BEFORE any allocation or bulk read, so a
// corrupt/truncated checkpoint fails with a clean error instead of trying
// to allocate gigabytes from a garbage length.
class BoundedReader {
 public:
  BoundedReader(std::istream& in, std::uint64_t file_size)
      : in_(in), remaining_(file_size) {}

  std::uint32_t read_u32(const char* what) {
    take(sizeof(std::uint32_t), what);
    std::uint32_t v = 0;
    in_.read(reinterpret_cast<char*>(&v), sizeof(v));
    if (!in_) throw std::runtime_error(corrupt(what));
    return v;
  }

  std::string read_string(const char* what) {
    const std::uint32_t len = read_u32(what);
    take(len, what);
    std::string s(len, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(len));
    if (!in_) throw std::runtime_error(corrupt(what));
    return s;
  }

  void read_bytes(void* dst, std::uint64_t bytes, const char* what) {
    take(bytes, what);
    in_.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(bytes));
    if (!in_) throw std::runtime_error(corrupt(what));
  }

 private:
  void take(std::uint64_t bytes, const char* what) {
    if (bytes > remaining_) throw std::runtime_error(corrupt(what));
    remaining_ -= bytes;
  }

  static std::string corrupt(const char* what) {
    return std::string("load_params: corrupt or truncated checkpoint (") + what + ")";
  }

  std::istream& in_;
  std::uint64_t remaining_;
};
}  // namespace

void save_params(const std::string& path, const std::vector<Param*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_string(out, p->name);
    write_u32(out, static_cast<std::uint32_t>(p->value.shape().size()));
    for (int d : p->value.shape()) write_u32(out, static_cast<std::uint32_t>(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(const std::string& path, const std::vector<Param*>& params) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  const auto end_pos = in.tellg();
  if (end_pos < 0) throw std::runtime_error("load_params: cannot stat " + path);
  in.seekg(0);
  BoundedReader reader(in, static_cast<std::uint64_t>(end_pos));

  if (reader.read_u32("magic") != kMagic)
    throw std::runtime_error("load_params: bad magic");
  if (reader.read_u32("version") != kVersion)
    throw std::runtime_error("load_params: bad version");
  const std::uint32_t count = reader.read_u32("parameter count");
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch");
  }
  for (Param* p : params) {
    const std::string name = reader.read_string("parameter name");
    if (name != p->name) {
      // Same shapes with different names means the checkpoint came from a
      // different architecture; loading it anyway silently corrupts results.
      throw std::runtime_error("load_params: parameter name mismatch (checkpoint has \"" +
                               name + "\", model expects \"" + p->name + "\")");
    }
    const std::uint32_t rank = reader.read_u32("tensor rank");
    if (rank > kMaxRank) {
      throw std::runtime_error("load_params: corrupt or truncated checkpoint (tensor rank)");
    }
    std::vector<int> shape(rank);
    for (auto& d : shape) d = static_cast<int>(reader.read_u32("tensor dim"));
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_params: shape mismatch for " + p->name);
    }
    reader.read_bytes(p->value.data(),
                      static_cast<std::uint64_t>(p->value.size()) * sizeof(float),
                      "tensor data");
  }
}

}  // namespace m2ai::nn
