#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "util/log.hpp"

namespace m2ai::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4d324149;  // "M2AI"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  if (!in) throw std::runtime_error("load_params: truncated file");
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u32(out, static_cast<std::uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& in) {
  const std::uint32_t len = read_u32(in);
  std::string s(len, '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw std::runtime_error("load_params: truncated file");
  return s;
}
}  // namespace

void save_params(const std::string& path, const std::vector<Param*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_params: cannot open " + path);
  write_u32(out, kMagic);
  write_u32(out, kVersion);
  write_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const Param* p : params) {
    write_string(out, p->name);
    write_u32(out, static_cast<std::uint32_t>(p->value.shape().size()));
    for (int d : p->value.shape()) write_u32(out, static_cast<std::uint32_t>(d));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!out) throw std::runtime_error("save_params: write failed for " + path);
}

void load_params(const std::string& path, const std::vector<Param*>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_params: cannot open " + path);
  if (read_u32(in) != kMagic) throw std::runtime_error("load_params: bad magic");
  if (read_u32(in) != kVersion) throw std::runtime_error("load_params: bad version");
  const std::uint32_t count = read_u32(in);
  if (count != params.size()) {
    throw std::runtime_error("load_params: parameter count mismatch");
  }
  for (Param* p : params) {
    const std::string name = read_string(in);
    if (name != p->name) {
      util::log_warn() << "load_params: name mismatch (" << name << " vs " << p->name
                       << "), shapes control";
    }
    const std::uint32_t rank = read_u32(in);
    std::vector<int> shape(rank);
    for (auto& d : shape) d = static_cast<int>(read_u32(in));
    if (shape != p->value.shape()) {
      throw std::runtime_error("load_params: shape mismatch for " + p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in) throw std::runtime_error("load_params: truncated tensor data");
  }
}

}  // namespace m2ai::nn
