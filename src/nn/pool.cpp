#include "nn/pool.hpp"

#include <stdexcept>

namespace m2ai::nn {

Tensor MaxPool1d::forward(const Tensor& input, bool train) {
  if (input.rank() != 2) throw std::invalid_argument("MaxPool1d: expected [C, L]");
  const int channels = input.dim(0);
  const int len = input.dim(1);
  const int out_len = (len - window_) / stride_ + 1;
  if (out_len < 1) throw std::invalid_argument("MaxPool1d: input shorter than window");

  Tensor y({channels, out_len});
  Cache cache;
  cache.in_channels = channels;
  cache.in_len = len;
  cache.argmax.resize(static_cast<std::size_t>(channels) * out_len);
  const float* in = input.data();
  float* out = y.data();
  int* am = cache.argmax.data();
  for (int c = 0; c < channels; ++c) {
    const float* row = in + static_cast<std::size_t>(c) * len;
    float* y_row = out + static_cast<std::size_t>(c) * out_len;
    int* am_row = am + static_cast<std::size_t>(c) * out_len;
    for (int o = 0; o < out_len; ++o) {
      int best = o * stride_;
      float best_v = row[best];
      for (int k = 1; k < window_; ++k) {
        const int pos = o * stride_ + k;
        if (row[pos] > best_v) {
          best_v = row[pos];
          best = pos;
        }
      }
      y_row[o] = best_v;
      am_row[o] = best;
    }
  }
  if (train) cache_.push_back(std::move(cache));
  return y;
}

Tensor MaxPool1d::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("MaxPool1d::backward: no cached forward");
  const Cache cache = std::move(cache_.back());
  cache_.pop_back();
  const int out_len = grad_output.dim(1);
  Tensor grad_in({cache.in_channels, cache.in_len});
  const float* g = grad_output.data();
  float* gi = grad_in.data();
  for (int c = 0; c < cache.in_channels; ++c) {
    const float* g_row = g + static_cast<std::size_t>(c) * out_len;
    float* gi_row = gi + static_cast<std::size_t>(c) * cache.in_len;
    const int* am_row = cache.argmax.data() + static_cast<std::size_t>(c) * out_len;
    for (int o = 0; o < out_len; ++o) {
      gi_row[am_row[o]] += g_row[o];
    }
  }
  return grad_in;
}

}  // namespace m2ai::nn
