// 1-D convolution over the angle/antenna axis of a spectrum frame.
// Input [C_in, L], kernels [C_out, C_in, K], stride and symmetric zero
// padding; output [C_out, L_out] with L_out = (L + 2*pad - K)/stride + 1.
#pragma once

#include <deque>

#include "kern/workspace.hpp"
#include "nn/layer.hpp"

namespace m2ai::nn {

class Conv1d : public Layer {
 public:
  Conv1d(int in_channels, int out_channels, int kernel, int stride, int padding,
         util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void clear_cache() override { cache_.clear(); }
  std::string name() const override { return "Conv1d"; }

  int output_length(int input_length) const;
  int out_channels() const { return out_channels_; }

 private:
  int in_channels_;
  int out_channels_;
  int kernel_;
  int stride_;
  int padding_;
  Param weight_;  // [C_out, C_in, K]
  Param bias_;    // [C_out]
  std::deque<Tensor> cache_;
  kern::Workspace ws_;  // per-channel partial-sum row, reused across calls
};

}  // namespace m2ai::nn
