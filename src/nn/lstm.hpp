// Long Short-Term Memory layer (Hochreiter & Schmidhuber 1997), the temporal
// half of the paper's engine (Sec. IV-B.2): gates i/f/o control overwrite,
// keep, and retrieval of the memory cell c_t; full backpropagation through
// time. Stacked pairs of these (2 x 32 cells in the paper) encode the CNN
// features frame by frame.
//
// All four gates of a timestep are computed as one 4H x (I+H) GEMV against
// the packed [x; h_prev] vector (kern::gemv), and the per-step BPTT caches
// live in a flat workspace arena instead of nine Tensors per step — both
// bitwise-identical to the per-gate scalar loops they replaced.
#pragma once

#include <vector>

#include "kern/workspace.hpp"
#include "nn/layer.hpp"
#include "nn/quantize.hpp"

namespace m2ai::nn {

class Lstm {
 public:
  Lstm(int input_size, int hidden_size, util::Rng& rng);

  // Process a whole sequence from zero initial state; returns the hidden
  // state h_t per step. With train=true, caches for backward() are kept;
  // any stale cache from an abandoned training step is discarded first.
  std::vector<Tensor> forward(const std::vector<Tensor>& inputs, bool train);

  // BPTT for the most recent forward(). `grad_outputs[t]` is dLoss/dh_t
  // (zero tensors are fine for steps without loss). Returns dLoss/dx_t and
  // accumulates parameter gradients.
  std::vector<Tensor> backward(const std::vector<Tensor>& grad_outputs);

  // Evaluation-only batched forward over equal-length sequences:
  // outputs[b][t] = h_t for *seqs[b], from zero initial state. Each timestep
  // runs ONE gemm_bias over the packed [batch, I+H] inputs instead of
  // `batch` gemvs — the serving micro-batch fast path. Under the reference
  // backend the result is bitwise-identical to calling forward(·, false)
  // per sequence (gemm_bias accumulates each element in gemv's order).
  // Keeps no caches; backward() after this throws on the cache mismatch.
  std::vector<std::vector<Tensor>> forward_batch(
      const std::vector<const std::vector<Tensor>*>& seqs);

  // Post-training quantization: int8 gate weights + the calibrated scale of
  // the packed [x; h_prev] activation. forward_batch_quant runs the gate
  // matmul of every timestep through gemm_bias_s8 (int32 accumulation, one
  // requantize); gate nonlinearities, the cell state, and h stay float.
  void prepare_quant(float xh_scale, const CalibrationOptions& opts);
  void clear_quant();
  bool quant_ready() const { return wq_.ready(); }
  float xh_scale() const { return xh_scale_; }

  std::vector<std::vector<Tensor>> forward_batch_quant(
      const std::vector<const std::vector<Tensor>*>& seqs);

  std::vector<Param*> params() { return {&weight_, &bias_}; }
  void clear_cache() { steps_.clear(); }

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  // One BPTT step's cached activations, viewed into train_ws_. Pointers stay
  // valid until the next training forward resets the arena (Workspace blocks
  // never move on growth).
  struct StepView {
    const float* xh;      // packed GEMV input [x; h_prev], I+H
    const float* c_prev;  // [H] (previous step's c, or the shared zero row)
    const float* gates;   // activations [i; f; g; o], 4H
    const float* c;       // [H]
    const float* tanh_c;  // [H]
  };

  int input_size_;
  int hidden_size_;
  // Gate order in the stacked weight: [i; f; g; o], each H rows over (I+H)
  // inputs ([x; h_prev]).
  Param weight_;  // [4H, I+H]
  Param bias_;    // [4H]
  std::vector<StepView> steps_;
  // Step caches live in train_ws_ (reset only by the next training forward);
  // transient per-call buffers come from scratch_ws_, so an evaluation
  // forward between a training forward and its backward — the gradcheck
  // pattern — cannot clobber the pending caches.
  kern::Workspace train_ws_;
  kern::Workspace scratch_ws_;
  QuantTensor wq_;  // [4H, I+H] row-major — gemm_bias_s8's weight operand
  float xh_scale_ = 0.0f;
};

}  // namespace m2ai::nn
