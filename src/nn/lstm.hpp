// Long Short-Term Memory layer (Hochreiter & Schmidhuber 1997), the temporal
// half of the paper's engine (Sec. IV-B.2): gates i/f/o control overwrite,
// keep, and retrieval of the memory cell c_t; full backpropagation through
// time. Stacked pairs of these (2 x 32 cells in the paper) encode the CNN
// features frame by frame.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace m2ai::nn {

class Lstm {
 public:
  Lstm(int input_size, int hidden_size, util::Rng& rng);

  // Process a whole sequence from zero initial state; returns the hidden
  // state h_t per step. With train=true, caches for backward() are kept;
  // any stale cache from an abandoned training step is discarded first.
  std::vector<Tensor> forward(const std::vector<Tensor>& inputs, bool train);

  // BPTT for the most recent forward(). `grad_outputs[t]` is dLoss/dh_t
  // (zero tensors are fine for steps without loss). Returns dLoss/dx_t and
  // accumulates parameter gradients.
  std::vector<Tensor> backward(const std::vector<Tensor>& grad_outputs);

  std::vector<Param*> params() { return {&weight_, &bias_}; }
  void clear_cache() { steps_.clear(); }

  int input_size() const { return input_size_; }
  int hidden_size() const { return hidden_size_; }

 private:
  struct StepCache {
    Tensor x;       // [I]
    Tensor h_prev;  // [H]
    Tensor c_prev;  // [H]
    Tensor i, f, g, o;  // gate activations, [H] each
    Tensor c;       // [H]
    Tensor tanh_c;  // [H]
  };

  int input_size_;
  int hidden_size_;
  // Gate order in the stacked weight: [i; f; g; o], each H rows over (I+H)
  // inputs ([x; h_prev]).
  Param weight_;  // [4H, I+H]
  Param bias_;    // [4H]
  std::vector<StepCache> steps_;
};

}  // namespace m2ai::nn
