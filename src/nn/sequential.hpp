// A simple layer stack with the same LIFO cache discipline as Layer, so a
// Sequential can itself be applied once per time step with shared weights.
#pragma once

#include <memory>
#include <string>

#include "nn/layer.hpp"

namespace m2ai::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  Sequential& add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  // Names this stack in the trace-span output ("cnn_pseudo", ...). Forward
  // and backward record latency under "<label>" / "<label>_bwd" when
  // observability is on; unlabeled stacks are never traced.
  Sequential& set_trace_label(std::string label);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;

  std::vector<Param*> params() override {
    std::vector<Param*> out;
    for (auto& layer : layers_) {
      for (Param* p : layer->params()) out.push_back(p);
    }
    return out;
  }

  void clear_cache() override {
    for (auto& layer : layers_) layer->clear_cache();
  }

  // Forwarded in layer order, so every stochastic sublayer forks from `base`
  // at a fixed position in the stream.
  void reseed(util::Rng& base) override {
    for (auto& layer : layers_) layer->reseed(base);
  }

  std::string name() const override { return "Sequential"; }
  std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::string trace_label_;
  std::string trace_label_bwd_;
};

}  // namespace m2ai::nn
