#include "nn/dropout.hpp"

#include <stdexcept>

namespace m2ai::nn {

Tensor Dropout::forward(const Tensor& input, bool train) {
  if (!train || rate_ <= 0.0) return input;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  Tensor y = input;
  std::vector<float> mask(input.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    mask[i] = rng_.bernoulli(rate_) ? 0.0f : keep_scale;
    y[i] *= mask[i];
  }
  cache_.push_back(std::move(mask));
  return y;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("Dropout::backward: no cached forward");
  const std::vector<float> mask = std::move(cache_.back());
  cache_.pop_back();
  Tensor g = grad_output;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= mask[i];
  return g;
}

}  // namespace m2ai::nn
