#include "nn/optimizer.hpp"

#include <cmath>

namespace m2ai::nn {

double clip_gradient_norm(const std::vector<Param*>& params, double max_norm) {
  double total = 0.0;
  for (const Param* p : params) {
    const double n = p->grad.l2_norm();
    total += n * n;
  }
  total = std::sqrt(total);
  if (total > max_norm && total > 0.0) {
    const float scale = static_cast<float>(max_norm / total);
    for (Param* p : params) p->grad.scale(scale);
  }
  return total;
}

void zero_gradients(const std::vector<Param*>& params) {
  for (Param* p : params) p->grad.zero();
}

void Sgd::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    auto [it, inserted] = velocity_.try_emplace(p, Tensor(p->value.shape()));
    Tensor& vel = it->second;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      float g = p->grad[i] + static_cast<float>(weight_decay_) * p->value[i];
      vel[i] = static_cast<float>(momentum_) * vel[i] - static_cast<float>(lr_) * g;
      p->value[i] += vel[i];
    }
    p->grad.zero();
  }
}

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params) {
    Tensor& m = m_.try_emplace(p, Tensor(p->value.shape())).first->second;
    Tensor& v = v_.try_emplace(p, Tensor(p->value.shape())).first->second;
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i] + weight_decay_ * p->value[i];
      m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
      v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
      const double mh = m[i] / bc1;
      const double vh = v[i] / bc2;
      p->value[i] -= static_cast<float>(lr_ * mh / (std::sqrt(vh) + eps_));
    }
    p->grad.zero();
  }
}

}  // namespace m2ai::nn
