#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "kern/kernels.hpp"

namespace m2ai::nn {

const char* calib_mode_name(CalibMode mode) {
  return mode == CalibMode::kPercentile ? "percentile" : "max_abs";
}

CalibMode calib_mode_from_name(const std::string& name) {
  if (name == "max_abs" || name == "maxabs") return CalibMode::kMaxAbs;
  if (name == "percentile") return CalibMode::kPercentile;
  throw std::invalid_argument("unknown calibration mode '" + name +
                              "' (expected 'max_abs' or 'percentile')");
}

void RangeTracker::observe(const float* x, std::size_t n) {
  abs_.reserve(abs_.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    abs_.push_back(a);
    if (a > max_abs_) max_abs_ = a;
  }
}

float RangeTracker::scale(const CalibrationOptions& opts) const {
  if (abs_.empty()) return 0.0f;
  if (opts.mode == CalibMode::kMaxAbs) return scale_from_range(max_abs_);
  // Percentile of the |x| distribution via nth_element on the retained
  // samples (calibration sets are small — a handful of sequences).
  const double p = std::min(100.0, std::max(0.0, opts.percentile));
  const std::size_t idx = std::min(
      abs_.size() - 1,
      static_cast<std::size_t>(p / 100.0 * static_cast<double>(abs_.size() - 1) + 0.5));
  std::nth_element(abs_.begin(), abs_.begin() + static_cast<std::ptrdiff_t>(idx),
                   abs_.end());
  return scale_from_range(abs_[idx]);
}

float scale_from_range(float range) {
  return range > 0.0f ? range / 127.0f : 0.0f;
}

std::int8_t quantize_one_s8(float x, float inv_scale) {
  // The scalar rounding semantics (RNE ties, ±127 clamp) live in
  // kern/kernels.hpp next to the s8 matmuls that consume the result; the
  // backend table can swap in an 8-wide SIMD version for the hot
  // activation-quantization path (kern::active().quantize_s8).
  return kern::quantize_one_s8(x, inv_scale);
}

void quantize_s8(const float* x, std::size_t n, float scale, std::int8_t* q) {
  kern::quantize_s8(x, n, scale, q);
}

void check_s8_depth(int k, const std::string& what) {
  if (k > kern::kMaxS8Depth) {
    throw std::invalid_argument(
        what + ": int8 reduction depth " + std::to_string(k) +
        " exceeds kMaxS8Depth=" + std::to_string(kern::kMaxS8Depth) +
        " (int32 accumulator could overflow)");
  }
}

QuantTensor quantize_tensor(const Tensor& t, const CalibrationOptions& opts) {
  RangeTracker tracker;
  tracker.observe(t);
  QuantTensor out;
  out.scale = tracker.scale(opts);
  out.q.resize(t.size());
  quantize_s8(t.data(), t.size(), out.scale, out.q.data());
  return out;
}

float QuantScales::at(const std::string& name) const {
  const auto it = scales.find(name);
  if (it == scales.end()) {
    throw std::runtime_error("quant scale table has no entry '" + name +
                             "' — calibrated for a different architecture?");
  }
  return it->second;
}

namespace {
constexpr const char* kMagic = "m2ai-quant-v1";

std::string hexfloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

double parse_hexfloat(const std::string& tok, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == tok.c_str()) {
    throw std::runtime_error(std::string("quant scales: bad ") + what +
                             " value '" + tok + "'");
  }
  return v;
}
}  // namespace

void save_quant_scales(const std::string& path, const QuantScales& scales) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open '" + path + "' for writing");
  out << kMagic << "\n";
  out << "mode " << calib_mode_name(scales.mode) << " "
      << hexfloat(scales.percentile) << "\n";
  for (const auto& [name, scale] : scales.scales) {
    // The format is whitespace-delimited; a name that embeds whitespace
    // would silently corrupt the table on reload. Fail at save time.
    if (name.empty() ||
        name.find_first_of(" \t\n\r") != std::string::npos) {
      throw std::invalid_argument("quant scales: invalid tensor name '" + name +
                                  "' (must be non-empty, no whitespace)");
    }
    out << "scale " << name << " " << hexfloat(scale) << "\n";
  }
  out.flush();
  if (!out) throw std::runtime_error("write failed for '" + path + "'");
}

QuantScales load_quant_scales(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open quant scales '" + path + "'");
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("'" + path + "' is not a quant scale table (bad magic)");
  }
  QuantScales out;
  bool saw_mode = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "mode") {
      std::string mode_name, pct;
      if (!(ls >> mode_name >> pct)) {
        throw std::runtime_error("quant scales: malformed mode line '" + line + "'");
      }
      try {
        out.mode = calib_mode_from_name(mode_name);
      } catch (const std::invalid_argument& e) {
        throw std::runtime_error(e.what());
      }
      out.percentile = parse_hexfloat(pct, "percentile");
      saw_mode = true;
    } else if (kind == "scale") {
      std::string name, value;
      if (!(ls >> name >> value)) {
        throw std::runtime_error("quant scales: malformed scale line '" + line + "'");
      }
      const double v = parse_hexfloat(value, "scale");
      if (!(v >= 0.0) || !std::isfinite(v)) {
        throw std::runtime_error("quant scales: scale '" + name +
                                 "' must be finite and non-negative");
      }
      out.scales[name] = static_cast<float>(v);
    } else {
      throw std::runtime_error("quant scales: unknown record '" + kind + "'");
    }
  }
  if (!saw_mode) throw std::runtime_error("'" + path + "' has no mode record");
  return out;
}

}  // namespace m2ai::nn
