// Optimizers. The paper trains with stochastic gradient descent and scales
// the gradient norm to combat exploding gradients (Sec. VI-A); Adam is
// provided as a faster-converging alternative for CPU-budget runs.
#pragma once

#include <map>
#include <vector>

#include "nn/layer.hpp"

namespace m2ai::nn {

// Global-norm gradient clipping: scales all grads so the joint L2 norm is
// at most `max_norm`. Returns the pre-clip norm.
double clip_gradient_norm(const std::vector<Param*>& params, double max_norm);

// Zero all accumulated gradients.
void zero_gradients(const std::vector<Param*>& params);

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Apply one update using the accumulated gradients, then zero them.
  virtual void step(const std::vector<Param*>& params) = 0;
  // Learning-rate schedule hook.
  virtual void set_lr(double lr) = 0;
  virtual double lr() const = 0;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}
  void step(const std::vector<Param*>& params) override;
  void set_lr(double lr) override { lr_ = lr; }
  double lr() const override { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::map<Param*, Tensor> velocity_;
};

class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8, double weight_decay = 0.0)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}
  void step(const std::vector<Param*>& params) override;
  void set_lr(double lr) override { lr_ = lr; }
  double lr() const override { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_, weight_decay_;
  long t_ = 0;
  std::map<Param*, Tensor> m_, v_;
};

}  // namespace m2ai::nn
