// Dense float tensor (row-major) — the data type of the learning engine.
// Rank is dynamic but small (1-3 in practice: feature vectors, CxL frames,
// CoutxCinxK conv kernels).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace m2ai::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);
  Tensor(std::initializer_list<int> shape) : Tensor(std::vector<int>(shape)) {}

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  static Tensor from(std::vector<float> values);  // rank-1

  const std::vector<int>& shape() const { return shape_; }
  int dim(int i) const { return shape_.at(static_cast<std::size_t>(i)); }
  int rank() const { return static_cast<int>(shape_.size()); }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  float& at(int i) { return data_[index1(i)]; }
  float at(int i) const { return data_[index1(i)]; }
  float& at(int i, int j) { return data_[index2(i, j)]; }
  float at(int i, int j) const { return data_[index2(i, j)]; }
  float& at(int i, int j, int k) { return data_[index3(i, j, k)]; }
  float at(int i, int j, int k) const { return data_[index3(i, j, k)]; }

  void fill(float v);
  void zero() { fill(0.0f); }

  // Reshape preserving data; total size must match.
  Tensor reshaped(std::vector<int> shape) const;
  // Flatten to rank-1.
  Tensor flattened() const;

  // Element-wise helpers used by the optimizers and tests.
  void add_scaled(const Tensor& other, float scale);  // this += scale * other
  void scale(float s);
  float l2_norm() const;
  float sum() const;
  float max_abs() const;

  // Gaussian init with the given std (He/Xavier scaling chosen by callers).
  void randomize_normal(util::Rng& rng, float stddev);
  void randomize_uniform(util::Rng& rng, float lo, float hi);

  std::string shape_string() const;

 private:
  std::size_t index1(int i) const;
  std::size_t index2(int i, int j) const;
  std::size_t index3(int i, int j, int k) const;

  std::vector<int> shape_;
  std::vector<float> data_;
};

// Concatenate rank-1 tensors.
Tensor concat(const Tensor& a, const Tensor& b);

}  // namespace m2ai::nn
