// Softmax probabilities and the cross-entropy objective (Eq. 17).
#pragma once

#include "nn/tensor.hpp"

namespace m2ai::nn {

// Numerically stable softmax of a rank-1 logits tensor.
Tensor softmax(const Tensor& logits);

struct LossAndGrad {
  double loss = 0.0;   // -log p(label)
  Tensor grad_logits;  // d loss / d logits = p - onehot(label)
  int predicted = 0;   // argmax class
};

// Cross-entropy of softmax(logits) against an integer label.
LossAndGrad softmax_cross_entropy(const Tensor& logits, int label);

}  // namespace m2ai::nn
