// Post-training int8 quantization: calibration-derived per-tensor symmetric
// scales and the quantize/dequantize helpers behind the int8 kernel backend.
//
// Scheme: symmetric linear quantization to [-127, 127] with round-to-nearest
// -even — q = clamp(rne(x / scale)), x ≈ scale * q. A tensor's scale is
// range / 127 where `range` comes from calibration: the max |x| observed
// (kMaxAbs mode) or an upper percentile of the observed |x| distribution
// (kPercentile mode, clipping outliers for tighter resolution). scale == 0
// (an all-zero tensor) is a valid degenerate case: everything quantizes to
// 0 and dequantizes to 0 — never a division by zero.
//
// A matmul y = W x + b runs as y = b + (sw * sx) * (Wq · xq) with the dot
// product in int32 (kern gemv_s8/gemm_bias_s8); the combined scale sw*sx is
// the single requantize factor. Accumulation depth is bounded by
// kern::kMaxS8Depth so the int32 accumulator cannot overflow —
// check_s8_depth() enforces it when weights are prepared.
//
// Calibration scales are serialized as a named table in a small text format
// (hexfloat values, exact round-trip) alongside the float checkpoint; the
// float weights stay the source of truth and quantized weights are rebuilt
// from them on load.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace m2ai::nn {

enum class CalibMode { kMaxAbs, kPercentile };

const char* calib_mode_name(CalibMode mode);
CalibMode calib_mode_from_name(const std::string& name);  // throws on unknown

struct CalibrationOptions {
  CalibMode mode = CalibMode::kMaxAbs;
  // kPercentile: the |x| distribution percentile used as the clip range.
  double percentile = 99.9;
};

// Accumulates the |x| distribution a tensor slot sees during calibration.
class RangeTracker {
 public:
  void observe(const float* x, std::size_t n);
  void observe(const Tensor& t) { observe(t.data(), t.size()); }
  // range / 127 per the calibration mode; 0 when nothing (or only zeros)
  // was observed.
  float scale(const CalibrationOptions& opts) const;
  std::size_t count() const { return abs_.size(); }
  float max_abs() const { return max_abs_; }

 private:
  mutable std::vector<float> abs_;  // sorted lazily by scale()
  float max_abs_ = 0.0f;
};

// range / 127, or 0 for a degenerate (empty / all-zero) range.
float scale_from_range(float range);

// Round-to-nearest-even quantization of one value at 1/scale (pass 0 for
// the scale==0 degenerate case); result clamped to [-127, 127].
std::int8_t quantize_one_s8(float x, float inv_scale);

// Vector quantization; q must hold n values.
void quantize_s8(const float* x, std::size_t n, float scale, std::int8_t* q);

// Throws std::invalid_argument when an int8 reduction of depth `k` could
// overflow the kernels' int32 accumulator (k > kern::kMaxS8Depth).
void check_s8_depth(int k, const std::string& what);

// An int8 tensor with its symmetric scale.
struct QuantTensor {
  std::vector<std::int8_t> q;
  float scale = 0.0f;
  bool ready() const { return !q.empty(); }
};

// Quantizes a weight tensor with a scale derived from its own values.
QuantTensor quantize_tensor(const Tensor& t, const CalibrationOptions& opts);

// Named calibration scales, serialized alongside the float checkpoint.
struct QuantScales {
  CalibMode mode = CalibMode::kMaxAbs;
  double percentile = 99.9;
  std::map<std::string, float> scales;

  bool empty() const { return scales.empty(); }
  // Throws std::runtime_error when `name` is missing — a scale table from a
  // different architecture must fail loudly, not misquantize.
  float at(const std::string& name) const;
};

// Text serialization (hexfloat — bitwise-exact round-trip). save throws on
// I/O failure; load throws std::runtime_error on a missing/corrupt file.
void save_quant_scales(const std::string& path, const QuantScales& scales);
QuantScales load_quant_scales(const std::string& path);

}  // namespace m2ai::nn
