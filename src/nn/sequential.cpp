// Sequential is header-only; this translation unit anchors it in the build.
#include "nn/sequential.hpp"
