#include "nn/sequential.hpp"

#include "obs/trace.hpp"

namespace m2ai::nn {

Sequential& Sequential::set_trace_label(std::string label) {
  trace_label_ = std::move(label);
  trace_label_bwd_ = trace_label_.empty() ? "" : trace_label_ + "_bwd";
  return *this;
}

Tensor Sequential::forward(const Tensor& input, bool train) {
  obs::ScopedSpan span(trace_label_.empty() ? nullptr : trace_label_.c_str());
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x, train);
  return x;
}

Tensor Sequential::backward(const Tensor& grad_output) {
  obs::ScopedSpan span(trace_label_bwd_.empty() ? nullptr
                                                : trace_label_bwd_.c_str());
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

}  // namespace m2ai::nn
