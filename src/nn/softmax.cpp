#include "nn/softmax.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::nn {

Tensor softmax(const Tensor& logits) {
  Tensor p = logits.flattened();
  float* d = p.data();
  const std::size_t n = p.size();
  float mx = d[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, d[i]);
  double z = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = std::exp(d[i] - mx);
    z += d[i];
  }
  const float inv = static_cast<float>(1.0 / z);
  for (std::size_t i = 0; i < n; ++i) d[i] *= inv;
  return p;
}

LossAndGrad softmax_cross_entropy(const Tensor& logits, int label) {
  if (label < 0 || static_cast<std::size_t>(label) >= logits.size()) {
    throw std::out_of_range("softmax_cross_entropy: bad label");
  }
  LossAndGrad out;
  Tensor p = softmax(logits);
  out.loss = -std::log(std::max(1e-12, static_cast<double>(p[static_cast<std::size_t>(label)])));
  out.predicted = 0;
  for (std::size_t i = 1; i < p.size(); ++i) {
    if (p[i] > p[static_cast<std::size_t>(out.predicted)]) {
      out.predicted = static_cast<int>(i);
    }
  }
  p[static_cast<std::size_t>(label)] -= 1.0f;
  out.grad_logits = std::move(p);
  return out;
}

}  // namespace m2ai::nn
