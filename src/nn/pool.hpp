// 1-D max pooling over the length axis of a [C, L] frame.
#pragma once

#include <deque>

#include "nn/layer.hpp"

namespace m2ai::nn {

class MaxPool1d : public Layer {
 public:
  explicit MaxPool1d(int window, int stride = -1)
      : window_(window), stride_(stride > 0 ? stride : window) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void clear_cache() override { cache_.clear(); }
  std::string name() const override { return "MaxPool1d"; }

 private:
  struct Cache {
    std::vector<int> argmax;  // flat index per output element
    int in_channels = 0;
    int in_len = 0;
  };
  int window_;
  int stride_;
  std::deque<Cache> cache_;
};

}  // namespace m2ai::nn
