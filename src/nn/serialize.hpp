// Binary checkpointing of model parameters: a tagged stream of named
// tensors, validated on load against the live parameter set (name, shape).
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace m2ai::nn {

// Write all parameter values to `path`. Throws on I/O failure.
void save_params(const std::string& path, const std::vector<Param*>& params);

// Load values into the given parameters. The file must contain the same
// number of tensors with matching names and shapes, in order; any mismatch
// (or a corrupt/truncated file — every length field is bounded against the
// file size before allocating) throws std::runtime_error.
void load_params(const std::string& path, const std::vector<Param*>& params);

}  // namespace m2ai::nn
