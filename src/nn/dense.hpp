// Fully-connected layer: y = W x + b. Accepts any input rank (flattens).
#pragma once

#include <deque>

#include "kern/workspace.hpp"
#include "nn/layer.hpp"

namespace m2ai::nn {

class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void clear_cache() override { cache_.clear(); }
  std::string name() const override { return "Dense"; }

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  // Evaluation-only batched forward: x is [batch, in] row-major, y is
  // [batch, out], both caller-owned; `ws` provides scratch (reset is the
  // caller's job). One gemm_bias instead of `batch` gemvs; bitwise-identical
  // to sequential forward(·, false) calls under the reference backend.
  void forward_batch(const float* x, int batch, float* y, kern::Workspace& ws) const;

 private:
  int in_;
  int out_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  std::deque<Tensor> cache_;  // flattened inputs, LIFO
};

}  // namespace m2ai::nn
