// Fully-connected layer: y = W x + b. Accepts any input rank (flattens).
#pragma once

#include <deque>

#include "kern/workspace.hpp"
#include "nn/layer.hpp"
#include "nn/quantize.hpp"

namespace m2ai::nn {

class Dense : public Layer {
 public:
  Dense(int in_features, int out_features, util::Rng& rng);

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  void clear_cache() override { cache_.clear(); }
  std::string name() const override { return "Dense"; }

  int in_features() const { return in_; }
  int out_features() const { return out_; }

  // Evaluation-only batched forward: x is [batch, in] row-major, y is
  // [batch, out], both caller-owned; `ws` provides scratch (reset is the
  // caller's job). One gemm_bias instead of `batch` gemvs; bitwise-identical
  // to sequential forward(·, false) calls under the reference backend.
  void forward_batch(const float* x, int batch, float* y, kern::Workspace& ws) const;

  // Post-training quantization (nn/quantize.hpp): snapshots int8 weights
  // from the current float weights and records the calibrated input
  // activation scale. The quantized forwards run the matmul through the
  // active backend's s8 kernels (int32 accumulation, one requantize); the
  // bias add stays float. Evaluation-only; weights updated after this call
  // are not reflected until prepare_quant runs again.
  void prepare_quant(float act_scale, const CalibrationOptions& opts);
  void clear_quant();
  bool quant_ready() const { return wq_.ready(); }
  float act_scale() const { return act_scale_; }

  Tensor forward_quant(const Tensor& input, kern::Workspace& ws) const;
  void forward_batch_quant(const float* x, int batch, float* y,
                           kern::Workspace& ws) const;

 private:
  int in_;
  int out_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  std::deque<Tensor> cache_;  // flattened inputs, LIFO
  QuantTensor wq_;            // [out, in] — gemm_bias_s8's row-major operand
  float act_scale_ = 0.0f;
};

}  // namespace m2ai::nn
