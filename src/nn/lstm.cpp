#include "nn/lstm.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::nn {

namespace {
inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(int input_size, int hidden_size, util::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      weight_("lstm.weight", {4 * hidden_size, input_size + hidden_size}),
      bias_("lstm.bias", {4 * hidden_size}) {
  const float std = std::sqrt(1.0f / static_cast<float>(input_size + hidden_size));
  weight_.value.randomize_normal(rng, std);
  // Forget-gate bias starts at 1 so early training keeps memory by default.
  for (int h = 0; h < hidden_size; ++h) bias_.value.at(hidden_size + h) = 1.0f;
}

std::vector<Tensor> Lstm::forward(const std::vector<Tensor>& inputs, bool train) {
  // A training forward always starts a fresh BPTT window (the whole sequence
  // is processed in one call). Any cache left behind — e.g. an exception
  // between a previous forward and its backward — would otherwise make the
  // next backward pair gradients with the wrong timesteps.
  if (train) steps_.clear();
  const int h_size = hidden_size_;
  const int in_size = input_size_;
  const int joint = in_size + h_size;

  Tensor h({h_size});
  Tensor c({h_size});
  std::vector<Tensor> outputs;
  outputs.reserve(inputs.size());

  for (const Tensor& input : inputs) {
    const Tensor x = input.rank() == 1 ? input : input.flattened();
    if (static_cast<int>(x.size()) != in_size) {
      throw std::invalid_argument("Lstm::forward: bad input size " + x.shape_string());
    }
    StepCache step;
    step.x = x;
    step.h_prev = h;
    step.c_prev = c;
    step.i = Tensor({h_size});
    step.f = Tensor({h_size});
    step.g = Tensor({h_size});
    step.o = Tensor({h_size});
    step.c = Tensor({h_size});
    step.tanh_c = Tensor({h_size});

    // z = W [x; h_prev] + b, gate blocks [i; f; g; o].
    for (int gate = 0; gate < 4; ++gate) {
      for (int u = 0; u < h_size; ++u) {
        const int row = gate * h_size + u;
        const float* w = weight_.value.data() + static_cast<std::size_t>(row) * joint;
        float acc = bias_.value.at(row);
        for (int k = 0; k < in_size; ++k) acc += w[k] * x[static_cast<std::size_t>(k)];
        for (int k = 0; k < h_size; ++k) {
          acc += w[in_size + k] * h[static_cast<std::size_t>(k)];
        }
        switch (gate) {
          case 0: step.i.at(u) = sigmoid(acc); break;
          case 1: step.f.at(u) = sigmoid(acc); break;
          case 2: step.g.at(u) = std::tanh(acc); break;
          case 3: step.o.at(u) = sigmoid(acc); break;
        }
      }
    }
    for (int u = 0; u < h_size; ++u) {
      step.c.at(u) = step.f.at(u) * c.at(u) + step.i.at(u) * step.g.at(u);
      step.tanh_c.at(u) = std::tanh(step.c.at(u));
    }
    c = step.c;
    Tensor h_new({h_size});
    for (int u = 0; u < h_size; ++u) h_new.at(u) = step.o.at(u) * step.tanh_c.at(u);
    h = h_new;
    outputs.push_back(h);
    if (train) steps_.push_back(std::move(step));
  }
  return outputs;
}

std::vector<Tensor> Lstm::backward(const std::vector<Tensor>& grad_outputs) {
  if (steps_.size() != grad_outputs.size()) {
    throw std::logic_error("Lstm::backward: cache/grad length mismatch");
  }
  const int h_size = hidden_size_;
  const int in_size = input_size_;
  const int joint = in_size + h_size;
  const std::size_t t_len = steps_.size();

  std::vector<Tensor> grad_inputs(t_len);
  Tensor dh_next({h_size});
  Tensor dc_next({h_size});

  for (std::size_t rt = t_len; rt-- > 0;) {
    const StepCache& step = steps_[rt];
    Tensor dh = grad_outputs[rt];
    dh.add_scaled(dh_next, 1.0f);

    // Through h_t = o * tanh(c_t) and c_t = f*c_prev + i*g.
    Tensor dz({4 * h_size});  // pre-activation gradients [di; df; dg; do]
    Tensor dc({h_size});
    for (int u = 0; u < h_size; ++u) {
      const float do_ = dh.at(u) * step.tanh_c.at(u);
      const float dtanh_c = dh.at(u) * step.o.at(u);
      const float dcu = dtanh_c * (1.0f - step.tanh_c.at(u) * step.tanh_c.at(u)) +
                        dc_next.at(u);
      dc.at(u) = dcu;
      const float di = dcu * step.g.at(u);
      const float df = dcu * step.c_prev.at(u);
      const float dg = dcu * step.i.at(u);
      dz.at(0 * h_size + u) = di * step.i.at(u) * (1.0f - step.i.at(u));
      dz.at(1 * h_size + u) = df * step.f.at(u) * (1.0f - step.f.at(u));
      dz.at(2 * h_size + u) = dg * (1.0f - step.g.at(u) * step.g.at(u));
      dz.at(3 * h_size + u) = do_ * step.o.at(u) * (1.0f - step.o.at(u));
    }

    // Parameter and input/recurrent gradients: z = W [x; h_prev] + b.
    Tensor dx({in_size});
    Tensor dh_prev({h_size});
    for (int row = 0; row < 4 * h_size; ++row) {
      const float g = dz.at(row);
      if (g == 0.0f) continue;
      bias_.grad.at(row) += g;
      float* wg = weight_.grad.data() + static_cast<std::size_t>(row) * joint;
      const float* w = weight_.value.data() + static_cast<std::size_t>(row) * joint;
      for (int k = 0; k < in_size; ++k) {
        wg[k] += g * step.x[static_cast<std::size_t>(k)];
        dx.at(k) += g * w[k];
      }
      for (int k = 0; k < h_size; ++k) {
        wg[in_size + k] += g * step.h_prev[static_cast<std::size_t>(k)];
        dh_prev.at(k) += g * w[in_size + k];
      }
    }

    grad_inputs[rt] = std::move(dx);
    dh_next = std::move(dh_prev);
    // dc_prev = dc * f.
    for (int u = 0; u < h_size; ++u) dc_next.at(u) = dc.at(u) * step.f.at(u);
  }
  steps_.clear();
  return grad_inputs;
}

}  // namespace m2ai::nn
