#include "nn/lstm.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "kern/backend.hpp"
#include "kern/kernels.hpp"

namespace m2ai::nn {

namespace {
inline float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }
}  // namespace

Lstm::Lstm(int input_size, int hidden_size, util::Rng& rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      weight_("lstm.weight", {4 * hidden_size, input_size + hidden_size}),
      bias_("lstm.bias", {4 * hidden_size}) {
  const float std = std::sqrt(1.0f / static_cast<float>(input_size + hidden_size));
  weight_.value.randomize_normal(rng, std);
  // Forget-gate bias starts at 1 so early training keeps memory by default.
  for (int h = 0; h < hidden_size; ++h) bias_.value.at(hidden_size + h) = 1.0f;
}

std::vector<Tensor> Lstm::forward(const std::vector<Tensor>& inputs, bool train) {
  // A training forward always starts a fresh BPTT window (the whole sequence
  // is processed in one call). Any cache left behind — e.g. an exception
  // between a previous forward and its backward — would otherwise make the
  // next backward pair gradients with the wrong timesteps.
  if (train) {
    steps_.clear();
    train_ws_.reset();
  }
  scratch_ws_.reset();
  const int h_size = hidden_size_;
  const int in_size = input_size_;
  const int joint = in_size + h_size;
  const int rows = 4 * h_size;

  kern::Workspace& ws = train ? train_ws_ : scratch_ws_;
  // Pre-activations are transient either way; the zero initial state must
  // outlive this call in training mode (backward reads step 0's c_prev).
  float* z = scratch_ws_.alloc(static_cast<std::size_t>(rows));
  const float* zeros = ws.alloc_zero(static_cast<std::size_t>(h_size));
  // Evaluation reuses one packed input and one in-place cell buffer.
  float* xh_eval = nullptr;
  float* c_eval = nullptr;
  float* tanh_eval = nullptr;
  if (!train) {
    xh_eval = scratch_ws_.alloc(static_cast<std::size_t>(joint));
    c_eval = scratch_ws_.alloc_zero(static_cast<std::size_t>(h_size));
    tanh_eval = scratch_ws_.alloc(static_cast<std::size_t>(h_size));
  }

  const float* h_prev = zeros;
  const float* c_prev = zeros;
  std::vector<Tensor> outputs;
  outputs.reserve(inputs.size());
  // Training pins the reference kernel (bitwise-reproducible checkpoints);
  // evaluation dispatches to the active backend.
  const kern::Backend& be = train ? kern::reference_backend() : kern::active();

  for (const Tensor& input : inputs) {
    const Tensor x = input.rank() == 1 ? input : input.flattened();
    if (static_cast<int>(x.size()) != in_size) {
      throw std::invalid_argument("Lstm::forward: bad input size " + x.shape_string());
    }
    float* xh = train ? ws.alloc(static_cast<std::size_t>(joint)) : xh_eval;
    std::memcpy(xh, x.data(), static_cast<std::size_t>(in_size) * sizeof(float));
    std::memcpy(xh + in_size, h_prev, static_cast<std::size_t>(h_size) * sizeof(float));

    // z = W [x; h_prev] + b, gate blocks [i; f; g; o], one fused GEMV.
    be.gemv(weight_.value.data(), xh, bias_.value.data(), z, rows, joint);

    float* gates = train ? ws.alloc(static_cast<std::size_t>(rows)) : z;
    float* c = train ? ws.alloc(static_cast<std::size_t>(h_size)) : c_eval;
    float* tanh_c = train ? ws.alloc(static_cast<std::size_t>(h_size)) : tanh_eval;
    for (int u = 0; u < h_size; ++u) gates[u] = sigmoid(z[u]);
    for (int u = 0; u < h_size; ++u) gates[h_size + u] = sigmoid(z[h_size + u]);
    for (int u = 0; u < h_size; ++u) gates[2 * h_size + u] = std::tanh(z[2 * h_size + u]);
    for (int u = 0; u < h_size; ++u) gates[3 * h_size + u] = sigmoid(z[3 * h_size + u]);
    for (int u = 0; u < h_size; ++u) {
      c[u] = gates[h_size + u] * c_prev[u] + gates[u] * gates[2 * h_size + u];
      tanh_c[u] = std::tanh(c[u]);
    }
    Tensor h_new({h_size});
    float* h = h_new.data();
    for (int u = 0; u < h_size; ++u) h[u] = gates[3 * h_size + u] * tanh_c[u];
    if (train) steps_.push_back(StepView{xh, c_prev, gates, c, tanh_c});
    outputs.push_back(std::move(h_new));
    // Tensor storage is heap-allocated, so these stay valid as `outputs`
    // grows; c (in eval mode) is updated in place, which is safe because
    // c[u] reads only c_prev[u].
    h_prev = outputs.back().data();
    c_prev = c;
  }
  return outputs;
}

std::vector<std::vector<Tensor>> Lstm::forward_batch(
    const std::vector<const std::vector<Tensor>*>& seqs) {
  const std::size_t batch = seqs.size();
  if (batch == 0) return {};
  const std::size_t t_len = seqs[0]->size();
  for (const std::vector<Tensor>* s : seqs) {
    if (s == nullptr || s->size() != t_len) {
      throw std::invalid_argument("Lstm::forward_batch: unequal sequence lengths");
    }
  }
  const int h_size = hidden_size_;
  const int in_size = input_size_;
  const int joint = in_size + h_size;
  const int rows = 4 * h_size;

  scratch_ws_.reset();
  // WT[k, j] = W[j, k]: the [joint, 4H] operand gemm_bias needs so each
  // sample's gate row accumulates k-ascending — the same per-element order
  // as forward()'s gemv, making this bitwise-identical to `batch` separate
  // forward(·, false) calls under the reference backend.
  float* wt = scratch_ws_.alloc(static_cast<std::size_t>(joint) * rows);
  {
    const float* w = weight_.value.data();
    for (int j = 0; j < rows; ++j) {
      for (int k = 0; k < joint; ++k) {
        wt[static_cast<std::size_t>(k) * rows + j] = w[static_cast<std::size_t>(j) * joint + k];
      }
    }
  }
  float* xh = scratch_ws_.alloc(batch * static_cast<std::size_t>(joint));
  float* z = scratch_ws_.alloc(batch * static_cast<std::size_t>(rows));
  float* c = scratch_ws_.alloc_zero(batch * static_cast<std::size_t>(h_size));
  const float* zeros = scratch_ws_.alloc_zero(static_cast<std::size_t>(h_size));

  std::vector<const float*> h_prev(batch, zeros);
  std::vector<std::vector<Tensor>> outputs(batch);
  for (std::size_t b = 0; b < batch; ++b) outputs[b].reserve(t_len);

  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t b = 0; b < batch; ++b) {
      const Tensor& input = (*seqs[b])[t];
      const Tensor x = input.rank() == 1 ? input : input.flattened();
      if (static_cast<int>(x.size()) != in_size) {
        throw std::invalid_argument("Lstm::forward_batch: bad input size " +
                                    x.shape_string());
      }
      float* row = xh + b * static_cast<std::size_t>(joint);
      std::memcpy(row, x.data(), static_cast<std::size_t>(in_size) * sizeof(float));
      std::memcpy(row + in_size, h_prev[b],
                  static_cast<std::size_t>(h_size) * sizeof(float));
    }
    // Z = XH · WT + b over the whole micro-batch: one gemm instead of
    // `batch` gemvs per timestep — the batched serving fast path.
    kern::active().gemm_bias(xh, wt, bias_.value.data(), z,
                             static_cast<int>(batch), joint, rows);
    for (std::size_t b = 0; b < batch; ++b) {
      float* zb = z + b * static_cast<std::size_t>(rows);
      float* cb = c + b * static_cast<std::size_t>(h_size);
      for (int u = 0; u < h_size; ++u) zb[u] = sigmoid(zb[u]);
      for (int u = 0; u < h_size; ++u) zb[h_size + u] = sigmoid(zb[h_size + u]);
      for (int u = 0; u < h_size; ++u) zb[2 * h_size + u] = std::tanh(zb[2 * h_size + u]);
      for (int u = 0; u < h_size; ++u) zb[3 * h_size + u] = sigmoid(zb[3 * h_size + u]);
      Tensor h_new({h_size});
      float* h = h_new.data();
      for (int u = 0; u < h_size; ++u) {
        // Same in-place cell update as eval forward(): cb[u] reads only its
        // own previous value.
        cb[u] = zb[h_size + u] * cb[u] + zb[u] * zb[2 * h_size + u];
        h[u] = zb[3 * h_size + u] * std::tanh(cb[u]);
      }
      outputs[b].push_back(std::move(h_new));
      h_prev[b] = outputs[b].back().data();
    }
  }
  return outputs;
}

void Lstm::prepare_quant(float xh_scale, const CalibrationOptions& opts) {
  check_s8_depth(input_size_ + hidden_size_, "Lstm::prepare_quant");
  wq_ = quantize_tensor(weight_.value, opts);
  xh_scale_ = xh_scale;
}

void Lstm::clear_quant() {
  wq_ = QuantTensor{};
  xh_scale_ = 0.0f;
}

std::vector<std::vector<Tensor>> Lstm::forward_batch_quant(
    const std::vector<const std::vector<Tensor>*>& seqs) {
  if (!quant_ready()) {
    throw std::logic_error("Lstm::forward_batch_quant: not prepared");
  }
  const std::size_t batch = seqs.size();
  if (batch == 0) return {};
  const std::size_t t_len = seqs[0]->size();
  for (const std::vector<Tensor>* s : seqs) {
    if (s == nullptr || s->size() != t_len) {
      throw std::invalid_argument("Lstm::forward_batch_quant: unequal sequence lengths");
    }
  }
  const int h_size = hidden_size_;
  const int in_size = input_size_;
  const int joint = in_size + h_size;
  const int rows = 4 * h_size;
  const float combined_scale = wq_.scale * xh_scale_;

  scratch_ws_.reset();
  // No weight transpose: gemm_bias_s8 consumes the [4H, joint] row-major
  // weight directly. Per timestep the packed float [x; h_prev] rows are
  // quantized with the calibrated xh scale, the gate pre-activations come
  // back already dequantized to float, and the nonlinearity/cell block below
  // is byte-for-byte the float forward_batch code.
  float* xh = scratch_ws_.alloc(batch * static_cast<std::size_t>(joint));
  std::int8_t* xhq = scratch_ws_.alloc_s8(batch * static_cast<std::size_t>(joint));
  float* z = scratch_ws_.alloc(batch * static_cast<std::size_t>(rows));
  float* c = scratch_ws_.alloc_zero(batch * static_cast<std::size_t>(h_size));
  const float* zeros = scratch_ws_.alloc_zero(static_cast<std::size_t>(h_size));

  std::vector<const float*> h_prev(batch, zeros);
  std::vector<std::vector<Tensor>> outputs(batch);
  for (std::size_t b = 0; b < batch; ++b) outputs[b].reserve(t_len);

  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t b = 0; b < batch; ++b) {
      const Tensor& input = (*seqs[b])[t];
      const Tensor x = input.rank() == 1 ? input : input.flattened();
      if (static_cast<int>(x.size()) != in_size) {
        throw std::invalid_argument("Lstm::forward_batch_quant: bad input size " +
                                    x.shape_string());
      }
      float* row = xh + b * static_cast<std::size_t>(joint);
      std::memcpy(row, x.data(), static_cast<std::size_t>(in_size) * sizeof(float));
      std::memcpy(row + in_size, h_prev[b],
                  static_cast<std::size_t>(h_size) * sizeof(float));
    }
    kern::active().quantize_s8(xh, batch * static_cast<std::size_t>(joint),
                               xh_scale_, xhq);
    kern::active().gemm_bias_s8(xhq, wq_.q.data(), bias_.value.data(), z,
                                static_cast<int>(batch), joint, rows,
                                combined_scale);
    for (std::size_t b = 0; b < batch; ++b) {
      float* zb = z + b * static_cast<std::size_t>(rows);
      float* cb = c + b * static_cast<std::size_t>(h_size);
      for (int u = 0; u < h_size; ++u) zb[u] = sigmoid(zb[u]);
      for (int u = 0; u < h_size; ++u) zb[h_size + u] = sigmoid(zb[h_size + u]);
      for (int u = 0; u < h_size; ++u) zb[2 * h_size + u] = std::tanh(zb[2 * h_size + u]);
      for (int u = 0; u < h_size; ++u) zb[3 * h_size + u] = sigmoid(zb[3 * h_size + u]);
      Tensor h_new({h_size});
      float* h = h_new.data();
      for (int u = 0; u < h_size; ++u) {
        cb[u] = zb[h_size + u] * cb[u] + zb[u] * zb[2 * h_size + u];
        h[u] = zb[3 * h_size + u] * std::tanh(cb[u]);
      }
      outputs[b].push_back(std::move(h_new));
      h_prev[b] = outputs[b].back().data();
    }
  }
  return outputs;
}

std::vector<Tensor> Lstm::backward(const std::vector<Tensor>& grad_outputs) {
  if (steps_.size() != grad_outputs.size()) {
    throw std::logic_error("Lstm::backward: cache/grad length mismatch");
  }
  const int h_size = hidden_size_;
  const int in_size = input_size_;
  const int joint = in_size + h_size;
  const int rows = 4 * h_size;
  const std::size_t t_len = steps_.size();

  scratch_ws_.reset();
  float* dh = scratch_ws_.alloc(static_cast<std::size_t>(h_size));
  float* dz = scratch_ws_.alloc(static_cast<std::size_t>(rows));
  float* dc = scratch_ws_.alloc(static_cast<std::size_t>(h_size));
  float* dxh = scratch_ws_.alloc(static_cast<std::size_t>(joint));
  float* dh_next = scratch_ws_.alloc_zero(static_cast<std::size_t>(h_size));
  float* dc_next = scratch_ws_.alloc_zero(static_cast<std::size_t>(h_size));

  std::vector<Tensor> grad_inputs(t_len);

  for (std::size_t rt = t_len; rt-- > 0;) {
    const StepView& step = steps_[rt];
    if (static_cast<int>(grad_outputs[rt].size()) != h_size) {
      throw std::invalid_argument("Tensor::add_scaled: size mismatch");
    }
    const float* go = grad_outputs[rt].data();
    for (int u = 0; u < h_size; ++u) dh[u] = go[u] + 1.0f * dh_next[u];

    // Through h_t = o * tanh(c_t) and c_t = f*c_prev + i*g.
    for (int u = 0; u < h_size; ++u) {
      const float i_ = step.gates[u];
      const float f_ = step.gates[h_size + u];
      const float g_ = step.gates[2 * h_size + u];
      const float o_ = step.gates[3 * h_size + u];
      const float do_ = dh[u] * step.tanh_c[u];
      const float dtanh_c = dh[u] * o_;
      const float dcu = dtanh_c * (1.0f - step.tanh_c[u] * step.tanh_c[u]) + dc_next[u];
      dc[u] = dcu;
      const float di = dcu * g_;
      const float df = dcu * step.c_prev[u];
      const float dg = dcu * i_;
      dz[0 * h_size + u] = di * i_ * (1.0f - i_);
      dz[1 * h_size + u] = df * f_ * (1.0f - f_);
      dz[2 * h_size + u] = dg * (1.0f - g_ * g_);
      dz[3 * h_size + u] = do_ * o_ * (1.0f - o_);
    }

    // Parameter and input/recurrent gradients: z = W [x; h_prev] + b. The
    // packed dxh = [dx; dh_prev] mirrors the packed forward input.
    std::memset(dxh, 0, static_cast<std::size_t>(joint) * sizeof(float));
    kern::gemv_backward_acc(weight_.value.data(), weight_.grad.data(), step.xh, dz,
                            bias_.grad.data(), dxh, rows, joint,
                            /*skip_zero_rows=*/true);

    Tensor dx({in_size});
    std::memcpy(dx.data(), dxh, static_cast<std::size_t>(in_size) * sizeof(float));
    grad_inputs[rt] = std::move(dx);
    std::memcpy(dh_next, dxh + in_size, static_cast<std::size_t>(h_size) * sizeof(float));
    // dc_prev = dc * f.
    for (int u = 0; u < h_size; ++u) dc_next[u] = dc[u] * step.gates[h_size + u];
  }
  steps_.clear();
  return grad_inputs;
}

}  // namespace m2ai::nn
