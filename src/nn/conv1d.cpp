#include "nn/conv1d.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "kern/backend.hpp"
#include "kern/kernels.hpp"

namespace m2ai::nn {

Conv1d::Conv1d(int in_channels, int out_channels, int kernel, int stride,
               int padding, util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_("conv1d.weight", {out_channels, in_channels, kernel}),
      bias_("conv1d.bias", {out_channels}) {
  if (stride < 1 || kernel < 1) throw std::invalid_argument("Conv1d: bad geometry");
  const float std = std::sqrt(2.0f / static_cast<float>(in_channels * kernel));
  weight_.value.randomize_normal(rng, std);
}

int Conv1d::output_length(int input_length) const {
  const int span = input_length + 2 * padding_ - kernel_;
  if (span < 0) throw std::invalid_argument("Conv1d: input shorter than kernel");
  return span / stride_ + 1;
}

Tensor Conv1d::forward(const Tensor& input, bool train) {
  if (input.rank() != 2 || input.dim(0) != in_channels_) {
    throw std::invalid_argument("Conv1d::forward: expected [" +
                                std::to_string(in_channels_) + ", L], got " +
                                input.shape_string());
  }
  const int len = input.dim(1);
  const int out_len = output_length(len);
  Tensor y({out_channels_, out_len});

  const float* x = input.data();
  const float* w = weight_.value.data();
  float* out = y.data();
  // Per input channel the valid taps are accumulated k-ascending into a
  // zeroed partial row (kern::conv1d_row_acc), then folded into the output —
  // the same per-element sums, in the same order, as the old per-output
  // scalar loop, but with the bounds tests hoisted out of the inner loop.
  ws_.reset();
  float* partial = ws_.alloc(static_cast<std::size_t>(out_len));
  // Training pins the reference kernel (bitwise-reproducible checkpoints);
  // evaluation dispatches to the active backend.
  const kern::Backend& be = train ? kern::reference_backend() : kern::active();
  // The fast backend is epsilon-equivalent anyway, so it may skip the
  // partial row and accumulate taps straight into the bias-seeded output —
  // dropping a zero + fold pass per (oc, ic) pair. The reference keeps the
  // partial+fold structure, whose per-element order the bitwise contract
  // pins.
  const bool acc_in_place = &be != &kern::reference_backend();
  for (int oc = 0; oc < out_channels_; ++oc) {
    float* y_oc = out + static_cast<std::size_t>(oc) * out_len;
    const float b = bias_.value[static_cast<std::size_t>(oc)];
    for (int ol = 0; ol < out_len; ++ol) y_oc[ol] = b;
    for (int ic = 0; ic < in_channels_; ++ic) {
      const float* x_ic = x + static_cast<std::size_t>(ic) * len;
      const float* w_row =
          w + (static_cast<std::size_t>(oc) * in_channels_ + ic) * kernel_;
      if (acc_in_place) {
        be.conv1d_row_acc(x_ic, len, w_row, kernel_, stride_, padding_, y_oc,
                          out_len);
        continue;
      }
      std::memset(partial, 0, static_cast<std::size_t>(out_len) * sizeof(float));
      be.conv1d_row_acc(x_ic, len, w_row, kernel_, stride_, padding_, partial,
                        out_len);
      for (int ol = 0; ol < out_len; ++ol) y_oc[ol] += partial[ol];
    }
  }
  if (train) cache_.push_back(input);
  return y;
}

Tensor Conv1d::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("Conv1d::backward: no cached forward");
  // Validate against the cached forward before consuming it: a mis-shaped
  // gradient (wrong layer order, stale cache) used to read out of bounds
  // here instead of failing like forward() does.
  const int expect_len = output_length(cache_.back().dim(1));
  if (grad_output.rank() != 2 || grad_output.dim(0) != out_channels_ ||
      grad_output.dim(1) != expect_len) {
    throw std::invalid_argument("Conv1d::backward: expected [" +
                                std::to_string(out_channels_) + ", " +
                                std::to_string(expect_len) + "], got " +
                                grad_output.shape_string());
  }
  const Tensor xt = std::move(cache_.back());
  cache_.pop_back();

  const int len = xt.dim(1);
  const int out_len = grad_output.dim(1);
  Tensor grad_in({in_channels_, len});

  const float* x = xt.data();
  const float* g = grad_output.data();
  const float* w = weight_.value.data();
  float* wg = weight_.grad.data();
  float* gi = grad_in.data();

  for (int oc = 0; oc < out_channels_; ++oc) {
    const float* g_oc = g + static_cast<std::size_t>(oc) * out_len;
    float bias_acc = 0.0f;
    for (int ol = 0; ol < out_len; ++ol) bias_acc += g_oc[ol];
    bias_.grad[static_cast<std::size_t>(oc)] += bias_acc;

    for (int ic = 0; ic < in_channels_; ++ic) {
      const float* x_ic = x + static_cast<std::size_t>(ic) * len;
      float* gi_ic = gi + static_cast<std::size_t>(ic) * len;
      const std::size_t row = (static_cast<std::size_t>(oc) * in_channels_ + ic) *
                              static_cast<std::size_t>(kernel_);
      const float* w_row = w + row;
      float* wg_row = wg + row;
      for (int ol = 0; ol < out_len; ++ol) {
        const float go = g_oc[ol];
        if (go == 0.0f) continue;
        const int start = ol * stride_ - padding_;
        const int k_lo = start < 0 ? -start : 0;
        const int k_hi = std::min(kernel_, len - start);
        const float* xs = x_ic + start;
        float* gs = gi_ic + start;
        for (int k = k_lo; k < k_hi; ++k) {
          wg_row[k] += go * xs[k];
          gs[k] += go * w_row[k];
        }
      }
    }
  }
  return grad_in;
}

}  // namespace m2ai::nn
