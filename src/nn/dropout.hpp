// Inverted dropout: active only when train=true; inference is a no-op.
#pragma once

#include <deque>

#include "nn/layer.hpp"

namespace m2ai::nn {

class Dropout : public Layer {
 public:
  Dropout(double rate, util::Rng rng) : rate_(rate), rng_(rng) {}

  Tensor forward(const Tensor& input, bool train) override;
  Tensor backward(const Tensor& grad_output) override;
  void clear_cache() override { cache_.clear(); }
  void reseed(util::Rng& base) override { rng_ = base.fork(); }
  std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  util::Rng rng_;
  std::deque<std::vector<float>> cache_;  // per-element keep scale
};

}  // namespace m2ai::nn
