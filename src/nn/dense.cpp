#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "kern/backend.hpp"
#include "kern/kernels.hpp"

namespace m2ai::nn {

Dense::Dense(int in_features, int out_features, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("dense.weight", {out_features, in_features}),
      bias_("dense.bias", {out_features}) {
  // He initialization (layers are followed by ReLU in this codebase).
  const float std = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.value.randomize_normal(rng, std);
}

Tensor Dense::forward(const Tensor& input, bool train) {
  const Tensor x = input.rank() == 1 ? input : input.flattened();
  if (static_cast<int>(x.size()) != in_) {
    throw std::invalid_argument("Dense::forward: expected " + std::to_string(in_) +
                                " features, got " + x.shape_string());
  }
  Tensor y({out_});
  // Training is pinned to the reference backend so checkpoints stay bitwise
  // reproducible no matter which backend is active; evaluation dispatches.
  const kern::Backend& be = train ? kern::reference_backend() : kern::active();
  be.gemv(weight_.value.data(), x.data(), bias_.value.data(), y.data(), out_, in_);
  if (train) cache_.push_back(x);
  return y;
}

void Dense::forward_batch(const float* x, int batch, float* y,
                          kern::Workspace& ws) const {
  // WT[k, j] = W[j, k]: gemm_bias wants the [in, out] operand so each output
  // row accumulates k-ascending — the same per-element order as forward()'s
  // gemv, making this bitwise-identical to `batch` forward() calls under the
  // reference backend.
  float* wt = ws.alloc(static_cast<std::size_t>(in_) * out_);
  const float* w = weight_.value.data();
  for (int j = 0; j < out_; ++j) {
    for (int k = 0; k < in_; ++k) {
      wt[static_cast<std::size_t>(k) * out_ + j] = w[static_cast<std::size_t>(j) * in_ + k];
    }
  }
  kern::active().gemm_bias(x, wt, bias_.value.data(), y, batch, in_, out_);
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("Dense::backward: no cached forward");
  if (static_cast<int>(grad_output.size()) != out_) {
    throw std::invalid_argument("Dense::backward: expected " + std::to_string(out_) +
                                " gradients, got " + grad_output.shape_string());
  }
  const Tensor x = std::move(cache_.back());
  cache_.pop_back();

  Tensor grad_in({in_});
  kern::gemv_backward_acc(weight_.value.data(), weight_.grad.data(), x.data(),
                          grad_output.data(), bias_.grad.data(), grad_in.data(),
                          out_, in_, /*skip_zero_rows=*/false);
  return grad_in;
}

}  // namespace m2ai::nn
