#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::nn {

Dense::Dense(int in_features, int out_features, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("dense.weight", {out_features, in_features}),
      bias_("dense.bias", {out_features}) {
  // He initialization (layers are followed by ReLU in this codebase).
  const float std = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.value.randomize_normal(rng, std);
}

Tensor Dense::forward(const Tensor& input, bool train) {
  const Tensor x = input.rank() == 1 ? input : input.flattened();
  if (static_cast<int>(x.size()) != in_) {
    throw std::invalid_argument("Dense::forward: expected " + std::to_string(in_) +
                                " features, got " + x.shape_string());
  }
  Tensor y({out_});
  for (int o = 0; o < out_; ++o) {
    float acc = bias_.value.at(o);
    const float* w = weight_.value.data() + static_cast<std::size_t>(o) * in_;
    const float* xi = x.data();
    for (int i = 0; i < in_; ++i) acc += w[i] * xi[i];
    y.at(o) = acc;
  }
  if (train) cache_.push_back(x);
  return y;
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("Dense::backward: no cached forward");
  const Tensor x = std::move(cache_.back());
  cache_.pop_back();

  Tensor grad_in({in_});
  for (int o = 0; o < out_; ++o) {
    const float g = grad_output.at(o);
    bias_.grad.at(o) += g;
    float* wg = weight_.grad.data() + static_cast<std::size_t>(o) * in_;
    const float* w = weight_.value.data() + static_cast<std::size_t>(o) * in_;
    for (int i = 0; i < in_; ++i) {
      wg[i] += g * x[static_cast<std::size_t>(i)];
      grad_in.at(i) += g * w[i];
    }
  }
  return grad_in;
}

}  // namespace m2ai::nn
