#include "nn/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "kern/backend.hpp"
#include "kern/kernels.hpp"

namespace m2ai::nn {

Dense::Dense(int in_features, int out_features, util::Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("dense.weight", {out_features, in_features}),
      bias_("dense.bias", {out_features}) {
  // He initialization (layers are followed by ReLU in this codebase).
  const float std = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_.value.randomize_normal(rng, std);
}

Tensor Dense::forward(const Tensor& input, bool train) {
  const Tensor x = input.rank() == 1 ? input : input.flattened();
  if (static_cast<int>(x.size()) != in_) {
    throw std::invalid_argument("Dense::forward: expected " + std::to_string(in_) +
                                " features, got " + x.shape_string());
  }
  Tensor y({out_});
  // Training is pinned to the reference backend so checkpoints stay bitwise
  // reproducible no matter which backend is active; evaluation dispatches.
  const kern::Backend& be = train ? kern::reference_backend() : kern::active();
  be.gemv(weight_.value.data(), x.data(), bias_.value.data(), y.data(), out_, in_);
  if (train) cache_.push_back(x);
  return y;
}

void Dense::forward_batch(const float* x, int batch, float* y,
                          kern::Workspace& ws) const {
  // WT[k, j] = W[j, k]: gemm_bias wants the [in, out] operand so each output
  // row accumulates k-ascending — the same per-element order as forward()'s
  // gemv, making this bitwise-identical to `batch` forward() calls under the
  // reference backend.
  float* wt = ws.alloc(static_cast<std::size_t>(in_) * out_);
  const float* w = weight_.value.data();
  for (int j = 0; j < out_; ++j) {
    for (int k = 0; k < in_; ++k) {
      wt[static_cast<std::size_t>(k) * out_ + j] = w[static_cast<std::size_t>(j) * in_ + k];
    }
  }
  kern::active().gemm_bias(x, wt, bias_.value.data(), y, batch, in_, out_);
}

void Dense::prepare_quant(float act_scale, const CalibrationOptions& opts) {
  check_s8_depth(in_, "Dense::prepare_quant");
  wq_ = quantize_tensor(weight_.value, opts);
  act_scale_ = act_scale;
}

void Dense::clear_quant() {
  wq_ = QuantTensor{};
  act_scale_ = 0.0f;
}

Tensor Dense::forward_quant(const Tensor& input, kern::Workspace& ws) const {
  if (!quant_ready()) throw std::logic_error("Dense::forward_quant: not prepared");
  const Tensor x = input.rank() == 1 ? input : input.flattened();
  if (static_cast<int>(x.size()) != in_) {
    throw std::invalid_argument("Dense::forward_quant: expected " +
                                std::to_string(in_) + " features, got " +
                                x.shape_string());
  }
  std::int8_t* xq = ws.alloc_s8(static_cast<std::size_t>(in_));
  kern::active().quantize_s8(x.data(), static_cast<std::size_t>(in_), act_scale_, xq);
  Tensor y({out_});
  kern::active().gemv_s8(wq_.q.data(), xq, bias_.value.data(), y.data(), out_,
                         in_, wq_.scale * act_scale_);
  return y;
}

void Dense::forward_batch_quant(const float* x, int batch, float* y,
                                kern::Workspace& ws) const {
  if (!quant_ready()) throw std::logic_error("Dense::forward_batch_quant: not prepared");
  const std::size_t total = static_cast<std::size_t>(batch) * in_;
  std::int8_t* xq = ws.alloc_s8(total);
  kern::active().quantize_s8(x, total, act_scale_, xq);
  // gemm_bias_s8 takes the weight in its natural [out, in] row-major layout
  // — no transpose scratch, unlike the float forward_batch.
  kern::active().gemm_bias_s8(xq, wq_.q.data(), bias_.value.data(), y, batch,
                              in_, out_, wq_.scale * act_scale_);
}

Tensor Dense::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("Dense::backward: no cached forward");
  if (static_cast<int>(grad_output.size()) != out_) {
    throw std::invalid_argument("Dense::backward: expected " + std::to_string(out_) +
                                " gradients, got " + grad_output.shape_string());
  }
  const Tensor x = std::move(cache_.back());
  cache_.pop_back();

  Tensor grad_in({in_});
  kern::gemv_backward_acc(weight_.value.data(), weight_.grad.data(), x.data(),
                          grad_output.data(), bias_.grad.data(), grad_in.data(),
                          out_, in_, /*skip_zero_rows=*/false);
  return grad_in;
}

}  // namespace m2ai::nn
