#include "nn/activations.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::nn {

Tensor ReLU::forward(const Tensor& input, bool train) {
  Tensor y = input;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::max(0.0f, y[i]);
  if (train) cache_.push_back(input);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("ReLU::backward: no cached forward");
  const Tensor x = std::move(cache_.back());
  cache_.pop_back();
  Tensor g = grad_output;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (x[i] <= 0.0f) g[i] = 0.0f;
  }
  return g;
}

Tensor Tanh::forward(const Tensor& input, bool train) {
  Tensor y = input;
  for (std::size_t i = 0; i < y.size(); ++i) y[i] = std::tanh(y[i]);
  if (train) cache_.push_back(y);
  return y;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  if (cache_.empty()) throw std::logic_error("Tanh::backward: no cached forward");
  const Tensor y = std::move(cache_.back());
  cache_.pop_back();
  Tensor g = grad_output;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= 1.0f - y[i] * y[i];
  return g;
}

}  // namespace m2ai::nn
