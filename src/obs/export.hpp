// Exporters for the observability layer: JSON and CSV renderings of the
// metrics registry, the aggregated trace spans, and the training telemetry,
// plus a human-readable span tree for --trace output.
//
// JSON schema (schema_version 1):
//   {
//     "schema_version": 1,
//     "counters":   {"<name>": <uint>, ...},
//     "gauges":     {"<name>": <double>, ...},
//     "histograms": {"<name>": {"count","sum","min","max","p50","p95","p99"}},
//     "spans": [{"name","parent","depth","count","total_ms","min_ms",
//                "max_ms","p50_ms","p95_ms","p99_ms"}, ...],
//     "training": {"epochs": [{"epoch","loss","train_accuracy","grad_norm",
//                              "learning_rate","seconds"}, ...]}
//   }
//
// CSV is long-format with one scalar per row: kind,name,field,value — e.g.
//   span,music,p95_ms,0.812
//   epoch,3,loss,1.492
// Fields are RFC-4180 quoted, so names containing commas, quotes, or
// newlines round-trip through any compliant CSV reader.
#pragma once

#include <string>

namespace m2ai::obs {

std::string to_json();
std::string to_csv();

// JSON string escaping (quotes, backslashes, control characters) shared
// with other JSON emitters (the experiment runner's suite report).
std::string json_escape(const std::string& s);

// Indented call tree of the recorded spans (count / total / p50 / p95).
std::string span_tree();

// Write to `path`; throws std::runtime_error if the file cannot be opened.
void write_json(const std::string& path);
void write_csv(const std::string& path);
// Dispatch by extension: ".csv" writes CSV, anything else JSON.
void write_report(const std::string& path);

// Hard-clears registry, spans, telemetry, and the timeline (tests). This
// drops registry/span entries entirely, invalidating cached instrument
// references — for an in-place value reset that keeps references valid, use
// registry().clear() / spans().clear().
void reset_all();

}  // namespace m2ai::obs
