// Perf-regression diffing of two machine-readable reports.
//
// Understands both report schemas the repo commits:
//   - obs metrics reports (obs::to_json): compares per-span latency
//     statistics ("p50_ms" by default — any histogram field works);
//   - m2ai_bench suite reports (exp::suite_report_json): compares
//     per-experiment cell_seconds.
// The schema is auto-detected from the document's keys, so
// `m2ai_obsdiff old.json new.json` works on either artifact.
//
// A span regresses when BOTH hold:
//   candidate > baseline * (1 + threshold)   (relative gate)
//   candidate - baseline > min_abs           (absolute noise floor)
// Spans present in only one report are listed but never gate — new
// instrumentation must not fail CI, and deleted spans have nothing to
// regress.
#pragma once

#include <string>
#include <vector>

namespace m2ai::obs {

struct DiffOptions {
  // Histogram field compared in span mode (p50_ms, p95_ms, max_ms,
  // total_ms, ...). Suite mode always compares cell_seconds.
  std::string field = "p50_ms";
  double threshold = 0.25;  // relative regression gate (0.25 = +25%)
  double min_abs = 0.05;    // absolute floor, in the field's unit
};

struct EntryDelta {
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  double delta_pct = 0.0;  // (candidate - baseline) / baseline * 100
  bool regression = false;
};

struct DiffResult {
  std::string mode;   // "spans" or "experiments"
  std::string field;  // the statistic actually compared
  std::vector<EntryDelta> entries;        // names present in both reports
  std::vector<std::string> only_baseline; // present only in the baseline
  std::vector<std::string> only_candidate;
  bool has_regression = false;
};

// Parses both documents and computes the deltas. Throws util::JsonError on
// malformed input and std::runtime_error when a document matches neither
// schema or lacks the requested field.
DiffResult diff_reports(const std::string& baseline_json,
                        const std::string& candidate_json,
                        const DiffOptions& options = {});

// Human-readable delta table (regressions flagged with "REGRESSED").
std::string render_diff(const DiffResult& result, const DiffOptions& options);

}  // namespace m2ai::obs
