// Per-epoch training telemetry: loss curve, train accuracy, gradient norm,
// learning rate, and wall-clock per epoch. The trainer appends one record
// per epoch when observability is enabled; the exporter emits the whole
// curve so the Fig. 9-17 experiments can be compared run to run.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace m2ai::obs {

struct EpochRecord {
  int epoch = 0;  // 1-based
  double loss = 0.0;
  double train_accuracy = 0.0;
  double grad_norm = 0.0;  // mean pre-clip global gradient norm
  double learning_rate = 0.0;
  double seconds = 0.0;  // wall-clock for the epoch
  // Data-parallel training: the widest replica fan-out any batch used, and
  // the summed per-replica busy wall-clock (busy/(replicas*seconds) is the
  // epoch's parallel efficiency).
  int replicas = 1;
  double replica_busy_seconds = 0.0;
};

class TrainingTelemetry {
 public:
  void record_epoch(const EpochRecord& record) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    epochs_.push_back(record);
  }

  std::vector<EpochRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epochs_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    epochs_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<EpochRecord> epochs_;
};

// Process-wide telemetry recorder.
TrainingTelemetry& training();

}  // namespace m2ai::obs
