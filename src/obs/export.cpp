#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace m2ai::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void append_histogram_json(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + num(h.sum);
  out += ",\"min\":" + num(h.min);
  out += ",\"max\":" + num(h.max);
  out += ",\"p50\":" + num(h.p50);
  out += ",\"p95\":" + num(h.p95);
  out += ",\"p99\":" + num(h.p99);
  out += "}";
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("obs: cannot open " + path + " for writing");
  f << content;
  if (!f.good()) throw std::runtime_error("obs: failed writing " + path);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  append_escaped(out, s);
  return out;
}

std::string to_json() {
  std::string out = "{\n  \"schema_version\": 1,\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry().counters()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry().gauges()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": " + num(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, snap] : registry().histograms()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, name);
    out += "\": ";
    append_histogram_json(out, snap);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"spans\": [";
  first = true;
  for (const SpanStats& s : spans().snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\":\"";
    append_escaped(out, s.name);
    out += "\",\"parent\":\"";
    append_escaped(out, s.parent);
    out += "\",\"depth\":" + std::to_string(s.depth);
    out += ",\"count\":" + std::to_string(s.latency_ms.count);
    out += ",\"total_ms\":" + num(s.latency_ms.sum);
    out += ",\"min_ms\":" + num(s.latency_ms.min);
    out += ",\"max_ms\":" + num(s.latency_ms.max);
    out += ",\"p50_ms\":" + num(s.latency_ms.p50);
    out += ",\"p95_ms\":" + num(s.latency_ms.p95);
    out += ",\"p99_ms\":" + num(s.latency_ms.p99);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"training\": {\"epochs\": [";
  first = true;
  for (const EpochRecord& e : training().snapshot()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"epoch\":" + std::to_string(e.epoch);
    out += ",\"loss\":" + num(e.loss);
    out += ",\"train_accuracy\":" + num(e.train_accuracy);
    out += ",\"grad_norm\":" + num(e.grad_norm);
    out += ",\"learning_rate\":" + num(e.learning_rate);
    out += ",\"seconds\":" + num(e.seconds);
    out += ",\"replicas\":" + std::to_string(e.replicas);
    out += ",\"replica_busy_seconds\":" + num(e.replica_busy_seconds);
    out += "}";
  }
  out += first ? "]}\n" : "\n  ]}\n";

  out += "}\n";
  return out;
}

namespace {

// RFC-4180 field quoting: a field containing a comma, quote, CR, or LF is
// wrapped in quotes with embedded quotes doubled. Span/metric names are
// usually identifier-like, but nothing enforces that — an unquoted name
// with a comma or newline would corrupt every row after it.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\r\n") == std::string::npos) return s;
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_csv() {
  std::string out = "kind,name,field,value\n";
  auto row = [&out](const std::string& kind, const std::string& name,
                    const std::string& field, const std::string& value) {
    out += csv_field(kind) + "," + csv_field(name) + "," + csv_field(field) + "," +
           csv_field(value) + "\n";
  };
  auto hist_rows = [&row](const std::string& kind, const std::string& name,
                          const HistogramSnapshot& h, const std::string& unit) {
    row(kind, name, "count", std::to_string(h.count));
    row(kind, name, "sum" + unit, num(h.sum));
    row(kind, name, "min" + unit, num(h.min));
    row(kind, name, "max" + unit, num(h.max));
    row(kind, name, "p50" + unit, num(h.p50));
    row(kind, name, "p95" + unit, num(h.p95));
    row(kind, name, "p99" + unit, num(h.p99));
  };

  for (const auto& [name, value] : registry().counters()) {
    row("counter", name, "value", std::to_string(value));
  }
  for (const auto& [name, value] : registry().gauges()) {
    row("gauge", name, "value", num(value));
  }
  for (const auto& [name, snap] : registry().histograms()) {
    hist_rows("histogram", name, snap, "");
  }
  for (const SpanStats& s : spans().snapshot()) {
    row("span", s.name, "parent", s.parent);
    hist_rows("span", s.name, s.latency_ms, "_ms");
  }
  for (const EpochRecord& e : training().snapshot()) {
    const std::string name = std::to_string(e.epoch);
    row("epoch", name, "loss", num(e.loss));
    row("epoch", name, "train_accuracy", num(e.train_accuracy));
    row("epoch", name, "grad_norm", num(e.grad_norm));
    row("epoch", name, "learning_rate", num(e.learning_rate));
    row("epoch", name, "seconds", num(e.seconds));
    row("epoch", name, "replicas", std::to_string(e.replicas));
    row("epoch", name, "replica_busy_seconds", num(e.replica_busy_seconds));
  }
  return out;
}

std::string span_tree() {
  const std::vector<SpanStats> all = spans().snapshot();
  std::string out = "trace spans (count / total / p50 / p95, ms):\n";

  // Children grouped under their first-seen parent, ordered by total time.
  auto children_of = [&all](const std::string& parent) {
    std::vector<const SpanStats*> kids;
    for (const SpanStats& s : all) {
      if (s.parent == parent) kids.push_back(&s);
    }
    std::sort(kids.begin(), kids.end(), [](const SpanStats* a, const SpanStats* b) {
      return a->latency_ms.sum > b->latency_ms.sum;
    });
    return kids;
  };

  // Iterative DFS to keep recursion out of a diagnostics path.
  struct Item {
    const SpanStats* span;
    int indent;
  };
  std::vector<Item> stack;
  // A span whose parent never recorded (or empty) is a root.
  for (const SpanStats& s : all) {
    bool parent_known = false;
    for (const SpanStats& p : all) {
      if (!s.parent.empty() && p.name == s.parent) {
        parent_known = true;
        break;
      }
    }
    if (!parent_known) stack.push_back({&s, 0});
  }
  std::sort(stack.begin(), stack.end(), [](const Item& a, const Item& b) {
    return a.span->latency_ms.sum < b.span->latency_ms.sum;  // popped biggest-first
  });

  char buf[160];
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const HistogramSnapshot& h = item.span->latency_ms;
    std::snprintf(buf, sizeof(buf), "%*s%-24s %8llu  %10.2f  %8.3f  %8.3f\n",
                  item.indent * 2, "", item.span->name.c_str(),
                  static_cast<unsigned long long>(h.count), h.sum, h.p50, h.p95);
    out += buf;
    auto kids = children_of(item.span->name);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, item.indent + 1});
    }
  }
  return out;
}

void write_json(const std::string& path) { write_file(path, to_json()); }
void write_csv(const std::string& path) { write_file(path, to_csv()); }

void write_report(const std::string& path) {
  const bool csv = path.size() >= 4 && path.rfind(".csv") == path.size() - 4;
  if (csv) {
    write_csv(path);
  } else {
    write_json(path);
  }
}

void reset_all() {
  registry().hard_clear();
  spans().hard_clear();
  training().clear();
  timeline_reset();
}

}  // namespace m2ai::obs
