#include "obs/trace.hpp"

namespace m2ai::obs {

namespace {
// Active-span stack of the current thread; back() is the innermost span.
thread_local std::vector<const char*> t_span_stack;
}  // namespace

void SpanRegistry::record(const char* name, const char* parent, int depth,
                          double ms) {
  Histogram* hist = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = spans_[name];
    if (!slot) {
      slot = std::make_unique<Agg>();
      slot->parent = parent ? parent : "";
      slot->depth = depth;
    }
    hist = &slot->latency_ms;
  }
  hist->record_always(ms);
}

std::vector<SpanStats> SpanRegistry::snapshot() const {
  std::vector<std::pair<std::string, Agg*>> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    items.reserve(spans_.size());
    for (const auto& [name, agg] : spans_) items.emplace_back(name, agg.get());
  }
  std::vector<SpanStats> out;
  out.reserve(items.size());
  for (const auto& [name, agg] : items) {
    SpanStats s;
    s.name = name;
    s.parent = agg->parent;
    s.depth = agg->depth;
    s.latency_ms = agg->latency_ms.snapshot();
    out.push_back(std::move(s));
  }
  return out;
}

void SpanRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

SpanRegistry& spans() {
  static SpanRegistry* r = new SpanRegistry();
  return *r;
}

ScopedSpan::ScopedSpan(const char* name) {
  if (name == nullptr || !enabled()) return;
  name_ = name;
  parent_ = t_span_stack.empty() ? nullptr : t_span_stack.back();
  depth_ = static_cast<int>(t_span_stack.size());
  t_span_stack.push_back(name);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  t_span_stack.pop_back();
  spans().record(name_, parent_, depth_, ms);
}

}  // namespace m2ai::obs
