#include "obs/trace.hpp"

#include "obs/timeline.hpp"

namespace m2ai::obs {

namespace {
// Active-span stack of the current thread; back() is the innermost span.
thread_local std::vector<const char*> t_span_stack;
}  // namespace

void SpanRegistry::record(const char* name, const char* parent, int depth,
                          double ms) {
  Histogram* hist = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = spans_[name];
    if (!slot) {
      slot = std::make_unique<Agg>();
      slot->parent = parent ? parent : "";
      slot->depth = depth;
    }
    hist = &slot->latency_ms;
  }
  hist->record_always(ms);
}

std::vector<SpanStats> SpanRegistry::snapshot() const {
  std::vector<std::pair<std::string, Agg*>> items;
  {
    std::lock_guard<std::mutex> lock(mu_);
    items.reserve(spans_.size());
    for (const auto& [name, agg] : spans_) items.emplace_back(name, agg.get());
  }
  std::vector<SpanStats> out;
  out.reserve(items.size());
  for (const auto& [name, agg] : items) {
    SpanStats s;
    s.name = name;
    s.parent = agg->parent;
    s.depth = agg->depth;
    s.latency_ms = agg->latency_ms.snapshot();
    out.push_back(std::move(s));
  }
  return out;
}

void SpanRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, agg] : spans_) agg->latency_ms.reset();
}

void SpanRegistry::hard_clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

SpanRegistry& spans() {
  static SpanRegistry* r = new SpanRegistry();
  return *r;
}

ScopedSpan::ScopedSpan(const char* name) {
  if (name == nullptr || !enabled()) return;
  name_ = name;
  parent_ = t_span_stack.empty() ? nullptr : t_span_stack.back();
  depth_ = static_cast<int>(t_span_stack.size());
  t_span_stack.push_back(name);
  start_ = std::chrono::steady_clock::now();
}

void ScopedSpan::arg(const char* key, std::int64_t value) {
  if (name_ == nullptr || key == nullptr) return;
  for (std::size_t i = 0; i < 2; ++i) {
    if (arg_keys_[i] == nullptr) {
      arg_keys_[i] = key;
      arg_values_[i] = value;
      return;
    }
  }
}

void ScopedSpan::arg_str(const char* key, const char* value) {
  if (name_ == nullptr || key == nullptr) return;
  str_key_ = key;
  str_value_ = value;
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double, std::milli>(end - start_).count();
  t_span_stack.pop_back();
  spans().record(name_, parent_, depth_, ms);
  if (timeline_enabled()) {
    const auto epoch = timeline_epoch();
    TimelineArgs args;
    args.key1 = arg_keys_[0];
    args.value1 = arg_values_[0];
    args.key2 = arg_keys_[1];
    args.value2 = arg_values_[1];
    args.str_key = str_key_;
    args.str_value = str_value_;
    timeline_complete(
        name_,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(start_ - epoch)
                .count()),
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count()),
        args);
  }
}

}  // namespace m2ai::obs
