// Flight-recorder timeline: per-thread bounded ring buffers of raw events.
//
// The aggregated span histograms (obs/trace.hpp) answer "how long does X
// take on average" but not "when did X happen, on which thread, overlapping
// what". The timeline answers that: every participating thread owns a
// fixed-capacity ring of raw events — span completions, instants, counter
// samples, flow arrows — written without locks (each ring has exactly one
// writer: its owner thread). When the ring is full the oldest events are
// overwritten, so a long run keeps the most recent window instead of growing
// without bound; each overwrite bumps the `obs.timeline.dropped_events`
// counter and the ring's own dropped tally.
//
// Cost contract:
//   - disabled (the default): one relaxed atomic load per call site, no
//     clock reads, no allocation — same contract as the metrics layer;
//   - enabled: one thread-local lookup, one steady_clock read (for events
//     that need one), a struct store into the ring, and one release store
//     of the head index. No locks, no allocation after the ring exists.
//
// Thread identity: threads are assigned small stable tids in first-touch
// order and can register a human-readable name (par::ThreadPool workers
// register as "worker-0…N"). The Chrome trace exporter emits the names as
// thread_name metadata so Perfetto/chrome://tracing group events correctly.
//
// Export: write_chrome_trace() emits the Trace Event Format JSON
// (ph:"X"/"i"/"C"/"s"/"f" events with pid/tid/ts/dur in microseconds),
// loadable directly in ui.perfetto.dev or chrome://tracing.
//
// Concurrency: recording is safe from any thread at any time. Snapshots and
// exports take the registration mutex and read rings with acquire loads;
// taking one while writers are actively recording yields a best-effort view
// (a wrapping writer may overwrite the tail being read). Call sites that
// need an exact trace — the CLI/bench exporters, tests — export after the
// parallel work has drained, which the drivers already do.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace m2ai::obs {

enum class TimelineEventType : std::uint8_t {
  kComplete,   // duration slice (Chrome ph "X")
  kInstant,    // point-in-time marker (ph "i")
  kCounter,    // sampled counter value (ph "C")
  kFlowStart,  // flow arrow origin (ph "s")
  kFlowEnd,    // flow arrow target (ph "f")
};

// Optional event arguments: up to two integer key/values plus one short
// string. Keys must be string literals (they are stored as pointers); the
// string value is copied and truncated to the inline buffer.
struct TimelineArgs {
  const char* key1 = nullptr;
  std::int64_t value1 = 0;
  const char* key2 = nullptr;
  std::int64_t value2 = 0;
  const char* str_key = nullptr;
  const char* str_value = nullptr;
};

struct TimelineEvent {
  // Copied, not referenced: span names can come from short-lived strings
  // (e.g. a layer's trace label dying with its model) while ring events
  // survive until process-exit export. Truncated, always NUL-terminated.
  char name[40] = {};
  TimelineEventType type = TimelineEventType::kInstant;
  std::uint64_t ts_ns = 0;   // nanoseconds since the timeline epoch
  std::uint64_t dur_ns = 0;  // kComplete only
  double value = 0.0;        // kCounter only
  std::uint64_t flow_id = 0; // kFlowStart/kFlowEnd only
  const char* arg_key1 = nullptr;
  std::int64_t arg1 = 0;
  const char* arg_key2 = nullptr;
  std::int64_t arg2 = 0;
  const char* str_key = nullptr;
  char str_value[32] = {};  // truncated copy, always NUL-terminated
};

namespace detail {
inline std::atomic<bool> g_timeline_enabled{false};
}  // namespace detail

// Timeline switch, independent of the metrics/span switch so a run can
// aggregate histograms without paying for raw-event recording. The CLI/bench
// --trace-out flag turns both on.
inline bool timeline_enabled() {
  return detail::g_timeline_enabled.load(std::memory_order_relaxed);
}
void set_timeline_enabled(bool on);

// Events retained per thread. Applies to rings allocated after the call
// (rings are sized lazily on a thread's first recorded event); existing
// rings keep their capacity. Clamped to >= 16.
void set_timeline_capacity(std::size_t events_per_thread);
std::size_t timeline_capacity();

// Nanoseconds since the timeline epoch (a fixed steady_clock origin).
std::uint64_t timeline_now_ns();
// The epoch itself, for call sites that already hold a steady_clock sample.
std::chrono::steady_clock::time_point timeline_epoch();

// Names the calling thread in the trace ("worker-3", "main"). Cheap enough
// for thread start-up; safe before the timeline is enabled.
void register_thread_name(const std::string& name);

// Raw recording. All are no-ops (one relaxed load) when disabled.
void timeline_complete(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                       const TimelineArgs& args = {});
void timeline_instant(const char* name, const TimelineArgs& args = {});
void timeline_counter(const char* name, double value);
void timeline_flow_start(const char* name, std::uint64_t id);
void timeline_flow_end(const char* name, std::uint64_t id);

// Point-in-time view of one thread's ring, oldest event first.
struct TimelineThreadSnapshot {
  int tid = 0;
  std::string name;
  std::uint64_t dropped = 0;  // events overwritten by ring wrap-around
  std::vector<TimelineEvent> events;
};

// All threads that ever recorded (or registered a name), in tid order.
std::vector<TimelineThreadSnapshot> timeline_snapshot();

// Sum of dropped events across every thread ring.
std::uint64_t timeline_dropped_total();

// Chrome Trace Event Format JSON of the current snapshot.
std::string to_chrome_trace();
// Writes to `path`; throws std::runtime_error if the file cannot be opened.
void write_chrome_trace(const std::string& path);

// Resets every ring (head, dropped tally, events) in place; thread entries
// and names survive. Only call while no thread is recording (tests, between
// in-process runs) — concurrent writers would race the reset.
void timeline_reset();

}  // namespace m2ai::obs
