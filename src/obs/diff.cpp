#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "util/json.hpp"

namespace m2ai::obs {

namespace {

// name -> compared statistic, extracted per schema.
std::map<std::string, double> extract(const util::JsonValue& doc,
                                      const std::string& field, std::string* mode) {
  std::map<std::string, double> out;
  if (const util::JsonValue* spans = doc.find("spans")) {
    *mode = "spans";
    for (const util::JsonValue& span : spans->as_array()) {
      const std::string& name = span.at("name").as_string();
      const util::JsonValue* value = span.find(field);
      if (value == nullptr) {
        throw std::runtime_error("obsdiff: span '" + name + "' has no field '" +
                                 field + "'");
      }
      out[name] = value->as_number();
    }
    return out;
  }
  if (const util::JsonValue* experiments = doc.find("experiments")) {
    *mode = "experiments";
    for (const util::JsonValue& e : experiments->as_array()) {
      out[e.at("id").as_string()] = e.at("cell_seconds").as_number();
    }
    return out;
  }
  throw std::runtime_error(
      "obsdiff: document is neither a metrics report (no \"spans\") nor a "
      "suite report (no \"experiments\")");
}

}  // namespace

DiffResult diff_reports(const std::string& baseline_json,
                        const std::string& candidate_json,
                        const DiffOptions& options) {
  const util::JsonValue base_doc = util::json_parse(baseline_json);
  const util::JsonValue cand_doc = util::json_parse(candidate_json);

  std::string base_mode, cand_mode;
  const auto base = extract(base_doc, options.field, &base_mode);
  const auto cand = extract(cand_doc, options.field, &cand_mode);
  if (base_mode != cand_mode) {
    throw std::runtime_error("obsdiff: cannot compare a " + base_mode +
                             " report against a " + cand_mode + " report");
  }

  DiffResult result;
  result.mode = base_mode;
  result.field = base_mode == "experiments" ? "cell_seconds" : options.field;

  for (const auto& [name, base_value] : base) {
    const auto it = cand.find(name);
    if (it == cand.end()) {
      result.only_baseline.push_back(name);
      continue;
    }
    EntryDelta delta;
    delta.name = name;
    delta.baseline = base_value;
    delta.candidate = it->second;
    delta.delta_pct = base_value != 0.0
                          ? (it->second - base_value) / base_value * 100.0
                          : (it->second == 0.0 ? 0.0 : HUGE_VAL);
    delta.regression = it->second > base_value * (1.0 + options.threshold) &&
                       it->second - base_value > options.min_abs;
    result.has_regression = result.has_regression || delta.regression;
    result.entries.push_back(std::move(delta));
  }
  for (const auto& [name, value] : cand) {
    if (base.find(name) == base.end()) result.only_candidate.push_back(name);
  }

  // Worst offenders first so the gate's culprit is the first line printed.
  std::sort(result.entries.begin(), result.entries.end(),
            [](const EntryDelta& a, const EntryDelta& b) {
              if (a.regression != b.regression) return a.regression;
              return a.delta_pct > b.delta_pct;
            });
  return result;
}

std::string render_diff(const DiffResult& result, const DiffOptions& options) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "%-28s %14s %14s %9s\n", result.mode == "experiments"
                                             ? "experiment (cell_seconds)"
                                             : ("span (" + result.field + ")").c_str(),
                "baseline", "candidate", "delta");
  out += buf;
  for (const EntryDelta& e : result.entries) {
    std::snprintf(buf, sizeof(buf), "%-28s %14.4f %14.4f %+8.1f%%%s\n",
                  e.name.c_str(), e.baseline, e.candidate, e.delta_pct,
                  e.regression ? "  REGRESSED" : "");
    out += buf;
  }
  for (const std::string& name : result.only_baseline) {
    out += name + "  (baseline only)\n";
  }
  for (const std::string& name : result.only_candidate) {
    out += name + "  (candidate only)\n";
  }
  std::snprintf(buf, sizeof(buf),
                "gate: fail when candidate > baseline * %.2f and delta > %g\n",
                1.0 + options.threshold, options.min_abs);
  out += buf;
  out += result.has_regression ? "RESULT: REGRESSION\n" : "RESULT: OK\n";
  return out;
}

}  // namespace m2ai::obs
