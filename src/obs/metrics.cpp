#include "obs/metrics.hpp"

#include "util/stats.hpp"

namespace m2ai::obs {

void Histogram::record_always(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }
  ++count_;
  sum_ += v;
  if (reservoir_.size() < kReservoirCap) {
    reservoir_.push_back(v);
  } else {
    // Standard reservoir sampling with a deterministic LCG so runs are
    // reproducible: keep each new value with probability cap/count.
    lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t slot = (lcg_ >> 16) % count_;
    if (slot < kReservoirCap) reservoir_[static_cast<std::size_t>(slot)] = v;
  }
}

HistogramSnapshot Histogram::snapshot() const {
  std::vector<double> sample;
  HistogramSnapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.count = count_;
    out.sum = sum_;
    out.min = min_;
    out.max = max_;
    sample = reservoir_;
  }
  if (!sample.empty()) {
    out.p50 = util::percentile(sample, 50.0);
    out.p95 = util::percentile(sample, 95.0);
    out.p99 = util::percentile(sample, 99.0);
  }
  return out;
}

void Histogram::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
  reservoir_.clear();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>> Registry::histograms() const {
  std::vector<std::pair<std::string, Histogram*>> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hists.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) hists.emplace_back(name, h.get());
  }
  // Snapshots taken outside the registry lock: each histogram has its own.
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(hists.size());
  for (const auto& [name, h] : hists) out.emplace_back(name, h->snapshot());
  return out;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::hard_clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during static teardown
  return *r;
}

}  // namespace m2ai::obs
