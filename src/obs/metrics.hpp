// Thread-safe metrics registry: counters, gauges, and histograms with
// percentile summaries. Everything is gated by a single global switch so
// instrumented hot paths pay one relaxed atomic load when observability is
// off (the default). Instruments are created on first use and live for the
// process lifetime, so call sites may cache references.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace m2ai::obs {

namespace detail {
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

// Global observability switch. Off by default; the CLI/bench --trace and
// --metrics-out flags (or tests) turn it on.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-value gauge.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// Value distribution: exact count/sum/min/max plus a bounded reservoir for
// the percentiles, so unbounded benchmark loops cannot grow memory.
class Histogram {
 public:
  void record(double v) {
    if (enabled()) record_always(v);
  }
  // Bypasses the global switch; used by the trace layer so a span that
  // started while enabled still lands if the switch flips mid-flight.
  void record_always(double v);
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  static constexpr std::size_t kReservoirCap = 4096;

  mutable std::mutex mu_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> reservoir_;
  std::uint64_t lcg_ = 0x9e3779b97f4a7c15ULL;  // deterministic reservoir picks
};

// Name -> instrument map. References returned by the getters stay valid for
// the registry's lifetime (instruments are heap-allocated once).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms() const;

  // Resets every instrument's value in place. Entries (and therefore any
  // references call sites cached) stay valid — this is the safe reset for
  // repeated in-process runs.
  void clear();

  // Drops all instruments (tests that need empty listings). Invalidates
  // cached references; only safe while no other thread holds or uses one.
  void hard_clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Process-wide registry.
Registry& registry();

}  // namespace m2ai::obs
