// RAII scoped-timer trace spans with parent/child nesting.
//
// A ScopedSpan measures the wall-clock time between its construction and
// destruction and aggregates it under the span's name (count + latency
// distribution). Nesting is tracked with a thread-local stack: the innermost
// active span at construction time becomes the parent, so the exporter can
// render a call tree (see obs::span_tree()).
//
// When obs::enabled() is false the constructor is a single relaxed atomic
// load — no clock reads, no allocation, no locking.
//
// When the flight-recorder timeline (obs/timeline.hpp) is also enabled,
// every span additionally lands as a raw Chrome-trace duration event on its
// thread's ring, carrying any args attached via arg()/arg_str() — so the
// same M2AI_OBS_SPAN call sites feed both the aggregated histograms and the
// Perfetto-loadable timeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace m2ai::obs {

struct SpanStats {
  std::string name;
  std::string parent;  // empty for roots; first-seen parent wins
  int depth = 0;
  HistogramSnapshot latency_ms;
};

// Aggregated span store (one entry per span name).
class SpanRegistry {
 public:
  void record(const char* name, const char* parent, int depth, double ms);
  std::vector<SpanStats> snapshot() const;
  // Resets every span's latency histogram in place. Entries survive, so the
  // internal histogram pointers record() briefly holds stay valid even if a
  // clear races a record.
  void clear();
  // Drops all entries (tests that need empty listings). Only safe while no
  // span is being recorded concurrently.
  void hard_clear();

 private:
  struct Agg {
    std::string parent;
    int depth = 0;
    Histogram latency_ms;
  };
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Agg>> spans_;
};

// Process-wide span registry.
SpanRegistry& spans();

class ScopedSpan {
 public:
  // `name` must outlive the span (string literals at call sites). A null
  // name, or observability being disabled, makes the span a no-op.
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches args to the span's timeline event (no effect on the aggregated
  // histogram). Keys must be string literals; at most two integer args and
  // one string arg are kept (extras are dropped). `value` for arg_str must
  // stay alive until the span ends; the timeline copies (and truncates) it
  // at that point. No-ops when the span is inactive.
  void arg(const char* key, std::int64_t value);
  void arg_str(const char* key, const char* value);

 private:
  const char* name_ = nullptr;  // null means inactive
  const char* parent_ = nullptr;
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  const char* arg_keys_[2] = {nullptr, nullptr};
  std::int64_t arg_values_[2] = {0, 0};
  const char* str_key_ = nullptr;
  const char* str_value_ = nullptr;
};

}  // namespace m2ai::obs

// Convenience macro for instrumenting a scope:
//   M2AI_OBS_SPAN("music");
#define M2AI_OBS_CONCAT_IMPL(a, b) a##b
#define M2AI_OBS_CONCAT(a, b) M2AI_OBS_CONCAT_IMPL(a, b)
#define M2AI_OBS_SPAN(name) \
  ::m2ai::obs::ScopedSpan M2AI_OBS_CONCAT(obs_span_, __LINE__)(name)
