#include "obs/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "obs/export.hpp"
#include "obs/metrics.hpp"

namespace m2ai::obs {

namespace {

// One per thread; owned by the global registry so rings outlive their
// threads (pool workers come and go, the exporter runs at process exit).
// Exactly one thread ever writes `ring`/`head`; readers synchronize through
// the acquire/release pair on `head`.
struct ThreadTimeline {
  int tid = 0;
  std::string name;                 // guarded by g_mu
  std::vector<TimelineEvent> ring;  // sized lazily on first record
  std::atomic<std::uint64_t> head{0};     // total events ever written
  std::atomic<std::uint64_t> dropped{0};  // overwritten by wrap-around
  Counter* dropped_counter = nullptr;     // cached: registry entries are stable
};

std::mutex g_mu;
std::vector<std::shared_ptr<ThreadTimeline>>& threads_locked() {
  // Leaked so recording stays valid during static teardown (same pattern as
  // the metrics registry).
  static auto* list = new std::vector<std::shared_ptr<ThreadTimeline>>();
  return *list;
}

std::atomic<std::size_t> g_capacity{8192};

const std::chrono::steady_clock::time_point g_epoch = std::chrono::steady_clock::now();

ThreadTimeline* this_thread() {
  thread_local std::shared_ptr<ThreadTimeline> tl;
  if (!tl) {
    tl = std::make_shared<ThreadTimeline>();
    std::lock_guard<std::mutex> lock(g_mu);
    auto& list = threads_locked();
    tl->tid = static_cast<int>(list.size());
    tl->name = "thread-" + std::to_string(tl->tid);
    list.push_back(tl);
  }
  return tl.get();
}

void record(ThreadTimeline* t, const TimelineEvent& ev) {
  if (t->ring.empty()) {
    t->ring.resize(g_capacity.load(std::memory_order_relaxed));
  }
  if (t->dropped_counter == nullptr) {
    // Cached across records; registry entries are stable under clear() but
    // not hard_clear(), so timeline_reset() nulls this out for a re-fetch.
    t->dropped_counter = &registry().counter("obs.timeline.dropped_events");
  }
  const std::uint64_t h = t->head.load(std::memory_order_relaxed);
  t->ring[static_cast<std::size_t>(h % t->ring.size())] = ev;
  t->head.store(h + 1, std::memory_order_release);
  if (h >= t->ring.size()) {
    // The slot we just wrote held the oldest retained event.
    t->dropped.fetch_add(1, std::memory_order_relaxed);
    t->dropped_counter->add(1);
  }
}

void set_name(TimelineEvent& ev, const char* name) {
  std::strncpy(ev.name, name, sizeof(ev.name) - 1);
  ev.name[sizeof(ev.name) - 1] = '\0';
}

void fill_args(TimelineEvent& ev, const TimelineArgs& args) {
  ev.arg_key1 = args.key1;
  ev.arg1 = args.value1;
  ev.arg_key2 = args.key2;
  ev.arg2 = args.value2;
  ev.str_key = args.str_key;
  if (args.str_key != nullptr && args.str_value != nullptr) {
    std::strncpy(ev.str_value, args.str_value, sizeof(ev.str_value) - 1);
    ev.str_value[sizeof(ev.str_value) - 1] = '\0';
  }
}

std::string num_us(std::uint64_t ns) {
  // Microseconds with sub-microsecond precision, the unit Chrome expects.
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::string num_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void append_event_args(std::string& out, const TimelineEvent& ev) {
  bool any = false;
  auto open = [&out, &any] {
    out += any ? "," : ",\"args\":{";
    any = true;
  };
  if (ev.str_key != nullptr) {
    open();
    out += "\"" + json_escape(ev.str_key) + "\":\"" + json_escape(ev.str_value) + "\"";
  }
  if (ev.arg_key1 != nullptr) {
    open();
    out += "\"" + json_escape(ev.arg_key1) + "\":" + std::to_string(ev.arg1);
  }
  if (ev.arg_key2 != nullptr) {
    open();
    out += "\"" + json_escape(ev.arg_key2) + "\":" + std::to_string(ev.arg2);
  }
  if (any) out += "}";
}

}  // namespace

void set_timeline_enabled(bool on) {
  detail::g_timeline_enabled.store(on, std::memory_order_relaxed);
}

void set_timeline_capacity(std::size_t events_per_thread) {
  g_capacity.store(std::max<std::size_t>(events_per_thread, 16),
                   std::memory_order_relaxed);
}

std::size_t timeline_capacity() {
  return g_capacity.load(std::memory_order_relaxed);
}

std::chrono::steady_clock::time_point timeline_epoch() { return g_epoch; }

std::uint64_t timeline_now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - g_epoch)
                                        .count());
}

void register_thread_name(const std::string& name) {
  ThreadTimeline* t = this_thread();
  std::lock_guard<std::mutex> lock(g_mu);
  t->name = name;
}

void timeline_complete(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                       const TimelineArgs& args) {
  if (!timeline_enabled() || name == nullptr) return;
  TimelineEvent ev;
  set_name(ev, name);
  ev.type = TimelineEventType::kComplete;
  ev.ts_ns = start_ns;
  ev.dur_ns = dur_ns;
  fill_args(ev, args);
  record(this_thread(), ev);
}

void timeline_instant(const char* name, const TimelineArgs& args) {
  if (!timeline_enabled() || name == nullptr) return;
  TimelineEvent ev;
  set_name(ev, name);
  ev.type = TimelineEventType::kInstant;
  ev.ts_ns = timeline_now_ns();
  fill_args(ev, args);
  record(this_thread(), ev);
}

void timeline_counter(const char* name, double value) {
  if (!timeline_enabled() || name == nullptr) return;
  TimelineEvent ev;
  set_name(ev, name);
  ev.type = TimelineEventType::kCounter;
  ev.ts_ns = timeline_now_ns();
  ev.value = value;
  record(this_thread(), ev);
}

void timeline_flow_start(const char* name, std::uint64_t id) {
  if (!timeline_enabled() || name == nullptr) return;
  TimelineEvent ev;
  set_name(ev, name);
  ev.type = TimelineEventType::kFlowStart;
  ev.ts_ns = timeline_now_ns();
  ev.flow_id = id;
  record(this_thread(), ev);
}

void timeline_flow_end(const char* name, std::uint64_t id) {
  if (!timeline_enabled() || name == nullptr) return;
  TimelineEvent ev;
  set_name(ev, name);
  ev.type = TimelineEventType::kFlowEnd;
  ev.ts_ns = timeline_now_ns();
  ev.flow_id = id;
  record(this_thread(), ev);
}

std::vector<TimelineThreadSnapshot> timeline_snapshot() {
  std::vector<std::shared_ptr<ThreadTimeline>> threads;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    threads = threads_locked();
  }
  std::vector<TimelineThreadSnapshot> out;
  out.reserve(threads.size());
  for (const auto& t : threads) {
    TimelineThreadSnapshot snap;
    snap.tid = t->tid;
    {
      std::lock_guard<std::mutex> lock(g_mu);
      snap.name = t->name;
    }
    snap.dropped = t->dropped.load(std::memory_order_relaxed);
    const std::uint64_t head = t->head.load(std::memory_order_acquire);
    if (head > 0 && !t->ring.empty()) {
      const std::uint64_t cap = t->ring.size();
      const std::uint64_t count = std::min(head, cap);
      snap.events.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = head - count; i < head; ++i) {
        snap.events.push_back(t->ring[static_cast<std::size_t>(i % cap)]);
      }
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const TimelineThreadSnapshot& a, const TimelineThreadSnapshot& b) {
              return a.tid < b.tid;
            });
  return out;
}

std::uint64_t timeline_dropped_total() {
  std::uint64_t total = 0;
  for (const TimelineThreadSnapshot& t : timeline_snapshot()) total += t.dropped;
  return total;
}

std::string to_chrome_trace() {
  const std::vector<TimelineThreadSnapshot> threads = timeline_snapshot();
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&out, &first](const std::string& event) {
    out += first ? "" : ",\n";
    first = false;
    out += event;
  };

  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"m2ai\"}}");
  for (const TimelineThreadSnapshot& t : threads) {
    const std::string tid = std::to_string(t.tid);
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + tid +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" + json_escape(t.name) +
         "\"}}");
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + tid +
         ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" + tid + "}}");
  }

  for (const TimelineThreadSnapshot& t : threads) {
    const std::string common =
        "\"pid\":1,\"tid\":" + std::to_string(t.tid) + ",\"cat\":\"m2ai\"";
    for (const TimelineEvent& ev : t.events) {
      std::string e = "{";
      switch (ev.type) {
        case TimelineEventType::kComplete:
          e += "\"ph\":\"X\"," + common + ",\"name\":\"" + json_escape(ev.name) +
               "\",\"ts\":" + num_us(ev.ts_ns) + ",\"dur\":" + num_us(ev.dur_ns);
          append_event_args(e, ev);
          break;
        case TimelineEventType::kInstant:
          e += "\"ph\":\"i\"," + common + ",\"name\":\"" + json_escape(ev.name) +
               "\",\"ts\":" + num_us(ev.ts_ns) + ",\"s\":\"t\"";
          append_event_args(e, ev);
          break;
        case TimelineEventType::kCounter:
          e += "\"ph\":\"C\"," + common + ",\"name\":\"" + json_escape(ev.name) +
               "\",\"ts\":" + num_us(ev.ts_ns) + ",\"args\":{\"value\":" +
               num_double(ev.value) + "}";
          break;
        case TimelineEventType::kFlowStart:
          e += "\"ph\":\"s\"," + common + ",\"name\":\"" + json_escape(ev.name) +
               "\",\"ts\":" + num_us(ev.ts_ns) +
               ",\"id\":" + std::to_string(ev.flow_id);
          break;
        case TimelineEventType::kFlowEnd:
          // bp:"e" binds the arrow to the enclosing slice instead of the
          // next one, which is where our cell spans live.
          e += "\"ph\":\"f\",\"bp\":\"e\"," + common + ",\"name\":\"" +
               json_escape(ev.name) + "\",\"ts\":" + num_us(ev.ts_ns) +
               ",\"id\":" + std::to_string(ev.flow_id);
          break;
      }
      e += "}";
      emit(e);
    }
  }

  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":";
  std::uint64_t dropped = 0;
  for (const TimelineThreadSnapshot& t : threads) dropped += t.dropped;
  out += std::to_string(dropped) + "}}\n";
  return out;
}

void write_chrome_trace(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("obs: cannot open " + path + " for writing");
  f << to_chrome_trace();
  if (!f.good()) throw std::runtime_error("obs: failed writing " + path);
}

void timeline_reset() {
  std::lock_guard<std::mutex> lock(g_mu);
  for (const auto& t : threads_locked()) {
    t->head.store(0, std::memory_order_release);
    t->dropped.store(0, std::memory_order_relaxed);
    t->dropped_counter = nullptr;  // registry may have been hard-cleared
    std::fill(t->ring.begin(), t->ring.end(), TimelineEvent{});
  }
}

}  // namespace m2ai::obs
