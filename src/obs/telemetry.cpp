#include "obs/telemetry.hpp"

namespace m2ai::obs {

TrainingTelemetry& training() {
  static TrainingTelemetry* t = new TrainingTelemetry();
  return *t;
}

}  // namespace m2ai::obs
