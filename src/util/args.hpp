// Minimal command-line flag parser for the tools: --key value and --flag
// forms, with typed getters and unknown-flag detection.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace m2ai::util {

class Args {
 public:
  // Parses argv[1..]; a token "--name" followed by a non-flag token binds
  // that value, otherwise it is a boolean flag. Positional arguments are
  // collected in order.
  Args(int argc, const char* const* argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) == 0) {
        const std::string key = token.substr(2);
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[key] = argv[++i];
        } else {
          values_[key] = "";
        }
      } else {
        positional_.push_back(token);
      }
    }
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int get_int(const std::string& key, int fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stoi(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key + " expects an integer, got '" +
                                  it->second + "'");
    }
  }

  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (const std::exception&) {
      throw std::invalid_argument("--" + key + " expects a number, got '" +
                                  it->second + "'");
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  // Throws if any parsed flag is not in `known` (catches typos).
  void require_known(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const auto& k : known) {
        if (k == key) {
          found = true;
          break;
        }
      }
      if (!found) throw std::invalid_argument("unknown flag --" + key);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace m2ai::util
