#include "util/json.hpp"

#include <cctype>
#include <cstdlib>

namespace m2ai::util {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw JsonError("json: " + what + " at byte " + std::to_string(pos));
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw JsonError("json: value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) throw JsonError("json: value is not a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw JsonError("json: value is not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw JsonError("json: value is not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  if (type_ != Type::kObject) throw JsonError("json: value is not an object");
  return *object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_->find(key);
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw JsonError("json: missing member '" + key + "'");
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after document");
    return v;
  }

 private:
  // Nesting deeper than this is a malformed (or adversarial) document, not
  // one of our reports; bail before the call stack does.
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        fail(pos_, std::string("bad literal (expected '") + lit + "')");
      }
      ++pos_;
    }
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail(pos_, "nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': v = parse_object(); break;
      case '[': v = parse_array(); break;
      case '"':
        v.type_ = JsonValue::Type::kString;
        v.string_ = parse_string();
        break;
      case 't':
        expect_literal("true");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        break;
      case 'f':
        expect_literal("false");
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        break;
      case 'n':
        expect_literal("null");
        break;
      default: v = parse_number(); break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_object() {
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    v.object_ = std::make_shared<JsonObject>();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*v.object_)[std::move(key)] = parse_value();
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    v.array_ = std::make_shared<JsonArray>();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_->push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': out += parse_unicode_escape(); break;
        default: fail(pos_ - 1, "invalid escape sequence");
      }
    }
  }

  // \uXXXX escapes, decoded to UTF-8. Surrogate pairs are combined; a lone
  // surrogate is an error (our emitters only write BMP escapes).
  std::string parse_unicode_escape() {
    const unsigned first = parse_hex4();
    unsigned code = first;
    if (first >= 0xD800 && first <= 0xDBFF) {
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
        fail(pos_, "lone high surrogate");
      }
      pos_ += 2;
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail(pos_, "invalid low surrogate");
      code = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
    } else if (first >= 0xDC00 && first <= 0xDFFF) {
      fail(pos_, "lone low surrogate");
    }
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail(pos_, "truncated \\u escape");
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad hex digit in \\u escape");
      }
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [this] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    // Integer part: a single 0, or a nonzero digit followed by more digits.
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (digits() == 0) {
      fail(start, "invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(pos_, "digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail(pos_, "digits required in exponent");
    }
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue json_parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace m2ai::util
