// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (channel noise, volunteer body
// parameters, weight initialization, dataset shuffling, ...) draws from an
// Rng seeded from a single experiment-level seed, so a run is reproducible
// bit-for-bit given the same seed.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace m2ai::util {

// SplitMix64: tiny, fast, passes BigCrush; ideal as a deterministic,
// seed-stable generator. Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  // Raw 64 random bits.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) { return next_u64() % n; }

  // Integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Standard normal via Box-Muller (cached spare).
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  // Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(static_cast<std::uint64_t>(i)));
      std::swap(v[i - 1], v[j]);
    }
  }

  // A derived generator whose stream is independent of this one's future.
  // Useful for giving each subsystem its own reproducible stream.
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace m2ai::util
