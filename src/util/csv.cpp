#include "util/csv.hpp"

#include <stdexcept>

namespace m2ai::util {

namespace {
std::string escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != arity_) {
    throw std::invalid_argument("CsvWriter::add_row: arity mismatch");
  }
  write_row(row);
}

void CsvWriter::close() { out_.close(); }

void CsvWriter::write_row(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(row[i]);
  }
  out_ << '\n';
}

}  // namespace m2ai::util
