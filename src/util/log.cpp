#include "util/log.hpp"

#include <chrono>
#include <cstdio>

namespace m2ai::util {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration<double>(clock::now() - start).count();
  std::fprintf(stderr, "[%9.3f] %-5s %s\n", t, level_name(level), msg.c_str());
}

}  // namespace m2ai::util
