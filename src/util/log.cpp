#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace m2ai::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

// M2AI_LOG_LEVEL accepts a level name (debug/info/warn/warning/error, any
// case) or the numeric value 0-3. Unset or unrecognized keeps the default.
bool parse_level(const char* raw, LogLevel* out) {
  if (raw == nullptr || raw[0] == '\0') return false;
  std::string s;
  for (const char* p = raw; *p != '\0'; ++p) {
    s += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (s == "debug" || s == "0") { *out = LogLevel::kDebug; return true; }
  if (s == "info" || s == "1") { *out = LogLevel::kInfo; return true; }
  if (s == "warn" || s == "warning" || s == "2") { *out = LogLevel::kWarn; return true; }
  if (s == "error" || s == "3") { *out = LogLevel::kError; return true; }
  return false;
}

// Applies M2AI_LOG_LEVEL exactly once, before the first threshold read. An
// explicit set_log_level() call later still overrides it.
void ensure_env_level() {
  static const bool applied = [] {
    LogLevel level;
    if (parse_level(std::getenv("M2AI_LOG_LEVEL"), &level)) {
      g_level.store(level, std::memory_order_relaxed);
    }
    return true;
  }();
  (void)applied;
}
}  // namespace

void set_log_level(LogLevel level) {
  ensure_env_level();
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  ensure_env_level();
  return g_level.load(std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double t =
      std::chrono::duration<double>(clock::now() - start).count();
  // One formatted write per line under a mutex so concurrent threads (the
  // obs layer made multi-threaded callers legitimate) never interleave.
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%9.3f] %-5s %s\n", t, level_name(level), msg.c_str());
}

}  // namespace m2ai::util
