#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace m2ai::util {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s2 = 0.0;
  for (double x : v) s2 += (x - m) * (x - m);
  return std::sqrt(s2 / static_cast<double>(v.size() - 1));
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid) - 1, v.end());
  return 0.5 * (hi + v[mid - 1]);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 2) return fit;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace m2ai::util
