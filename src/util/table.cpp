#include "util/table.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace m2ai::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c ? "  " : "");
      out << row[c];
      out << std::string(width[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace m2ai::util
