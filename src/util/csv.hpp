// CSV writer for machine-readable experiment output alongside the printed
// tables.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace m2ai::util {

class CsvWriter {
 public:
  // Opens (truncates) `path` and writes the header row. Throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  // Append a row; must match the header arity. Fields containing commas,
  // quotes, or newlines are quoted per RFC 4180.
  void add_row(const std::vector<std::string>& row);

  // Flush and close early (also done by the destructor).
  void close();

 private:
  void write_row(const std::vector<std::string>& row);

  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace m2ai::util
