// Minimal recursive-descent JSON parser for the repo's own machine-readable
// artifacts: obs metrics reports, Chrome trace files, and suite reports.
//
// Scope is deliberately small — parse a complete document into a Value tree,
// with strict validation (balanced structures, escape sequences, no trailing
// garbage). It is used by tools/m2ai_obsdiff to diff committed reports and by
// the exporter-validity tests, so it favors clear error messages over speed.
// No serializer lives here; emitters build their strings by hand (obs/export).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace m2ai::util {

// Thrown on any malformed input, with a byte offset in the message.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  // Typed accessors throw JsonError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  // Object member lookup; returns nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  // Like find(), but throws JsonError when the member is missing.
  const JsonValue& at(const std::string& key) const;

 private:
  friend class JsonParser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  // Heap-boxed so the recursive type has a bounded inline size.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

// Parses a complete JSON document. Throws JsonError on syntax errors,
// unterminated structures, bad escapes, or trailing non-whitespace.
JsonValue json_parse(const std::string& text);

}  // namespace m2ai::util
