// Small statistics helpers shared by the DSP pipeline and the evaluators.
#pragma once

#include <cstddef>
#include <vector>

namespace m2ai::util {

// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& v);

// Unbiased sample standard deviation; 0 for fewer than two samples.
double stddev(const std::vector<double>& v);

// Median (copies and partially sorts); 0 for an empty range.
double median(std::vector<double> v);

// p-th percentile, p in [0, 100], linear interpolation between ranks.
double percentile(std::vector<double> v, double p);

// Pearson correlation coefficient; 0 when either side has no variance.
double correlation(const std::vector<double>& x, const std::vector<double>& y);

// Least-squares fit y = a*x + b; returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit linear_fit(const std::vector<double>& x, const std::vector<double>& y);

// Streaming mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace m2ai::util
