// Minimal leveled logger. Writes to stderr so experiment tables on stdout
// stay machine-parsable. Thread-safe: concurrent log lines never interleave.
// The initial threshold can be set with the M2AI_LOG_LEVEL environment
// variable (debug/info/warn/error or 0-3); set_log_level() overrides it.
#pragma once

#include <sstream>
#include <string>

namespace m2ai::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

// Core sink. Adds a timestamp + level prefix and a newline.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace m2ai::util
