// Aligned text tables for bench output: prints the same rows/series the
// paper's tables and figures report, in a diff-friendly layout.
#pragma once

#include <string>
#include <vector>

namespace m2ai::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  // Convenience: format doubles with fixed precision.
  static std::string fmt(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 1);  // 0.97 -> "97.0%"

  // Render with column alignment and a rule under the header.
  std::string to_string() const;

  // Render to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace m2ai::util
