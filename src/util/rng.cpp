#include "util/rng.hpp"

namespace m2ai::util {

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box-Muller; reject u == 0 so log() is finite.
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  const double v = uniform();
  const double r = std::sqrt(-2.0 * std::log(u));
  const double theta = 2.0 * M_PI * v;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

}  // namespace m2ai::util
