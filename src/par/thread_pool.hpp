// Fixed-size worker pool behind the deterministic parallel layer.
//
// The pool owns N threads blocked on a shared work queue. Tasks are opaque
// closures; scheduling is first-come-first-served and intentionally carries
// no ordering guarantee — determinism is the responsibility of the
// parallel_for layer, which makes every task a pure function of its index.
//
// Shutdown is graceful: the destructor lets already-queued tasks finish,
// then joins every worker. Exceptions thrown inside a task are caught and
// handed to the submitter-provided sink (parallel_for rethrows the first
// one in the calling thread).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace m2ai::par {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueue one task. Tasks must not touch the pool itself (no recursive
  // submit-and-wait — that is what parallel_for's caller participation and
  // nested-region serial fallback are for).
  void submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop(int worker_index);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_work_;   // queue became non-empty / stopping
  std::condition_variable cv_idle_;   // all work drained
  std::size_t in_flight_ = 0;         // queued + currently executing tasks
  bool stopping_ = false;
};

}  // namespace m2ai::par
