// Deterministic data parallelism: parallel_for / parallel_map over an index
// range, bitwise-identical to the serial loop at any thread count.
//
// The contract that buys determinism: the body must be a pure function of
// its index `i` (plus read-only captures). Results are written into
// index-addressed slots, so the scheduling order — which *is*
// nondeterministic — cannot reorder anything observable. Stochastic bodies
// get their randomness from an Rng pre-forked per index in index order
// (parallel_map_seeded), never from a shared generator.
//
// Thread count comes from a process-wide setting (set_num_threads, the
// CLI's --threads flag); the default is the hardware concurrency. Nested
// calls — a parallel body that itself calls parallel_for — run serially
// inline, so composed layers (dataset generation over samples, frame
// building over windows) cannot deadlock or oversubscribe.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace m2ai::par {

// Hardware concurrency, clamped to >= 1.
int hardware_threads();

// Sets the process-wide thread count for subsequent parallel_for calls.
// n <= 0 restores the default (hardware_threads()).
void set_num_threads(int n);

// Currently configured thread count (>= 1).
int num_threads();

// RAII override of the process-wide thread count: sets `n` on construction
// and restores the previous setting on destruction. Used by the experiment
// runner and by determinism tests that compare thread counts in-process.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int n);
  ~ScopedNumThreads();
  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int previous_;  // raw setting (0 = hardware default), not the resolved count
};

// True while executing inside a parallel_for body (on any participating
// thread, including the caller). Nested regions run serially.
bool in_parallel_region();

// Runs fn(i) for every i in [0, n). Indices are claimed dynamically for
// load balance; the caller participates as one worker. The first exception
// thrown by any body is rethrown in the calling thread after all workers
// stop claiming new indices.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

// Maps [0, n) through fn into a vector, in index order.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

// Number of chunk workers parallel_chunks would use for n items: 1 when the
// configured thread count is 1 or the caller is already inside a parallel
// region (nested fan-outs run serially inline), else min(num_threads(), n).
// Callers that need per-worker state (network replicas, scratch buffers)
// size it with this before fanning out.
int chunk_workers(std::size_t n);

// Splits [0, n) into `workers` contiguous chunks and runs
// body(worker, begin, end) once per non-empty chunk, in parallel. The
// worker -> [begin, end) mapping is a pure function of (n, workers), never
// of scheduling, so per-worker state is safe and chunk results that are
// pure functions of their indices stay thread-count-invariant.
void parallel_chunks(std::size_t n, int workers,
                     const std::function<void(int, std::size_t, std::size_t)>& body);

// The reduction spine of deterministic data parallelism: folds per-index
// partial results into the caller's accumulator strictly in index order via
// fold(i, partials[i]). Partials may have been produced in any scheduling
// order; combining them in fixed index order is what keeps float reductions
// (gradient sums, merged statistics) bitwise-identical at any thread count.
template <typename T, typename Fold>
void reduce_in_order(std::vector<T>& partials, Fold&& fold) {
  for (std::size_t i = 0; i < partials.size(); ++i) fold(i, partials[i]);
}

// parallel_map with per-index randomness: forks one Rng per index from
// `base` in index order (advancing `base` exactly n forks), then runs
// fn(i, rng_i). The fork order is fixed regardless of thread count, so the
// result matches the serial loop `for i: fn(i, base.fork())` bit for bit.
template <typename T, typename Fn>
std::vector<T> parallel_map_seeded(std::size_t n, util::Rng& base, Fn&& fn) {
  std::vector<util::Rng> rngs;
  rngs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) rngs.push_back(base.fork());
  std::vector<T> out(n);
  parallel_for(n, [&](std::size_t i) { out[i] = fn(i, rngs[i]); });
  return out;
}

}  // namespace m2ai::par
