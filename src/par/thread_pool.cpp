#include "par/thread_pool.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/timeline.hpp"

namespace m2ai::par {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
    depth = queue_.size();
  }
  obs::timeline_counter("par.queue_depth", static_cast<double>(depth));
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop(int worker_index) {
  {
    char name[32];
    std::snprintf(name, sizeof(name), "worker-%d", worker_index);
    obs::register_thread_name(name);
  }
  for (;;) {
    std::function<void()> task;
    std::size_t depth;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful shutdown: drain the queue before exiting.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    obs::timeline_counter("par.queue_depth", static_cast<double>(depth));
    if (obs::timeline_enabled()) {
      const std::uint64_t start_ns = obs::timeline_now_ns();
      task();
      obs::timeline_complete("par.task", start_ns,
                             obs::timeline_now_ns() - start_ns);
    } else {
      task();  // exceptions are handled inside the task wrapper (parallel_for)
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace m2ai::par
