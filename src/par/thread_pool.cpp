#include "par/thread_pool.hpp"

#include <algorithm>

namespace m2ai::par {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Graceful shutdown: drain the queue before exiting.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are handled inside the task wrapper (parallel_for)
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace m2ai::par
