#include "par/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "par/thread_pool.hpp"

namespace m2ai::par {

namespace {

std::atomic<int> g_threads{0};  // 0 = hardware default
thread_local bool tl_in_region = false;

// The shared pool holds num_threads() - 1 workers; the calling thread is
// the remaining worker. Resizing (rare: a --threads change between runs)
// swaps the pool under the mutex; the old pool drains gracefully.
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void set_num_threads(int n) {
  g_threads.store(n <= 0 ? 0 : n, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::registry().gauge("par.threads").set(static_cast<double>(num_threads()));
  }
}

int num_threads() {
  const int t = g_threads.load(std::memory_order_relaxed);
  return t == 0 ? hardware_threads() : t;
}

bool in_parallel_region() { return tl_in_region; }

ScopedNumThreads::ScopedNumThreads(int n)
    : previous_(g_threads.load(std::memory_order_relaxed)) {
  set_num_threads(n);
}

ScopedNumThreads::~ScopedNumThreads() { set_num_threads(previous_); }

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const int threads = num_threads();

  // Serial path: configured serial, trivially small, or nested inside
  // another parallel region (workers must never block on the shared pool).
  if (threads <= 1 || n == 1 || tl_in_region) {
    const bool was_in_region = tl_in_region;
    tl_in_region = true;
    try {
      for (std::size_t i = 0; i < n; ++i) fn(i);
    } catch (...) {
      tl_in_region = was_in_region;
      throw;
    }
    tl_in_region = was_in_region;
    return;
  }

  if (obs::enabled()) {
    obs::registry().counter("par.parallel_for_calls").add(1);
    obs::registry().counter("par.parallel_for_items").add(n);
  }

  const int drivers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads), n));

  // Shared work-claiming state. Dynamic index claiming balances uneven
  // bodies; determinism is unaffected because every result lands in its
  // index's slot regardless of which thread claims it.
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr first_error;

  auto drive = [&] {
    tl_in_region = true;
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
    tl_in_region = false;
  };

  // Per-call completion latch for the pool-side drivers.
  std::mutex done_mu;
  std::condition_variable done_cv;
  int remaining = drivers - 1;

  if (obs::timeline_enabled()) {
    obs::TimelineArgs args;
    args.key1 = "items";
    args.value1 = static_cast<std::int64_t>(n);
    args.key2 = "drivers";
    args.value2 = drivers;
    obs::timeline_instant("par.dispatch", args);
  }

  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool || g_pool->size() != threads - 1) {
      g_pool = std::make_unique<ThreadPool>(threads - 1);
    }
    for (int d = 0; d < drivers - 1; ++d) {
      g_pool->submit([&] {
        drive();
        {
          std::lock_guard<std::mutex> dl(done_mu);
          --remaining;
        }
        done_cv.notify_one();
      });
    }
  }

  drive();  // the caller is a worker too

  // Drain: the caller ran out of indices and waits for pool-side drivers.
  const bool record_drain = obs::timeline_enabled();
  const std::uint64_t drain_start = record_drain ? obs::timeline_now_ns() : 0;
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining == 0; });
  }
  if (record_drain) {
    obs::timeline_complete("par.drain", drain_start,
                           obs::timeline_now_ns() - drain_start);
  }

  if (first_error) std::rethrow_exception(first_error);
}

int chunk_workers(std::size_t n) {
  if (n == 0) return 0;
  if (tl_in_region) return 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(num_threads()), n));
}

void parallel_chunks(std::size_t n, int workers,
                     const std::function<void(int, std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t w_count = static_cast<std::size_t>(
      std::min<std::size_t>(static_cast<std::size_t>(std::max(workers, 1)), n));
  const std::size_t chunk = (n + w_count - 1) / w_count;
  parallel_for(w_count, [&](std::size_t w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin < end) body(static_cast<int>(w), begin, end);
  });
}

}  // namespace m2ai::par
