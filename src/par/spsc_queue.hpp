// Bounded lock-free single-producer single-consumer ring queue.
//
// The serve layer moves data between pipeline stages (ingest -> DSP -> NN)
// through exactly-one-writer/exactly-one-reader channels, so the classic
// SPSC ring is the right primitive: one release store per push, one release
// store per pop, no CAS loops, no locks, wait-free on both sides.
//
// Contract:
//   * try_push may be called by ONE producer thread, try_pop by ONE consumer
//     thread; the two may run concurrently. Violating single-writer is a
//     data race (the TSan CI job runs the stress test to keep this honest).
//   * Capacity is rounded up to a power of two (minimum 2) so index
//     wrap-around is a mask, not a division.
//   * Each side caches the opposite index and refreshes it only when the
//     cached view says full/empty, so steady-state operation touches the
//     shared indices once per refresh instead of once per call.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace m2ai::par {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Producer side. Returns false (leaving `value` unmoved-from only in the
  // sense that the queue took nothing) when the ring is full.
  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  bool try_push(const T& value) {
    T copy = value;
    return try_push(std::move(copy));
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Racy size estimate for metrics/queue-depth sampling; exact only when
  // both sides are quiescent.
  std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? tail - head : 0;
  }
  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 1;
  // Producer-owned line: write index + its cached view of the consumer.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
  // Consumer-owned line: read index + its cached view of the producer.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
};

}  // namespace m2ai::par
