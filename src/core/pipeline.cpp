#include "core/pipeline.hpp"

#include "dsp/phase.hpp"
#include "obs/trace.hpp"

namespace m2ai::core {

sim::Environment make_environment(EnvironmentKind kind) {
  switch (kind) {
    case EnvironmentKind::kLaboratory: return sim::Environment::laboratory();
    case EnvironmentKind::kHall: return sim::Environment::hall();
  }
  return sim::Environment::laboratory();
}

Pipeline::Pipeline(PipelineConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

Sample Pipeline::simulate_sample(int activity_id) {
  SampleRun run = run_sample(activity_id, rng_.fork());
  last_reports_ = std::move(run.reports);
  calibrator_ = std::move(run.calibrator);
  return std::move(run.sample);
}

SampleRun Pipeline::run_sample(int activity_id, util::Rng sample_rng) const {
  M2AI_OBS_SPAN("simulate_sample");
  const sim::Environment env = make_environment(config_.environment);

  // Array against the y=0 wall, centered in x, facing into the room.
  sim::ArrayGeometry array;
  array.center = sim::Vec3{env.width / 2.0, 0.4, 1.25};
  array.axis = rf::Vec2{1.0, 0.0};
  array.num_antennas = config_.num_antennas;

  sim::PlacementOptions placement;
  placement.distance_m = config_.distance_m;

  std::vector<sim::Person> persons = sim::instantiate_activity(
      activity_id, config_.num_persons, env, array.origin2d(), placement, sample_rng);

  sim::Scene scene(env, std::move(persons), array, config_.tags_per_person);

  sim::ReaderConfig reader_config;
  reader_config.hopping = config_.frequency_hopping;
  // The M2AI pipeline consumes phase + RSSI only; skip the Doppler
  // estimation's extra propagation evaluations.
  reader_config.report_doppler = false;
  sim::Reader reader(reader_config, config_.num_antennas,
                     static_cast<int>(scene.tags().size()), sample_rng.fork());

  SampleRun run;

  // Stationary calibration bootstrap (Eq. 1): persons hold their start pose
  // while the reader sweeps its hop cycle.
  //
  // The activity recording starts half a frame-window after a hop boundary,
  // so every window pools readings from TWO hop channels — the situation
  // Eq. 1 calibration exists to handle. Without calibration the
  // inter-channel offsets scramble each window's snapshots and the spatial
  // covariance with them (the Fig. 10 collapse).
  double t0 = 0.5 * config_.window_sec;
  if (config_.phase_calibration) {
    M2AI_OBS_SPAN("calibration");
    run.calibrator = std::make_unique<dsp::PhaseCalibrator>();
    scene.set_motion_frozen(true);
    const auto boot = reader.run(scene, 0.0, config_.bootstrap_sec);
    for (const sim::TagReport& r : boot) {
      run.calibrator->add_sample(r.tag_id, r.antenna, r.channel, r.phase_rad);
    }
    run.calibrator->finalize();
    scene.set_motion_frozen(false);
    t0 = config_.bootstrap_sec + 0.5 * config_.window_sec;
  }

  {
    M2AI_OBS_SPAN("reader_run");
    run.reports = reader.run(scene, t0, t0 + config_.sample_duration_sec());
  }

  FrameBuilder builder(config_, run.calibrator.get(), num_tags());
  {
    M2AI_OBS_SPAN("frame_assembly");
    run.sample.frames = builder.build(run.reports, t0);
  }
  run.sample.activity_id = activity_id;
  run.sample.label = activity_id - 1;
  return run;
}

}  // namespace m2ai::core
