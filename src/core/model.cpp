#include "core/model.hpp"

#include <map>
#include <stdexcept>
#include <string>

#include "kern/backend.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/dropout.hpp"
#include "obs/trace.hpp"

namespace m2ai::core {

namespace {
// Flattened size of a Sequential's output for a zero input of `shape`.
int probe_output_size(nn::Sequential& net, std::vector<int> shape,
                      std::vector<int>* out_shape) {
  nn::Tensor probe(std::move(shape));
  const nn::Tensor out = net.forward(probe, /*train=*/false);
  if (out_shape) *out_shape = out.shape();
  return static_cast<int>(out.size());
}
}  // namespace

M2AINetwork::M2AINetwork(const ModelConfig& model, FeatureMode mode, int num_tags,
                         int num_antennas, int num_classes)
    : model_(model),
      mode_(mode),
      num_tags_(num_tags),
      num_antennas_(num_antennas),
      num_classes_(num_classes) {
  use_pseudo_ = (mode == FeatureMode::kM2AI || mode == FeatureMode::kMusicOnly);
  use_aux_ = (mode != FeatureMode::kMusicOnly);

  util::Rng rng(model_.seed);

  if (model_.arch != NetworkArch::kLstmOnly) {
    if (use_pseudo_) {
      // CONV-E1/E2/E3 (Fig. 6): reduce the 180-bin angle axis ~180->30->6.
      pseudo_branch_ = std::make_unique<nn::Sequential>();
      pseudo_branch_->emplace<nn::Conv1d>(num_tags_, 8, 7, 2, 3, rng);
      pseudo_branch_->emplace<nn::ReLU>();
      pseudo_branch_->emplace<nn::Conv1d>(8, 12, 5, 3, 1, rng);
      pseudo_branch_->emplace<nn::ReLU>();
      pseudo_branch_->emplace<nn::Conv1d>(12, 16, 5, 5, 0, rng);
      pseudo_branch_->emplace<nn::ReLU>();
      pseudo_flat_ = probe_output_size(*pseudo_branch_, {num_tags_, rf::kNumAngleBins},
                                       &pseudo_out_shape_);
      pseudo_branch_->set_trace_label("cnn_pseudo");
    }
    if (use_aux_) {
      // CONV-F (Fig. 6) over the short antenna axis.
      aux_branch_ = std::make_unique<nn::Sequential>();
      const int kernel = std::min(2, num_antennas_);
      aux_branch_->emplace<nn::Conv1d>(num_tags_, 8, kernel, 1, 0, rng);
      aux_branch_->emplace<nn::ReLU>();
      aux_flat_ = probe_output_size(*aux_branch_, {num_tags_, num_antennas_},
                                    &aux_out_shape_);
      aux_branch_->set_trace_label("cnn_aux");
    }
    merge_ = std::make_unique<nn::Sequential>();
    auto merge_dense = std::make_unique<nn::Dense>(pseudo_flat_ + aux_flat_,
                                                   model_.merge_features, rng);
    merge_dense_ = merge_dense.get();
    merge_->add(std::move(merge_dense));
    merge_->emplace<nn::ReLU>();
    if (model_.dropout > 0.0) {
      merge_->emplace<nn::Dropout>(model_.dropout, rng.fork());
    }
    merge_->set_trace_label("cnn_merge");
  }

  int lstm_input = 0;
  switch (model_.arch) {
    case NetworkArch::kCnnLstm:
      lstm_input = model_.merge_features;
      break;
    case NetworkArch::kLstmOnly:
      lstm_input = (use_pseudo_ ? num_tags_ * rf::kNumAngleBins : 0) +
                   (use_aux_ ? num_tags_ * num_antennas_ : 0);
      break;
    case NetworkArch::kCnnOnly:
      break;  // no LSTM
  }
  if (model_.arch != NetworkArch::kCnnOnly) {
    lstm1_ = std::make_unique<nn::Lstm>(lstm_input, model_.lstm_hidden, rng);
    lstm2_ = std::make_unique<nn::Lstm>(model_.lstm_hidden, model_.lstm_hidden, rng);
  }

  const int head_input = (model_.arch == NetworkArch::kCnnOnly)
                             ? model_.merge_features
                             : model_.lstm_hidden;
  head_ = std::make_unique<nn::Dense>(head_input, num_classes_, rng);
}

nn::Tensor M2AINetwork::raw_features(const SpectrumFrame& frame) const {
  nn::Tensor out;
  bool first = true;
  if (use_pseudo_) {
    out = frame.pseudo.flattened();
    first = false;
  }
  if (use_aux_) {
    out = first ? frame.aux.flattened() : nn::concat(out, frame.aux.flattened());
  }
  return out;
}

nn::Tensor M2AINetwork::frame_joined(const SpectrumFrame& frame, bool train) {
  nn::Tensor joined;
  bool first = true;
  if (use_pseudo_) {
    joined = pseudo_branch_->forward(frame.pseudo, train).flattened();
    first = false;
  }
  if (use_aux_) {
    const nn::Tensor b = aux_branch_->forward(frame.aux, train).flattened();
    joined = first ? b : nn::concat(joined, b);
  }
  return joined;
}

nn::Tensor M2AINetwork::frame_features(const SpectrumFrame& frame, bool train) {
  return merge_->forward(frame_joined(frame, train), train);
}

nn::Tensor M2AINetwork::frame_features_quant(const SpectrumFrame& frame) {
  const nn::Tensor joined = frame_joined(frame, /*train=*/false);
  nn::Tensor y = merge_dense_->forward_quant(joined, quant_ws_);
  // The rest of merge_ in eval mode: ReLU, then Dropout as identity.
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] < 0.0f) y[i] = 0.0f;
  }
  return y;
}

void M2AINetwork::frame_backward(const nn::Tensor& grad_features) {
  const nn::Tensor grad_joined = merge_->backward(grad_features);
  // Split the concatenated gradient back into branch outputs.
  if (use_pseudo_ && use_aux_) {
    nn::Tensor gp(pseudo_out_shape_);
    nn::Tensor ga(aux_out_shape_);
    for (std::size_t i = 0; i < gp.size(); ++i) gp[i] = grad_joined[i];
    for (std::size_t i = 0; i < ga.size(); ++i) ga[i] = grad_joined[gp.size() + i];
    // Pop caches in reverse push order: aux was pushed last.
    aux_branch_->backward(ga);
    pseudo_branch_->backward(gp);
  } else if (use_pseudo_) {
    pseudo_branch_->backward(grad_joined.reshaped(pseudo_out_shape_));
  } else {
    aux_branch_->backward(grad_joined.reshaped(aux_out_shape_));
  }
}

std::vector<nn::Tensor> M2AINetwork::forward_sequence(const FrameSequence& frames,
                                                      bool train) {
  M2AI_OBS_SPAN("nn_forward");
  std::vector<nn::Tensor> feats;
  feats.reserve(frames.size());
  for (const SpectrumFrame& frame : frames) {
    if (model_.arch == NetworkArch::kLstmOnly) {
      feats.push_back(raw_features(frame));
    } else {
      feats.push_back(frame_features(frame, train));
    }
  }
  if (model_.arch == NetworkArch::kCnnOnly) return feats;
  const std::vector<nn::Tensor> h1 = lstm1_->forward(feats, train);
  return lstm2_->forward(h1, train);
}

M2AINetwork::StepResult M2AINetwork::train_step(const Sample& sample) {
  const std::size_t t_len = sample.frames.size();
  if (t_len == 0) throw std::invalid_argument("M2AINetwork: empty sample");
  clear_caches();

  const std::vector<nn::Tensor> states = forward_sequence(sample.frames, /*train=*/true);

  // Per-frame softmax head; loss averaged over frames.
  StepResult result;
  std::vector<nn::Tensor> grad_states(t_len);
  std::vector<double> prob_sum(static_cast<std::size_t>(num_classes_), 0.0);
  const float inv_t = 1.0f / static_cast<float>(t_len);
  std::vector<nn::Tensor> grad_logits(t_len);
  for (std::size_t t = 0; t < t_len; ++t) {
    const nn::Tensor logits = head_->forward(states[t], /*train=*/true);
    auto lag = nn::softmax_cross_entropy(logits, sample.label);
    result.loss += lag.loss / static_cast<double>(t_len);
    const nn::Tensor probs = nn::softmax(logits);
    for (int c = 0; c < num_classes_; ++c) {
      prob_sum[static_cast<std::size_t>(c)] += probs[static_cast<std::size_t>(c)];
    }
    lag.grad_logits.scale(inv_t);
    grad_logits[t] = std::move(lag.grad_logits);
  }
  result.predicted = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (prob_sum[static_cast<std::size_t>(c)] >
        prob_sum[static_cast<std::size_t>(result.predicted)]) {
      result.predicted = c;
    }
  }

  // Backward: head caches are LIFO, so walk t in reverse.
  M2AI_OBS_SPAN("nn_backward");
  for (std::size_t t = t_len; t-- > 0;) {
    grad_states[t] = head_->backward(grad_logits[t]);
  }

  std::vector<nn::Tensor> grad_feats;
  if (model_.arch == NetworkArch::kCnnOnly) {
    grad_feats = std::move(grad_states);
  } else {
    const std::vector<nn::Tensor> grad_h1 = lstm2_->backward(grad_states);
    grad_feats = lstm1_->backward(grad_h1);
  }

  if (model_.arch != NetworkArch::kLstmOnly) {
    for (std::size_t t = t_len; t-- > 0;) frame_backward(grad_feats[t]);
  }
  return result;
}

std::vector<nn::Tensor> M2AINetwork::eval_features(const FrameSequence& frames,
                                                   bool quant) {
  std::vector<nn::Tensor> feats;
  feats.reserve(frames.size());
  for (const SpectrumFrame& frame : frames) {
    if (model_.arch == NetworkArch::kLstmOnly) {
      feats.push_back(raw_features(frame));
    } else if (quant) {
      feats.push_back(frame_features_quant(frame));
    } else {
      feats.push_back(frame_features(frame, /*train=*/false));
    }
  }
  return feats;
}

std::vector<double> M2AINetwork::proba_sum_from_states(
    const std::vector<nn::Tensor>& states, bool quant) {
  std::vector<double> prob_sum(static_cast<std::size_t>(num_classes_), 0.0);
  for (const nn::Tensor& s : states) {
    const nn::Tensor logits = quant ? head_->forward_quant(s, quant_ws_)
                                    : head_->forward(s, /*train=*/false);
    const nn::Tensor probs = nn::softmax(logits);
    for (int c = 0; c < num_classes_; ++c) {
      prob_sum[static_cast<std::size_t>(c)] += probs[static_cast<std::size_t>(c)];
    }
  }
  return prob_sum;
}

int M2AINetwork::argmax_class(const std::vector<double>& probs) {
  int best = 0;
  for (std::size_t c = 1; c < probs.size(); ++c) {
    if (probs[c] > probs[static_cast<std::size_t>(best)]) best = static_cast<int>(c);
  }
  return best;
}

std::vector<double> M2AINetwork::predict_proba(const FrameSequence& frames) {
  const std::vector<nn::Tensor> states =
      forward_sequence(frames, /*train=*/false);
  std::vector<double> prob_sum = proba_sum_from_states(states, /*quant=*/false);
  double total = 0.0;
  for (double p : prob_sum) total += p;
  if (total > 0.0) {
    for (double& p : prob_sum) p /= total;
  }
  return prob_sum;
}

int M2AINetwork::predict(const FrameSequence& frames) {
  return argmax_class(predict_proba(frames));
}

std::vector<int> M2AINetwork::predict_batch(
    const std::vector<const FrameSequence*>& batch) {
  const std::vector<std::vector<double>> probs = predict_proba_batch(batch);
  std::vector<int> labels(probs.size(), 0);
  for (std::size_t i = 0; i < probs.size(); ++i) labels[i] = argmax_class(probs[i]);
  return labels;
}

std::vector<std::vector<double>> M2AINetwork::predict_proba_batch(
    const std::vector<const FrameSequence*>& batch) {
  M2AI_OBS_SPAN("nn_batch");
  const std::size_t n = batch.size();
  std::vector<std::vector<double>> out(n);
  if (n == 0) return out;

  // The int8 path: only when the int8 backend is active AND this network has
  // calibrated int8 weights. LSTM gate matmuls, the merge Dense, and the
  // head run int8; conv branches, gate nonlinearities, cell state, and
  // softmax stay float (DESIGN.md §12).
  const bool quant =
      kern::active_backend_kind() == kern::BackendKind::kInt8 && quant_ready();
  if (quant) quant_ws_.reset();

  // Per-frame CNN/merge features stay per-sample (the conv kernels vectorize
  // internally); the LSTM stack — the dominant per-stream cost — batches.
  std::vector<std::vector<nn::Tensor>> feats(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (batch[i] == nullptr) {
      throw std::invalid_argument("M2AINetwork::predict_batch: null sequence");
    }
    feats[i] = eval_features(*batch[i], quant);
  }

  std::vector<std::vector<nn::Tensor>> states(n);
  if (model_.arch == NetworkArch::kCnnOnly) {
    states = std::move(feats);
  } else {
    // forward_batch needs equal-length sequences; serving batches are
    // usually uniform (fixed window), so grouping is normally one group.
    std::map<std::size_t, std::vector<std::size_t>> by_len;
    for (std::size_t i = 0; i < n; ++i) by_len[feats[i].size()].push_back(i);
    for (const auto& group : by_len) {
      const std::vector<std::size_t>& idxs = group.second;
      std::vector<const std::vector<nn::Tensor>*> in1;
      in1.reserve(idxs.size());
      for (std::size_t i : idxs) in1.push_back(&feats[i]);
      const std::vector<std::vector<nn::Tensor>> h1 =
          quant ? lstm1_->forward_batch_quant(in1) : lstm1_->forward_batch(in1);
      std::vector<const std::vector<nn::Tensor>*> in2;
      in2.reserve(h1.size());
      for (const std::vector<nn::Tensor>& h : h1) in2.push_back(&h);
      std::vector<std::vector<nn::Tensor>> h2 =
          quant ? lstm2_->forward_batch_quant(in2) : lstm2_->forward_batch(in2);
      for (std::size_t b = 0; b < idxs.size(); ++b) states[idxs[b]] = std::move(h2[b]);
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> prob_sum = proba_sum_from_states(states[i], quant);
    double total = 0.0;
    for (double p : prob_sum) total += p;
    if (total > 0.0) {
      for (double& p : prob_sum) p /= total;
    }
    out[i] = std::move(prob_sum);
  }
  return out;
}

nn::QuantScales M2AINetwork::calibrate(
    const std::vector<const FrameSequence*>& data,
    const nn::CalibrationOptions& opts) {
  if (data.empty()) {
    throw std::invalid_argument("M2AINetwork::calibrate: empty calibration set");
  }
  // Activation trackers at every quantized matmul input. The LSTM xh packs
  // [x_t; h_{t-1}], so each xh tracker observes both its input stream and
  // the hidden states that feed back into it.
  nn::RangeTracker merge_in, lstm1_xh, lstm2_xh, head_in;

  for (const FrameSequence* frames : data) {
    if (frames == nullptr) {
      throw std::invalid_argument("M2AINetwork::calibrate: null sequence");
    }
    std::vector<nn::Tensor> feats;
    feats.reserve(frames->size());
    for (const SpectrumFrame& frame : *frames) {
      if (model_.arch == NetworkArch::kLstmOnly) {
        feats.push_back(raw_features(frame));
      } else {
        const nn::Tensor joined = frame_joined(frame, /*train=*/false);
        merge_in.observe(joined);
        feats.push_back(merge_->forward(joined, /*train=*/false));
      }
    }
    if (model_.arch == NetworkArch::kCnnOnly) {
      for (const nn::Tensor& f : feats) head_in.observe(f);
      continue;
    }
    for (const nn::Tensor& f : feats) lstm1_xh.observe(f);
    const std::vector<nn::Tensor> h1 = lstm1_->forward(feats, /*train=*/false);
    for (const nn::Tensor& h : h1) {
      lstm1_xh.observe(h);  // h_prev half of lstm1's next-step xh
      lstm2_xh.observe(h);  // input half of lstm2's xh
    }
    const std::vector<nn::Tensor> h2 = lstm2_->forward(h1, /*train=*/false);
    for (const nn::Tensor& h : h2) {
      lstm2_xh.observe(h);
      head_in.observe(h);
    }
  }

  nn::QuantScales scales;
  scales.mode = opts.mode;
  scales.percentile = opts.percentile;
  if (merge_dense_ != nullptr) scales.scales["act.merge_in"] = merge_in.scale(opts);
  if (lstm1_) {
    scales.scales["act.lstm1_xh"] = lstm1_xh.scale(opts);
    scales.scales["act.lstm2_xh"] = lstm2_xh.scale(opts);
  }
  scales.scales["act.head_in"] = head_in.scale(opts);
  // Weight scales, recorded per parameter for inspection/serialization.
  // apply_quant_scales re-derives them deterministically from the float
  // weights (same tensors, same mode), so these entries are informational —
  // conv weights included even though conv stays float.
  {
    const std::vector<nn::Param*> ps = params();
    for (std::size_t i = 0; i < ps.size(); ++i) {
      nn::RangeTracker t;
      t.observe(ps[i]->value);
      scales.scales["w.p" + std::to_string(i) + "." + ps[i]->name] = t.scale(opts);
    }
  }
  apply_quant_scales(scales);
  return scales;
}

void M2AINetwork::apply_quant_scales(const nn::QuantScales& scales) {
  nn::CalibrationOptions opts;
  opts.mode = scales.mode;
  opts.percentile = scales.percentile;
  if (merge_dense_ != nullptr) {
    merge_dense_->prepare_quant(scales.at("act.merge_in"), opts);
  }
  if (lstm1_) {
    lstm1_->prepare_quant(scales.at("act.lstm1_xh"), opts);
    lstm2_->prepare_quant(scales.at("act.lstm2_xh"), opts);
  }
  head_->prepare_quant(scales.at("act.head_in"), opts);
  quant_scales_ = scales;
}

bool M2AINetwork::quant_ready() const {
  if (!head_->quant_ready()) return false;
  if (merge_dense_ != nullptr && !merge_dense_->quant_ready()) return false;
  if (lstm1_ && (!lstm1_->quant_ready() || !lstm2_->quant_ready())) return false;
  return true;
}

std::vector<nn::Param*> M2AINetwork::params() {
  std::vector<nn::Param*> out;
  auto append = [&out](std::vector<nn::Param*> ps) {
    out.insert(out.end(), ps.begin(), ps.end());
  };
  if (pseudo_branch_) append(pseudo_branch_->params());
  if (aux_branch_) append(aux_branch_->params());
  if (merge_) append(merge_->params());
  if (lstm1_) append(lstm1_->params());
  if (lstm2_) append(lstm2_->params());
  append(head_->params());
  return out;
}

std::size_t M2AINetwork::num_parameters() {
  std::size_t n = 0;
  for (const nn::Param* p : params()) n += p->value.size();
  return n;
}

std::unique_ptr<M2AINetwork> M2AINetwork::clone() {
  auto copy = std::make_unique<M2AINetwork>(model_, mode_, num_tags_,
                                            num_antennas_, num_classes_);
  const std::vector<nn::Param*> src = params();
  const std::vector<nn::Param*> dst = copy->params();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i]->value = src[i]->value;
    dst[i]->grad = src[i]->grad;
  }
  // Calibration travels with the weights: re-preparing from the identical
  // float parameters and the same scale table yields identical int8 state,
  // so clones serve the int8 path without recalibrating.
  if (!quant_scales_.empty()) copy->apply_quant_scales(quant_scales_);
  return copy;
}

void M2AINetwork::reseed_dropout(util::Rng base) {
  if (pseudo_branch_) pseudo_branch_->reseed(base);
  if (aux_branch_) aux_branch_->reseed(base);
  if (merge_) merge_->reseed(base);
}

void M2AINetwork::clear_caches() {
  if (pseudo_branch_) pseudo_branch_->clear_cache();
  if (aux_branch_) aux_branch_->clear_cache();
  if (merge_) merge_->clear_cache();
  if (lstm1_) lstm1_->clear_cache();
  if (lstm2_) lstm2_->clear_cache();
  head_->clear_cache();
}

}  // namespace m2ai::core
