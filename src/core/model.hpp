// The M2AI deep-learning engine (Fig. 6): per-frame CNN feature extraction
// over the pseudospectrum and periodogram branches, a fully-connected merge,
// two stacked LSTM layers (32 cells each), and a per-frame softmax head.
// The Fig. 17 ablations (CNN-only / LSTM-only) reuse the same parts.
#pragma once

#include <memory>

#include "core/frames.hpp"
#include "kern/workspace.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/quantize.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax.hpp"

namespace m2ai::core {

class M2AINetwork {
 public:
  M2AINetwork(const ModelConfig& model, FeatureMode mode, int num_tags,
              int num_antennas, int num_classes);

  struct StepResult {
    double loss = 0.0;
    int predicted = 0;
  };

  // Forward + backward on one sequence; parameter gradients accumulate
  // (optimizer consumes them). Loss is the mean per-frame cross entropy —
  // the paper's "prediction at every spectrum frame".
  StepResult train_step(const Sample& sample);

  // Inference: per-frame softmax probabilities summed over the sequence.
  int predict(const FrameSequence& frames);
  // Per-class summed probabilities (normalized); useful for examples.
  std::vector<double> predict_proba(const FrameSequence& frames);
  // Batched inference for the serving micro-batch: one label per sequence.
  // Sequences are grouped by length internally and each group's LSTM stack
  // runs batched (nn::Lstm::forward_batch) — one gemm per timestep across
  // the group instead of one gemv per stream. Per-sample math is otherwise
  // identical to predict(), so under the reference backend the labels are
  // bitwise-identical to sequential predict() calls.
  std::vector<int> predict_batch(const std::vector<const FrameSequence*>& batch);
  // Normalized per-class probability sums, one vector per sequence — the
  // proba counterpart of predict_batch (labels are its per-row argmax).
  std::vector<std::vector<double>> predict_proba_batch(
      const std::vector<const FrameSequence*>& batch);

  // Post-training int8 calibration (DESIGN.md §12): runs `data` through the
  // FLOAT network in eval mode, tracks the input-activation range of every
  // quantized matmul (merge Dense, both LSTM xh packs, softmax head) plus
  // every weight tensor, derives per-tensor symmetric scales per `opts`
  // (max-abs or percentile), and prepares the layers' int8 weights. Returns
  // the scale table for serialization alongside the float checkpoint.
  nn::QuantScales calibrate(const std::vector<const FrameSequence*>& data,
                            const nn::CalibrationOptions& opts);
  // Re-applies a previously saved scale table (nn::load_quant_scales) —
  // int8 weights are rebuilt from the current float weights, so the float
  // checkpoint must already be loaded. Throws when the table is missing a
  // required activation scale (wrong architecture).
  void apply_quant_scales(const nn::QuantScales& scales);
  // True when every quantized layer has prepared int8 weights; predict_batch
  // uses the int8 path only when this holds AND the int8 backend is active.
  bool quant_ready() const;
  const nn::QuantScales& quant_scales() const { return quant_scales_; }

  std::vector<nn::Param*> params();
  std::size_t num_parameters();

  // A structurally identical network with this network's current weights and
  // gradient buffers. Forward passes mutate per-layer caches, so concurrent
  // work needs one clone per worker (see core::evaluate and core::Trainer's
  // data-parallel replicas).
  std::unique_ptr<M2AINetwork> clone();

  // Re-derives every stochastic layer's RNG (dropout) from `base`, forking
  // in fixed layer order. The trainer seeds each replica from a per-sample
  // stream so dropout masks are thread-count-invariant.
  void reseed_dropout(util::Rng base);

  // Drops all cached activations in every layer. train_step calls this
  // first, so a previous step abandoned mid-flight (e.g. by an exception
  // between forward and backward) cannot poison the next one's BPTT pairing.
  void clear_caches();

  const ModelConfig& model_config() const { return model_; }

 private:
  // CNN branches + concat for one frame (the merge Dense's input).
  nn::Tensor frame_joined(const SpectrumFrame& frame, bool train);
  // CNN branches + merge for one frame. Returns the per-frame feature
  // vector; with train=true, caches are pushed for the matching backward.
  nn::Tensor frame_features(const SpectrumFrame& frame, bool train);
  // Quantized merge: conv branches stay float, the merge Dense matmul runs
  // int8, ReLU applied in float (eval-mode Dropout is identity).
  nn::Tensor frame_features_quant(const SpectrumFrame& frame);
  // Backward through merge + branches for the most recent un-popped
  // frame_features(train=true) call.
  void frame_backward(const nn::Tensor& grad_features);

  // Raw flattened frame (LSTM-only ablation input).
  nn::Tensor raw_features(const SpectrumFrame& frame) const;

  // Sequence forward shared by train/predict paths.
  std::vector<nn::Tensor> forward_sequence(const FrameSequence& frames, bool train);

  // Per-frame feature stage of forward_sequence (everything before the
  // LSTMs), eval mode; `quant` routes the merge Dense through int8.
  std::vector<nn::Tensor> eval_features(const FrameSequence& frames, bool quant);
  // Softmax-head tail shared by predict_proba and predict_batch: per-frame
  // probabilities summed over the sequence (unnormalized); `quant` routes
  // the head matmul through int8 (softmax stays float).
  std::vector<double> proba_sum_from_states(const std::vector<nn::Tensor>& states,
                                            bool quant);
  static int argmax_class(const std::vector<double>& probs);

  ModelConfig model_;
  FeatureMode mode_;
  int num_tags_;
  int num_antennas_;
  int num_classes_;

  bool use_pseudo_ = false;
  bool use_aux_ = false;
  int pseudo_flat_ = 0;  // flattened branch output sizes
  int aux_flat_ = 0;
  std::vector<int> pseudo_out_shape_;
  std::vector<int> aux_out_shape_;

  std::unique_ptr<nn::Sequential> pseudo_branch_;
  std::unique_ptr<nn::Sequential> aux_branch_;
  std::unique_ptr<nn::Sequential> merge_;  // Dense + ReLU
  nn::Dense* merge_dense_ = nullptr;  // the Dense inside merge_ (quant access)
  std::unique_ptr<nn::Lstm> lstm1_;
  std::unique_ptr<nn::Lstm> lstm2_;
  std::unique_ptr<nn::Dense> head_;

  nn::QuantScales quant_scales_;  // empty until calibrate/apply_quant_scales
  kern::Workspace quant_ws_;      // scratch for the quantized forwards
};

}  // namespace m2ai::core
