// The M2AI deep-learning engine (Fig. 6): per-frame CNN feature extraction
// over the pseudospectrum and periodogram branches, a fully-connected merge,
// two stacked LSTM layers (32 cells each), and a per-frame softmax head.
// The Fig. 17 ablations (CNN-only / LSTM-only) reuse the same parts.
#pragma once

#include <memory>

#include "core/frames.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/sequential.hpp"
#include "nn/softmax.hpp"

namespace m2ai::core {

class M2AINetwork {
 public:
  M2AINetwork(const ModelConfig& model, FeatureMode mode, int num_tags,
              int num_antennas, int num_classes);

  struct StepResult {
    double loss = 0.0;
    int predicted = 0;
  };

  // Forward + backward on one sequence; parameter gradients accumulate
  // (optimizer consumes them). Loss is the mean per-frame cross entropy —
  // the paper's "prediction at every spectrum frame".
  StepResult train_step(const Sample& sample);

  // Inference: per-frame softmax probabilities summed over the sequence.
  int predict(const FrameSequence& frames);
  // Per-class summed probabilities (normalized); useful for examples.
  std::vector<double> predict_proba(const FrameSequence& frames);
  // Batched inference for the serving micro-batch: one label per sequence.
  // Sequences are grouped by length internally and each group's LSTM stack
  // runs batched (nn::Lstm::forward_batch) — one gemm per timestep across
  // the group instead of one gemv per stream. Per-sample math is otherwise
  // identical to predict(), so under the reference backend the labels are
  // bitwise-identical to sequential predict() calls.
  std::vector<int> predict_batch(const std::vector<const FrameSequence*>& batch);

  std::vector<nn::Param*> params();
  std::size_t num_parameters();

  // A structurally identical network with this network's current weights and
  // gradient buffers. Forward passes mutate per-layer caches, so concurrent
  // work needs one clone per worker (see core::evaluate and core::Trainer's
  // data-parallel replicas).
  std::unique_ptr<M2AINetwork> clone();

  // Re-derives every stochastic layer's RNG (dropout) from `base`, forking
  // in fixed layer order. The trainer seeds each replica from a per-sample
  // stream so dropout masks are thread-count-invariant.
  void reseed_dropout(util::Rng base);

  // Drops all cached activations in every layer. train_step calls this
  // first, so a previous step abandoned mid-flight (e.g. by an exception
  // between forward and backward) cannot poison the next one's BPTT pairing.
  void clear_caches();

  const ModelConfig& model_config() const { return model_; }

 private:
  // CNN branches + merge for one frame. Returns the per-frame feature
  // vector; with train=true, caches are pushed for the matching backward.
  nn::Tensor frame_features(const SpectrumFrame& frame, bool train);
  // Backward through merge + branches for the most recent un-popped
  // frame_features(train=true) call.
  void frame_backward(const nn::Tensor& grad_features);

  // Raw flattened frame (LSTM-only ablation input).
  nn::Tensor raw_features(const SpectrumFrame& frame) const;

  // Sequence forward shared by train/predict paths.
  std::vector<nn::Tensor> forward_sequence(const FrameSequence& frames, bool train);

  // Per-frame feature stage of forward_sequence (everything before the
  // LSTMs), eval mode.
  std::vector<nn::Tensor> eval_features(const FrameSequence& frames);
  // Softmax-head tail shared by predict_proba and predict_batch: per-frame
  // probabilities summed over the sequence (unnormalized).
  std::vector<double> proba_sum_from_states(const std::vector<nn::Tensor>& states);
  static int argmax_class(const std::vector<double>& probs);

  ModelConfig model_;
  FeatureMode mode_;
  int num_tags_;
  int num_antennas_;
  int num_classes_;

  bool use_pseudo_ = false;
  bool use_aux_ = false;
  int pseudo_flat_ = 0;  // flattened branch output sizes
  int aux_flat_ = 0;
  std::vector<int> pseudo_out_shape_;
  std::vector<int> aux_out_shape_;

  std::unique_ptr<nn::Sequential> pseudo_branch_;
  std::unique_ptr<nn::Sequential> aux_branch_;
  std::unique_ptr<nn::Sequential> merge_;  // Dense + ReLU
  std::unique_ptr<nn::Lstm> lstm1_;
  std::unique_ptr<nn::Lstm> lstm2_;
  std::unique_ptr<nn::Dense> head_;
};

}  // namespace m2ai::core
