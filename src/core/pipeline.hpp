// End-to-end M2AI pipeline over the simulated substrate: instantiate a
// scene for an activity, run the stationary calibration bootstrap (Eq. 1),
// inventory the tags through the reader model, and build the spectrum-frame
// sequence that feeds the learning engine.
#pragma once

#include <memory>

#include "core/frames.hpp"
#include "sim/activities.hpp"

namespace m2ai::core {

sim::Environment make_environment(EnvironmentKind kind);

// Everything one simulate_sample run produces: the labelled sample plus the
// raw report stream and calibrator behind it (tests and the Fig. 2/3
// benches inspect those).
struct SampleRun {
  Sample sample;
  std::vector<sim::TagReport> reports;
  std::unique_ptr<dsp::PhaseCalibrator> calibrator;
};

class Pipeline {
 public:
  Pipeline(PipelineConfig config, std::uint64_t seed);

  // Simulate one labelled sample of `activity_id` (1-based catalog id):
  // fresh volunteers, fresh reader hardware, fresh bootstrap, then
  // windows_per_sample frames of activity. Advances the pipeline's RNG by
  // one fork per call.
  Sample simulate_sample(int activity_id);

  // Stateless core of simulate_sample: all per-sample state (calibrator,
  // report stream, randomness) lives in the returned SampleRun and the
  // caller-supplied RNG, so concurrent calls on one Pipeline are safe.
  // Forking `sample_rng`s from one stream in index order makes any-thread-
  // count runs bitwise-identical to the serial loop (see par/parallel_for).
  SampleRun run_sample(int activity_id, util::Rng sample_rng) const;

  // One fork of the pipeline's sample stream, in call order — the RNG the
  // next simulate_sample() would have used. Lets dataset generation pre-fork
  // per-sample streams before fanning out.
  util::Rng fork_sample_rng() { return rng_.fork(); }

  // Lower-level access for tests and the Fig. 2/3 benches: the raw reports
  // and the calibrator of the last simulate_sample() call.
  const std::vector<sim::TagReport>& last_reports() const { return last_reports_; }
  const dsp::PhaseCalibrator* last_calibrator() const { return calibrator_.get(); }

  const PipelineConfig& config() const { return config_; }
  int num_tags() const { return config_.num_persons * config_.tags_per_person; }

 private:
  PipelineConfig config_;
  util::Rng rng_;
  std::vector<sim::TagReport> last_reports_;
  std::unique_ptr<dsp::PhaseCalibrator> calibrator_;
};

}  // namespace m2ai::core
