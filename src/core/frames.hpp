// Spectrum frames: the bridge between the LLRP report stream and the
// learning engine (Sec. IV-A).
//
// Per time window and per tag the FrameBuilder produces
//   * a pseudospectrum row (180 angle bins, MUSIC, Eq. 12) and
//   * a periodogram row (one power bin per antenna, Eq. 16),
// stacked over tags into the n x 180 and n x N frames of Fig. 5(c)/(d).
// Feature-mode ablations (Fig. 16) swap these for raw phase or RSSI rows.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "dsp/calibration.hpp"
#include "dsp/music.hpp"
#include "nn/tensor.hpp"
#include "sim/reader.hpp"

namespace m2ai::core {

// RSSI (dBm) to a linear amplitude with a fixed reference so the
// periodogram keeps absolute power information. Shared by the batch
// FrameBuilder and the streaming serve::StreamAssembler, which must build
// bitwise-identical snapshots from the same report stream.
double rssi_to_amplitude(double rssi_dbm);

// Compress periodogram power for the network input (same sharing contract).
float compress_power(double p);

// One time step of the model input. Depending on FeatureMode either tensor
// may be unused (size 0 is represented by an empty rank check on use).
struct SpectrumFrame {
  nn::Tensor pseudo;  // [n_tags, 180]  (kM2AI, kMusicOnly)
  nn::Tensor aux;     // [n_tags, N]    (periodogram / phase / RSSI rows)
  bool has_pseudo = false;
  bool has_aux = false;
};

using FrameSequence = std::vector<SpectrumFrame>;

// A labelled training/evaluation example.
struct Sample {
  FrameSequence frames;
  int label = 0;        // activity id - 1
  int activity_id = 0;  // 1-based catalog id
};

class FrameBuilder {
 public:
  // `calibrator` may be null (Fig. 10's no-calibration ablation); it must be
  // finalized otherwise. `num_tags` fixes the frame height even if some tag
  // is never read in a window.
  FrameBuilder(const PipelineConfig& config, const dsp::PhaseCalibrator* calibrator,
               int num_tags);

  // Consume reports covering [t_begin, t_begin + T*window) and produce the
  // T-frame sequence. Missing (tag, window) data yields zero rows.
  FrameSequence build(const std::vector<sim::TagReport>& reports,
                      double t_begin) const;

  const dsp::MusicEstimator& music() const { return music_; }

 private:
  // Per (tag, window) accumulation of calibrated readings.
  struct TagWindow {
    // Per antenna: calibrated doubled phases and linear amplitudes, in
    // arrival order.
    std::vector<std::vector<double>> phases;
    std::vector<std::vector<double>> amplitudes;
    std::vector<std::vector<double>> rssis;
  };

  SpectrumFrame make_frame(const std::vector<TagWindow>& tags) const;

  PipelineConfig config_;
  const dsp::PhaseCalibrator* calibrator_;
  int num_tags_;
  dsp::MusicEstimator music_;
};

}  // namespace m2ai::core
