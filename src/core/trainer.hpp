// Training loop for the M2AI network: shuffled mini-batches of whole
// sequences, gradient-norm clipping (Sec. VI-A), SGD+momentum or Adam.
//
// Training is data-parallel and deterministic: each mini-batch is sharded
// across per-worker network replicas (M2AINetwork::clone()), every sample's
// gradient is computed independently from zeroed buffers, and the per-sample
// gradients are reduced into the master parameters in strict sample-index
// order (par::reduce_in_order). Because each sample's forward/backward is a
// pure function of (master weights, sample, per-sample RNG stream) and the
// reduction order is fixed, the trained checkpoint is bitwise-identical at
// any thread count — the same guarantee the rest of the pipeline gives.
#pragma once

#include "core/model.hpp"
#include "nn/optimizer.hpp"

namespace m2ai::core {

struct EpochStats {
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
  // Mean pre-clip global gradient norm over the epoch's optimizer steps.
  double mean_grad_norm = 0.0;
  // Widest replica fan-out any batch used this epoch (1 = serial).
  int replicas = 1;
  // Summed per-replica busy wall-clock across the epoch's batches.
  double replica_busy_seconds = 0.0;
};

class Trainer {
 public:
  Trainer(M2AINetwork& network, TrainConfig config);

  // One pass over the (shuffled) training samples.
  EpochStats run_epoch(const std::vector<Sample>& train);

  // Full training run; returns stats of the final epoch.
  EpochStats fit(const std::vector<Sample>& train);

 private:
  // Forward/backward the staged batch on the replicas, reduce the
  // per-sample gradients into the master in index order, and take one
  // optimizer step. `dropout_rngs[i]` is sample i's pre-forked stream.
  void process_batch(const std::vector<const Sample*>& batch,
                     const std::vector<util::Rng>& dropout_rngs,
                     const std::vector<nn::Param*>& master, EpochStats& stats,
                     std::size_t& correct, int& num_steps);

  // Grows the replica pool to `workers` clones and copies the master's
  // current parameter values into each (exact copies — no float math).
  void sync_replicas(int workers);

  M2AINetwork& network_;
  TrainConfig config_;
  // 1-based epoch currently running (0 outside fit()); annotates the
  // train_epoch/train_batch timeline spans.
  int current_epoch_ = 0;
  int batch_counter_ = 0;  // batches flushed within the current epoch
  std::unique_ptr<nn::Optimizer> optimizer_;
  util::Rng rng_;          // shuffle + crop offsets (same stream as ever)
  util::Rng dropout_rng_;  // per-sample dropout streams, forked in epoch order
  std::vector<std::unique_ptr<M2AINetwork>> replicas_;
};

}  // namespace m2ai::core
