// Training loop for the M2AI network: shuffled mini-batches of whole
// sequences, gradient-norm clipping (Sec. VI-A), SGD+momentum or Adam.
#pragma once

#include "core/model.hpp"
#include "nn/optimizer.hpp"

namespace m2ai::core {

struct EpochStats {
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
  // Mean pre-clip global gradient norm over the epoch's optimizer steps.
  double mean_grad_norm = 0.0;
};

class Trainer {
 public:
  Trainer(M2AINetwork& network, TrainConfig config);

  // One pass over the (shuffled) training samples.
  EpochStats run_epoch(const std::vector<Sample>& train);

  // Full training run; returns stats of the final epoch.
  EpochStats fit(const std::vector<Sample>& train);

 private:
  M2AINetwork& network_;
  TrainConfig config_;
  std::unique_ptr<nn::Optimizer> optimizer_;
  util::Rng rng_;
};

}  // namespace m2ai::core
