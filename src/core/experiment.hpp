// The experiment harness behind every bench binary: dataset generation with
// a stratified 80/20 split (Sec. VI-A), M2AI training/evaluation, and the
// common path for running a conventional baseline over the same data.
#pragma once

#include <functional>
#include <memory>

#include "core/evaluator.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "ml/dataset.hpp"

namespace m2ai::core {

struct ExperimentConfig {
  PipelineConfig pipeline;
  ModelConfig model;
  TrainConfig train;
  int samples_per_class = 20;
  double train_fraction = 0.8;  // paper: 80% train / 20% test
  std::uint64_t seed = 20180545;
};

struct DataSplit {
  std::vector<Sample> train;
  std::vector<Sample> test;
  int num_classes = 0;
};

// Simulate samples_per_class examples of every cataloged activity and split
// them stratified by class.
DataSplit generate_dataset(const ExperimentConfig& config);

struct M2AIResult {
  ConfusionMatrix confusion;
  double accuracy = 0.0;
  double train_seconds = 0.0;
  std::size_t num_parameters = 0;

  M2AIResult() : confusion(1) {}
};

// Build the configured network, train on the split, evaluate on its test
// side. `out_network` (optional) receives the trained model.
M2AIResult train_and_evaluate(const ExperimentConfig& config, const DataSplit& split,
                              std::unique_ptr<M2AINetwork>* out_network = nullptr);

// Fit one conventional classifier on per-frame features of the train split
// and score it per-sequence by majority vote.
double baseline_accuracy(ml::Classifier& classifier, const DataSplit& split,
                         std::uint64_t seed, std::size_t frame_cap = 2000);

// Fit the HMM sequence baseline (per-class Gaussian HMMs over frame-feature
// sequences — the prior-art approach of Secs. I/VIII) and score it on the
// test split. Unlike the frame classifiers, the HMM sees whole sequences.
double hmm_baseline_accuracy(const DataSplit& split, int num_states = 4,
                             int iterations = 10);

}  // namespace m2ai::core
