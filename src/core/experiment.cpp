#include "core/experiment.hpp"

#include <chrono>

#include "core/features.hpp"
#include "ml/hmm.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "util/log.hpp"

namespace m2ai::core {

DataSplit generate_dataset(const ExperimentConfig& config) {
  M2AI_OBS_SPAN("dataset_generation");
  Pipeline pipeline(config.pipeline, config.seed);
  util::Rng split_rng(config.seed ^ 0xabcdef12345ULL);

  // Fan the per-sample simulations out over the configured threads. The
  // per-sample RNGs are forked in the serial call order (activity-major), so
  // every sample is bitwise-identical to the single-threaded loop no matter
  // how the work is scheduled.
  const int num_activities = sim::num_activities();
  const std::size_t per_class = static_cast<std::size_t>(config.samples_per_class);
  const std::size_t total = per_class * static_cast<std::size_t>(num_activities);
  std::vector<util::Rng> sample_rngs;
  sample_rngs.reserve(total);
  for (std::size_t j = 0; j < total; ++j) {
    sample_rngs.push_back(pipeline.fork_sample_rng());
  }
  std::vector<Sample> all = par::parallel_map<Sample>(total, [&](std::size_t j) {
    const int activity = static_cast<int>(j / per_class) + 1;
    return pipeline.run_sample(activity, sample_rngs[j]).sample;
  });

  DataSplit split;
  split.num_classes = num_activities;
  for (int activity = 1; activity <= num_activities; ++activity) {
    std::vector<Sample> samples;
    samples.reserve(per_class);
    const std::size_t base = static_cast<std::size_t>(activity - 1) * per_class;
    for (std::size_t i = 0; i < per_class; ++i) {
      samples.push_back(std::move(all[base + i]));
    }
    split_rng.shuffle(samples);
    const auto train_count = static_cast<std::size_t>(
        config.train_fraction * static_cast<double>(samples.size()) + 0.5);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      (i < train_count ? split.train : split.test).push_back(std::move(samples[i]));
    }
  }
  split_rng.shuffle(split.train);
  split_rng.shuffle(split.test);
  util::log_info() << "dataset: " << split.train.size() << " train / "
                   << split.test.size() << " test sequences, "
                   << split.num_classes << " classes";
  return split;
}

M2AIResult train_and_evaluate(const ExperimentConfig& config, const DataSplit& split,
                              std::unique_ptr<M2AINetwork>* out_network) {
  auto network = std::make_unique<M2AINetwork>(
      config.model, config.pipeline.feature_mode,
      config.pipeline.num_persons * config.pipeline.tags_per_person,
      config.pipeline.num_antennas, split.num_classes);

  M2AIResult result;
  result.num_parameters = network->num_parameters();

  const auto start = std::chrono::steady_clock::now();
  {
    M2AI_OBS_SPAN("training");
    Trainer trainer(*network, config.train);
    trainer.fit(split.train);
  }
  result.train_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  {
    M2AI_OBS_SPAN("evaluation");
    result.confusion = evaluate(*network, split.test);
  }
  result.accuracy = result.confusion.accuracy();
  if (out_network) *out_network = std::move(network);
  return result;
}

double hmm_baseline_accuracy(const DataSplit& split, int num_states, int iterations) {
  // Frame-feature sequences, standardized with a scaler fit on train frames.
  ml::Dataset scale_fit;
  scale_fit.num_classes = split.num_classes;
  for (const Sample& s : split.train) {
    for (const SpectrumFrame& f : s.frames) {
      scale_fit.add(frame_feature_vector(f), s.label);
    }
  }
  ml::StandardScaler scaler;
  scaler.fit(scale_fit);

  auto to_sequences = [&](const std::vector<Sample>& samples,
                          std::vector<ml::FeatureSequence>* seqs,
                          std::vector<int>* labels) {
    for (const Sample& s : samples) {
      ml::FeatureSequence seq;
      for (const SpectrumFrame& f : s.frames) {
        seq.push_back(scaler.transform(frame_feature_vector(f)));
      }
      seqs->push_back(std::move(seq));
      labels->push_back(s.label);
    }
  };

  std::vector<ml::FeatureSequence> train_seqs, test_seqs;
  std::vector<int> train_labels, test_labels;
  to_sequences(split.train, &train_seqs, &train_labels);
  to_sequences(split.test, &test_seqs, &test_labels);

  ml::HmmSequenceClassifier hmm(num_states, iterations);
  hmm.fit(train_seqs, train_labels, split.num_classes);
  return hmm.accuracy(test_seqs, test_labels);
}

double baseline_accuracy(ml::Classifier& classifier, const DataSplit& split,
                         std::uint64_t seed, std::size_t frame_cap) {
  util::Rng rng(seed);
  ml::Dataset train_frames =
      frames_to_dataset(split.train, split.num_classes, /*frame_stride=*/2,
                        frame_cap, rng);
  ml::StandardScaler scaler;
  scaler.fit(train_frames);
  classifier.fit(scaler.transform(train_frames));
  return sequence_accuracy(classifier, scaler, split.test, split.num_classes);
}

}  // namespace m2ai::core
