// Evaluation: accuracy and the Table I style confusion matrix.
#pragma once

#include <string>
#include <vector>

#include "core/model.hpp"

namespace m2ai::core {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int actual, int predicted);
  int count(int actual, int predicted) const;
  int total() const { return total_; }

  // Fraction of class `actual` predicted as `predicted` (column-normalized
  // per actual class, like Table I).
  double rate(int actual, int predicted) const;
  double accuracy() const;
  // Per-class recall; the paper reports >= 93% for every activity.
  double class_accuracy(int actual) const;
  double min_class_accuracy() const;

  // Render as a Table I style grid with given class labels.
  std::string to_string(const std::vector<std::string>& labels) const;

 private:
  int num_classes_;
  int total_ = 0;
  std::vector<int> counts_;  // [actual * num_classes + predicted]
};

// Evaluate a trained network over test samples.
ConfusionMatrix evaluate(M2AINetwork& network, const std::vector<Sample>& test);

}  // namespace m2ai::core
