#include "core/config.hpp"

namespace m2ai::core {

const char* feature_mode_name(FeatureMode mode) {
  switch (mode) {
    case FeatureMode::kM2AI: return "M2AI";
    case FeatureMode::kMusicOnly: return "MUSIC-based";
    case FeatureMode::kFftOnly: return "FFT-based";
    case FeatureMode::kPhaseOnly: return "Phase-based";
    case FeatureMode::kRssiOnly: return "RSSI-based";
  }
  return "?";
}

const char* network_arch_name(NetworkArch arch) {
  switch (arch) {
    case NetworkArch::kCnnLstm: return "CNN+LSTM (M2AI)";
    case NetworkArch::kCnnOnly: return "CNN only";
    case NetworkArch::kLstmOnly: return "LSTM only";
  }
  return "?";
}

const char* environment_name(EnvironmentKind kind) {
  switch (kind) {
    case EnvironmentKind::kLaboratory: return "laboratory";
    case EnvironmentKind::kHall: return "hall";
  }
  return "?";
}

}  // namespace m2ai::core
