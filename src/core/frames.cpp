#include "core/frames.hpp"

#include <cmath>

#include "dsp/periodogram.hpp"
#include "dsp/phase.hpp"
#include "par/parallel_for.hpp"
#include "rf/steering.hpp"

namespace m2ai::core {

namespace {

dsp::MusicOptions music_options(const PipelineConfig& config) {
  dsp::MusicOptions opts;
  opts.num_antennas = config.num_antennas;
  opts.effective_separation_m = rf::effective_separation(rf::kAntennaSeparationM);
  opts.wavelength_m = rf::kTypicalWavelengthM;
  opts.num_angle_bins = rf::kNumAngleBins;
  opts.covariance = config.covariance;
  // A fixed signal-subspace dimension keeps consecutive frames comparable;
  // the auto-count's per-window jitter otherwise changes spectrum sharpness
  // and reads as feature noise to the network.
  opts.num_sources = std::min(config.music_num_sources, config.num_antennas - 1);
  return opts;
}

}  // namespace

double rssi_to_amplitude(double rssi_dbm) {
  return std::pow(10.0, (rssi_dbm + 60.0) / 20.0);
}

float compress_power(double p) { return static_cast<float>(std::log10(1.0 + p)); }

FrameBuilder::FrameBuilder(const PipelineConfig& config,
                           const dsp::PhaseCalibrator* calibrator, int num_tags)
    : config_(config),
      calibrator_(calibrator),
      num_tags_(num_tags),
      music_(music_options(config)) {}

FrameSequence FrameBuilder::build(const std::vector<sim::TagReport>& reports,
                                  double t_begin) const {
  const int num_windows = config_.windows_per_sample;
  const int num_ant = config_.num_antennas;

  // windows[w][tag] accumulators.
  std::vector<std::vector<TagWindow>> windows(
      static_cast<std::size_t>(num_windows),
      std::vector<TagWindow>(static_cast<std::size_t>(num_tags_)));
  // Reports spread roughly evenly over (window, tag, antenna) cells;
  // reserving the expected per-cell count up front keeps the per-report
  // push_backs below from growing each vector through repeated reallocation.
  const std::size_t cells = static_cast<std::size_t>(num_windows) *
                            static_cast<std::size_t>(num_tags_) *
                            static_cast<std::size_t>(num_ant);
  const std::size_t expected = cells > 0 ? reports.size() / cells + 4 : 0;
  for (auto& per_window : windows) {
    for (auto& tw : per_window) {
      tw.phases.resize(static_cast<std::size_t>(num_ant));
      tw.amplitudes.resize(static_cast<std::size_t>(num_ant));
      tw.rssis.resize(static_cast<std::size_t>(num_ant));
      for (int a = 0; a < num_ant; ++a) {
        tw.phases[static_cast<std::size_t>(a)].reserve(expected);
        tw.amplitudes[static_cast<std::size_t>(a)].reserve(expected);
        tw.rssis[static_cast<std::size_t>(a)].reserve(expected);
      }
    }
  }

  for (const sim::TagReport& report : reports) {
    const double rel = report.time_sec - t_begin;
    const int w = static_cast<int>(std::floor(rel / config_.window_sec));
    if (w < 0 || w >= num_windows) continue;
    const int tag = static_cast<int>(report.tag_id) - 1;
    if (tag < 0 || tag >= num_tags_) continue;
    if (report.antenna < 0 || report.antenna >= num_ant) continue;

    // Remove the per-channel hardware offset — including the reader's
    // half-cycle reporting offset — via Eq. 1 when calibration is enabled.
    double psi = report.phase_rad;
    if (calibrator_ != nullptr) {
      psi = calibrator_->apply(report.tag_id, report.antenna, report.channel, psi);
    }
    auto& tw = windows[static_cast<std::size_t>(w)][static_cast<std::size_t>(tag)];
    const auto ant = static_cast<std::size_t>(report.antenna);
    tw.phases[ant].push_back(psi);
    tw.amplitudes[ant].push_back(rssi_to_amplitude(report.rssi_dbm));
    tw.rssis[ant].push_back(report.rssi_dbm);
  }

  // Each window's MUSIC pseudospectrum + periodogram stack is independent
  // (per-tag eigendecompositions, no shared mutable state), so fan the
  // windows out. Inside dataset generation this runs serially — the outer
  // per-sample parallel_for already owns the threads.
  return par::parallel_map<SpectrumFrame>(
      windows.size(),
      [&](std::size_t w) { return make_frame(windows[w]); });
}

SpectrumFrame FrameBuilder::make_frame(const std::vector<TagWindow>& tags) const {
  const int num_ant = config_.num_antennas;
  const FeatureMode mode = config_.feature_mode;
  SpectrumFrame frame;
  frame.has_pseudo =
      (mode == FeatureMode::kM2AI || mode == FeatureMode::kMusicOnly);
  frame.has_aux = (mode != FeatureMode::kMusicOnly);

  if (frame.has_pseudo) frame.pseudo = nn::Tensor({num_tags_, rf::kNumAngleBins});
  if (frame.has_aux) frame.aux = nn::Tensor({num_tags_, num_ant});

  // Snapshot matrix reused across tags (local, so parallel windows stay
  // independent); tags in one window have near-identical snapshot counts,
  // so after the first tag the buffers are usually exactly right.
  std::vector<std::vector<dsp::cdouble>> snapshots;

  for (int tag = 0; tag < num_tags_; ++tag) {
    const TagWindow& tw = tags[static_cast<std::size_t>(tag)];

    if (mode == FeatureMode::kPhaseOnly) {
      // Circular mean of the calibrated phase per antenna, scaled to [0, 1).
      for (int a = 0; a < num_ant; ++a) {
        const auto& ph = tw.phases[static_cast<std::size_t>(a)];
        if (ph.empty()) continue;
        frame.aux.at(tag, a) = static_cast<float>(
            dsp::wrap_2pi(dsp::circular_mean(ph)) / (2.0 * M_PI));
      }
      continue;
    }
    if (mode == FeatureMode::kRssiOnly) {
      for (int a = 0; a < num_ant; ++a) {
        const auto& r = tw.rssis[static_cast<std::size_t>(a)];
        if (r.empty()) continue;
        double s = 0.0;
        for (double v : r) s += v;
        // Map typical -90..-30 dBm to ~[0, 1].
        frame.aux.at(tag, a) =
            static_cast<float>((s / static_cast<double>(r.size()) + 90.0) / 60.0);
      }
      continue;
    }

    // Spectral modes need aligned snapshots across antennas.
    std::size_t num_snapshots = SIZE_MAX;
    for (int a = 0; a < num_ant; ++a) {
      num_snapshots =
          std::min(num_snapshots, tw.phases[static_cast<std::size_t>(a)].size());
    }
    if (num_snapshots == SIZE_MAX || num_snapshots < 2) continue;  // zero row

    snapshots.resize(num_snapshots);
    for (std::size_t k = 0; k < num_snapshots; ++k) {
      auto& snap = snapshots[k];
      snap.resize(static_cast<std::size_t>(num_ant));
      for (int a = 0; a < num_ant; ++a) {
        const auto aa = static_cast<std::size_t>(a);
        snap[aa] = std::polar(tw.amplitudes[aa][k], tw.phases[aa][k]);
      }
    }

    if (frame.has_pseudo) {
      const dsp::MusicResult music = music_.estimate(snapshots);
      for (int bin = 0; bin < rf::kNumAngleBins; ++bin) {
        frame.pseudo.at(tag, bin) =
            static_cast<float>(music.spectrum[static_cast<std::size_t>(bin)]);
      }
    }
    if (frame.has_aux) {
      const std::vector<double> period = dsp::averaged_periodogram(snapshots);
      for (int a = 0; a < num_ant; ++a) {
        frame.aux.at(tag, a) = compress_power(period[static_cast<std::size_t>(a)]);
      }
    }
  }
  return frame;
}

}  // namespace m2ai::core
