// Configuration types shared across the M2AI pipeline, model factory, and
// experiment harness. Defaults reproduce the paper's default setup: 2
// persons x 3 tags, 4 antennas, laboratory environment, phase calibration
// on, full M2AI features, CNN+LSTM network.
#pragma once

#include <cstdint>
#include <string>

#include "dsp/covariance.hpp"
#include "rf/constants.hpp"

namespace m2ai::core {

// Which preprocessed inputs feed the learning engine (Fig. 16 ablation).
enum class FeatureMode {
  kM2AI,       // pseudospectrum + periodogram (the paper's design)
  kMusicOnly,  // pseudospectrum only
  kFftOnly,    // periodogram only
  kPhaseOnly,  // calibrated per-antenna phases, no decoupling
  kRssiOnly,   // per-antenna RSSI only
};
const char* feature_mode_name(FeatureMode mode);

// Network architecture (Fig. 17 ablation).
enum class NetworkArch {
  kCnnLstm,   // the paper's integrated design
  kCnnOnly,   // spatial features, per-frame softmax, no temporal memory
  kLstmOnly,  // raw frames straight into the LSTM, no spatial extraction
};
const char* network_arch_name(NetworkArch arch);

enum class EnvironmentKind { kLaboratory, kHall };
const char* environment_name(EnvironmentKind kind);

struct PipelineConfig {
  // Scene ------------------------------------------------------------
  EnvironmentKind environment = EnvironmentKind::kLaboratory;
  int num_persons = 2;
  int tags_per_person = 3;
  double distance_m = 4.0;  // persons-to-array nominal distance

  // Reader ------------------------------------------------------------
  int num_antennas = 4;
  bool frequency_hopping = true;

  // Preprocessing ------------------------------------------------------
  bool phase_calibration = true;
  double bootstrap_sec = 20.0;  // stationary interval for Eq. 1 medians
  FeatureMode feature_mode = FeatureMode::kM2AI;
  dsp::CovarianceOptions covariance = {};  // FB averaging + smoothing flags
  // Signal-subspace dimension for MUSIC; <= 0 selects automatically from the
  // eigenvalue profile per window.
  int music_num_sources = 2;

  // Framing --------------------------------------------------------------
  double window_sec = 0.4;      // one spectrum frame per window
  int windows_per_sample = 16;  // sequence length T fed to the LSTM

  double sample_duration_sec() const { return window_sec * windows_per_sample; }
};

struct ModelConfig {
  NetworkArch arch = NetworkArch::kCnnLstm;
  int lstm_hidden = 32;  // paper: two stacked LSTM layers, 32 cells each
  int merge_features = 48;
  double dropout = 0.25;  // on the merged per-frame features
  std::uint64_t seed = 7;
};

struct TrainConfig {
  int epochs = 40;
  int batch_size = 8;
  double learning_rate = 2e-3;
  double weight_decay = 1e-4;
  double clip_norm = 5.0;  // paper: "we scale the norm of the gradient"
  bool use_adam = true;    // false: plain SGD + momentum as in the paper
  // LR is multiplied by 0.3 at 60% and 85% of the epoch budget.
  bool lr_schedule = true;
  // Temporal-crop augmentation: train on random contiguous crops of this
  // many frames (0 disables). Evaluation always sees full sequences. This
  // teaches invariance to where in its cycle an activity is caught.
  int crop_frames = 0;
  std::uint64_t seed = 11;
  bool verbose = false;
};

}  // namespace m2ai::core
