#include "core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "util/log.hpp"

namespace m2ai::core {

Trainer::Trainer(M2AINetwork& network, TrainConfig config)
    : network_(network),
      config_(config),
      rng_(config.seed),
      dropout_rng_(config.seed ^ 0xd40b0075ULL) {
  if (config_.use_adam) {
    optimizer_ = std::make_unique<nn::Adam>(config_.learning_rate, 0.9, 0.999, 1e-8,
                                            config_.weight_decay);
  } else {
    optimizer_ = std::make_unique<nn::Sgd>(config_.learning_rate, /*momentum=*/0.9,
                                           config_.weight_decay);
  }
}

void Trainer::sync_replicas(int workers) {
  while (static_cast<int>(replicas_.size()) < workers) {
    replicas_.push_back(network_.clone());
  }
  const std::vector<nn::Param*> master = network_.params();
  for (int w = 0; w < workers; ++w) {
    const std::vector<nn::Param*> dst = replicas_[static_cast<std::size_t>(w)]->params();
    for (std::size_t p = 0; p < master.size(); ++p) {
      dst[p]->value = master[p]->value;
    }
  }
}

void Trainer::process_batch(const std::vector<const Sample*>& batch,
                            const std::vector<util::Rng>& dropout_rngs,
                            const std::vector<nn::Param*>& master, EpochStats& stats,
                            std::size_t& correct, int& num_steps) {
  const std::size_t m = batch.size();
  if (m == 0) return;

  obs::ScopedSpan batch_span("train_batch");
  batch_span.arg("batch", batch_counter_++);
  batch_span.arg("size", static_cast<std::int64_t>(m));

  // The worker count may vary with the thread setting, but chunk boundaries
  // only decide WHICH replica computes a sample — every sample's gradient is
  // a pure function of (synced weights, sample, its pre-forked RNG), so the
  // values are thread-count-invariant.
  const int workers = std::max(1, par::chunk_workers(m));
  sync_replicas(workers);

  std::vector<double> losses(m, 0.0);
  std::vector<int> predicted(m, 0);
  std::vector<std::vector<nn::Tensor>> grads(m);
  std::vector<double> busy(static_cast<std::size_t>(workers), 0.0);

  par::parallel_chunks(m, workers, [&](int w, std::size_t begin, std::size_t end) {
    obs::ScopedSpan chunk_span("train_chunk");
    chunk_span.arg("worker", w);
    chunk_span.arg("samples", static_cast<std::int64_t>(end - begin));
    const auto start = std::chrono::steady_clock::now();
    M2AINetwork& replica = *replicas_[static_cast<std::size_t>(w)];
    const std::vector<nn::Param*> rparams = replica.params();
    for (std::size_t i = begin; i < end; ++i) {
      nn::zero_gradients(rparams);
      replica.reseed_dropout(dropout_rngs[i]);
      const auto step = replica.train_step(*batch[i]);
      losses[i] = step.loss;
      predicted[i] = step.predicted;
      std::vector<nn::Tensor> g;
      g.reserve(rparams.size());
      for (const nn::Param* p : rparams) g.push_back(p->grad);
      grads[i] = std::move(g);
    }
    busy[static_cast<std::size_t>(w)] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  });

  // Deterministic reduction: per-sample gradients fold into the master in
  // strict sample-index order, never in completion order.
  nn::zero_gradients(master);
  par::reduce_in_order(grads, [&](std::size_t, std::vector<nn::Tensor>& g) {
    for (std::size_t p = 0; p < master.size(); ++p) {
      master[p]->grad.add_scaled(g[p], 1.0f);
    }
  });

  for (std::size_t i = 0; i < m; ++i) {
    stats.mean_loss += losses[i];
    if (predicted[i] == batch[i]->label) ++correct;
  }

  // Normalizing by the number of samples actually in the batch makes the
  // step size batch-size-invariant and keeps the final partial batch from
  // stepping with a systematically smaller (or, unnormalized, larger)
  // gradient.
  const float inv = 1.0f / static_cast<float>(m);
  for (nn::Param* p : master) p->grad.scale(inv);
  stats.mean_grad_norm += nn::clip_gradient_norm(master, config_.clip_norm);
  ++num_steps;
  optimizer_->step(master);

  stats.replicas = std::max(stats.replicas, workers);
  for (int w = 0; w < workers; ++w) {
    stats.replica_busy_seconds += busy[static_cast<std::size_t>(w)];
  }
  if (obs::enabled()) {
    for (int w = 0; w < workers; ++w) {
      obs::registry()
          .histogram("train.replica_batch_seconds")
          .record(busy[static_cast<std::size_t>(w)]);
    }
  }
}

EpochStats Trainer::run_epoch(const std::vector<Sample>& train) {
  obs::ScopedSpan span("train_epoch");
  span.arg("epoch", current_epoch_);
  batch_counter_ = 0;
  const std::vector<nn::Param*> params = network_.params();
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order);

  EpochStats stats;
  std::size_t correct = 0;
  int num_steps = 0;

  // Batch staging. Crop offsets and per-sample dropout streams are drawn
  // serially in shuffled-sample order BEFORE the fan-out (the same
  // discipline as par::parallel_map_seeded), so the randomness a sample
  // sees never depends on scheduling. `crops` is reserved once: batches
  // never exceed batch_size, so pointers into it stay stable.
  const std::size_t batch_capacity =
      static_cast<std::size_t>(std::max(config_.batch_size, 1));
  std::vector<Sample> crops;
  crops.reserve(batch_capacity);
  std::vector<const Sample*> batch;
  std::vector<util::Rng> batch_dropout;
  batch.reserve(batch_capacity);
  batch_dropout.reserve(batch_capacity);

  auto flush = [&] {
    process_batch(batch, batch_dropout, params, stats, correct, num_steps);
    batch.clear();
    batch_dropout.clear();
    crops.clear();
  };

  for (std::size_t idx : order) {
    const Sample* sample = &train[idx];
    const std::size_t crop = static_cast<std::size_t>(config_.crop_frames);
    if (crop > 0 && sample->frames.size() > crop) {
      const std::size_t start = static_cast<std::size_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(sample->frames.size() - crop + 1)));
      Sample cropped;
      cropped.label = sample->label;
      cropped.activity_id = sample->activity_id;
      cropped.frames.assign(sample->frames.begin() + static_cast<std::ptrdiff_t>(start),
                            sample->frames.begin() + static_cast<std::ptrdiff_t>(start + crop));
      crops.push_back(std::move(cropped));
      sample = &crops.back();
    }
    batch.push_back(sample);
    batch_dropout.push_back(dropout_rng_.fork());
    if (batch.size() == batch_capacity) flush();
  }
  flush();

  stats.mean_grad_norm /= static_cast<double>(std::max(num_steps, 1));
  stats.mean_loss /= static_cast<double>(std::max<std::size_t>(train.size(), 1));
  stats.train_accuracy =
      static_cast<double>(correct) / static_cast<double>(std::max<std::size_t>(train.size(), 1));
  return stats;
}

EpochStats Trainer::fit(const std::vector<Sample>& train) {
  EpochStats stats;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.lr_schedule) {
      // Integer-math breakpoints truncate toward zero, so tiny epoch
      // budgets (epochs=1) would otherwise put even the first epoch in the
      // decayed regime; clamp both breakpoints to >= 1 so epoch 0 always
      // trains at the full learning rate.
      const int decay_85 = std::max(1, config_.epochs * 85 / 100);
      const int decay_60 = std::max(1, config_.epochs * 60 / 100);
      double lr = config_.learning_rate;
      if (epoch >= decay_85) {
        lr *= 0.09;
      } else if (epoch >= decay_60) {
        lr *= 0.3;
      }
      optimizer_->set_lr(lr);
    }
    const auto epoch_start = std::chrono::steady_clock::now();
    current_epoch_ = epoch + 1;
    stats = run_epoch(train);
    current_epoch_ = 0;
    const double epoch_seconds = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - epoch_start)
                                     .count();
    obs::training().record_epoch({epoch + 1, stats.mean_loss, stats.train_accuracy,
                                  stats.mean_grad_norm, optimizer_->lr(),
                                  epoch_seconds, stats.replicas,
                                  stats.replica_busy_seconds});
    if (config_.verbose) {
      util::log_info() << "epoch " << (epoch + 1) << "/" << config_.epochs
                       << " loss=" << stats.mean_loss
                       << " train_acc=" << stats.train_accuracy
                       << " replicas=" << stats.replicas;
    }
  }
  return stats;
}

}  // namespace m2ai::core
