#include "core/trainer.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "nn/optimizer.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace m2ai::core {

Trainer::Trainer(M2AINetwork& network, TrainConfig config)
    : network_(network), config_(config), rng_(config.seed) {
  if (config_.use_adam) {
    optimizer_ = std::make_unique<nn::Adam>(config_.learning_rate, 0.9, 0.999, 1e-8,
                                            config_.weight_decay);
  } else {
    optimizer_ = std::make_unique<nn::Sgd>(config_.learning_rate, /*momentum=*/0.9,
                                           config_.weight_decay);
  }
}

EpochStats Trainer::run_epoch(const std::vector<Sample>& train) {
  M2AI_OBS_SPAN("train_epoch");
  const auto params = network_.params();
  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order);

  EpochStats stats;
  std::size_t correct = 0;
  int in_batch = 0;
  int num_steps = 0;
  Sample cropped;
  // Gradients accumulate across the batch inside train_step; normalizing by
  // the number of samples actually in the batch makes the step size
  // batch-size-invariant and keeps the final partial batch from stepping
  // with a systematically smaller (or, unnormalized, larger) gradient.
  auto step_batch = [&](int batch_samples) {
    const float inv = 1.0f / static_cast<float>(batch_samples);
    for (nn::Param* p : params) p->grad.scale(inv);
    stats.mean_grad_norm += nn::clip_gradient_norm(params, config_.clip_norm);
    ++num_steps;
    optimizer_->step(params);
  };
  for (std::size_t idx : order) {
    const Sample* sample = &train[idx];
    const std::size_t crop = static_cast<std::size_t>(config_.crop_frames);
    if (crop > 0 && sample->frames.size() > crop) {
      const std::size_t start = static_cast<std::size_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(sample->frames.size() - crop + 1)));
      cropped.label = sample->label;
      cropped.activity_id = sample->activity_id;
      cropped.frames.assign(sample->frames.begin() + static_cast<std::ptrdiff_t>(start),
                            sample->frames.begin() + static_cast<std::ptrdiff_t>(start + crop));
      sample = &cropped;
    }
    const auto step = network_.train_step(*sample);
    stats.mean_loss += step.loss;
    if (step.predicted == sample->label) ++correct;
    if (++in_batch == config_.batch_size) {
      step_batch(in_batch);
      in_batch = 0;
    }
  }
  if (in_batch > 0) step_batch(in_batch);
  stats.mean_grad_norm /= static_cast<double>(std::max(num_steps, 1));
  stats.mean_loss /= static_cast<double>(std::max<std::size_t>(train.size(), 1));
  stats.train_accuracy =
      static_cast<double>(correct) / static_cast<double>(std::max<std::size_t>(train.size(), 1));
  return stats;
}

EpochStats Trainer::fit(const std::vector<Sample>& train) {
  EpochStats stats;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.lr_schedule) {
      // Integer-math breakpoints truncate toward zero, so tiny epoch
      // budgets (epochs=1) would otherwise put even the first epoch in the
      // decayed regime; clamp both breakpoints to >= 1 so epoch 0 always
      // trains at the full learning rate.
      const int decay_85 = std::max(1, config_.epochs * 85 / 100);
      const int decay_60 = std::max(1, config_.epochs * 60 / 100);
      double lr = config_.learning_rate;
      if (epoch >= decay_85) {
        lr *= 0.09;
      } else if (epoch >= decay_60) {
        lr *= 0.3;
      }
      optimizer_->set_lr(lr);
    }
    const auto epoch_start = std::chrono::steady_clock::now();
    stats = run_epoch(train);
    const double epoch_seconds = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - epoch_start)
                                     .count();
    obs::training().record_epoch({epoch + 1, stats.mean_loss, stats.train_accuracy,
                                  stats.mean_grad_norm, optimizer_->lr(),
                                  epoch_seconds});
    if (config_.verbose) {
      util::log_info() << "epoch " << (epoch + 1) << "/" << config_.epochs
                       << " loss=" << stats.mean_loss
                       << " train_acc=" << stats.train_accuracy;
    }
  }
  return stats;
}

}  // namespace m2ai::core
