#include "core/features.hpp"

#include <algorithm>

namespace m2ai::core {

std::vector<float> frame_feature_vector(const SpectrumFrame& frame, int pool_deg) {
  std::vector<float> out;
  if (frame.has_pseudo) {
    const int tags = frame.pseudo.dim(0);
    const int bins = frame.pseudo.dim(1);
    const int pooled = (bins + pool_deg - 1) / pool_deg;
    for (int t = 0; t < tags; ++t) {
      for (int p = 0; p < pooled; ++p) {
        float mx = 0.0f;
        for (int b = p * pool_deg; b < std::min(bins, (p + 1) * pool_deg); ++b) {
          mx = std::max(mx, frame.pseudo.at(t, b));
        }
        out.push_back(mx);
      }
    }
  }
  if (frame.has_aux) {
    for (std::size_t i = 0; i < frame.aux.size(); ++i) out.push_back(frame.aux[i]);
  }
  return out;
}

ml::Dataset frames_to_dataset(const std::vector<Sample>& samples, int num_classes,
                              int frame_stride, std::size_t cap, util::Rng& rng) {
  ml::Dataset data;
  data.num_classes = num_classes;
  for (const Sample& sample : samples) {
    for (std::size_t t = 0; t < sample.frames.size();
         t += static_cast<std::size_t>(std::max(frame_stride, 1))) {
      data.add(frame_feature_vector(sample.frames[t]), sample.label);
    }
  }
  if (data.size() > cap) data = data.subsample(cap, rng);
  return data;
}

double sequence_accuracy(const ml::Classifier& classifier,
                         const ml::StandardScaler& scaler,
                         const std::vector<Sample>& test, int num_classes,
                         int pool_deg) {
  if (test.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Sample& sample : test) {
    std::vector<int> votes;
    votes.reserve(sample.frames.size());
    for (const SpectrumFrame& frame : sample.frames) {
      votes.push_back(
          classifier.predict(scaler.transform(frame_feature_vector(frame, pool_deg))));
    }
    if (ml::majority_vote(votes, num_classes) == sample.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

}  // namespace m2ai::core
