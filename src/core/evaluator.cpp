#include "core/evaluator.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "util/table.hpp"

namespace m2ai::core {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<std::size_t>(num_classes) * num_classes, 0) {}

void ConfusionMatrix::add(int actual, int predicted) {
  if (actual < 0 || actual >= num_classes_ || predicted < 0 ||
      predicted >= num_classes_) {
    throw std::out_of_range("ConfusionMatrix::add");
  }
  ++counts_[static_cast<std::size_t>(actual) * num_classes_ + predicted];
  ++total_;
}

int ConfusionMatrix::count(int actual, int predicted) const {
  return counts_[static_cast<std::size_t>(actual) * num_classes_ + predicted];
}

double ConfusionMatrix::rate(int actual, int predicted) const {
  int row = 0;
  for (int p = 0; p < num_classes_; ++p) row += count(actual, p);
  if (row == 0) return 0.0;
  return static_cast<double>(count(actual, predicted)) / static_cast<double>(row);
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  int diag = 0;
  for (int c = 0; c < num_classes_; ++c) diag += count(c, c);
  return static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::class_accuracy(int actual) const { return rate(actual, actual); }

double ConfusionMatrix::min_class_accuracy() const {
  double mn = 1.0;
  for (int c = 0; c < num_classes_; ++c) mn = std::min(mn, class_accuracy(c));
  return mn;
}

std::string ConfusionMatrix::to_string(const std::vector<std::string>& labels) const {
  std::vector<std::string> header;
  header.push_back("actual\\pred");
  for (int c = 0; c < num_classes_; ++c) {
    header.push_back(c < static_cast<int>(labels.size())
                         ? labels[static_cast<std::size_t>(c)]
                         : std::to_string(c));
  }
  util::Table table(header);
  for (int a = 0; a < num_classes_; ++a) {
    std::vector<std::string> row;
    row.push_back(a < static_cast<int>(labels.size())
                      ? labels[static_cast<std::size_t>(a)]
                      : std::to_string(a));
    for (int p = 0; p < num_classes_; ++p) {
      const double r = rate(a, p);
      row.push_back(r == 0.0 ? "0" : util::Table::pct(r, 0));
    }
    table.add_row(std::move(row));
  }
  return table.to_string();
}

ConfusionMatrix evaluate(M2AINetwork& network, const std::vector<Sample>& test) {
  obs::ScopedSpan span("evaluate");
  span.arg("samples", static_cast<std::int64_t>(test.size()));
  int num_classes = 1;
  for (const Sample& s : test) num_classes = std::max(num_classes, s.label + 1);
  ConfusionMatrix cm(num_classes);

  // Forward passes mutate per-layer caches, so the fan-out works on one
  // clone per worker over a contiguous slice of the test set. Predictions
  // land in index-addressed slots and are merged in order, so the matrix is
  // identical at any thread count (and to the serial loop).
  const std::size_t n = test.size();
  const int workers = par::chunk_workers(n);
  std::vector<int> predicted(n, 0);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) predicted[i] = network.predict(test[i].frames);
  } else {
    std::vector<std::unique_ptr<M2AINetwork>> clones;
    clones.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) clones.push_back(network.clone());
    par::parallel_chunks(n, workers, [&](int w, std::size_t begin, std::size_t end) {
      obs::ScopedSpan chunk_span("evaluate_chunk");
      chunk_span.arg("worker", w);
      chunk_span.arg("samples", static_cast<std::int64_t>(end - begin));
      for (std::size_t i = begin; i < end; ++i) {
        predicted[i] = clones[static_cast<std::size_t>(w)]->predict(test[i].frames);
      }
    });
  }
  for (std::size_t i = 0; i < n; ++i) cm.add(test[i].label, predicted[i]);
  return cm;
}

}  // namespace m2ai::core
