// Adapters that feed the conventional (Fig. 9) classifiers.
//
// Conventional classifiers see individual spectrum frames, not sequences —
// exactly the paper's framing of why they underperform ("each individual
// spectrum frame forms only a small part of the human activities"). A
// sequence is scored by majority vote over its per-frame predictions.
#pragma once

#include "core/frames.hpp"
#include "ml/dataset.hpp"

namespace m2ai::core {

// Flatten one frame into a feature vector. The 180-bin pseudospectrum is
// max-pooled into `pool_deg`-degree bins to keep kernel methods tractable.
std::vector<float> frame_feature_vector(const SpectrumFrame& frame, int pool_deg = 5);

// Per-frame dataset over all samples, keeping every `frame_stride`-th frame
// and capping the total via reservoir-free subsampling.
ml::Dataset frames_to_dataset(const std::vector<Sample>& samples, int num_classes,
                              int frame_stride, std::size_t cap, util::Rng& rng);

// Sequence-level accuracy of a fitted frame classifier via majority vote.
double sequence_accuracy(const ml::Classifier& classifier,
                         const ml::StandardScaler& scaler,
                         const std::vector<Sample>& test, int num_classes,
                         int pool_deg = 5);

}  // namespace m2ai::core
