// Eigendecomposition of complex Hermitian matrices via the cyclic Jacobi
// method. This is the numerical core of the MUSIC estimator (Eq. 11 of the
// paper): the sample covariance of the antenna-array signal is Hermitian and
// tiny (N = number of antennas <= 8), for which Jacobi is simple, accurate,
// and plenty fast.
#pragma once

#include "dsp/cmatrix.hpp"

namespace m2ai::dsp {

struct EigResult {
  // Eigenvalues sorted descending (real; the input is Hermitian).
  std::vector<double> values;
  // Column k of `vectors` is the unit eigenvector for values[k].
  CMatrix vectors;
};

// Decompose Hermitian `a`. Throws if `a` is not square. Symmetry is enforced
// by averaging a with a^H before iterating, so mild numerical asymmetry in a
// sample covariance is tolerated. 4x4 inputs (the default antenna count)
// dispatch to a stack-array kernel (kern::eig_hermitian4) whose results are
// bitwise-identical to the generic path below.
EigResult eig_hermitian(const CMatrix& a, double tol = 1e-12, int max_sweeps = 64);

// The generic any-size Jacobi path, kept public as the reference the n == 4
// kernel is regression-tested against.
EigResult eig_hermitian_generic(const CMatrix& a, double tol = 1e-12,
                                int max_sweeps = 64);

}  // namespace m2ai::dsp
