// Phase arithmetic: principal values, unwrapping, and the pi-ambiguity
// cancellation used before AoA estimation.
//
// The Impinj reader reports either the true phase phi or phi + pi at random
// (Sec. V of the paper). Doubling the phase modulo 2*pi maps both cases to
// the same value (2*phi and 2*phi + 2*pi coincide), which removes the
// ambiguity at the cost of doubling the effective array separation; the
// physical spacing d = lambda/8 was chosen by the authors precisely so that
// the doubled round-trip aperture stays below lambda/2 and AoA remains
// unambiguous over [0, 180] degrees.
#pragma once

#include <vector>

namespace m2ai::dsp {

// Wrap into (-pi, pi].
double wrap_pi(double phase_rad);

// Wrap into [0, 2*pi).
double wrap_2pi(double phase_rad);

// Doubled phase, wrapped to [0, 2*pi): cancels a +pi ambiguity.
double double_phase(double phase_rad);

// Classic 1-D unwrap: adds multiples of 2*pi so successive samples differ by
// less than pi.
std::vector<double> unwrap(const std::vector<double>& wrapped);

// Circular mean of a set of phases (radians).
double circular_mean(const std::vector<double>& phases);

// Circular median: the phase minimizing the summed absolute circular
// distance; robust to outliers, used by the calibration bootstrap.
double circular_median(const std::vector<double>& phases);

// Absolute circular distance between two phases, in [0, pi].
double circular_distance(double a, double b);

}  // namespace m2ai::dsp
