#include "dsp/phase.hpp"

#include <cmath>

namespace m2ai::dsp {

double wrap_pi(double phase_rad) {
  double w = std::fmod(phase_rad + M_PI, 2.0 * M_PI);
  if (w < 0.0) w += 2.0 * M_PI;
  return w - M_PI;
}

double wrap_2pi(double phase_rad) {
  double w = std::fmod(phase_rad, 2.0 * M_PI);
  if (w < 0.0) w += 2.0 * M_PI;
  return w;
}

double double_phase(double phase_rad) { return wrap_2pi(2.0 * phase_rad); }

std::vector<double> unwrap(const std::vector<double>& wrapped) {
  std::vector<double> out;
  out.reserve(wrapped.size());
  double offset = 0.0;
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    if (i > 0) {
      const double d = wrapped[i] - wrapped[i - 1];
      if (d > M_PI) offset -= 2.0 * M_PI;
      else if (d < -M_PI) offset += 2.0 * M_PI;
    }
    out.push_back(wrapped[i] + offset);
  }
  return out;
}

double circular_mean(const std::vector<double>& phases) {
  double s = 0.0, c = 0.0;
  for (double p : phases) {
    s += std::sin(p);
    c += std::cos(p);
  }
  return std::atan2(s, c);
}

double circular_distance(double a, double b) { return std::abs(wrap_pi(a - b)); }

double circular_median(const std::vector<double>& phases) {
  if (phases.empty()) return 0.0;
  // O(n^2) candidate scan is fine at calibration-bootstrap sizes (tens of
  // samples per channel).
  double best = phases.front();
  double best_cost = -1.0;
  for (double cand : phases) {
    double cost = 0.0;
    for (double p : phases) cost += circular_distance(cand, p);
    if (best_cost < 0.0 || cost < best_cost) {
      best_cost = cost;
      best = cand;
    }
  }
  return best;
}

}  // namespace m2ai::dsp
