// MUSIC pseudospectrum estimation (Sec. III-C.1, Eqs. 7-12 of the paper).
//
// Given the spatial covariance of the calibrated antenna-array signal, the
// eigenvectors split into a signal subspace (largest M eigenvalues) and a
// noise subspace; the pseudospectrum 1 / (a^H(theta) Un Un^H a(theta)) peaks
// at the arrival angles of the (multipath) rays.
#pragma once

#include <memory>
#include <vector>

#include "dsp/cmatrix.hpp"
#include "dsp/covariance.hpp"

namespace m2ai::dsp {

// Steering vectors per angle bin for one (aperture, separation, wavelength,
// grid) tuple. Tables are immutable and shared between estimators.
using SteeringTable = std::vector<std::vector<cdouble>>;

// Process-wide steering-table cache: estimators for the same array geometry
// and angle grid share one precomputed matrix instead of rebuilding it per
// pipeline sample. Thread-safe; values are bitwise-identical to a direct
// per-bin rf::steering_vector loop.
std::shared_ptr<const SteeringTable> shared_steering_table(
    int aperture, double effective_separation_m, double wavelength_m,
    int num_angle_bins);

struct MusicOptions {
  int num_antennas = 4;
  double effective_separation_m = 0.16;  // 4 * physical d (see rf/steering.hpp)
  double wavelength_m = 0.3293;          // at the common frequency
  int num_angle_bins = 180;              // theta = 0..179 degrees
  // Number of signal-subspace dimensions. <= 0 selects automatically from
  // the eigenvalue profile (threshold relative to the largest eigenvalue).
  int num_sources = -1;
  double source_eigenvalue_ratio = 0.08;  // auto-selection threshold
  CovarianceOptions covariance;
};

struct MusicResult {
  // Pseudospectrum over the angle grid, normalized to a unit maximum.
  std::vector<double> spectrum;
  // Number of signal dimensions used.
  int num_sources = 0;
  // Eigenvalues of the covariance, descending.
  std::vector<double> eigenvalues;
};

// Index (degrees) of local maxima of a spectrum, strongest first, at most
// `max_peaks` and only peaks above `min_height` * global max (the height
// filter is skipped when the global max is non-positive). A flat plateau
// counts as a single peak, reported at its midpoint; array edges can peak.
std::vector<int> find_peaks(const std::vector<double>& spectrum, int max_peaks,
                            double min_height = 0.05);

class MusicEstimator {
 public:
  explicit MusicEstimator(MusicOptions options);

  // Full pipeline: snapshots -> covariance -> subspace -> pseudospectrum.
  MusicResult estimate(const std::vector<std::vector<cdouble>>& snapshots) const;

  // Pseudospectrum from an existing covariance matrix.
  MusicResult estimate_from_covariance(const CMatrix& r) const;

  const MusicOptions& options() const { return options_; }

  // The shared steering table this estimator resolves angles against (for
  // the subarray size actually used after smoothing). Exposed so tests can
  // verify estimators with equal geometry share one table.
  const std::shared_ptr<const SteeringTable>& steering_table() const {
    return steering_;
  }

 private:
  MusicOptions options_;
  // Precomputed steering vectors per angle bin, shared across estimators
  // with the same geometry via the process-wide cache.
  std::shared_ptr<const SteeringTable> steering_;
  // The same table packed row-major (bin-major, element-contiguous) for the
  // fused pseudospectrum scan. Built once per estimator; immutable after
  // construction, so estimate() stays safe to call from parallel windows.
  std::vector<cdouble> steering_flat_;
};

}  // namespace m2ai::dsp
