// Phase calibration across frequency-hopping channels (Sec. III-A, Eq. 1).
//
// Each hop channel f_j induces a constant phase offset (reader oscillator +
// tag antenna frequency response; linear in frequency, Fig. 3). During a
// short stationary bootstrap the calibrator records the circular median
// phase per channel, then maps every subsequent reading to the common
// channel f_r:  phi(t) = phi_j(t) - median_j + median_r.
//
// The offsets differ per tag AND per reader antenna, so one table is kept
// per (tag, antenna) pair. The calibrator is agnostic to whether the caller
// feeds raw or doubled phases; the M2AI pipeline feeds doubled phases so the
// reader's pi ambiguity is already cancelled (see dsp/phase.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "rf/constants.hpp"

namespace m2ai::dsp {

// Offset table for one (tag, antenna) pair.
class CalibrationTable {
 public:
  explicit CalibrationTable(int num_channels = rf::kNumChannels);

  // Record one bootstrap sample (stationary tag).
  void add_sample(int channel, double phase_rad);

  // Freeze medians. `common_channel` is the reference f_r. Channels with no
  // bootstrap samples fall back to a linear fit over observed channels
  // (phase-vs-frequency is linear, Fig. 3), or to a zero offset if fewer
  // than two channels were seen.
  void finalize(int common_channel);

  bool finalized() const { return finalized_; }
  std::size_t sample_count() const { return total_samples_; }

  // Eq. 1. Requires finalize() first.
  double apply(int channel, double phase_rad) const;

  // The per-channel offset (median_j - median_r) after finalize; useful for
  // inspecting Fig. 3 style linearity.
  double offset(int channel) const;

 private:
  std::vector<std::vector<double>> samples_;  // per channel
  std::vector<double> offsets_;               // median_j - median_r, unwrapped
  std::size_t total_samples_ = 0;
  bool finalized_ = false;
};

// Registry of tables keyed by (tag id, antenna index).
class PhaseCalibrator {
 public:
  explicit PhaseCalibrator(int common_channel = -1);

  void add_sample(std::uint32_t tag_id, int antenna, int channel, double phase_rad);
  void finalize();
  bool finalized() const { return finalized_; }

  // Calibrated phase; if no table exists for the pair (tag never seen during
  // bootstrap), the raw phase is returned unchanged.
  double apply(std::uint32_t tag_id, int antenna, int channel, double phase_rad) const;

  const CalibrationTable* table(std::uint32_t tag_id, int antenna) const;

 private:
  int common_channel_;
  bool finalized_ = false;
  std::map<std::pair<std::uint32_t, int>, CalibrationTable> tables_;
};

}  // namespace m2ai::dsp
