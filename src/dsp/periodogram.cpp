#include "dsp/periodogram.hpp"

#include <stdexcept>

#include "dsp/fft.hpp"
#include "obs/trace.hpp"

namespace m2ai::dsp {

std::vector<double> periodogram(const std::vector<cdouble>& snapshot) {
  const std::size_t n = snapshot.size();
  if (n == 0) throw std::invalid_argument("periodogram: empty snapshot");
  const std::vector<cdouble> spec = fft(snapshot, false);
  std::vector<double> p(n);
  for (std::size_t k = 0; k < n; ++k) {
    p[k] = std::norm(spec[k]) / static_cast<double>(n);
  }
  return p;
}

std::vector<double> averaged_periodogram(
    const std::vector<std::vector<cdouble>>& snapshots) {
  M2AI_OBS_SPAN("periodogram");
  if (snapshots.empty()) {
    throw std::invalid_argument("averaged_periodogram: no snapshots");
  }
  const std::size_t n = snapshots.front().size();
  if (n == 0) throw std::invalid_argument("periodogram: empty snapshot");
  // One plan lookup per window instead of a twiddle-cache mutex (and, for
  // non-power-of-two sizes, a chirp + filter rebuild) per snapshot; the
  // transform itself is bitwise-identical to periodogram()'s fft() call.
  const std::shared_ptr<const FftPlan> plan = shared_fft_plan(n);
  std::vector<double> acc(n, 0.0);
  std::vector<cdouble> spec(n);
  std::vector<cdouble> scratch;
  for (const auto& snap : snapshots) {
    if (snap.size() != n) {
      throw std::invalid_argument("averaged_periodogram: ragged snapshots");
    }
    plan->transform(snap.data(), spec.data(), false, scratch);
    for (std::size_t k = 0; k < n; ++k) {
      acc[k] += std::norm(spec[k]) / static_cast<double>(n);
    }
  }
  const double inv = 1.0 / static_cast<double>(snapshots.size());
  for (double& v : acc) v *= inv;
  return acc;
}

std::vector<double> time_periodogram(const std::vector<double>& series) {
  const std::size_t n = series.size();
  if (n == 0) throw std::invalid_argument("time_periodogram: empty series");
  std::vector<cdouble> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = cdouble{series[i], 0.0};
  const std::vector<cdouble> spec = fft(x, false);
  const std::size_t bins = n / 2 + 1;
  std::vector<double> p(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    p[k] = std::norm(spec[k]) / static_cast<double>(n);
  }
  return p;
}

}  // namespace m2ai::dsp
