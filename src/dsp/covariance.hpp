// Spatial covariance estimation for the antenna array (Eq. 10 of the paper),
// with the two standard fixes for coherent multipath:
//
//  * forward-backward averaging — exploits the ULA's persymmetry to double
//    the effective snapshot count and partially decorrelate coherent rays;
//  * spatial smoothing — averages covariances of overlapping subarrays,
//    restoring rank when several paths of the SAME backscatter signal (fully
//    coherent) impinge on the array.
//
// Both are config flags so their contribution can be ablated (DESIGN.md §5).
#pragma once

#include "dsp/cmatrix.hpp"

namespace m2ai::dsp {

struct CovarianceOptions {
  bool forward_backward = true;
  // Subarray length for spatial smoothing; 0 disables smoothing and keeps
  // the full aperture. Must be <= number of antennas.
  int smoothing_subarray = 0;
  // Diagonal loading added to keep the matrix well conditioned (relative to
  // the average diagonal power).
  double diagonal_loading = 1e-6;
};

// Sample covariance R = E{ r r^H } from `snapshots`, each an N-element
// antenna vector. Output is N x N, or L x L when smoothing with subarray L.
CMatrix sample_covariance(const std::vector<std::vector<cdouble>>& snapshots,
                          const CovarianceOptions& options = {});

}  // namespace m2ai::dsp
