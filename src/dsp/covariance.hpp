// Spatial covariance estimation for the antenna array (Eq. 10 of the paper),
// with the two standard fixes for coherent multipath:
//
//  * forward-backward averaging — exploits the ULA's persymmetry to double
//    the effective snapshot count and partially decorrelate coherent rays;
//  * spatial smoothing — averages covariances of overlapping subarrays,
//    restoring rank when several paths of the SAME backscatter signal (fully
//    coherent) impinge on the array.
//
// Both are config flags so their contribution can be ablated (DESIGN.md §5).
#pragma once

#include "dsp/cmatrix.hpp"

namespace m2ai::dsp {

struct CovarianceOptions {
  bool forward_backward = true;
  // Subarray length for spatial smoothing; 0 disables smoothing and keeps
  // the full aperture. Must be <= number of antennas.
  int smoothing_subarray = 0;
  // Diagonal loading added to keep the matrix well conditioned (relative to
  // the average diagonal power).
  double diagonal_loading = 1e-6;
};

// Sample covariance R = E{ r r^H } from `snapshots`, each an N-element
// antenna vector. Output is N x N, or L x L when smoothing with subarray L.
CMatrix sample_covariance(const std::vector<std::vector<cdouble>>& snapshots,
                          const CovarianceOptions& options = {});

// Rank-1 outer-product accumulation: sum += x x^H, element-wise in row-major
// order. sample_covariance() accumulates its snapshot sum through this exact
// routine, so a streaming consumer that applies it per arriving snapshot
// (serve::IncrementalCovariance) holds bitwise the same sum as a batch
// recompute over the same snapshots in the same order.
void accumulate_outer(CMatrix& sum, const std::vector<cdouble>& x);

// Rank-1 downdate: sum -= x x^H. Sliding-window eviction. Subtraction does
// not round-trip addition exactly, so a downdated sum drifts from the batch
// sum by accumulated rounding — callers resynchronize with a periodic full
// recompute (see serve::IncrementalCovariance::resync).
void downdate_outer(CMatrix& sum, const std::vector<cdouble>& x);

// Derives the final covariance (subarray smoothing, forward-backward
// averaging, diagonal loading) from the N x N outer-product sum over `count`
// snapshots. sample_covariance(snapshots, o) is exactly
// finalize_covariance(sum_of_outer_products, snapshots.size(), o) — the
// subarray sums the batch path used are element-wise slices of the full sum,
// added in the same order, so the split is bitwise-neutral.
CMatrix finalize_covariance(const CMatrix& sum, std::size_t count,
                            const CovarianceOptions& options = {});

}  // namespace m2ai::dsp
