// Periodogram power-spectral-density estimation (Sec. III-C.2, Eqs. 13-16).
//
// The paper complements the MUSIC pseudospectrum (which has sharp angular
// resolution but discards absolute power) with the classical periodogram of
// the antenna-aperture samples, which retains the true power distribution:
// "we can get four values in the periodogram" with a 4-antenna array.
#pragma once

#include <vector>

#include "dsp/cmatrix.hpp"

namespace m2ai::dsp {

// Periodogram of one spatial snapshot: P(k) = |Y(k)|^2 / N where Y is the
// DFT of the N antenna samples (Eqs. 14-16). Output has N bins.
std::vector<double> periodogram(const std::vector<cdouble>& snapshot);

// Average periodogram over many snapshots (Bartlett averaging) — the power
// frame fed to the learning engine for one tag and one time window.
std::vector<double> averaged_periodogram(
    const std::vector<std::vector<cdouble>>& snapshots);

// Periodogram of a real-valued time series (used for Doppler-style feature
// extraction in the FFT-based ablation of Fig. 16). Output has
// `num_bins` = floor(n/2)+1 one-sided bins.
std::vector<double> time_periodogram(const std::vector<double>& series);

}  // namespace m2ai::dsp
