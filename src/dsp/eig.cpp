#include "dsp/eig.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "kern/eig4.hpp"

namespace m2ai::dsp {

namespace {

// One complex Jacobi rotation annihilating a(p, q). Updates `a` in place and
// accumulates the rotation into `v` (v <- v * J).
void rotate(CMatrix& a, CMatrix& v, std::size_t p, std::size_t q) {
  const cdouble apq = a(p, q);
  const double mag = std::abs(apq);
  if (mag == 0.0) return;
  const double app = a(p, p).real();
  const double aqq = a(q, q).real();
  const double tau = (aqq - app) / (2.0 * mag);
  // Root of t^2 - 2*tau*t - 1 = 0 with the smaller magnitude (stable).
  double t;
  if (tau >= 0.0) {
    t = -1.0 / (tau + std::sqrt(1.0 + tau * tau));
  } else {
    t = 1.0 / (-tau + std::sqrt(1.0 + tau * tau));
  }
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  const double s = t * c;
  const cdouble eip = apq / mag;  // e^{i*phi}

  const std::size_t n = a.rows();
  // a <- a * J    (J(p,p)=c, J(p,q)=-s e^{i phi}, J(q,p)=s e^{-i phi}, J(q,q)=c)
  for (std::size_t k = 0; k < n; ++k) {
    const cdouble akp = a(k, p);
    const cdouble akq = a(k, q);
    a(k, p) = c * akp + s * std::conj(eip) * akq;
    a(k, q) = -s * eip * akp + c * akq;
  }
  // a <- J^H * a
  for (std::size_t k = 0; k < n; ++k) {
    const cdouble apk = a(p, k);
    const cdouble aqk = a(q, k);
    a(p, k) = c * apk + s * eip * aqk;
    a(q, k) = -s * std::conj(eip) * apk + c * aqk;
  }
  // v <- v * J
  for (std::size_t k = 0; k < v.rows(); ++k) {
    const cdouble vkp = v(k, p);
    const cdouble vkq = v(k, q);
    v(k, p) = c * vkp + s * std::conj(eip) * vkq;
    v(k, q) = -s * eip * vkp + c * vkq;
  }
}

}  // namespace

EigResult eig_hermitian(const CMatrix& input, double tol, int max_sweeps) {
  if (input.rows() != input.cols()) {
    throw std::invalid_argument("eig_hermitian: matrix must be square");
  }
  if (input.rows() == 4) {
    // Every 4-antenna covariance lands here; the stack kernel skips all the
    // CMatrix temporaries that dominated this leaf's profile.
    cdouble in[16];
    cdouble vecs[16];
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) in[r * 4 + c] = input(r, c);
    }
    EigResult result;
    result.values.resize(4);
    result.vectors = CMatrix(4, 4);
    kern::eig_hermitian4(in, tol, max_sweeps, result.values.data(), vecs);
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) result.vectors(r, c) = vecs[r * 4 + c];
    }
    return result;
  }
  return eig_hermitian_generic(input, tol, max_sweeps);
}

EigResult eig_hermitian_generic(const CMatrix& input, double tol, int max_sweeps) {
  if (input.rows() != input.cols()) {
    throw std::invalid_argument("eig_hermitian: matrix must be square");
  }
  const std::size_t n = input.rows();
  // Enforce exact Hermitian symmetry: a <- (a + a^H)/2.
  CMatrix a = (input + input.hermitian()) * 0.5;
  CMatrix v = CMatrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (a.offdiag_norm() < tol) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::abs(a(p, q)) > tol / static_cast<double>(n * n)) rotate(a, v, p, q);
      }
    }
  }

  // Collect and sort descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return a(i, i).real() > a(j, j).real();
  });

  EigResult result;
  result.values.resize(n);
  result.vectors = CMatrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    result.values[k] = a(order[k], order[k]).real();
    for (std::size_t r = 0; r < n; ++r) result.vectors(r, k) = v(r, order[k]);
  }
  return result;
}

}  // namespace m2ai::dsp
