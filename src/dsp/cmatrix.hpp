// Small dense complex matrix used by the covariance / subspace code.
// Sizes here are tiny (antenna counts, <= 8), so clarity wins over blocking.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace m2ai::dsp {

using cdouble = std::complex<double>;

class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cdouble{0.0, 0.0}) {}

  static CMatrix identity(std::size_t n) {
    CMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = cdouble{1.0, 0.0};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cdouble& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cdouble& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  // Hermitian (conjugate) transpose.
  CMatrix hermitian() const {
    CMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
    }
    return out;
  }

  CMatrix operator*(const CMatrix& o) const {
    if (cols_ != o.rows_) throw std::invalid_argument("CMatrix: shape mismatch");
    CMatrix out(rows_, o.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const cdouble a = (*this)(r, k);
        if (a == cdouble{0.0, 0.0}) continue;
        for (std::size_t c = 0; c < o.cols_; ++c) out(r, c) += a * o(k, c);
      }
    }
    return out;
  }

  CMatrix operator+(const CMatrix& o) const {
    if (rows_ != o.rows_ || cols_ != o.cols_) {
      throw std::invalid_argument("CMatrix: shape mismatch");
    }
    CMatrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += o.data_[i];
    return out;
  }

  CMatrix operator*(double s) const {
    CMatrix out = *this;
    for (auto& x : out.data_) x *= s;
    return out;
  }

  std::vector<cdouble> column(std::size_t c) const {
    std::vector<cdouble> v(rows_);
    for (std::size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
    return v;
  }

  // Frobenius norm of the strictly off-diagonal part (square matrices).
  double offdiag_norm() const {
    double s = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        if (r != c) s += std::norm((*this)(r, c));
      }
    }
    return std::sqrt(s);
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cdouble> data_;
};

// v^H * w for equal-length vectors.
inline cdouble inner(const std::vector<cdouble>& v, const std::vector<cdouble>& w) {
  cdouble s{0.0, 0.0};
  for (std::size_t i = 0; i < v.size(); ++i) s += std::conj(v[i]) * w[i];
  return s;
}

}  // namespace m2ai::dsp
