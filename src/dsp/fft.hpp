// Fast Fourier Transform: iterative radix-2 for power-of-two sizes and
// Bluestein's algorithm for arbitrary sizes, plus a direct DFT used for
// cross-checking and for the tiny spatial transforms of the periodogram.
#pragma once

#include <complex>
#include <memory>
#include <vector>

namespace m2ai::dsp {

using cdouble = std::complex<double>;

// In-place radix-2 FFT. `data.size()` must be a power of two.
// `inverse` applies the conjugate transform and divides by N.
// Twiddle-factor tables are cached per size (thread-safe, process lifetime)
// and reproduce the uncached recurrence bit for bit.
void fft_radix2(std::vector<cdouble>& data, bool inverse = false);

// Arbitrary-size FFT (Bluestein when N is not a power of two).
std::vector<cdouble> fft(const std::vector<cdouble>& data, bool inverse = false);

// Precomputed per-length transform plan. Holds everything fft() would
// (re)derive per call for one size — the butterfly twiddle stages and, for
// non-power-of-two sizes, the Bluestein chirp sequence and the forward FFT
// of its convolution filter — so the hot periodogram loop pays one cache
// lookup per window instead of a mutex acquisition (plus, off the
// power-of-two path, two full chirp/filter rebuilds) per snapshot.
// transform() reproduces fft() bit for bit: the tables are built by the
// same recurrences and the butterflies run through the same code.
class FftPlan {
 public:
  ~FftPlan();
  std::size_t size() const;

  // out[0..n) = FFT(in[0..n)) (or the inverse transform). `in` and `out`
  // may alias. `scratch` is caller-owned working memory, grown on demand
  // and reusable across calls; the power-of-two path never touches it.
  // const and lock-free, so one plan may serve many threads.
  void transform(const cdouble* in, cdouble* out, bool inverse,
                 std::vector<cdouble>& scratch) const;

 private:
  explicit FftPlan(std::size_t n);
  friend std::shared_ptr<const FftPlan> shared_fft_plan(std::size_t n);

  struct Impl;
  std::unique_ptr<const Impl> impl_;
};

// Plan for size n from the process-wide cache (thread-safe, process
// lifetime, like the twiddle tables). Callers keep the shared_ptr for as
// long as they transform with it.
std::shared_ptr<const FftPlan> shared_fft_plan(std::size_t n);

// Direct O(N^2) DFT, definition Eq. 16 of the paper. Reference/check path.
std::vector<cdouble> dft(const std::vector<cdouble>& data, bool inverse = false);

// The single twiddle-generation routine behind every transform path: per
// butterfly stage s (len = 2^(s+1)), stages[s][k] = w_len^k for k in
// [0, len/2), produced by the incremental recurrence w *= polar(1, ±2π/len).
// The cached tables, the ad-hoc fft_radix2 path, and any reference
// implementation must all read twiddles from here (or reproduce this exact
// recurrence) — two "equivalent" generation paths are how per-host bitwise
// divergence sneaks in.
std::vector<std::vector<cdouble>> twiddle_stages(std::size_t n, bool inverse);

// The Bluestein chirp sequence c[k] = polar(1, ±π k² mod 2n / n), shared by
// the per-call bluestein() path and FftPlan's precomputed state for the same
// single-primitive reason as twiddle_stages().
std::vector<cdouble> bluestein_chirp(std::size_t n, bool inverse);

// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

}  // namespace m2ai::dsp
