// Fast Fourier Transform: iterative radix-2 for power-of-two sizes and
// Bluestein's algorithm for arbitrary sizes, plus a direct DFT used for
// cross-checking and for the tiny spatial transforms of the periodogram.
#pragma once

#include <complex>
#include <vector>

namespace m2ai::dsp {

using cdouble = std::complex<double>;

// In-place radix-2 FFT. `data.size()` must be a power of two.
// `inverse` applies the conjugate transform and divides by N.
// Twiddle-factor tables are cached per size (thread-safe, process lifetime)
// and reproduce the uncached recurrence bit for bit.
void fft_radix2(std::vector<cdouble>& data, bool inverse = false);

// Arbitrary-size FFT (Bluestein when N is not a power of two).
std::vector<cdouble> fft(const std::vector<cdouble>& data, bool inverse = false);

// Direct O(N^2) DFT, definition Eq. 16 of the paper. Reference/check path.
std::vector<cdouble> dft(const std::vector<cdouble>& data, bool inverse = false);

// True if n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

}  // namespace m2ai::dsp
