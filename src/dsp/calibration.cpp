#include "dsp/calibration.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/phase.hpp"
#include "rf/channel_plan.hpp"
#include "util/stats.hpp"

namespace m2ai::dsp {

CalibrationTable::CalibrationTable(int num_channels)
    : samples_(static_cast<std::size_t>(num_channels)),
      offsets_(static_cast<std::size_t>(num_channels), 0.0) {}

void CalibrationTable::add_sample(int channel, double phase_rad) {
  if (channel < 0 || channel >= static_cast<int>(samples_.size())) {
    throw std::out_of_range("CalibrationTable: bad channel");
  }
  samples_[static_cast<std::size_t>(channel)].push_back(wrap_2pi(phase_rad));
  ++total_samples_;
}

void CalibrationTable::finalize(int common_channel) {
  const std::size_t n = samples_.size();
  if (common_channel < 0 || common_channel >= static_cast<int>(n)) {
    throw std::out_of_range("CalibrationTable: bad common channel");
  }
  std::vector<double> medians(n, 0.0);
  std::vector<bool> seen(n, false);
  for (std::size_t c = 0; c < n; ++c) {
    if (!samples_[c].empty()) {
      medians[c] = circular_median(samples_[c]);
      seen[c] = true;
    }
  }

  // Reference median: prefer the common channel's own bootstrap data; fall
  // back to the nearest observed channel.
  double median_r = 0.0;
  if (seen[static_cast<std::size_t>(common_channel)]) {
    median_r = medians[static_cast<std::size_t>(common_channel)];
  } else {
    int best = -1;
    for (std::size_t c = 0; c < n; ++c) {
      if (seen[c] && (best < 0 || std::abs(static_cast<int>(c) - common_channel) <
                                      std::abs(best - common_channel))) {
        best = static_cast<int>(c);
      }
    }
    if (best >= 0) median_r = medians[static_cast<std::size_t>(best)];
  }

  for (std::size_t c = 0; c < n; ++c) {
    if (seen[c]) {
      offsets_[c] = wrap_pi(medians[c] - median_r);
    }
  }

  // Unseen channels: linear extrapolation in frequency (Fig. 3 linearity),
  // fit on the wrapped offsets of seen channels via their unwrapped version
  // ordered by channel index.
  std::vector<double> xs, ys;
  std::vector<double> wrapped;
  std::vector<std::size_t> idx;
  for (std::size_t c = 0; c < n; ++c) {
    if (seen[c]) {
      idx.push_back(c);
      wrapped.push_back(offsets_[c]);
    }
  }
  if (!idx.empty()) {
    const std::vector<double> un = unwrap(wrapped);
    for (std::size_t k = 0; k < idx.size(); ++k) {
      xs.push_back(static_cast<double>(idx[k]));
      ys.push_back(un[k]);
    }
    if (xs.size() >= 2) {
      const util::LinearFit fit = util::linear_fit(xs, ys);
      for (std::size_t c = 0; c < n; ++c) {
        if (!seen[c]) {
          offsets_[c] = wrap_pi(fit.slope * static_cast<double>(c) + fit.intercept);
        }
      }
    }
  }
  finalized_ = true;
}

double CalibrationTable::apply(int channel, double phase_rad) const {
  if (!finalized_) throw std::logic_error("CalibrationTable: not finalized");
  if (channel < 0 || channel >= static_cast<int>(offsets_.size())) {
    throw std::out_of_range("CalibrationTable: bad channel");
  }
  return wrap_2pi(phase_rad - offsets_[static_cast<std::size_t>(channel)]);
}

double CalibrationTable::offset(int channel) const {
  if (!finalized_) throw std::logic_error("CalibrationTable: not finalized");
  return offsets_[static_cast<std::size_t>(channel)];
}

PhaseCalibrator::PhaseCalibrator(int common_channel)
    : common_channel_(common_channel >= 0 ? common_channel : rf::common_channel()) {}

void PhaseCalibrator::add_sample(std::uint32_t tag_id, int antenna, int channel,
                                 double phase_rad) {
  tables_.try_emplace({tag_id, antenna}).first->second.add_sample(channel, phase_rad);
}

void PhaseCalibrator::finalize() {
  for (auto& [key, table] : tables_) table.finalize(common_channel_);
  finalized_ = true;
}

double PhaseCalibrator::apply(std::uint32_t tag_id, int antenna, int channel,
                              double phase_rad) const {
  const auto it = tables_.find({tag_id, antenna});
  if (it == tables_.end() || !it->second.finalized()) return phase_rad;
  return it->second.apply(channel, phase_rad);
}

const CalibrationTable* PhaseCalibrator::table(std::uint32_t tag_id, int antenna) const {
  const auto it = tables_.find({tag_id, antenna});
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace m2ai::dsp
