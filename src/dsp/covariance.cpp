#include "dsp/covariance.hpp"

#include <stdexcept>

namespace m2ai::dsp {

namespace {

// Backward (exchange-conjugate) transform: R_b = J * conj(R) * J where J is
// the exchange matrix. Written out directly.
CMatrix backward(const CMatrix& r) {
  const std::size_t n = r.rows();
  CMatrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      b(i, j) = std::conj(r(n - 1 - i, n - 1 - j));
    }
  }
  return b;
}

}  // namespace

void accumulate_outer(CMatrix& sum, const std::vector<cdouble>& x) {
  const std::size_t n = sum.rows();
  if (x.size() != n || sum.cols() != n) {
    throw std::invalid_argument("accumulate_outer: size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sum(i, j) += x[i] * std::conj(x[j]);
    }
  }
}

void downdate_outer(CMatrix& sum, const std::vector<cdouble>& x) {
  const std::size_t n = sum.rows();
  if (x.size() != n || sum.cols() != n) {
    throw std::invalid_argument("downdate_outer: size mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sum(i, j) -= x[i] * std::conj(x[j]);
    }
  }
}

CMatrix finalize_covariance(const CMatrix& sum, std::size_t count,
                            const CovarianceOptions& options) {
  if (count == 0) {
    throw std::invalid_argument("finalize_covariance: no snapshots");
  }
  const std::size_t n = sum.rows();
  if (sum.cols() != n) {
    throw std::invalid_argument("finalize_covariance: sum must be square");
  }
  const std::size_t sub = options.smoothing_subarray > 0
                              ? static_cast<std::size_t>(options.smoothing_subarray)
                              : n;
  if (sub > n) {
    throw std::invalid_argument("finalize_covariance: subarray larger than array");
  }

  // Average covariances of all overlapping subarrays of length `sub`
  // (sub == n reduces to the plain full-aperture covariance). Each subarray
  // covariance is the slice sum(o+i, o+j) of the full outer-product sum,
  // folded into `r` element-wise — the same adds, in the same order, as the
  // old per-subarray `r = r + outer_average` chain of temporaries (including
  // the 0 + x add for the first subarray, which canonicalizes -0.0 exactly
  // like the old code did).
  const std::size_t num_sub = n - sub + 1;
  CMatrix r(sub, sub);
  const double inv = 1.0 / static_cast<double>(count);
  for (std::size_t o = 0; o < num_sub; ++o) {
    for (std::size_t i = 0; i < sub; ++i) {
      for (std::size_t j = 0; j < sub; ++j) {
        r(i, j) = r(i, j) + sum(o + i, o + j) * inv;
      }
    }
  }
  {
    const double inv_sub = 1.0 / static_cast<double>(num_sub);
    for (std::size_t i = 0; i < sub; ++i) {
      for (std::size_t j = 0; j < sub; ++j) r(i, j) = r(i, j) * inv_sub;
    }
  }

  if (options.forward_backward) {
    const CMatrix b = backward(r);
    for (std::size_t i = 0; i < sub; ++i) {
      for (std::size_t j = 0; j < sub; ++j) {
        r(i, j) = (r(i, j) + b(i, j)) * 0.5;
      }
    }
  }

  if (options.diagonal_loading > 0.0) {
    double trace = 0.0;
    for (std::size_t i = 0; i < sub; ++i) trace += r(i, i).real();
    const double load = options.diagonal_loading * trace / static_cast<double>(sub);
    for (std::size_t i = 0; i < sub; ++i) r(i, i) += load;
  }
  return r;
}

CMatrix sample_covariance(const std::vector<std::vector<cdouble>>& snapshots,
                          const CovarianceOptions& options) {
  if (snapshots.empty()) {
    throw std::invalid_argument("sample_covariance: no snapshots");
  }
  const std::size_t n = snapshots.front().size();
  for (const auto& s : snapshots) {
    if (s.size() != n) {
      throw std::invalid_argument("sample_covariance: ragged snapshots");
    }
  }
  CMatrix sum(n, n);
  for (const auto& snap : snapshots) accumulate_outer(sum, snap);
  return finalize_covariance(sum, snapshots.size(), options);
}

}  // namespace m2ai::dsp
