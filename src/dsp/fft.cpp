#include "dsp/fft.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace m2ai::dsp {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Twiddle factors for one transform size, per butterfly stage; see
// twiddle_stages() for the generation contract. Forward and inverse tables
// are built independently (conjugation is exact, but polar() symmetry across
// libm implementations is not guaranteed).
namespace {
struct TwiddleTable {
  std::vector<std::vector<cdouble>> forward;
  std::vector<std::vector<cdouble>> inverse;
};
}  // namespace

std::vector<std::vector<cdouble>> twiddle_stages(std::size_t n, bool inverse) {
  std::vector<std::vector<cdouble>> stages;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const cdouble wl = std::polar(1.0, ang);
    std::vector<cdouble> stage(len / 2);
    cdouble w{1.0, 0.0};
    for (std::size_t k = 0; k < len / 2; ++k) {
      stage[k] = w;
      w *= wl;
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

std::vector<cdouble> bluestein_chirp(std::size_t n, bool inverse) {
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<cdouble> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument bounded for large n.
    const std::size_t k2 = (k * k) % (2 * n);
    chirp[k] = std::polar(
        1.0, sign * M_PI * static_cast<double>(k2) / static_cast<double>(n));
  }
  return chirp;
}

namespace {

// Per-size table cache. The periodogram path calls the FFT once per window
// per tag, always at the same handful of sizes; recomputing sin/cos chains
// there dominated the per-window leaf profile. The cache is shared across
// threads (dataset generation and the serve DSP stage run windows in
// parallel). Lookups after warm-up are lock-free: readers take an atomic
// snapshot of an immutable map; the mutex serializes writers only, each of
// whom publishes a fresh copy with the new entry (copy-on-write — the map
// holds a handful of sizes, so the copy is trivial next to the sin/cos
// chains being cached). Callers hold a shared_ptr so an entry can never be
// destroyed under a running transform.
using TwiddleMap = std::map<std::size_t, std::shared_ptr<const TwiddleTable>>;
std::mutex g_twiddle_mu;  // writers only
std::atomic<std::shared_ptr<const TwiddleMap>>& twiddle_snapshot() {
  static auto* snap = new std::atomic<std::shared_ptr<const TwiddleMap>>();
  return *snap;
}

std::shared_ptr<const TwiddleTable> twiddles_for(std::size_t n) {
  const std::shared_ptr<const TwiddleMap> snap =
      twiddle_snapshot().load(std::memory_order_acquire);
  if (snap) {
    const auto it = snap->find(n);
    if (it != snap->end()) return it->second;
  }
  std::lock_guard<std::mutex> lock(g_twiddle_mu);
  // Re-check under the lock: another writer may have published this size
  // between our snapshot and the acquisition.
  const std::shared_ptr<const TwiddleMap> latest =
      twiddle_snapshot().load(std::memory_order_acquire);
  if (latest) {
    const auto it = latest->find(n);
    if (it != latest->end()) return it->second;
  }
  auto table = std::make_shared<TwiddleTable>();
  table->forward = twiddle_stages(n, false);
  table->inverse = twiddle_stages(n, true);
  auto entry = std::shared_ptr<const TwiddleTable>(std::move(table));
  auto next = latest ? std::make_shared<TwiddleMap>(*latest)
                     : std::make_shared<TwiddleMap>();
  next->emplace(n, entry);
  twiddle_snapshot().store(std::move(next), std::memory_order_release);
  return entry;
}

// In-place radix-2 body shared by fft_radix2 and FftPlan::transform so the
// cached-plan path is bitwise-identical to the ad-hoc one by construction.
void radix2_apply(cdouble* data, std::size_t n, const TwiddleTable* table,
                  bool inverse) {
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  std::size_t stage = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++stage) {
    const std::vector<cdouble>& tw =
        inverse ? table->inverse[stage] : table->forward[stage];
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = data[i + k];
        const cdouble v = data[i + k + len / 2] * tw[k];
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
  }
  if (inverse) {
    for (std::size_t i = 0; i < n; ++i) data[i] /= static_cast<double>(n);
  }
}

}  // namespace

void fft_radix2(std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  // Butterflies, twiddles served from the per-size cache.
  const std::shared_ptr<const TwiddleTable> table = n >= 2 ? twiddles_for(n) : nullptr;
  radix2_apply(data.data(), n, table.get(), inverse);
}

namespace {
// Bluestein's chirp-z transform: express an arbitrary-size DFT as a
// convolution, evaluated with a power-of-two FFT.
std::vector<cdouble> bluestein(const std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  const std::vector<cdouble> chirp = bluestein_chirp(n, inverse);
  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<cdouble> a(m, cdouble{0.0, 0.0});
  std::vector<cdouble> b(m, cdouble{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);
  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, true);
  std::vector<cdouble> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}
}  // namespace

std::vector<cdouble> fft(const std::vector<cdouble>& data, bool inverse) {
  if (data.empty()) return {};
  if (is_power_of_two(data.size())) {
    std::vector<cdouble> out = data;
    fft_radix2(out, inverse);
    return out;
  }
  return bluestein(data, inverse);
}

struct FftPlan::Impl {
  std::size_t n = 0;
  bool pow2 = true;
  std::shared_ptr<const TwiddleTable> table;  // size n (pow2) or m (Bluestein)
  // Bluestein state (pow2 == false). The chirp and the FFT of the filter b
  // depend on the transform direction, so both are kept per direction.
  std::size_t m = 0;
  std::vector<cdouble> chirp[2];   // [0] forward, [1] inverse
  std::vector<cdouble> filter[2];  // FFT of b, same indexing
};

FftPlan::FftPlan(std::size_t n) {
  auto impl = std::make_unique<Impl>();
  impl->n = n;
  impl->pow2 = n == 0 || is_power_of_two(n);
  if (impl->pow2) {
    if (n >= 2) impl->table = twiddles_for(n);
  } else {
    impl->m = next_power_of_two(2 * n - 1);
    impl->table = twiddles_for(impl->m);
    for (int dir = 0; dir < 2; ++dir) {
      const bool inverse = dir == 1;
      // The exact chirp primitive the per-call Bluestein path uses.
      std::vector<cdouble>& chirp = impl->chirp[dir];
      chirp = bluestein_chirp(n, inverse);
      std::vector<cdouble> b(impl->m, cdouble{0.0, 0.0});
      b[0] = std::conj(chirp[0]);
      for (std::size_t k = 1; k < n; ++k) b[k] = b[impl->m - k] = std::conj(chirp[k]);
      fft_radix2(b, false);
      impl->filter[dir] = std::move(b);
    }
  }
  impl_ = std::move(impl);
}

FftPlan::~FftPlan() = default;

std::size_t FftPlan::size() const { return impl_->n; }

void FftPlan::transform(const cdouble* in, cdouble* out, bool inverse,
                        std::vector<cdouble>& scratch) const {
  const Impl& p = *impl_;
  const std::size_t n = p.n;
  if (n == 0) return;
  if (p.pow2) {
    if (out != in) std::copy(in, in + n, out);
    radix2_apply(out, n, p.table.get(), inverse);
    return;
  }
  const int dir = inverse ? 1 : 0;
  const std::vector<cdouble>& chirp = p.chirp[dir];
  const std::vector<cdouble>& filter = p.filter[dir];
  scratch.assign(p.m, cdouble{0.0, 0.0});
  cdouble* a = scratch.data();
  for (std::size_t k = 0; k < n; ++k) a[k] = in[k] * chirp[k];
  radix2_apply(a, p.m, p.table.get(), false);
  for (std::size_t k = 0; k < p.m; ++k) a[k] *= filter[k];
  radix2_apply(a, p.m, p.table.get(), true);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    for (std::size_t k = 0; k < n; ++k) out[k] /= static_cast<double>(n);
  }
}

namespace {
// Same reader-lock-free copy-on-write scheme as the twiddle cache above:
// the plan lookup sits on the per-window periodogram hot path, which the
// serve layer runs from many DSP workers concurrently.
using PlanMap = std::map<std::size_t, std::shared_ptr<const FftPlan>>;
std::mutex g_plan_mu;  // writers only
std::atomic<std::shared_ptr<const PlanMap>>& plan_snapshot() {
  static auto* snap = new std::atomic<std::shared_ptr<const PlanMap>>();
  return *snap;
}
}  // namespace

std::shared_ptr<const FftPlan> shared_fft_plan(std::size_t n) {
  const std::shared_ptr<const PlanMap> snap =
      plan_snapshot().load(std::memory_order_acquire);
  if (snap) {
    const auto it = snap->find(n);
    if (it != snap->end()) return it->second;
  }
  std::lock_guard<std::mutex> lock(g_plan_mu);
  const std::shared_ptr<const PlanMap> latest =
      plan_snapshot().load(std::memory_order_acquire);
  if (latest) {
    const auto it = latest->find(n);
    if (it != latest->end()) return it->second;
  }
  auto entry = std::shared_ptr<const FftPlan>(new FftPlan(n));
  auto next = latest ? std::make_shared<PlanMap>(*latest)
                     : std::make_shared<PlanMap>();
  next->emplace(n, entry);
  plan_snapshot().store(std::move(next), std::memory_order_release);
  return entry;
}

std::vector<cdouble> dft(const std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<cdouble> out(n, cdouble{0.0, 0.0});
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = sign * M_PI * static_cast<double>(k * t) / static_cast<double>(n);
      out[k] += data[t] * std::polar(1.0, ang);
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

}  // namespace m2ai::dsp
