#include "dsp/fft.hpp"

#include <cmath>
#include <stdexcept>

namespace m2ai::dsp {

bool is_power_of_two(std::size_t n) { return n >= 1 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_radix2(std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n)) {
    throw std::invalid_argument("fft_radix2: size must be a power of two");
  }
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const cdouble wl = std::polar(1.0, ang);
    for (std::size_t i = 0; i < n; i += len) {
      cdouble w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const cdouble u = data[i + k];
        const cdouble v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

namespace {
// Bluestein's chirp-z transform: express an arbitrary-size DFT as a
// convolution, evaluated with a power-of-two FFT.
std::vector<cdouble> bluestein(const std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  const double sign = inverse ? 1.0 : -1.0;
  std::vector<cdouble> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n keeps the angle argument bounded for large n.
    const std::size_t k2 = (k * k) % (2 * n);
    chirp[k] = std::polar(1.0, sign * M_PI * static_cast<double>(k2) / static_cast<double>(n));
  }
  const std::size_t m = next_power_of_two(2 * n - 1);
  std::vector<cdouble> a(m, cdouble{0.0, 0.0});
  std::vector<cdouble> b(m, cdouble{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) b[k] = b[m - k] = std::conj(chirp[k]);
  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_radix2(a, true);
  std::vector<cdouble> out(n);
  for (std::size_t k = 0; k < n; ++k) out[k] = a[k] * chirp[k];
  if (inverse) {
    for (auto& x : out) x /= static_cast<double>(n);
  }
  return out;
}
}  // namespace

std::vector<cdouble> fft(const std::vector<cdouble>& data, bool inverse) {
  if (data.empty()) return {};
  if (is_power_of_two(data.size())) {
    std::vector<cdouble> out = data;
    fft_radix2(out, inverse);
    return out;
  }
  return bluestein(data, inverse);
}

std::vector<cdouble> dft(const std::vector<cdouble>& data, bool inverse) {
  const std::size_t n = data.size();
  std::vector<cdouble> out(n, cdouble{0.0, 0.0});
  const double sign = inverse ? 2.0 : -2.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = sign * M_PI * static_cast<double>(k * t) / static_cast<double>(n);
      out[k] += data[t] * std::polar(1.0, ang);
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

}  // namespace m2ai::dsp
