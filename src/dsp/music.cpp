#include "dsp/music.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "dsp/eig.hpp"
#include "kern/backend.hpp"
#include "kern/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rf/steering.hpp"

namespace m2ai::dsp {

namespace {
using SteeringKey = std::tuple<int, double, double, int>;
std::mutex g_steering_mu;
std::map<SteeringKey, std::shared_ptr<const SteeringTable>>& steering_cache() {
  static auto* cache = new std::map<SteeringKey, std::shared_ptr<const SteeringTable>>();
  return *cache;
}
}  // namespace

std::shared_ptr<const SteeringTable> shared_steering_table(
    int aperture, double effective_separation_m, double wavelength_m,
    int num_angle_bins) {
  const SteeringKey key{aperture, effective_separation_m, wavelength_m,
                        num_angle_bins};
  std::lock_guard<std::mutex> lock(g_steering_mu);
  auto& cache = steering_cache();
  const auto it = cache.find(key);
  if (it != cache.end()) {
    obs::registry().counter("dsp.steering_table.hit").add();
    return it->second;
  }
  auto table = std::make_shared<SteeringTable>();
  table->reserve(static_cast<std::size_t>(num_angle_bins));
  for (int deg = 0; deg < num_angle_bins; ++deg) {
    table->push_back(rf::steering_vector(static_cast<double>(deg), aperture,
                                         effective_separation_m, wavelength_m));
  }
  auto entry = std::shared_ptr<const SteeringTable>(std::move(table));
  cache.emplace(key, entry);
  obs::registry().counter("dsp.steering_table.build").add();
  return entry;
}

std::vector<int> find_peaks(const std::vector<double>& spectrum, int max_peaks,
                            double min_height) {
  std::vector<int> candidates;
  const int n = static_cast<int>(spectrum.size());
  if (n == 0 || max_peaks <= 0) return candidates;
  double top = spectrum.front();
  for (double v : spectrum) top = std::max(top, v);
  // The relative min_height filter only makes sense for a positive maximum
  // (MUSIC/periodogram spectra); for all-negative inputs fall back to shape
  // alone instead of scaling a negative threshold past the maximum.
  const bool use_height = top > 0.0;

  // Scan plateaus (maximal runs of one value) as units: a run is one peak —
  // reported at its midpoint — iff the sample before it is strictly lower
  // (or it starts the array) and the sample after it is strictly lower (or
  // it ends the array). Per-bin left/right tests with an out-of-range
  // sentinel would instead report plateau bins individually and misread
  // spectra that dip below the sentinel.
  int i = 0;
  while (i < n) {
    const double v = spectrum[static_cast<std::size_t>(i)];
    int j = i;
    while (j + 1 < n && spectrum[static_cast<std::size_t>(j + 1)] == v) ++j;
    const bool rises_left = (i == 0) || spectrum[static_cast<std::size_t>(i - 1)] < v;
    const bool falls_right = (j == n - 1) || spectrum[static_cast<std::size_t>(j + 1)] < v;
    if (rises_left && falls_right && (!use_height || v >= min_height * top)) {
      candidates.push_back((i + j) / 2);
    }
    i = j + 1;
  }
  std::sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const double va = spectrum[static_cast<std::size_t>(a)];
    const double vb = spectrum[static_cast<std::size_t>(b)];
    if (va != vb) return va > vb;
    return a < b;  // deterministic order for equal-height peaks
  });
  if (static_cast<int>(candidates.size()) > max_peaks) {
    candidates.resize(static_cast<std::size_t>(max_peaks));
  }
  return candidates;
}

MusicEstimator::MusicEstimator(MusicOptions options) : options_(options) {
  const int aperture = options_.covariance.smoothing_subarray > 0
                           ? options_.covariance.smoothing_subarray
                           : options_.num_antennas;
  steering_ = shared_steering_table(aperture, options_.effective_separation_m,
                                    options_.wavelength_m, options_.num_angle_bins);
  const std::size_t bins = steering_->size();
  const std::size_t n = bins > 0 ? steering_->front().size() : 0;
  steering_flat_.resize(bins * n);
  for (std::size_t bin = 0; bin < bins; ++bin) {
    for (std::size_t i = 0; i < n; ++i) {
      steering_flat_[bin * n + i] = (*steering_)[bin][i];
    }
  }
}

MusicResult MusicEstimator::estimate(
    const std::vector<std::vector<cdouble>>& snapshots) const {
  M2AI_OBS_SPAN("music");
  const CMatrix r = [&] {
    M2AI_OBS_SPAN("covariance");
    return sample_covariance(snapshots, options_.covariance);
  }();
  return estimate_from_covariance(r);
}

MusicResult MusicEstimator::estimate_from_covariance(const CMatrix& r) const {
  const std::size_t n = r.rows();
  if (n != steering_->front().size()) {
    throw std::invalid_argument("MusicEstimator: covariance size mismatch");
  }
  const EigResult eig = [&r] {
    M2AI_OBS_SPAN("eig");
    return eig_hermitian(r);
  }();

  MusicResult result;
  result.eigenvalues = eig.values;

  // Signal-subspace dimension: fixed, or from the eigenvalue profile.
  int m = options_.num_sources;
  if (m <= 0) {
    m = 0;
    const double top = std::max(eig.values.front(), 1e-30);
    for (double v : eig.values) {
      if (v > options_.source_eigenvalue_ratio * top) ++m;
    }
    m = std::clamp(m, 1, static_cast<int>(n) - 1);
  }
  m = std::clamp(m, 1, static_cast<int>(n) - 1);
  result.num_sources = m;

  // Noise-subspace projector Un Un^H applied per steering vector:
  // P(theta) = 1 / sum_{k=m..n-1} |u_k^H a(theta)|^2     (Eq. 12)
  // The noise eigenvectors are packed once (k-major, contiguous) and the
  // whole scan runs through the fused kernel — the same sums in the same
  // order as the per-bin column()/inner() loop, minus its num_bins *
  // num_noise heap allocations per window.
  const std::size_t bins = steering_->size();
  const std::size_t num_noise = n - static_cast<std::size_t>(m);
  std::vector<cdouble> un(num_noise * n);
  for (std::size_t k = 0; k < num_noise; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      un[k * n + i] = eig.vectors(i, static_cast<std::size_t>(m) + k);
    }
  }
  result.spectrum.resize(bins);
  std::vector<double> denom(bins);
  // Dispatched: the MUSIC scan feeds inference/serving features, so the fast
  // backend may take it; experiments run with the default reference backend
  // and stay bitwise.
  kern::active().noise_projection(un.data(), static_cast<int>(num_noise),
                                  steering_flat_.data(), static_cast<int>(bins),
                                  static_cast<int>(n), denom.data());
  double peak = 0.0;
  for (std::size_t bin = 0; bin < bins; ++bin) {
    const double p = 1.0 / std::max(denom[bin], 1e-12);
    result.spectrum[bin] = p;
    peak = std::max(peak, p);
  }
  if (peak > 0.0) {
    for (double& v : result.spectrum) v /= peak;
  }
  return result;
}

}  // namespace m2ai::dsp
