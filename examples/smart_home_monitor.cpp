// Smart-home monitor: the paper's motivating IoT scenario (Sec. I).
//
// A trained M2AI model watches a living room in (simulated) real time: the
// reader streams LLRP reports, the monitor slides a window over the stream,
// rebuilds spectrum frames on the fly, and raises human-readable events —
// including a fall-like alert when "one sits down" style posture drops are
// detected with low confidence spread.
#include <cstdio>
#include <deque>

#include "core/experiment.hpp"
#include "sim/activities.hpp"
#include "util/log.hpp"

using namespace m2ai;

namespace {

// Streaming recognizer: keeps the last `window_frames` frames and emits a
// prediction with confidence after each new frame.
class StreamingMonitor {
 public:
  StreamingMonitor(core::M2AINetwork& network, int window_frames)
      : network_(network), window_frames_(window_frames) {}

  struct Event {
    int label = -1;
    double confidence = 0.0;
    bool ready = false;
  };

  Event push(core::SpectrumFrame frame) {
    buffer_.push_back(std::move(frame));
    if (static_cast<int>(buffer_.size()) > window_frames_) buffer_.pop_front();
    Event event;
    if (static_cast<int>(buffer_.size()) < window_frames_ / 2) return event;
    const core::FrameSequence seq(buffer_.begin(), buffer_.end());
    const auto probs = network_.predict_proba(seq);
    event.ready = true;
    for (std::size_t c = 0; c < probs.size(); ++c) {
      if (event.label < 0 || probs[c] > event.confidence) {
        event.label = static_cast<int>(c);
        event.confidence = probs[c];
      }
    }
    return event;
  }

 private:
  core::M2AINetwork& network_;
  int window_frames_;
  std::deque<core::SpectrumFrame> buffer_;
};

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  std::printf("Smart-home activity monitor (simulated living room)\n");
  std::printf("----------------------------------------------------\n");

  core::ExperimentConfig config;
  config.samples_per_class = 24;
  config.pipeline.windows_per_sample = 20;
  config.train.epochs = 20;
  config.train.crop_frames = 16;

  std::printf("training the recognizer on %d samples/activity...\n",
              config.samples_per_class);
  const core::DataSplit split = core::generate_dataset(config);
  std::unique_ptr<core::M2AINetwork> network;
  const core::M2AIResult trained = core::train_and_evaluate(config, split, &network);
  std::printf("recognizer ready (offline accuracy %.0f%%)\n\n",
              trained.accuracy * 100.0);

  // Live phase: stream three scenes through the monitor.
  const auto& catalog = sim::activity_catalog();
  StreamingMonitor monitor(*network, config.pipeline.windows_per_sample);
  core::Pipeline pipeline(config.pipeline, /*seed=*/31337);

  for (const int activity : {1, 8, 6}) {
    std::printf(">> scene: residents start '%s'\n",
                catalog[static_cast<std::size_t>(activity - 1)].description.c_str());
    const core::Sample sample = pipeline.simulate_sample(activity);
    int frame_index = 0;
    for (const auto& frame : sample.frames) {
      const auto event = monitor.push(frame);
      ++frame_index;
      if (!event.ready || frame_index % 4 != 0) continue;
      const auto& meta = catalog[static_cast<std::size_t>(event.label)];
      std::printf("   t=%4.1fs  monitor: %-38s (confidence %.0f%%)%s\n",
                  frame_index * config.pipeline.window_sec, meta.description.c_str(),
                  event.confidence * 100.0,
                  (meta.id == 8 && event.confidence > 0.3)
                      ? "  [posture-drop watch: resident seated]"
                      : "");
    }
    std::printf("\n");
  }

  std::printf("monitor session complete.\n");
  return 0;
}
