// Deployment planner: a site-survey tool for M2AI installations.
//
// Before deploying readers and tags, an integrator wants to know how many
// antennas and tags a room needs. This example sweeps the two knobs the
// paper identifies (Figs. 14 & 15) on a fast, reduced dataset and prints a
// recommendation table — tags are the cheapest path to accuracy (5 cents
// each), antennas the most constrained (4 ports per reader).
#include <cstdio>

#include "core/experiment.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace m2ai;

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  std::printf("M2AI deployment planner — site survey (reduced-budget sweep)\n");
  std::printf("-------------------------------------------------------------\n");

  core::ExperimentConfig base;
  base.samples_per_class = 20;
  base.pipeline.windows_per_sample = 20;
  base.train.epochs = 16;
  base.train.crop_frames = 16;

  util::Table table({"antennas", "tags/person", "est. accuracy", "hardware note"});
  double best_acc = 0.0;
  int best_ant = 0, best_tags = 0;

  for (const int antennas : {2, 4}) {
    for (const int tags : {1, 3}) {
      core::ExperimentConfig config = base;
      config.pipeline.num_antennas = antennas;
      config.pipeline.tags_per_person = tags;
      std::printf("surveying %d antennas x %d tags/person...\n", antennas, tags);
      const core::DataSplit split = core::generate_dataset(config);
      const core::M2AIResult result = core::train_and_evaluate(config, split);
      const char* note = (antennas == 4)
                             ? "full R420 port budget"
                             : "half the ports free for other zones";
      table.add_row({std::to_string(antennas), std::to_string(tags),
                     util::Table::pct(result.accuracy, 0), note});
      if (result.accuracy > best_acc) {
        best_acc = result.accuracy;
        best_ant = antennas;
        best_tags = tags;
      }
    }
  }

  std::printf("\n");
  table.print();
  std::printf("\nsurvey winner: %d antennas, %d tags/person (estimate %.0f%%).\n",
              best_ant, best_tags, best_acc * 100.0);
  std::printf("note: at survey scale (test split ~48 sequences) estimates carry\n"
              "roughly +-7-point noise; treat the table as a tie-break between\n"
              "otherwise-acceptable layouts and run the full bench suite\n"
              "(bench_fig14_antennas / bench_fig15_tags) before committing.\n"
              "tags cost ~5 cents each, so when in doubt prefer adding tags\n"
              "before adding reader ports — the paper's Fig. 15 point.\n");
  return 0;
}
