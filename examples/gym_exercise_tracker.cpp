// Gym exercise tracker: a FEMO-style free-exercise monitor (the paper's
// Sec. VIII comparison point) built on the M2AI public API.
//
// Two athletes share the covered area; the tracker counts repetitions of
// periodic whole-body exercises (squats, jumps, arm marches) by tracking
// the dominant modulation frequency of each athlete's tag power, and uses
// the trained classifier to label WHICH exercise is in progress.
#include <cstdio>

#include "core/experiment.hpp"
#include "dsp/periodogram.hpp"
#include "sim/activities.hpp"
#include "util/log.hpp"

using namespace m2ai;

namespace {

// Repetition counting: dominant non-DC frequency of the per-frame power of
// one person's tags, via the library's time periodogram.
double dominant_rep_rate_hz(const core::Sample& sample, int first_tag, int num_tags,
                            double frame_period_sec) {
  std::vector<double> power_series;
  for (const auto& frame : sample.frames) {
    double p = 0.0;
    for (int tag = first_tag; tag < first_tag + num_tags; ++tag) {
      for (int a = 0; a < frame.aux.dim(1); ++a) p += frame.aux.at(tag, a);
    }
    power_series.push_back(p);
  }
  // Remove the mean so bin 0 does not dominate.
  double mean = 0.0;
  for (double v : power_series) mean += v;
  mean /= static_cast<double>(power_series.size());
  for (double& v : power_series) v -= mean;

  const auto spectrum = dsp::time_periodogram(power_series);
  std::size_t best = 1;
  for (std::size_t k = 2; k < spectrum.size(); ++k) {
    if (spectrum[k] > spectrum[best]) best = k;
  }
  const double resolution =
      1.0 / (frame_period_sec * static_cast<double>(power_series.size()));
  return static_cast<double>(best) * resolution;
}

}  // namespace

int main() {
  util::set_log_level(util::LogLevel::kWarn);
  std::printf("Gym exercise tracker (2 athletes, 3 tags each)\n");
  std::printf("-----------------------------------------------\n");

  core::ExperimentConfig config;
  config.samples_per_class = 24;
  config.pipeline.windows_per_sample = 24;  // 9.6 s sets
  config.train.epochs = 20;
  config.train.crop_frames = 16;

  std::printf("calibrating the recognizer...\n");
  const core::DataSplit split = core::generate_dataset(config);
  std::unique_ptr<core::M2AINetwork> network;
  const core::M2AIResult trained = core::train_and_evaluate(config, split, &network);
  std::printf("recognizer ready (offline accuracy %.0f%%)\n\n", trained.accuracy * 100.0);

  const auto& catalog = sim::activity_catalog();
  core::Pipeline pipeline(config.pipeline, /*seed=*/2024);

  // Exercise-like scenarios: squats (A_04), jumps (A_06), arm march (A_09).
  for (const int activity : {4, 6, 9}) {
    const core::Sample set = pipeline.simulate_sample(activity);
    const int predicted = network->predict(set.frames);
    const double set_seconds =
        config.pipeline.window_sec * static_cast<double>(set.frames.size());

    std::printf(">> set: ground truth '%s'\n",
                catalog[static_cast<std::size_t>(activity - 1)].description.c_str());
    std::printf("   recognized as:   '%s'\n",
                catalog[static_cast<std::size_t>(predicted)].description.c_str());
    for (int athlete = 0; athlete < config.pipeline.num_persons; ++athlete) {
      const double rate = dominant_rep_rate_hz(
          set, athlete * config.pipeline.tags_per_person,
          config.pipeline.tags_per_person, config.pipeline.window_sec);
      std::printf("   athlete %d: ~%.1f reps over %.0f s (%.2f Hz)\n", athlete + 1,
                  rate * set_seconds, set_seconds, rate);
    }
    std::printf("\n");
  }

  std::printf("session summary complete.\n");
  return 0;
}
