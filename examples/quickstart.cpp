// Quickstart: the minimal end-to-end M2AI workflow.
//
//   1. configure a deployment (environment, persons, tags, antennas);
//   2. simulate labelled activity samples through the reader model;
//   3. train the CNN+LSTM engine;
//   4. classify unseen sequences and print the confusion matrix.
//
// Runs in about a minute on one core. Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/experiment.hpp"
#include "sim/activities.hpp"
#include "util/log.hpp"

using namespace m2ai;

int main() {
  util::set_log_level(util::LogLevel::kInfo);

  // 1. Deployment: the paper's default — 2 persons x 3 tags, 4 antennas,
  //    laboratory environment, frequency hopping + phase calibration on.
  core::ExperimentConfig config;
  config.samples_per_class = 24;  // small, quickstart-sized dataset
  config.pipeline.windows_per_sample = 20;
  config.train.epochs = 20;
  config.train.crop_frames = 16;
  config.train.verbose = true;

  std::printf("M2AI quickstart: %d activities x %d samples, %d persons, "
              "%d tags/person, %d antennas\n",
              sim::num_activities(), config.samples_per_class,
              config.pipeline.num_persons, config.pipeline.tags_per_person,
              config.pipeline.num_antennas);

  // 2. Simulate and split 80/20.
  const core::DataSplit split = core::generate_dataset(config);

  // 3. Train.
  std::unique_ptr<core::M2AINetwork> network;
  const core::M2AIResult result = core::train_and_evaluate(config, split, &network);

  // 4. Report.
  std::printf("\ntest accuracy: %.1f%%  (%zu parameters, trained in %.0f s)\n",
              result.accuracy * 100.0, result.num_parameters, result.train_seconds);

  std::vector<std::string> labels;
  for (const auto& a : sim::activity_catalog()) labels.push_back(a.label);
  std::printf("\n%s\n", result.confusion.to_string(labels).c_str());

  // Classify one fresh, unseen sample.
  core::Pipeline pipeline(config.pipeline, /*seed=*/777);
  const core::Sample fresh = pipeline.simulate_sample(5);
  const int predicted = network->predict(fresh.frames);
  std::printf("fresh sample of %s -> predicted %s\n",
              labels[static_cast<std::size_t>(fresh.label)].c_str(),
              labels[static_cast<std::size_t>(predicted)].c_str());
  return 0;
}
