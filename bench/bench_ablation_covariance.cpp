// Ablation (DESIGN.md §5) — coherent-multipath rank restoration in the
// covariance stage: forward-backward averaging and spatial smoothing are
// the two standard fixes for fully-coherent rays. This bench measures how
// much each contributes to end-to-end identification accuracy.
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Ablation", "Covariance conditioning: FB averaging & smoothing");

  struct Variant {
    const char* name;
    bool forward_backward;
    int smoothing;
  };
  const Variant variants[] = {
      {"plain covariance", false, 0},
      {"forward-backward (default)", true, 0},
      {"FB + spatial smoothing (3)", true, 3},
  };

  util::Table table({"covariance", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/ablation_covariance.csv",
                      {"covariance", "accuracy"});

  for (const Variant& v : variants) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.covariance.forward_backward = v.forward_backward;
    config.pipeline.covariance.smoothing_subarray = v.smoothing;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({v.name, util::Table::pct(result.accuracy)});
    csv.add_row({v.name, util::Table::fmt(result.accuracy, 4)});
  }

  table.print();
  std::printf("\n(design note: smoothing trades aperture for decorrelation; with a\n"
              " 4-element array the default keeps the full aperture and relies on\n"
              " motion-induced decorrelation plus FB averaging)\n");
  return 0;
}
