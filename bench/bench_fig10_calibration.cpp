// Fig. 10 — impact of phase calibration. Paper result: 97% with the Eq. 1
// calibration vs 52% without (raw reader phases are scrambled by the
// per-channel hopping offsets).
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 10", "Impact of phase calibration");

  util::Table table({"variant", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig10_calibration.csv",
                      {"variant", "accuracy"});

  for (const bool calibration : {true, false}) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.phase_calibration = calibration;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    const std::string name = calibration ? "with calibration" : "no calibration";
    table.add_row({name, util::Table::pct(result.accuracy)});
    csv.add_row({name, util::Table::fmt(result.accuracy, 4)});
  }

  table.print();
  std::printf("\n(paper: 97%% with calibration vs 52%% without)\n");
  return 0;
}
