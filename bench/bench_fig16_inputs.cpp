// Fig. 16 — preprocessing-input ablation: feed the same deep network with
// MUSIC-based, FFT-based, Phase-based, RSSI-based, or the full M2AI
// (pseudospectrum + periodogram) inputs. Paper result: M2AI's combined
// preprocessing wins; RSSI-only is weakest.
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 16", "Impact of preprocessing inputs");

  util::Table table({"input", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig16_inputs.csv",
                      {"input", "accuracy"});

  for (const auto mode :
       {core::FeatureMode::kRssiOnly, core::FeatureMode::kPhaseOnly,
        core::FeatureMode::kFftOnly, core::FeatureMode::kMusicOnly,
        core::FeatureMode::kM2AI}) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.feature_mode = mode;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({core::feature_mode_name(mode), util::Table::pct(result.accuracy)});
    csv.add_row({core::feature_mode_name(mode), util::Table::fmt(result.accuracy, 4)});
  }

  table.print();
  std::printf("\n(paper ordering: RSSI < Phase < FFT < MUSIC < M2AI)\n");
  return 0;
}
