// Table I — standalone entry point. The experiment definition lives in
// bench/experiments/tab1_confusion.cpp.
#include "bench_common.hpp"
#include "experiments/experiments.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  exp::Registry registry;
  bench::register_all_experiments(registry);
  return bench::run_standalone(registry, "tab1_confusion");
}
