// Table I — confusion matrix of M2AI over the 12 two-person activity
// scenarios. Paper result: >= 93% per-class accuracy, 97% overall.
#include "bench_common.hpp"
#include "sim/activities.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Table I", "Confusion matrix of activity identification");

  const core::ExperimentConfig config = bench::headline_config();
  const core::DataSplit split = core::generate_dataset(config);
  const core::M2AIResult result = bench::run_m2ai(config, split);

  std::vector<std::string> labels;
  for (const auto& a : sim::activity_catalog()) labels.push_back(a.label);
  std::printf("%s\n", result.confusion.to_string(labels).c_str());

  util::CsvWriter csv(bench::results_dir() + "/tab1_confusion.csv",
                      {"actual", "predicted", "rate"});
  for (int a = 0; a < split.num_classes; ++a) {
    for (int p = 0; p < split.num_classes; ++p) {
      csv.add_row({labels[static_cast<std::size_t>(a)],
                   labels[static_cast<std::size_t>(p)],
                   util::Table::fmt(result.confusion.rate(a, p), 4)});
    }
  }

  std::printf("overall accuracy: %.1f%%  (paper: 97%%)\n", result.accuracy * 100.0);
  std::printf("minimum per-class accuracy: %.1f%%  (paper: >= 93%%)\n",
              result.confusion.min_class_accuracy() * 100.0);
  return 0;
}
