// Fig. 17 — network-architecture ablation on the same preprocessed inputs:
// CNN-only, LSTM-only, and the integrated CNN+LSTM. Paper result: the
// integrated design beats CNN-only by ~30 points and LSTM-only by ~25.
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 17", "Impact of the learning network architecture");

  util::Table table({"network", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig17_networks.csv",
                      {"network", "accuracy"});

  // Same dataset for all three architectures: this ablation is about the
  // network, not the data.
  const core::ExperimentConfig base = bench::sweep_config();
  const core::DataSplit split = core::generate_dataset(base);

  double cnn_lstm = 0.0, cnn_only = 0.0, lstm_only = 0.0;
  for (const auto arch : {core::NetworkArch::kCnnOnly, core::NetworkArch::kLstmOnly,
                          core::NetworkArch::kCnnLstm}) {
    core::ExperimentConfig config = base;
    config.model.arch = arch;
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({core::network_arch_name(arch), util::Table::pct(result.accuracy)});
    csv.add_row({core::network_arch_name(arch), util::Table::fmt(result.accuracy, 4)});
    switch (arch) {
      case core::NetworkArch::kCnnLstm: cnn_lstm = result.accuracy; break;
      case core::NetworkArch::kCnnOnly: cnn_only = result.accuracy; break;
      case core::NetworkArch::kLstmOnly: lstm_only = result.accuracy; break;
    }
  }

  table.print();
  std::printf("\nCNN+LSTM gain: %+.1f points over CNN-only (paper: ~+30), "
              "%+.1f over LSTM-only (paper: ~+25)\n",
              (cnn_lstm - cnn_only) * 100.0, (cnn_lstm - lstm_only) * 100.0);
  return 0;
}
