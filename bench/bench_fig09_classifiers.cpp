// Fig. 9 — standalone entry point. The experiment definition lives in
// bench/experiments/fig09_classifiers.cpp; this binary runs it through the
// same sharded runner as the m2ai_bench suite driver, so the CSV is
// byte-identical either way.
#include "bench_common.hpp"
#include "experiments/experiments.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  exp::Registry registry;
  bench::register_all_experiments(registry);
  return bench::run_standalone(registry, "fig09_classifiers");
}
