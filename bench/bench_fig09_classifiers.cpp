// Fig. 9 — Overall activity identification performance: M2AI vs the ten
// conventional classifiers. Paper result: M2AI 97%, runner-up (linear SVM)
// ~70%, i.e. a ~27-point gain.
#include <memory>

#include "bench_common.hpp"
#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gaussian_process.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/qda.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm_linear.hpp"
#include "ml/svm_rbf.hpp"
#include "util/log.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 9", "M2AI vs conventional classifiers (12 activities)");

  const core::ExperimentConfig config = bench::headline_config();
  const core::DataSplit split = core::generate_dataset(config);

  util::Table table({"classifier", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig09_classifiers.csv",
                      {"classifier", "accuracy"});

  const core::M2AIResult m2ai = bench::run_m2ai(config, split);
  table.add_row({"M2AI (CNN+LSTM)", util::Table::pct(m2ai.accuracy)});
  csv.add_row({"M2AI", util::Table::fmt(m2ai.accuracy, 4)});

  std::vector<std::unique_ptr<ml::Classifier>> baselines;
  baselines.push_back(std::make_unique<ml::KnnClassifier>(5));
  baselines.push_back(std::make_unique<ml::LinearSvm>());
  baselines.push_back(std::make_unique<ml::RbfSvm>());
  baselines.push_back(std::make_unique<ml::GaussianProcessClassifier>());
  baselines.push_back(std::make_unique<ml::DecisionTree>());
  baselines.push_back(std::make_unique<ml::RandomForest>());
  baselines.push_back(std::make_unique<ml::MlpClassifier>());
  baselines.push_back(std::make_unique<ml::AdaBoost>());
  baselines.push_back(std::make_unique<ml::GaussianNaiveBayes>());
  baselines.push_back(std::make_unique<ml::Qda>());

  double best_baseline = 0.0;
  std::string best_name;
  for (auto& classifier : baselines) {
    util::log_info() << "fitting baseline: " << classifier->name();
    const double acc = core::baseline_accuracy(*classifier, split, config.seed);
    table.add_row({classifier->name(), util::Table::pct(acc)});
    csv.add_row({classifier->name(), util::Table::fmt(acc, 4)});
    if (acc > best_baseline) {
      best_baseline = acc;
      best_name = classifier->name();
    }
  }

  // The sequence-aware prior art (Secs. I/VIII): per-class Gaussian HMMs.
  util::log_info() << "fitting baseline: HMM (Gaussian)";
  const double hmm_acc = core::hmm_baseline_accuracy(split);
  table.add_row({"HMM (Gaussian)", util::Table::pct(hmm_acc)});
  csv.add_row({"HMM (Gaussian)", util::Table::fmt(hmm_acc, 4)});
  if (hmm_acc > best_baseline) {
    best_baseline = hmm_acc;
    best_name = "HMM (Gaussian)";
  }

  table.print();
  std::printf("\nM2AI gain over runner-up (%s): %+.1f points (paper: +27 at 97%% vs 70%%)\n",
              best_name.c_str(), (m2ai.accuracy - best_baseline) * 100.0);
  return 0;
}
