// Fig. 14 — impact of the number of reader antennas (the R420 has at most
// four ports). Paper result: accuracy rises from 2 to 4 antennas as more
// multipath angle information becomes resolvable.
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 14", "Impact of the number of antennas");

  util::Table table({"antennas", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig14_antennas.csv",
                      {"antennas", "accuracy"});

  for (const int antennas : {2, 3, 4}) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.num_antennas = antennas;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({std::to_string(antennas), util::Table::pct(result.accuracy)});
    csv.add_row({std::to_string(antennas), util::Table::fmt(result.accuracy, 4)});
  }

  table.print();
  std::printf("\n(paper: monotone improvement from 2 to 4 antennas)\n");
  return 0;
}
