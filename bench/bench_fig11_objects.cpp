// Fig. 11 — standalone entry point. The experiment definition lives in
// bench/experiments/fig11_objects.cpp.
#include "bench_common.hpp"
#include "experiments/experiments.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  exp::Registry registry;
  bench::register_all_experiments(registry);
  return bench::run_standalone(registry, "fig11_objects");
}
