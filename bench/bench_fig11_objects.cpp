// Fig. 11 — impact of the number of simultaneously acting persons.
// Paper result: accuracy degrades gracefully, staying near 80% with three
// people in the scene.
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 11", "Impact of the number of objects (persons)");

  util::Table table({"persons", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig11_objects.csv",
                      {"persons", "accuracy"});

  for (const int persons : {1, 2, 3}) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.num_persons = persons;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({std::to_string(persons), util::Table::pct(result.accuracy)});
    csv.add_row({std::to_string(persons), util::Table::fmt(result.accuracy, 4)});
  }

  table.print();
  std::printf("\n(paper: high accuracy at 1-2 persons, ~80%% at 3)\n");
  return 0;
}
