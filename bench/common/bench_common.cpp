#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "util/log.hpp"

namespace m2ai::bench {

double env_scale() {
  const char* raw = std::getenv("M2AI_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double v = std::atof(raw);
  if (v <= 0.0) return 1.0;
  return std::clamp(v, 0.05, 4.0);
}

namespace {
void apply_scale(core::ExperimentConfig& config) {
  const double s = env_scale();
  config.samples_per_class =
      std::max(4, static_cast<int>(config.samples_per_class * s + 0.5));
  config.train.epochs = std::max(3, static_cast<int>(config.train.epochs * s + 0.5));
}
}  // namespace

core::ExperimentConfig headline_config() {
  core::ExperimentConfig config;
  config.samples_per_class = 64;
  config.train.epochs = 36;
  config.pipeline.windows_per_sample = 24;
  config.train.crop_frames = 16;
  apply_scale(config);
  return config;
}

core::ExperimentConfig sweep_config() {
  core::ExperimentConfig config;
  config.samples_per_class = 36;
  config.train.epochs = 30;
  config.pipeline.windows_per_sample = 24;
  config.train.crop_frames = 16;
  apply_scale(config);
  return config;
}

void print_header(const std::string& experiment_id, const std::string& title) {
  std::printf("================================================================\n");
  std::printf("M2AI reproduction — %s\n", experiment_id.c_str());
  std::printf("%s\n", title.c_str());
  if (env_scale() != 1.0) {
    std::printf("(M2AI_BENCH_SCALE=%.2f — reduced-budget run)\n", env_scale());
  }
  std::printf("================================================================\n");
}

core::M2AIResult run_m2ai(const core::ExperimentConfig& config,
                          const core::DataSplit& split) {
  util::log_info() << "training M2AI (" << core::network_arch_name(config.model.arch)
                   << ", " << core::feature_mode_name(config.pipeline.feature_mode)
                   << ", " << config.train.epochs << " epochs)";
  const core::M2AIResult result = core::train_and_evaluate(config, split);
  util::log_info() << "accuracy " << result.accuracy << " in "
                   << result.train_seconds << " s";
  return result;
}

std::string results_dir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

}  // namespace m2ai::bench
