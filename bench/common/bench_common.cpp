#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "kern/backend.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "par/parallel_for.hpp"
#include "util/log.hpp"

namespace m2ai::bench {

namespace {
double g_scale_override = 0.0;  // <= 0: use the environment
}  // namespace

void set_scale_override(double scale) { g_scale_override = scale; }

double env_scale() {
  if (g_scale_override > 0.0) return std::clamp(g_scale_override, 0.05, 4.0);
  const char* raw = std::getenv("M2AI_BENCH_SCALE");
  if (raw == nullptr) return 1.0;
  const double v = std::atof(raw);
  if (v <= 0.0) return 1.0;
  return std::clamp(v, 0.05, 4.0);
}

namespace {

std::string g_metrics_out;
std::string g_trace_out;
bool g_trace = false;

void export_observability() {
  if (!g_metrics_out.empty()) {
    try {
      obs::write_report(g_metrics_out);
      std::fprintf(stderr, "metrics written to %s\n", g_metrics_out.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "metrics export failed: %s\n", e.what());
    }
  }
  if (!g_trace_out.empty()) {
    try {
      obs::write_chrome_trace(g_trace_out);
      std::fprintf(stderr, "timeline written to %s (open in ui.perfetto.dev)\n",
                   g_trace_out.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "timeline export failed: %s\n", e.what());
    }
  }
  if (g_trace) {
    std::fputs(obs::span_tree().c_str(), stderr);
  }
}

void apply_scale(core::ExperimentConfig& config) {
  const double s = env_scale();
  config.samples_per_class =
      std::max(4, static_cast<int>(config.samples_per_class * s + 0.5));
  config.train.epochs = std::max(3, static_cast<int>(config.train.epochs * s + 0.5));
}
}  // namespace

int init_observability(int argc, char** argv) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token == "--trace") {
      g_trace = true;
    } else if (token == "--metrics-out" && i + 1 < argc) {
      g_metrics_out = argv[++i];
    } else if (token.rfind("--metrics-out=", 0) == 0) {
      g_metrics_out = token.substr(std::string("--metrics-out=").size());
    } else if (token == "--trace-out" && i + 1 < argc) {
      g_trace_out = argv[++i];
    } else if (token.rfind("--trace-out=", 0) == 0) {
      g_trace_out = token.substr(std::string("--trace-out=").size());
    } else if (token == "--threads" && i + 1 < argc) {
      par::set_num_threads(std::atoi(argv[++i]));
    } else if (token.rfind("--threads=", 0) == 0) {
      par::set_num_threads(std::atoi(token.c_str() + std::string("--threads=").size()));
    } else if (token == "--backend" && i + 1 < argc) {
      kern::set_backend_by_name(argv[++i]);
    } else if (token.rfind("--backend=", 0) == 0) {
      kern::set_backend_by_name(token.substr(std::string("--backend=").size()));
    } else {
      argv[out++] = argv[i];
    }
  }
  argv[out] = nullptr;
  if (g_trace || !g_metrics_out.empty() || !g_trace_out.empty()) {
    obs::set_enabled(true);
    std::atexit(export_observability);
  }
  if (!g_trace_out.empty()) {
    obs::register_thread_name("main");
    obs::set_timeline_enabled(true);
  }
  return out;
}

core::ExperimentConfig headline_config() {
  core::ExperimentConfig config;
  config.samples_per_class = 64;
  config.train.epochs = 36;
  config.pipeline.windows_per_sample = 24;
  config.train.crop_frames = 16;
  apply_scale(config);
  return config;
}

core::ExperimentConfig sweep_config() {
  core::ExperimentConfig config;
  config.samples_per_class = 36;
  config.train.epochs = 30;
  config.pipeline.windows_per_sample = 24;
  config.train.crop_frames = 16;
  apply_scale(config);
  return config;
}

void print_header(const std::string& experiment_id, const std::string& title) {
  std::printf("================================================================\n");
  std::printf("M2AI reproduction — %s\n", experiment_id.c_str());
  std::printf("%s\n", title.c_str());
  if (env_scale() != 1.0) {
    std::printf("(M2AI_BENCH_SCALE=%.2f — reduced-budget run)\n", env_scale());
  }
  std::printf("================================================================\n");
}

core::M2AIResult run_m2ai(const core::ExperimentConfig& config,
                          const core::DataSplit& split) {
  util::log_info() << "training M2AI (" << core::network_arch_name(config.model.arch)
                   << ", " << core::feature_mode_name(config.pipeline.feature_mode)
                   << ", " << config.train.epochs << " epochs)";
  const core::M2AIResult result = core::train_and_evaluate(config, split);
  util::log_info() << "accuracy " << result.accuracy << " in "
                   << result.train_seconds << " s";
  return result;
}

std::string results_dir() {
  const std::string dir = "bench_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

void print_experiment_report(const exp::Experiment& experiment,
                             const std::vector<exp::CellOutcome>& outcomes) {
  util::Table table(experiment.columns);
  exp::Rows merged;
  for (const exp::CellOutcome& outcome : outcomes) {
    if (outcome.experiment_id != experiment.id) continue;
    for (const std::vector<std::string>& row : outcome.rows) {
      table.add_row(row);
      merged.push_back(row);
    }
  }
  if (experiment.table_in_report) table.print();
  if (experiment.summarize) experiment.summarize(merged);
}

int run_standalone(const exp::Registry& registry, const std::string& id) {
  const exp::Experiment* experiment = registry.find(id);
  if (experiment == nullptr) {
    std::fprintf(stderr, "unknown experiment id '%s'\n", id.c_str());
    return 1;
  }
  print_header(experiment->figure, experiment->title);
  try {
    exp::RunnerOptions options;
    const exp::SuiteResult result = exp::run_cells(registry, {id}, options);
    exp::write_experiment_csvs(registry, result.outcomes, results_dir());
    print_experiment_report(*experiment, result.outcomes);
    std::printf("\nCSV written to %s/%s.csv\n", results_dir().c_str(), id.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "experiment '%s' failed: %s\n", id.c_str(), e.what());
    return 1;
  }
}

}  // namespace m2ai::bench
