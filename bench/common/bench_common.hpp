// Shared experiment harness for the per-figure bench binaries.
//
// Every binary prints the paper's rows/series as an aligned table and also
// writes a CSV next to the binary (./bench_results/<id>.csv). Scale can be
// reduced for smoke runs with M2AI_BENCH_SCALE (e.g. 0.25), which shrinks
// both the dataset and the epoch budget.
//
// Observability: every bench binary accepts
//   --metrics-out <path>   write a machine-readable timing breakdown (JSON,
//                          or CSV when the path ends in .csv) at exit
//   --trace                print the span call tree to stderr at exit
//   --trace-out <path>     write a Chrome trace-event JSON timeline at exit
//                          (open in ui.perfetto.dev or chrome://tracing)
// All flags enable the obs layer (off by default, so instrumented hot
// paths cost one relaxed atomic load per call site); --trace-out also
// enables the flight-recorder timeline.
//
// Parallelism: every bench binary accepts
//   --threads <N>          worker threads for the deterministic parallel
//                          layer — dataset generation, training (replica
//                          gradient reduction), and evaluation (default:
//                          hardware concurrency; results and trained
//                          checkpoints are bitwise-identical at any N)
//
// Kernel backend: every bench binary accepts
//   --backend <ref|fast>   kernel backend for inference hot paths (default
//                          ref, or M2AI_KERN_BACKEND; `fast` falls back to
//                          ref when the CPU lacks AVX2/FMA). Training
//                          always uses ref — see DESIGN.md §11.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "exp/experiment.hpp"
#include "exp/runner.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace m2ai::bench {

// Scale factor from M2AI_BENCH_SCALE (default 1.0, clamped to [0.05, 4]).
double env_scale();

// Process-local override of the scale factor (the suite driver's
// --smoke/--scale flags); takes precedence over the environment. Call
// before building experiment configs — registration snapshots the scale.
void set_scale_override(double scale);

// Parses and strips --metrics-out/--trace/--trace-out/--threads/--backend
// from argv (argv is compacted in place and re-null-terminated; the new
// argc is returned). When an obs flag is present, enables the obs layer and
// registers the matching export to run at normal process exit; --threads
// configures the parallel layer; --backend selects the kernel backend.
// Call first thing in main().
int init_observability(int argc, char** argv);

// Headline configuration (Fig. 9 / Table I): the paper's default setup.
core::ExperimentConfig headline_config();

// Sweep configuration: slightly smaller budget for the multi-run figures.
core::ExperimentConfig sweep_config();

// Banner printed at the top of each bench binary.
void print_header(const std::string& experiment_id, const std::string& title);

// Runs the full M2AI path on `config` and returns the result, logging
// progress to stderr.
core::M2AIResult run_m2ai(const core::ExperimentConfig& config,
                          const core::DataSplit& split);

// Directory for CSV artifacts (created on demand): "bench_results".
std::string results_dir();

// Prints the experiment's merged rows as an aligned table, then runs its
// summarize hook (the per-figure paper-comparison lines).
void print_experiment_report(const exp::Experiment& experiment,
                             const std::vector<exp::CellOutcome>& outcomes);

// Shared main body of the thin per-figure binaries: runs `id`'s cells
// through the experiment runner (honoring --threads), writes
// bench_results/<id>.csv, and prints the table + summary. Returns the
// process exit code.
int run_standalone(const exp::Registry& registry, const std::string& id);

}  // namespace m2ai::bench
