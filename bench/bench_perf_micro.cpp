// Microbenchmarks behind the paper's realtime claim: per-stage throughput of
// the DSP pipeline and per-sequence inference latency of the deep model.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "dsp/eig.hpp"
#include "dsp/fft.hpp"
#include "dsp/music.hpp"
#include "dsp/periodogram.hpp"
#include "nn/optimizer.hpp"
#include "rf/steering.hpp"
#include "util/rng.hpp"

using namespace m2ai;

namespace {

std::vector<std::vector<dsp::cdouble>> make_snapshots(int n_ant, int count,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  const auto a = rf::steering_vector(70.0, n_ant, 0.08, 0.33);
  std::vector<std::vector<dsp::cdouble>> snaps(static_cast<std::size_t>(count));
  for (auto& snap : snaps) {
    const auto s = std::polar(1.0, rng.uniform(0.0, 2.0 * M_PI));
    snap.resize(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      snap[i] = s * a[i] + dsp::cdouble{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05)};
    }
  }
  return snaps;
}

void BM_Fft1024(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<dsp::cdouble> x(1024);
  for (auto& v : x) v = dsp::cdouble{rng.normal(), rng.normal()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(BM_Fft1024);

void BM_FftBluestein180(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<dsp::cdouble> x(180);
  for (auto& v : x) v = dsp::cdouble{rng.normal(), rng.normal()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(BM_FftBluestein180);

void BM_EigHermitian4x4(benchmark::State& state) {
  const auto snaps = make_snapshots(4, 16, 3);
  const auto r = dsp::sample_covariance(snaps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::eig_hermitian(r));
  }
}
BENCHMARK(BM_EigHermitian4x4);

void BM_MusicSpectrum(benchmark::State& state) {
  dsp::MusicOptions opts;
  opts.num_antennas = 4;
  dsp::MusicEstimator music(opts);
  const auto snaps = make_snapshots(4, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(music.estimate(snaps));
  }
}
BENCHMARK(BM_MusicSpectrum)->Arg(8)->Arg(16)->Arg(32);

void BM_Periodogram(benchmark::State& state) {
  const auto snaps = make_snapshots(4, 16, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::averaged_periodogram(snaps));
  }
}
BENCHMARK(BM_Periodogram);

void BM_SimulateSample(benchmark::State& state) {
  core::PipelineConfig config;
  config.windows_per_sample = 16;
  config.bootstrap_sec = 4.0;
  core::Pipeline pipeline(config, 99);
  int activity = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.simulate_sample(activity));
    activity = activity % 12 + 1;
  }
}
BENCHMARK(BM_SimulateSample)->Unit(benchmark::kMillisecond);

void BM_InferenceLatency(benchmark::State& state) {
  // Realtime claim: classifying one 16-frame sequence must be far faster
  // than the 6.4 s it spans.
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(7);
  core::FrameSequence frames;
  for (int t = 0; t < 16; ++t) {
    core::SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({6, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({6, 4});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(frames));
  }
}
BENCHMARK(BM_InferenceLatency)->Unit(benchmark::kMicrosecond);

void BM_TrainStep(benchmark::State& state) {
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(8);
  core::Sample sample;
  sample.label = 3;
  for (int t = 0; t < 16; ++t) {
    core::SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({6, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({6, 4});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    sample.frames.push_back(std::move(f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_step(sample));
    nn::zero_gradients(net.params());
  }
}
BENCHMARK(BM_TrainStep)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --metrics-out/--trace are parsed
// (and stripped) first so the per-stage spans recorded inside the benchmarked
// code are exported alongside the google-benchmark table.
int main(int argc, char** argv) {
  argc = m2ai::bench::init_observability(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
