// Microbenchmarks behind the paper's realtime claim: per-stage throughput of
// the DSP pipeline and per-sequence inference latency of the deep model.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "dsp/eig.hpp"
#include "dsp/fft.hpp"
#include "dsp/music.hpp"
#include "dsp/periodogram.hpp"
#include "core/experiment.hpp"
#include "kern/backend.hpp"
#include "kern/eig4.hpp"
#include "kern/kernels.hpp"
#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "par/parallel_for.hpp"
#include "rf/steering.hpp"
#include "util/rng.hpp"

using namespace m2ai;

namespace {

std::vector<std::vector<dsp::cdouble>> make_snapshots(int n_ant, int count,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  const auto a = rf::steering_vector(70.0, n_ant, 0.08, 0.33);
  std::vector<std::vector<dsp::cdouble>> snaps(static_cast<std::size_t>(count));
  for (auto& snap : snaps) {
    const auto s = std::polar(1.0, rng.uniform(0.0, 2.0 * M_PI));
    snap.resize(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      snap[i] = s * a[i] + dsp::cdouble{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05)};
    }
  }
  return snaps;
}

void BM_Fft1024(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<dsp::cdouble> x(1024);
  for (auto& v : x) v = dsp::cdouble{rng.normal(), rng.normal()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(BM_Fft1024);

void BM_FftBluestein180(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<dsp::cdouble> x(180);
  for (auto& v : x) v = dsp::cdouble{rng.normal(), rng.normal()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(BM_FftBluestein180);

void BM_EigHermitian4x4(benchmark::State& state) {
  const auto snaps = make_snapshots(4, 16, 3);
  const auto r = dsp::sample_covariance(snaps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::eig_hermitian(r));
  }
}
BENCHMARK(BM_EigHermitian4x4);

void BM_MusicSpectrum(benchmark::State& state) {
  dsp::MusicOptions opts;
  opts.num_antennas = 4;
  dsp::MusicEstimator music(opts);
  const auto snaps = make_snapshots(4, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(music.estimate(snaps));
  }
}
BENCHMARK(BM_MusicSpectrum)->Arg(8)->Arg(16)->Arg(32);

void BM_Periodogram(benchmark::State& state) {
  const auto snaps = make_snapshots(4, 16, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::averaged_periodogram(snaps));
  }
}
BENCHMARK(BM_Periodogram);

void BM_SimulateSample(benchmark::State& state) {
  core::PipelineConfig config;
  config.windows_per_sample = 16;
  config.bootstrap_sec = 4.0;
  core::Pipeline pipeline(config, 99);
  int activity = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.simulate_sample(activity));
    activity = activity % 12 + 1;
  }
}
BENCHMARK(BM_SimulateSample)->Unit(benchmark::kMillisecond);

void BM_InferenceLatency(benchmark::State& state) {
  // Realtime claim: classifying one 16-frame sequence must be far faster
  // than the 6.4 s it spans.
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(7);
  core::FrameSequence frames;
  for (int t = 0; t < 16; ++t) {
    core::SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({6, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({6, 4});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(frames));
  }
}
BENCHMARK(BM_InferenceLatency)->Unit(benchmark::kMicrosecond);

void BM_TrainStep(benchmark::State& state) {
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(8);
  core::Sample sample;
  sample.label = 3;
  for (int t = 0; t < 16; ++t) {
    core::SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({6, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({6, 4});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    sample.frames.push_back(std::move(f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_step(sample));
    nn::zero_gradients(net.params());
  }
}
BENCHMARK(BM_TrainStep)->Unit(benchmark::kMicrosecond);

// Parallel-scaling section: dataset generation (the dominant cost of every
// figure bench) at 1/2/4/8 threads, with a determinism cross-check. Results
// land in the obs registry so --metrics-out exports a machine-readable
// speedup trajectory (the committed BENCH_*.json files).
std::uint64_t dataset_fingerprint(const core::DataSplit& split) {
  // FNV-1a over every tensor byte pattern of every frame, order-sensitive.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  auto mix_tensor = [&](const nn::Tensor& t) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      std::uint32_t bits;
      const float f = t[i];
      std::memcpy(&bits, &f, sizeof(bits));
      mix(bits);
    }
  };
  for (const auto* side : {&split.train, &split.test}) {
    for (const core::Sample& s : *side) {
      mix(static_cast<std::uint64_t>(s.label));
      for (const core::SpectrumFrame& f : s.frames) {
        if (f.has_pseudo) mix_tensor(f.pseudo);
        if (f.has_aux) mix_tensor(f.aux);
      }
    }
  }
  return h;
}

void run_parallel_scaling() {
  core::ExperimentConfig config;
  config.samples_per_class = std::max(2, static_cast<int>(4 * bench::env_scale()));
  config.pipeline.windows_per_sample = 12;
  config.pipeline.bootstrap_sec = 6.0;

  const int hw = par::hardware_threads();
  std::printf("parallel scaling — dataset generation (%d samples, %d hardware threads)\n",
              config.samples_per_class * 12, hw);
  std::printf("%8s %12s %10s %14s\n", "threads", "seconds", "speedup", "fingerprint");

  const int saved = par::num_threads();
  double serial_seconds = 0.0;
  std::uint64_t serial_fp = 0;
  bool deterministic = true;
  for (int threads : {1, 2, 4, 8}) {
    if (threads > 2 * hw) break;  // oversubscription beyond 2x tells us nothing
    par::set_num_threads(threads);
    const auto start = std::chrono::steady_clock::now();
    const core::DataSplit split = core::generate_dataset(config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const std::uint64_t fp = dataset_fingerprint(split);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fp = fp;
    } else if (fp != serial_fp) {
      deterministic = false;
    }
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    std::printf("%8d %12.3f %9.2fx %14llx\n", threads, seconds, speedup,
                static_cast<unsigned long long>(fp));
    const std::string tag = "par.dataset_gen.t" + std::to_string(threads);
    obs::registry().gauge(tag + ".seconds").set(seconds);
    obs::registry().gauge(tag + ".speedup").set(speedup);
  }
  par::set_num_threads(saved);
  obs::registry().gauge("par.hardware_threads").set(static_cast<double>(hw));
  obs::registry().gauge("par.deterministic").set(deterministic ? 1.0 : 0.0);
  std::printf("determinism across thread counts: %s\n\n",
              deterministic ? "bitwise-identical" : "MISMATCH");
}

std::uint64_t params_fingerprint(core::M2AINetwork& net) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const nn::Param* p : net.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      std::uint32_t bits;
      const float f = p->value[i];
      std::memcpy(&bits, &f, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

// Training-scaling section: the data-parallel trainer (per-sample gradients
// sharded across network replicas, reduced in index order) at 1/2/4/8
// threads, with a checkpoint fingerprint cross-check. One dataset is
// generated up front (generation is itself thread-count-invariant), then
// each thread count trains an identically-seeded network from scratch.
void run_training_scaling() {
  core::ExperimentConfig config;
  config.samples_per_class = std::max(2, static_cast<int>(2 * bench::env_scale()));
  config.pipeline.windows_per_sample = 10;
  config.pipeline.bootstrap_sec = 6.0;
  config.train.epochs = std::max(2, static_cast<int>(3 * bench::env_scale()));
  config.train.batch_size = 8;
  config.train.crop_frames = 8;

  const core::DataSplit split = core::generate_dataset(config);

  const int hw = par::hardware_threads();
  std::printf("parallel scaling — LSTM training (%zu train sequences, %d epochs, %d hardware threads)\n",
              split.train.size(), config.train.epochs, hw);
  std::printf("%8s %12s %10s %14s\n", "threads", "seconds", "speedup", "fingerprint");

  const int saved = par::num_threads();
  double serial_seconds = 0.0;
  std::uint64_t serial_fp = 0;
  bool deterministic = true;
  for (int threads : {1, 2, 4, 8}) {
    if (threads > 2 * hw) break;  // oversubscription beyond 2x tells us nothing
    par::set_num_threads(threads);
    core::M2AINetwork net(config.model, config.pipeline.feature_mode,
                          config.pipeline.num_persons * config.pipeline.tags_per_person,
                          config.pipeline.num_antennas, split.num_classes);
    core::Trainer trainer(net, config.train);
    const auto start = std::chrono::steady_clock::now();
    trainer.fit(split.train);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const std::uint64_t fp = params_fingerprint(net);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fp = fp;
    } else if (fp != serial_fp) {
      deterministic = false;
    }
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    std::printf("%8d %12.3f %9.2fx %14llx\n", threads, seconds, speedup,
                static_cast<unsigned long long>(fp));
    const std::string tag = "par.train.t" + std::to_string(threads);
    obs::registry().gauge(tag + ".seconds").set(seconds);
    obs::registry().gauge(tag + ".speedup").set(speedup);
  }
  par::set_num_threads(saved);
  obs::registry().gauge("par.train.deterministic").set(deterministic ? 1.0 : 0.0);
  std::printf("checkpoint determinism across thread counts: %s\n\n",
              deterministic ? "bitwise-identical" : "MISMATCH");
}

// Kernel section: ns/op of each kern:: microkernel at the shapes the model
// actually runs, plus an old-vs-new span comparison against the pre-kernel
// tree. Gauges land under kern.* so --metrics-out exports them.

template <typename F>
double measure_ns_per_op(F&& body) {
  // Warm up (first call touches cold caches / builds plans), then time
  // enough iterations to dominate the clock reads.
  body();
  int iters = 1;
  double seconds = 0.0;
  for (;;) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body();
    seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (seconds > 0.02 || iters > (1 << 24)) break;
    iters *= 4;
  }
  return seconds / static_cast<double>(iters) * 1e9;
}

void run_kernel_micro() {
  std::printf("compute kernels — ns/op at the model's hot-path shapes\n");
  util::Rng rng(42);

  // LSTM gate GEMV: 4H x (I+H) at H=32 with the merge layer's 64 inputs.
  const int rows = 128, cols = 96;
  std::vector<float> w(static_cast<std::size_t>(rows) * cols), x(cols), b(rows), y(rows);
  for (auto& v : w) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  std::vector<float> wg(w.size(), 0.0f), g(rows, 0.5f), bg(rows, 0.0f), dx(cols, 0.0f);

  // Conv1d row: the first pseudo-branch layer (L=180, K=7, stride 2, pad 3).
  std::vector<float> cx(180), cw(7), cpartial(90);
  for (auto& v : cx) v = static_cast<float>(rng.normal());
  for (auto& v : cw) v = static_cast<float>(rng.normal());

  // MUSIC projection: 1 noise vector x 4 antennas over 180 bins.
  const auto steer_src = rf::steering_vector(50.0, 4, 0.08, 0.33);
  std::vector<dsp::cdouble> steer(180 * 4), un(4);
  for (std::size_t i = 0; i < steer.size(); ++i) {
    steer[i] = steer_src[i % 4] * std::polar(1.0, 0.01 * static_cast<double>(i));
  }
  for (std::size_t i = 0; i < un.size(); ++i) un[i] = steer_src[i];
  std::vector<double> denom(180);

  // eig4: a real sample covariance.
  const auto snaps = make_snapshots(4, 16, 11);
  const auto cov = dsp::sample_covariance(snaps);
  dsp::cdouble cov_flat[16], vecs[16];
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) cov_flat[r * 4 + c] = cov(r, c);
  }
  double values[4];

  // FFT plan at the periodogram's snapshot length (4 antennas).
  const auto plan = dsp::shared_fft_plan(4);
  std::vector<dsp::cdouble> fin(4), fout(4), fscratch;
  for (auto& v : fin) v = dsp::cdouble{rng.normal(), rng.normal()};

  struct Row {
    const char* name;
    double ns;
  };
  const Row rows_out[] = {
      {"gemv_128x96", measure_ns_per_op([&] {
         kern::gemv(w.data(), x.data(), b.data(), y.data(), rows, cols);
         benchmark::DoNotOptimize(y.data());
       })},
      {"gemv_backward_128x96", measure_ns_per_op([&] {
         kern::gemv_backward_acc(w.data(), wg.data(), x.data(), g.data(), bg.data(),
                                 dx.data(), rows, cols, true);
         benchmark::DoNotOptimize(wg.data());
       })},
      {"conv1d_row_180_k7s2p3", measure_ns_per_op([&] {
         std::memset(cpartial.data(), 0, cpartial.size() * sizeof(float));
         kern::conv1d_row_acc(cx.data(), 180, cw.data(), 7, 2, 3, cpartial.data(), 90);
         benchmark::DoNotOptimize(cpartial.data());
       })},
      {"noise_projection_1x4x180", measure_ns_per_op([&] {
         kern::noise_projection(un.data(), 1, steer.data(), 180, 4, denom.data());
         benchmark::DoNotOptimize(denom.data());
       })},
      {"eig_hermitian4", measure_ns_per_op([&] {
         kern::eig_hermitian4(cov_flat, 1e-12, 64, values, vecs);
         benchmark::DoNotOptimize(values);
       })},
      {"fft_plan_transform_4", measure_ns_per_op([&] {
         plan->transform(fin.data(), fout.data(), false, fscratch);
         benchmark::DoNotOptimize(fout.data());
       })},
  };
  std::printf("%28s %12s\n", "kernel", "ns/op");
  for (const Row& r : rows_out) {
    std::printf("%28s %12.1f\n", r.name, r.ns);
    obs::registry().gauge(std::string("kern.") + r.name + ".ns_per_op").set(r.ns);
  }
  std::printf("\n");
}

// Backend section: every dispatched kernel timed under the reference and
// fast tables at the serving shapes. Exports
// kern.<backend>.<name>.ns_per_op and kern.fast.<name>.speedup_vs_ref so
// the committed BENCH json carries the ref-vs-fast story.
void run_backend_comparison() {
  if (!kern::fast_backend_supported()) {
    std::printf("kernel backends — fast backend unsupported on this CPU "
                "(reference only)\n\n");
    obs::registry().gauge("kern.fast.supported").set(0.0);
    return;
  }
  obs::registry().gauge("kern.fast.supported").set(1.0);
  util::Rng rng(43);

  // LSTM gate GEMV 4H x (I+H), H = I = 32; gate GEMM over a batch of 8.
  const int rows = 128, cols = 64, batch = 8;
  std::vector<float> w(static_cast<std::size_t>(rows) * cols), x(cols), b(rows),
      y(rows);
  for (auto& v : w) v = static_cast<float>(rng.normal());
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  std::vector<float> a(static_cast<std::size_t>(batch) * cols),
      wt(static_cast<std::size_t>(cols) * rows),
      c(static_cast<std::size_t>(batch) * rows), bias(rows);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : bias) v = static_cast<float>(rng.normal());
  for (int j = 0; j < rows; ++j) {
    for (int k = 0; k < cols; ++k) {
      wt[static_cast<std::size_t>(k) * rows + j] = w[static_cast<std::size_t>(j) * cols + k];
    }
  }

  // Conv1d row: first pseudo-branch layer (L=180, K=7, stride 2, pad 3).
  std::vector<float> cx(180), cw(7), cpartial(90);
  for (auto& v : cx) v = static_cast<float>(rng.normal());
  for (auto& v : cw) v = static_cast<float>(rng.normal());

  // MUSIC projection: 2 noise vectors x 4 antennas over 180 bins.
  const auto steer_src = rf::steering_vector(50.0, 4, 0.08, 0.33);
  std::vector<dsp::cdouble> steer(180 * 4), un(8);
  for (std::size_t i = 0; i < steer.size(); ++i) {
    steer[i] = steer_src[i % 4] * std::polar(1.0, 0.01 * static_cast<double>(i));
  }
  for (std::size_t i = 0; i < un.size(); ++i) un[i] = steer_src[i % 4];
  std::vector<double> denom(180);

  struct Row {
    const char* name;
    double ref_ns;
    double fast_ns;
  };
  const auto time_backend = [&](const kern::Backend& be) {
    struct Times {
      double gemv, gemm_bias, conv, music;
    } t{};
    t.gemv = measure_ns_per_op([&] {
      be.gemv(w.data(), x.data(), b.data(), y.data(), rows, cols);
      benchmark::DoNotOptimize(y.data());
    });
    t.gemm_bias = measure_ns_per_op([&] {
      be.gemm_bias(a.data(), wt.data(), bias.data(), c.data(), batch, cols, rows);
      benchmark::DoNotOptimize(c.data());
    });
    t.conv = measure_ns_per_op([&] {
      std::memset(cpartial.data(), 0, cpartial.size() * sizeof(float));
      be.conv1d_row_acc(cx.data(), 180, cw.data(), 7, 2, 3, cpartial.data(), 90);
      benchmark::DoNotOptimize(cpartial.data());
    });
    t.music = measure_ns_per_op([&] {
      be.noise_projection(un.data(), 2, steer.data(), 180, 4, denom.data());
      benchmark::DoNotOptimize(denom.data());
    });
    return t;
  };
  const auto ref = time_backend(kern::reference_backend());
  const auto fast = time_backend(kern::fast_backend());
  const Row rows_out[] = {
      {"gemv_128x64", ref.gemv, fast.gemv},
      {"gemm_bias_8x64x128", ref.gemm_bias, fast.gemm_bias},
      {"conv1d_row_180_k7s2p3", ref.conv, fast.conv},
      {"noise_projection_2x4x180", ref.music, fast.music},
  };
  std::printf("kernel backends — reference vs fast (ns/op)\n");
  std::printf("%28s %12s %12s %9s\n", "kernel", "ref", "fast", "speedup");
  for (const Row& r : rows_out) {
    const double speedup = r.fast_ns > 0.0 ? r.ref_ns / r.fast_ns : 0.0;
    std::printf("%28s %12.1f %12.1f %8.2fx\n", r.name, r.ref_ns, r.fast_ns,
                speedup);
    auto& reg = obs::registry();
    reg.gauge(std::string("kern.ref.") + r.name + ".ns_per_op").set(r.ref_ns);
    reg.gauge(std::string("kern.fast.") + r.name + ".ns_per_op").set(r.fast_ns);
    reg.gauge(std::string("kern.fast.") + r.name + ".speedup_vs_ref").set(speedup);
  }
  std::printf("\n");
}

// Timeline section: the flight recorder's contract is that a disabled
// timeline costs one relaxed atomic load per call site — within 2x of the
// no-op cost of a disabled ScopedSpan. The three gauges below let
// m2ai_obsdiff (and a reader of the committed BENCH json) hold it to that.
void run_timeline_overhead() {
  const bool obs_was_enabled = obs::enabled();
  const bool timeline_was_enabled = obs::timeline_enabled();
  std::printf("timeline record cost — ns/op (disabled path must stay ~free)\n");

  // Baseline: ScopedSpan with the whole obs layer off. One relaxed load.
  obs::set_enabled(false);
  obs::set_timeline_enabled(false);
  const double span_off = measure_ns_per_op([] {
    obs::ScopedSpan span("bench.noop");
    benchmark::DoNotOptimize(&span);
  });

  // Timeline off: the free-function record path gated by timeline_enabled().
  const double record_off = measure_ns_per_op([] {
    obs::timeline_instant("bench.ev");
  });

  // Timeline on: a full event lands in this thread's ring every call.
  obs::set_enabled(true);
  obs::set_timeline_enabled(true);
  const double record_on = measure_ns_per_op([] {
    obs::timeline_instant("bench.ev");
  });

  // The hot loop wrapped the ring millions of times; drop those events and
  // the dropped-event tally so they don't pollute the exported report.
  obs::set_timeline_enabled(false);
  obs::timeline_reset();
  obs::registry().counter("obs.timeline.dropped_events").reset();
  obs::set_enabled(obs_was_enabled);
  obs::set_timeline_enabled(timeline_was_enabled);

  std::printf("%28s %12.1f\n", "span_disabled", span_off);
  std::printf("%28s %12.1f\n", "timeline_record_off", record_off);
  std::printf("%28s %12.1f\n", "timeline_record_on", record_on);
  const double ratio = span_off > 0.0 ? record_off / span_off : 0.0;
  std::printf("disabled-path overhead vs no-op span: %.2fx (budget 2.00x)\n\n",
              ratio);
  obs::registry().gauge("obs.span.disabled.ns_per_op").set(span_off);
  obs::registry().gauge("obs.timeline.record.off.ns_per_op").set(record_off);
  obs::registry().gauge("obs.timeline.record.on.ns_per_op").set(record_on);
  obs::registry().gauge("obs.timeline.disabled_overhead_ratio").set(ratio);
}

// Per-call span costs of the pre-kernel tree (PR 4, commit 001fcd4), measured
// on the same host at the same bench workload right before the kernel layer
// landed. The table below divides the current run's span totals by their
// call counts so the comparison is robust to google-benchmark choosing a
// different iteration count.
struct SpanBaseline {
  const char* name;
  double us_per_call;
};
constexpr SpanBaseline kPreKernelBaseline[] = {
    {"covariance", 1.960},   {"eig", 6.939},
    {"music", 24.790},       {"periodogram", 2.199},
    {"cnn_pseudo", 51.732},  {"cnn_pseudo_bwd", 87.058},
    {"nn_forward", 1154.412}, {"nn_backward", 2176.045},
    {"frame_assembly", 2914.735}, {"train_epoch", 51578.885},
};

void run_span_comparison() {
  const auto spans = obs::spans().snapshot();
  std::printf("kernel-layer span comparison (per call, vs pre-kernel tree)\n");
  std::printf("%16s %10s %14s %14s %9s\n", "span", "calls", "now us/call",
              "before us/call", "speedup");
  for (const SpanBaseline& base : kPreKernelBaseline) {
    const auto it = std::find_if(spans.begin(), spans.end(), [&](const auto& s) {
      return s.name == base.name;
    });
    if (it == spans.end() || it->latency_ms.count == 0) continue;
    const double now_us =
        it->latency_ms.sum / static_cast<double>(it->latency_ms.count) * 1e3;
    const double speedup = now_us > 0.0 ? base.us_per_call / now_us : 0.0;
    std::printf("%16s %10llu %14.3f %14.3f %8.2fx\n", base.name,
                static_cast<unsigned long long>(it->latency_ms.count), now_us,
                base.us_per_call, speedup);
    obs::registry()
        .gauge(std::string("kern.span.") + base.name + ".speedup_vs_pre")
        .set(speedup);
  }
  std::printf("\n");
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --metrics-out/--trace are parsed
// (and stripped) first so the per-stage spans recorded inside the benchmarked
// code are exported alongside the google-benchmark table.
int main(int argc, char** argv) {
  argc = m2ai::bench::init_observability(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The span-comparison table needs spans recorded during the scaling runs
  // even when no --metrics-out/--trace flag was passed.
  obs::set_enabled(true);
  // First so its ring reset can't discard events the later sections record.
  run_timeline_overhead();
  run_parallel_scaling();
  run_training_scaling();
  run_kernel_micro();
  run_backend_comparison();
  benchmark::RunSpecifiedBenchmarks();
  run_span_comparison();
  benchmark::Shutdown();
  return 0;
}
