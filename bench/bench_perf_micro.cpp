// Microbenchmarks behind the paper's realtime claim: per-stage throughput of
// the DSP pipeline and per-sequence inference latency of the deep model.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "core/trainer.hpp"
#include "dsp/eig.hpp"
#include "dsp/fft.hpp"
#include "dsp/music.hpp"
#include "dsp/periodogram.hpp"
#include "core/experiment.hpp"
#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "par/parallel_for.hpp"
#include "rf/steering.hpp"
#include "util/rng.hpp"

using namespace m2ai;

namespace {

std::vector<std::vector<dsp::cdouble>> make_snapshots(int n_ant, int count,
                                                      std::uint64_t seed) {
  util::Rng rng(seed);
  const auto a = rf::steering_vector(70.0, n_ant, 0.08, 0.33);
  std::vector<std::vector<dsp::cdouble>> snaps(static_cast<std::size_t>(count));
  for (auto& snap : snaps) {
    const auto s = std::polar(1.0, rng.uniform(0.0, 2.0 * M_PI));
    snap.resize(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      snap[i] = s * a[i] + dsp::cdouble{rng.normal(0.0, 0.05), rng.normal(0.0, 0.05)};
    }
  }
  return snaps;
}

void BM_Fft1024(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<dsp::cdouble> x(1024);
  for (auto& v : x) v = dsp::cdouble{rng.normal(), rng.normal()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(BM_Fft1024);

void BM_FftBluestein180(benchmark::State& state) {
  util::Rng rng(2);
  std::vector<dsp::cdouble> x(180);
  for (auto& v : x) v = dsp::cdouble{rng.normal(), rng.normal()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::fft(x));
  }
}
BENCHMARK(BM_FftBluestein180);

void BM_EigHermitian4x4(benchmark::State& state) {
  const auto snaps = make_snapshots(4, 16, 3);
  const auto r = dsp::sample_covariance(snaps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::eig_hermitian(r));
  }
}
BENCHMARK(BM_EigHermitian4x4);

void BM_MusicSpectrum(benchmark::State& state) {
  dsp::MusicOptions opts;
  opts.num_antennas = 4;
  dsp::MusicEstimator music(opts);
  const auto snaps = make_snapshots(4, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(music.estimate(snaps));
  }
}
BENCHMARK(BM_MusicSpectrum)->Arg(8)->Arg(16)->Arg(32);

void BM_Periodogram(benchmark::State& state) {
  const auto snaps = make_snapshots(4, 16, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsp::averaged_periodogram(snaps));
  }
}
BENCHMARK(BM_Periodogram);

void BM_SimulateSample(benchmark::State& state) {
  core::PipelineConfig config;
  config.windows_per_sample = 16;
  config.bootstrap_sec = 4.0;
  core::Pipeline pipeline(config, 99);
  int activity = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.simulate_sample(activity));
    activity = activity % 12 + 1;
  }
}
BENCHMARK(BM_SimulateSample)->Unit(benchmark::kMillisecond);

void BM_InferenceLatency(benchmark::State& state) {
  // Realtime claim: classifying one 16-frame sequence must be far faster
  // than the 6.4 s it spans.
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(7);
  core::FrameSequence frames;
  for (int t = 0; t < 16; ++t) {
    core::SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({6, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({6, 4});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.predict(frames));
  }
}
BENCHMARK(BM_InferenceLatency)->Unit(benchmark::kMicrosecond);

void BM_TrainStep(benchmark::State& state) {
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(8);
  core::Sample sample;
  sample.label = 3;
  for (int t = 0; t < 16; ++t) {
    core::SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({6, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({6, 4});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    sample.frames.push_back(std::move(f));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_step(sample));
    nn::zero_gradients(net.params());
  }
}
BENCHMARK(BM_TrainStep)->Unit(benchmark::kMicrosecond);

// Parallel-scaling section: dataset generation (the dominant cost of every
// figure bench) at 1/2/4/8 threads, with a determinism cross-check. Results
// land in the obs registry so --metrics-out exports a machine-readable
// speedup trajectory (the committed BENCH_*.json files).
std::uint64_t dataset_fingerprint(const core::DataSplit& split) {
  // FNV-1a over every tensor byte pattern of every frame, order-sensitive.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  auto mix_tensor = [&](const nn::Tensor& t) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      std::uint32_t bits;
      const float f = t[i];
      std::memcpy(&bits, &f, sizeof(bits));
      mix(bits);
    }
  };
  for (const auto* side : {&split.train, &split.test}) {
    for (const core::Sample& s : *side) {
      mix(static_cast<std::uint64_t>(s.label));
      for (const core::SpectrumFrame& f : s.frames) {
        if (f.has_pseudo) mix_tensor(f.pseudo);
        if (f.has_aux) mix_tensor(f.aux);
      }
    }
  }
  return h;
}

void run_parallel_scaling() {
  core::ExperimentConfig config;
  config.samples_per_class = std::max(2, static_cast<int>(4 * bench::env_scale()));
  config.pipeline.windows_per_sample = 12;
  config.pipeline.bootstrap_sec = 6.0;

  const int hw = par::hardware_threads();
  std::printf("parallel scaling — dataset generation (%d samples, %d hardware threads)\n",
              config.samples_per_class * 12, hw);
  std::printf("%8s %12s %10s %14s\n", "threads", "seconds", "speedup", "fingerprint");

  const int saved = par::num_threads();
  double serial_seconds = 0.0;
  std::uint64_t serial_fp = 0;
  bool deterministic = true;
  for (int threads : {1, 2, 4, 8}) {
    if (threads > 2 * hw) break;  // oversubscription beyond 2x tells us nothing
    par::set_num_threads(threads);
    const auto start = std::chrono::steady_clock::now();
    const core::DataSplit split = core::generate_dataset(config);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const std::uint64_t fp = dataset_fingerprint(split);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fp = fp;
    } else if (fp != serial_fp) {
      deterministic = false;
    }
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    std::printf("%8d %12.3f %9.2fx %14llx\n", threads, seconds, speedup,
                static_cast<unsigned long long>(fp));
    const std::string tag = "par.dataset_gen.t" + std::to_string(threads);
    obs::registry().gauge(tag + ".seconds").set(seconds);
    obs::registry().gauge(tag + ".speedup").set(speedup);
  }
  par::set_num_threads(saved);
  obs::registry().gauge("par.hardware_threads").set(static_cast<double>(hw));
  obs::registry().gauge("par.deterministic").set(deterministic ? 1.0 : 0.0);
  std::printf("determinism across thread counts: %s\n\n",
              deterministic ? "bitwise-identical" : "MISMATCH");
}

std::uint64_t params_fingerprint(core::M2AINetwork& net) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const nn::Param* p : net.params()) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      std::uint32_t bits;
      const float f = p->value[i];
      std::memcpy(&bits, &f, sizeof(bits));
      mix(bits);
    }
  }
  return h;
}

// Training-scaling section: the data-parallel trainer (per-sample gradients
// sharded across network replicas, reduced in index order) at 1/2/4/8
// threads, with a checkpoint fingerprint cross-check. One dataset is
// generated up front (generation is itself thread-count-invariant), then
// each thread count trains an identically-seeded network from scratch.
void run_training_scaling() {
  core::ExperimentConfig config;
  config.samples_per_class = std::max(2, static_cast<int>(2 * bench::env_scale()));
  config.pipeline.windows_per_sample = 10;
  config.pipeline.bootstrap_sec = 6.0;
  config.train.epochs = std::max(2, static_cast<int>(3 * bench::env_scale()));
  config.train.batch_size = 8;
  config.train.crop_frames = 8;

  const core::DataSplit split = core::generate_dataset(config);

  const int hw = par::hardware_threads();
  std::printf("parallel scaling — LSTM training (%zu train sequences, %d epochs, %d hardware threads)\n",
              split.train.size(), config.train.epochs, hw);
  std::printf("%8s %12s %10s %14s\n", "threads", "seconds", "speedup", "fingerprint");

  const int saved = par::num_threads();
  double serial_seconds = 0.0;
  std::uint64_t serial_fp = 0;
  bool deterministic = true;
  for (int threads : {1, 2, 4, 8}) {
    if (threads > 2 * hw) break;  // oversubscription beyond 2x tells us nothing
    par::set_num_threads(threads);
    core::M2AINetwork net(config.model, config.pipeline.feature_mode,
                          config.pipeline.num_persons * config.pipeline.tags_per_person,
                          config.pipeline.num_antennas, split.num_classes);
    core::Trainer trainer(net, config.train);
    const auto start = std::chrono::steady_clock::now();
    trainer.fit(split.train);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const std::uint64_t fp = params_fingerprint(net);
    if (threads == 1) {
      serial_seconds = seconds;
      serial_fp = fp;
    } else if (fp != serial_fp) {
      deterministic = false;
    }
    const double speedup = seconds > 0.0 ? serial_seconds / seconds : 0.0;
    std::printf("%8d %12.3f %9.2fx %14llx\n", threads, seconds, speedup,
                static_cast<unsigned long long>(fp));
    const std::string tag = "par.train.t" + std::to_string(threads);
    obs::registry().gauge(tag + ".seconds").set(seconds);
    obs::registry().gauge(tag + ".speedup").set(speedup);
  }
  par::set_num_threads(saved);
  obs::registry().gauge("par.train.deterministic").set(deterministic ? 1.0 : 0.0);
  std::printf("checkpoint determinism across thread counts: %s\n\n",
              deterministic ? "bitwise-identical" : "MISMATCH");
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): --metrics-out/--trace are parsed
// (and stripped) first so the per-stage spans recorded inside the benchmarked
// code are exported alongside the google-benchmark table.
int main(int argc, char** argv) {
  argc = m2ai::bench::init_observability(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  run_parallel_scaling();
  run_training_scaling();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
