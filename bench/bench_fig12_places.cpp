// Fig. 12 — impact of the environment: laboratory (high multipath, cluttered
// 13.75 x 10.50 m) vs hall (low multipath, empty 8.75 x 7.50 m).
// Paper result: hall reaches ~95% and the laboratory is close to it.
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 12", "Impact of the environment (lab vs hall)");

  util::Table table({"environment", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig12_places.csv",
                      {"environment", "accuracy"});

  for (const auto kind :
       {core::EnvironmentKind::kLaboratory, core::EnvironmentKind::kHall}) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.environment = kind;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({core::environment_name(kind), util::Table::pct(result.accuracy)});
    csv.add_row({core::environment_name(kind), util::Table::fmt(result.accuracy, 4)});
  }

  table.print();
  std::printf("\n(paper: hall ~95%%, laboratory close behind)\n");
  return 0;
}
