// Fig. 15 — impact of the number of tags per person (hand / +arm /
// +shoulder). Paper result: more tags -> more path diversity -> higher
// accuracy; tags are the cheapest way to buy accuracy.
#include "bench_common.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 15", "Impact of the number of tags per person");

  util::Table table({"tags/person", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig15_tags.csv",
                      {"tags_per_person", "accuracy"});

  for (const int tags : {1, 2, 3}) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.tags_per_person = tags;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({std::to_string(tags), util::Table::pct(result.accuracy)});
    csv.add_row({std::to_string(tags), util::Table::fmt(result.accuracy, 4)});
  }

  table.print();
  std::printf("\n(paper: monotone improvement from 1 to 3 tags per person)\n");
  return 0;
}
