// Fig. 3 — phase jumping caused by frequency hopping: the phase of a
// stationary tag, measured for 60 s across the hop plan, is scattered when
// plotted against time but collapses onto a LINE when plotted against
// channel frequency. This bench regenerates the measurement and fits the
// line, then shows the calibrated phases are flat.
#include <cmath>

#include "bench_common.hpp"
#include "dsp/calibration.hpp"
#include "dsp/phase.hpp"
#include "sim/reader.hpp"
#include "util/stats.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 3", "Phase vs hop frequency for a stationary tag (60 s)");

  const sim::Environment env = sim::Environment::laboratory();
  sim::ArrayGeometry array;
  array.center = sim::Vec3{env.width / 2.0, 0.4, 1.25};
  sim::BodyParams body;
  sim::MotionSpec still;
  sim::Person person(body, {env.width / 2.0 + 1.0, 4.0}, -M_PI / 2.0, still);
  sim::Scene scene(env, {person}, array, 1);
  scene.set_motion_frozen(true);

  // Half-cycle reporting offsets are disabled here so the underlying linear
  // phase-frequency response (what Fig. 3 plots) is visible directly; they
  // are per-channel constants and Eq. 1 removes them identically.
  sim::ReaderConfig reader_config;
  reader_config.pi_ambiguity = false;
  sim::Reader reader(reader_config, 4, 1, util::Rng(3030));
  const auto reports = reader.run(scene, 0.0, 60.0);
  std::printf("collected %zu reads over 60 s\n", reports.size());

  // Per-channel circular median of the measured phase on antenna 0.
  std::vector<std::vector<double>> per_channel(rf::kNumChannels);
  for (const auto& r : reports) {
    if (r.antenna != 0) continue;
    per_channel[static_cast<std::size_t>(r.channel)].push_back(r.phase_rad);
  }

  util::CsvWriter csv(bench::results_dir() + "/fig03_phase_hopping.csv",
                      {"freq_mhz", "median_phase_rad", "calibrated_phase_rad"});

  // Calibrate with a fresh bootstrap (the first 20 s of the same session).
  dsp::PhaseCalibrator cal;
  for (const auto& r : reports) {
    if (r.time_sec < 20.0) cal.add_sample(r.tag_id, r.antenna, r.channel, r.phase_rad);
  }
  cal.finalize();

  std::vector<double> freqs, medians_unwrapped, cal_spread;
  std::vector<double> wrapped;
  std::vector<int> channels;
  for (int ch = 0; ch < rf::kNumChannels; ++ch) {
    const auto& samples = per_channel[static_cast<std::size_t>(ch)];
    if (samples.empty()) continue;
    channels.push_back(ch);
    wrapped.push_back(dsp::circular_median(samples));
  }
  const std::vector<double> un = dsp::unwrap(wrapped);

  util::Table table({"freq (MHz)", "raw median phase (rad)", "calibrated (rad)"});
  for (std::size_t k = 0; k < channels.size(); ++k) {
    const int ch = channels[k];
    const double f_mhz = rf::channel_frequency_hz(ch) / 1e6;
    const double calibrated = cal.apply(
        1, 0, ch, dsp::circular_median(per_channel[static_cast<std::size_t>(ch)]));
    freqs.push_back(f_mhz);
    medians_unwrapped.push_back(un[k]);
    cal_spread.push_back(calibrated);
    if (k % 5 == 0) {
      table.add_row({util::Table::fmt(f_mhz, 2), util::Table::fmt(un[k], 2),
                     util::Table::fmt(calibrated, 2)});
    }
    csv.add_row({util::Table::fmt(f_mhz, 2), util::Table::fmt(un[k], 4),
                 util::Table::fmt(calibrated, 4)});
  }
  table.print();

  const util::LinearFit fit = util::linear_fit(freqs, medians_unwrapped);
  std::printf("\nlinear fit of raw phase vs frequency: slope %.3f rad/MHz, R^2 = %.3f\n",
              fit.slope, fit.r2);
  std::printf("(paper: phase-frequency relation follows the linear model)\n");

  const double spread = util::stddev(cal_spread);
  std::printf("calibrated phase stddev across channels: %.3f rad (flat after Eq. 1)\n",
              spread);
  return 0;
}
