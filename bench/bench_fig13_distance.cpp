// Fig. 13 — impact of the person-to-array distance, 1 m to 4 m.
// Paper result: no clear correlation with distance.
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace m2ai;

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 13", "Impact of distance to the antenna array");

  util::Table table({"distance (m)", "accuracy"});
  util::CsvWriter csv(bench::results_dir() + "/fig13_distance.csv",
                      {"distance_m", "accuracy"});

  std::vector<double> xs, ys;
  for (const double distance : {1.0, 2.0, 3.0, 4.0}) {
    core::ExperimentConfig config = bench::sweep_config();
    config.pipeline.distance_m = distance;
    const core::DataSplit split = core::generate_dataset(config);
    const core::M2AIResult result = bench::run_m2ai(config, split);
    table.add_row({util::Table::fmt(distance, 0), util::Table::pct(result.accuracy)});
    csv.add_row({util::Table::fmt(distance, 1), util::Table::fmt(result.accuracy, 4)});
    xs.push_back(distance);
    ys.push_back(result.accuracy);
  }

  table.print();
  std::printf("\ncorrelation(accuracy, distance) = %.2f  (paper: no clear correlation)\n",
              util::correlation(xs, ys));
  return 0;
}
