// Fig. 2 — the motivating AoA pictures: (a) a stationary tag reflects over
// several multipath rays; (b) a second, moving person blocks one path,
// lowering its peak and perturbing the others; (c) many tags multiply the
// number of rays. This bench regenerates the three panels as ground-truth
// path tables plus the MUSIC pseudospectrum peaks the pipeline extracts.
#include <cmath>

#include "bench_common.hpp"
#include "core/frames.hpp"
#include "dsp/music.hpp"
#include "dsp/phase.hpp"
#include "sim/reader.hpp"

using namespace m2ai;

namespace {

struct Panel {
  sim::Scene scene;
  std::string title;
};

void report_panel(sim::Scene& scene, const std::string& title, util::CsvWriter& csv,
                  const std::string& panel_id) {
  std::printf("\n--- %s ---\n", title.c_str());

  // Ground-truth rays for every tag toward antenna 0.
  util::Table truth({"tag", "kind", "AoA (deg)", "length (m)", "gain", "blocked"});
  int total_paths = 0;
  for (std::size_t tag = 0; tag < scene.tags().size(); ++tag) {
    for (const auto& p : scene.paths_at(tag, 0, 0.0)) {
      const char* kind = p.kind == sim::PathKind::kDirect ? "direct"
                         : p.kind == sim::PathKind::kWallReflection ? "wall"
                                                                     : "scatter";
      truth.add_row({std::to_string(tag + 1), kind, util::Table::fmt(p.aoa_deg, 1),
                     util::Table::fmt(p.length_m, 2), util::Table::fmt(p.gain, 4),
                     std::to_string(p.blocked_by)});
      ++total_paths;
    }
  }
  truth.print();
  std::printf("total rays: %d\n", total_paths);

  // Pipeline view: calibrated MUSIC pseudospectrum peaks per tag. The tags
  // here are STATIONARY, so all rays are fully coherent and the plain
  // covariance is rank-1; spatial smoothing (subarray 3) restores enough
  // rank for the dominant rays to separate (see dsp/covariance.hpp).
  core::PipelineConfig config;
  config.windows_per_sample = 1;
  config.covariance.smoothing_subarray = 3;
  sim::Reader reader(sim::ReaderConfig{}, 4, static_cast<int>(scene.tags().size()),
                     util::Rng(404));
  scene.set_motion_frozen(true);
  const auto boot = reader.run(scene, 0.0, 20.0);
  dsp::PhaseCalibrator cal;
  for (const auto& r : boot) cal.add_sample(r.tag_id, r.antenna, r.channel, r.phase_rad);
  cal.finalize();
  const auto reports = reader.run(scene, 20.0, 20.4);

  core::FrameBuilder builder(config, &cal, static_cast<int>(scene.tags().size()));
  const auto frames = builder.build(reports, 20.0);
  for (std::size_t tag = 0; tag < scene.tags().size(); ++tag) {
    std::vector<double> spectrum(180);
    for (int b = 0; b < 180; ++b) {
      spectrum[static_cast<std::size_t>(b)] = frames[0].pseudo.at(static_cast<int>(tag), b);
    }
    const auto peaks = dsp::find_peaks(spectrum, 3, 0.2);
    std::printf("tag %zu pseudospectrum peaks:", tag + 1);
    for (const int p : peaks) {
      std::printf(" %d deg (%.2f)", p, spectrum[static_cast<std::size_t>(p)]);
      csv.add_row({panel_id, std::to_string(tag + 1), std::to_string(p),
                   util::Table::fmt(spectrum[static_cast<std::size_t>(p)], 3)});
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::init_observability(argc, argv);
  bench::print_header("Fig. 2", "AoA spectra: single tag, blocking person, many tags");
  util::CsvWriter csv(bench::results_dir() + "/fig02_aoa.csv",
                      {"panel", "tag", "peak_deg", "height"});

  const sim::Environment env = sim::Environment::laboratory();
  sim::ArrayGeometry array;
  array.center = sim::Vec3{env.width / 2.0, 0.4, 1.25};

  sim::BodyParams body;  // deterministic default volunteer
  sim::MotionSpec still;

  // (a) one stationary tag.
  {
    sim::Person person(body, {env.width / 2.0 + 1.2, 4.0}, -M_PI / 2.0, still);
    sim::Scene scene(env, {person}, array, 1);
    report_panel(scene, "(a) single stationary tag: multipath rays", csv, "a");
  }

  // (b) the same tag plus another person standing on the direct path.
  {
    sim::Person person(body, {env.width / 2.0 + 1.2, 4.0}, -M_PI / 2.0, still);
    sim::BodyParams blocker_body;
    blocker_body.body_radius_m = 0.25;
    sim::Person blocker(blocker_body, {env.width / 2.0 + 0.8, 2.2}, -M_PI / 2.0, still);
    sim::Scene scene(env, {person, blocker}, array, 1);
    report_panel(scene, "(b) a second person blocks the direct path", csv, "b");
  }

  // (c) two persons, three tags each: many rays.
  {
    sim::Person p1(body, {env.width / 2.0 - 1.0, 4.0}, -M_PI / 2.0, still);
    sim::Person p2(body, {env.width / 2.0 + 1.3, 4.5}, -M_PI / 2.0, still);
    sim::Scene scene(env, {p1, p2}, array, 3);
    report_panel(scene, "(c) multiple objects, multiple tags", csv, "c");
  }

  std::printf("\n(paper: blocking reduces the blocked peak and shifts the others;\n"
              " more tags multiply the observable rays)\n");
  return 0;
}
