// Fig. 14 — impact of the number of reader antennas (the R420 has at most
// four ports). Paper result: accuracy rises from 2 to 4 antennas as more
// multipath angle information becomes resolvable.
#include <cstdio>
#include <string>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_fig14_antennas(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig14_antennas";
  e.figure = "Fig. 14";
  e.title = "Impact of the number of antennas";
  e.columns = {"antennas", "accuracy"};

  for (const int antennas : {2, 3, 4}) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.num_antennas = antennas;
    e.cells.push_back(m2ai_accuracy_cell(std::to_string(antennas), config));
  }

  e.summarize = [](const exp::Rows&) {
    std::printf("\n(paper: monotone improvement from 2 to 4 antennas)\n");
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
