// Fig. 12 — impact of the environment: laboratory (high multipath, cluttered
// 13.75 x 10.50 m) vs hall (low multipath, empty 8.75 x 7.50 m).
// Paper result: hall reaches ~95% and the laboratory is close to it.
#include <cstdio>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_fig12_places(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig12_places";
  e.figure = "Fig. 12";
  e.title = "Impact of the environment (lab vs hall)";
  e.columns = {"environment", "accuracy"};

  for (const auto kind :
       {core::EnvironmentKind::kLaboratory, core::EnvironmentKind::kHall}) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.environment = kind;
    e.cells.push_back(m2ai_accuracy_cell(core::environment_name(kind), config));
  }

  e.summarize = [](const exp::Rows&) {
    std::printf("\n(paper: hall ~95%%, laboratory close behind)\n");
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
