// Fig. 17 — network-architecture ablation on the same preprocessed inputs:
// CNN-only, LSTM-only, and the integrated CNN+LSTM. Paper result: the
// integrated design beats CNN-only by ~30 points and LSTM-only by ~25.
//
// All three cells share one dataset: the fingerprint excludes model fields,
// so the cache hands every architecture the same generated split — the
// ablation is about the network, not the data.
#include <cstdio>
#include <string>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_fig17_networks(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig17_networks";
  e.figure = "Fig. 17";
  e.title = "Impact of the learning network architecture";
  e.columns = {"network", "accuracy"};

  const core::ExperimentConfig base = sweep_config();
  for (const auto arch : {core::NetworkArch::kCnnOnly, core::NetworkArch::kLstmOnly,
                          core::NetworkArch::kCnnLstm}) {
    core::ExperimentConfig config = base;
    config.model.arch = arch;
    e.cells.push_back(m2ai_accuracy_cell(core::network_arch_name(arch), config));
  }

  e.summarize = [](const exp::Rows& rows) {
    double cnn_lstm = 0.0, cnn_only = 0.0, lstm_only = 0.0;
    for (const auto& row : rows) {
      const double acc = row_accuracy(row);
      if (row.front() == core::network_arch_name(core::NetworkArch::kCnnLstm)) {
        cnn_lstm = acc;
      } else if (row.front() ==
                 core::network_arch_name(core::NetworkArch::kCnnOnly)) {
        cnn_only = acc;
      } else if (row.front() ==
                 core::network_arch_name(core::NetworkArch::kLstmOnly)) {
        lstm_only = acc;
      }
    }
    std::printf("\nCNN+LSTM gain: %+.1f points over CNN-only (paper: ~+30), "
                "%+.1f over LSTM-only (paper: ~+25)\n",
                (cnn_lstm - cnn_only) * 100.0, (cnn_lstm - lstm_only) * 100.0);
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
