// Fig. 11 — impact of the number of simultaneously acting persons.
// Paper result: accuracy degrades gracefully, staying near 80% with three
// people in the scene.
#include <cstdio>
#include <string>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_fig11_objects(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig11_objects";
  e.figure = "Fig. 11";
  e.title = "Impact of the number of objects (persons)";
  e.columns = {"persons", "accuracy"};

  for (const int persons : {1, 2, 3}) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.num_persons = persons;
    e.cells.push_back(m2ai_accuracy_cell(std::to_string(persons), config));
  }

  e.summarize = [](const exp::Rows&) {
    std::printf("\n(paper: high accuracy at 1-2 persons, ~80%% at 3)\n");
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
