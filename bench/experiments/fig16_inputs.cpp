// Fig. 16 — preprocessing-input ablation: feed the same deep network with
// MUSIC-based, FFT-based, Phase-based, RSSI-based, or the full M2AI
// (pseudospectrum + periodogram) inputs. Paper result: M2AI's combined
// preprocessing wins; RSSI-only is weakest.
#include <cstdio>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_fig16_inputs(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig16_inputs";
  e.figure = "Fig. 16";
  e.title = "Impact of preprocessing inputs";
  e.columns = {"input", "accuracy"};

  for (const auto mode :
       {core::FeatureMode::kRssiOnly, core::FeatureMode::kPhaseOnly,
        core::FeatureMode::kFftOnly, core::FeatureMode::kMusicOnly,
        core::FeatureMode::kM2AI}) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.feature_mode = mode;
    e.cells.push_back(m2ai_accuracy_cell(core::feature_mode_name(mode), config));
  }

  e.summarize = [](const exp::Rows&) {
    std::printf("\n(paper ordering: RSSI < Phase < FFT < MUSIC < M2AI)\n");
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
