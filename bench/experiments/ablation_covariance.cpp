// Ablation (DESIGN.md §5) — coherent-multipath rank restoration in the
// covariance stage: forward-backward averaging and spatial smoothing are
// the two standard fixes for fully-coherent rays. This experiment measures
// how much each contributes to end-to-end identification accuracy.
#include <cstdio>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_ablation_covariance(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "ablation_covariance";
  e.figure = "Ablation";
  e.title = "Covariance conditioning: FB averaging & smoothing";
  e.columns = {"covariance", "accuracy"};

  struct Variant {
    const char* name;
    bool forward_backward;
    int smoothing;
  };
  const Variant variants[] = {
      {"plain covariance", false, 0},
      {"forward-backward (default)", true, 0},
      {"FB + spatial smoothing (3)", true, 3},
  };
  for (const Variant& v : variants) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.covariance.forward_backward = v.forward_backward;
    config.pipeline.covariance.smoothing_subarray = v.smoothing;
    e.cells.push_back(m2ai_accuracy_cell(v.name, config));
  }

  e.summarize = [](const exp::Rows&) {
    std::printf("\n(design note: smoothing trades aperture for decorrelation; with a\n"
                " 4-element array the default keeps the full aperture and relies on\n"
                " motion-induced decorrelation plus FB averaging)\n");
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
