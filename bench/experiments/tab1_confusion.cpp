// Table I — confusion matrix of M2AI over the 12 two-person activity
// scenarios. Paper result: >= 93% per-class accuracy, 97% overall.
//
// One cell emitting the full actual x predicted rate grid as CSV rows; the
// report reconstructs the Table I grid from the merged rows (the raw
// 144-row table is for machines, not eyes).
#include <cstdio>
#include <map>
#include <vector>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"
#include "sim/activities.hpp"

namespace m2ai::bench {

namespace {
std::vector<std::string> activity_labels() {
  std::vector<std::string> labels;
  for (const auto& a : sim::activity_catalog()) labels.push_back(a.label);
  return labels;
}
}  // namespace

void register_tab1_confusion(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "tab1_confusion";
  e.figure = "Table I";
  e.title = "Confusion matrix of activity identification";
  e.columns = {"actual", "predicted", "rate"};
  e.table_in_report = false;

  exp::Cell cell;
  cell.label = "headline confusion";
  cell.config = headline_config();
  cell.run = [](exp::CellContext& ctx) {
    const auto split = ctx.split();
    const core::M2AIResult result = run_m2ai(ctx.config, *split);
    const std::vector<std::string> labels = activity_labels();
    exp::Rows rows;
    for (int a = 0; a < split->num_classes; ++a) {
      for (int p = 0; p < split->num_classes; ++p) {
        rows.push_back({labels[static_cast<std::size_t>(a)],
                        labels[static_cast<std::size_t>(p)],
                        util::Table::fmt(result.confusion.rate(a, p), 4)});
      }
    }
    return rows;
  };
  e.cells.push_back(std::move(cell));

  e.summarize = [](const exp::Rows& rows) {
    // Rebuild the Table I grid from the (actual, predicted, rate) rows.
    std::vector<std::string> labels;
    std::map<std::string, std::map<std::string, double>> grid;
    for (const auto& row : rows) {
      if (grid.find(row[0]) == grid.end()) labels.push_back(row[0]);
      grid[row[0]][row[1]] = std::atof(row[2].c_str());
    }
    std::vector<std::string> header = {"actual \\ predicted"};
    header.insert(header.end(), labels.begin(), labels.end());
    util::Table table(header);
    double diag_sum = 0.0, diag_min = 1.0;
    for (const std::string& actual : labels) {
      std::vector<std::string> out = {actual};
      for (const std::string& predicted : labels) {
        out.push_back(util::Table::pct(grid[actual][predicted]));
      }
      table.add_row(std::move(out));
      diag_sum += grid[actual][actual];
      if (grid[actual][actual] < diag_min) diag_min = grid[actual][actual];
    }
    table.print();
    if (!labels.empty()) {
      std::printf("mean per-class accuracy: %.1f%%  (paper overall: 97%%)\n",
                  diag_sum / static_cast<double>(labels.size()) * 100.0);
      std::printf("minimum per-class accuracy: %.1f%%  (paper: >= 93%%)\n",
                  diag_min * 100.0);
    }
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
