// Fig. 13 — impact of the person-to-array distance, 1 m to 4 m.
// Paper result: no clear correlation with distance.
#include <cstdio>
#include <vector>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"
#include "util/stats.hpp"

namespace m2ai::bench {

void register_fig13_distance(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig13_distance";
  e.figure = "Fig. 13";
  e.title = "Impact of distance to the antenna array";
  e.columns = {"distance_m", "accuracy"};

  for (const double distance : {1.0, 2.0, 3.0, 4.0}) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.distance_m = distance;
    e.cells.push_back(
        m2ai_accuracy_cell(util::Table::fmt(distance, 1), config));
  }

  e.summarize = [](const exp::Rows& rows) {
    std::vector<double> xs, ys;
    for (const auto& row : rows) {
      xs.push_back(std::atof(row.front().c_str()));
      ys.push_back(row_accuracy(row));
    }
    std::printf(
        "\ncorrelation(accuracy, distance) = %.2f  (paper: no clear correlation)\n",
        util::correlation(xs, ys));
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
