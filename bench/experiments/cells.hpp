// Internal helpers shared by the experiment registrations.
#pragma once

#include <cstdlib>
#include <string>
#include <utility>

#include "bench_common.hpp"

namespace m2ai::bench {

// One full train+evaluate run over the (cached) dataset for `config`; the
// row is {name, accuracy to 4 decimals} — the historical sweep-CSV schema.
inline exp::Cell m2ai_accuracy_cell(std::string name, core::ExperimentConfig config) {
  exp::Cell cell;
  cell.label = name;
  cell.config = std::move(config);
  cell.run = [name](exp::CellContext& ctx) {
    const auto split = ctx.split();
    const core::M2AIResult result = run_m2ai(ctx.config, *split);
    return exp::Rows{{name, util::Table::fmt(result.accuracy, 4)}};
  };
  return cell;
}

// The accuracy column of a merged sweep row.
inline double row_accuracy(const std::vector<std::string>& row) {
  return std::atof(row.back().c_str());
}

}  // namespace m2ai::bench
