// Registrations for the full evaluation suite: Figs. 9-17, Table I, and
// the covariance ablation, expressed as exp::Experiment cell lists.
//
// Each register_* function appends one experiment; register_all_experiments
// installs the whole suite in the canonical order (the order the CSV merge
// and shard split are defined over). The standalone bench binaries and the
// m2ai_bench driver both register everything and then select, so cell
// indices — and therefore CSV bytes — agree across entry points.
//
// Cell rows reproduce the historical per-figure CSV schemas exactly
// (same columns, same Table::fmt precision), so refactoring the benches
// onto the runner changed no committed artifact.
#pragma once

#include "exp/experiment.hpp"

namespace m2ai::bench {

void register_fig09_classifiers(exp::Registry& registry);
void register_tab1_confusion(exp::Registry& registry);
void register_fig10_calibration(exp::Registry& registry);
void register_fig11_objects(exp::Registry& registry);
void register_fig12_places(exp::Registry& registry);
void register_fig13_distance(exp::Registry& registry);
void register_fig14_antennas(exp::Registry& registry);
void register_fig15_tags(exp::Registry& registry);
void register_fig16_inputs(exp::Registry& registry);
void register_fig17_networks(exp::Registry& registry);
void register_ablation_covariance(exp::Registry& registry);

// All of the above, in canonical suite order.
void register_all_experiments(exp::Registry& registry);

}  // namespace m2ai::bench
