// Fig. 10 — impact of phase calibration. Paper result: 97% with the Eq. 1
// calibration vs 52% without (raw reader phases are scrambled by the
// per-channel hopping offsets).
#include <cstdio>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_fig10_calibration(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig10_calibration";
  e.figure = "Fig. 10";
  e.title = "Impact of phase calibration";
  e.columns = {"variant", "accuracy"};

  for (const bool calibration : {true, false}) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.phase_calibration = calibration;
    e.cells.push_back(m2ai_accuracy_cell(
        calibration ? "with calibration" : "no calibration", config));
  }

  e.summarize = [](const exp::Rows&) {
    std::printf("\n(paper: 97%% with calibration vs 52%% without)\n");
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
