// Fig. 15 — impact of the number of tags per person (hand / +arm /
// +shoulder). Paper result: more tags -> more path diversity -> higher
// accuracy; tags are the cheapest way to buy accuracy.
#include <cstdio>
#include <string>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_fig15_tags(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig15_tags";
  e.figure = "Fig. 15";
  e.title = "Impact of the number of tags per person";
  e.columns = {"tags_per_person", "accuracy"};

  for (const int tags : {1, 2, 3}) {
    core::ExperimentConfig config = sweep_config();
    config.pipeline.tags_per_person = tags;
    e.cells.push_back(m2ai_accuracy_cell(std::to_string(tags), config));
  }

  e.summarize = [](const exp::Rows&) {
    std::printf("\n(paper: monotone improvement from 1 to 3 tags per person)\n");
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
