// Fig. 9 — Overall activity identification performance: M2AI vs the ten
// conventional classifiers plus the sequence-aware HMM prior art. Paper
// result: M2AI 97%, runner-up (linear SVM) ~70%, i.e. a ~27-point gain.
//
// One cell per classifier: all twelve share the headline dataset through
// the cache, and the conventional baselines are cheap enough that the
// cell-level fan-out hides them behind the M2AI training run.
#include <cstdio>
#include <functional>
#include <memory>

#include "experiments/cells.hpp"
#include "experiments/experiments.hpp"
#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gaussian_process.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/qda.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm_linear.hpp"
#include "ml/svm_rbf.hpp"
#include "util/log.hpp"

namespace m2ai::bench {

namespace {
using ClassifierFactory = std::function<std::unique_ptr<ml::Classifier>()>;

exp::Cell baseline_cell(const core::ExperimentConfig& config,
                        ClassifierFactory make) {
  exp::Cell cell;
  cell.label = make()->name();
  cell.config = config;
  cell.run = [make](exp::CellContext& ctx) {
    auto classifier = make();
    util::log_info() << "fitting baseline: " << classifier->name();
    const double acc =
        core::baseline_accuracy(*classifier, *ctx.split(), ctx.config.seed);
    return exp::Rows{{classifier->name(), util::Table::fmt(acc, 4)}};
  };
  return cell;
}
}  // namespace

void register_fig09_classifiers(exp::Registry& registry) {
  exp::Experiment e;
  e.id = "fig09_classifiers";
  e.figure = "Fig. 9";
  e.title = "M2AI vs conventional classifiers (12 activities)";
  e.columns = {"classifier", "accuracy"};

  const core::ExperimentConfig config = headline_config();
  e.cells.push_back(m2ai_accuracy_cell("M2AI", config));

  const ClassifierFactory factories[] = {
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::KnnClassifier>(5)); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::LinearSvm>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::RbfSvm>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::GaussianProcessClassifier>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::DecisionTree>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::RandomForest>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::MlpClassifier>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::AdaBoost>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::GaussianNaiveBayes>()); },
      [] { return std::unique_ptr<ml::Classifier>(std::make_unique<ml::Qda>()); },
  };
  for (const ClassifierFactory& make : factories) {
    e.cells.push_back(baseline_cell(config, make));
  }

  // The sequence-aware prior art (Secs. I/VIII): per-class Gaussian HMMs.
  exp::Cell hmm;
  hmm.label = "HMM (Gaussian)";
  hmm.config = config;
  hmm.run = [](exp::CellContext& ctx) {
    util::log_info() << "fitting baseline: HMM (Gaussian)";
    const double acc = core::hmm_baseline_accuracy(*ctx.split());
    return exp::Rows{{"HMM (Gaussian)", util::Table::fmt(acc, 4)}};
  };
  e.cells.push_back(std::move(hmm));

  e.summarize = [](const exp::Rows& rows) {
    if (rows.empty()) return;
    const double m2ai = row_accuracy(rows.front());
    double best_baseline = 0.0;
    std::string best_name;
    for (std::size_t i = 1; i < rows.size(); ++i) {
      const double acc = row_accuracy(rows[i]);
      if (acc > best_baseline) {
        best_baseline = acc;
        best_name = rows[i].front();
      }
    }
    std::printf(
        "\nM2AI gain over runner-up (%s): %+.1f points (paper: +27 at 97%% vs 70%%)\n",
        best_name.c_str(), (m2ai - best_baseline) * 100.0);
  };
  registry.add(std::move(e));
}

}  // namespace m2ai::bench
