#include "experiments/experiments.hpp"

namespace m2ai::bench {

void register_all_experiments(exp::Registry& registry) {
  register_fig09_classifiers(registry);
  register_tab1_confusion(registry);
  register_fig10_calibration(registry);
  register_fig11_objects(registry);
  register_fig12_places(registry);
  register_fig13_distance(registry);
  register_fig14_antennas(registry);
  register_fig15_tags(registry);
  register_fig16_inputs(registry);
  register_fig17_networks(registry);
  register_ablation_covariance(registry);
}

}  // namespace m2ai::bench
