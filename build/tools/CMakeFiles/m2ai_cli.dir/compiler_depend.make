# Empty compiler generated dependencies file for m2ai_cli.
# This may be replaced when dependencies are built.
