file(REMOVE_RECURSE
  "CMakeFiles/m2ai_cli.dir/m2ai_cli.cpp.o"
  "CMakeFiles/m2ai_cli.dir/m2ai_cli.cpp.o.d"
  "m2ai"
  "m2ai.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
