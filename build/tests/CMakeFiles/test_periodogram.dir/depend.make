# Empty dependencies file for test_periodogram.
# This may be replaced when dependencies are built.
