file(REMOVE_RECURSE
  "CMakeFiles/test_periodogram.dir/test_periodogram.cpp.o"
  "CMakeFiles/test_periodogram.dir/test_periodogram.cpp.o.d"
  "test_periodogram"
  "test_periodogram.pdb"
  "test_periodogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_periodogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
