# Empty dependencies file for test_reader.
# This may be replaced when dependencies are built.
