file(REMOVE_RECURSE
  "CMakeFiles/test_music.dir/test_music.cpp.o"
  "CMakeFiles/test_music.dir/test_music.cpp.o.d"
  "test_music"
  "test_music.pdb"
  "test_music[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_music.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
