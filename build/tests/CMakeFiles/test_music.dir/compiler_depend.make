# Empty compiler generated dependencies file for test_music.
# This may be replaced when dependencies are built.
