file(REMOVE_RECURSE
  "CMakeFiles/test_person.dir/test_person.cpp.o"
  "CMakeFiles/test_person.dir/test_person.cpp.o.d"
  "test_person"
  "test_person.pdb"
  "test_person[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_person.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
