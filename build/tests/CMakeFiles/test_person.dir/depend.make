# Empty dependencies file for test_person.
# This may be replaced when dependencies are built.
