file(REMOVE_RECURSE
  "CMakeFiles/test_channel_plan.dir/test_channel_plan.cpp.o"
  "CMakeFiles/test_channel_plan.dir/test_channel_plan.cpp.o.d"
  "test_channel_plan"
  "test_channel_plan.pdb"
  "test_channel_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_channel_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
