file(REMOVE_RECURSE
  "CMakeFiles/test_tree_forest.dir/test_tree_forest.cpp.o"
  "CMakeFiles/test_tree_forest.dir/test_tree_forest.cpp.o.d"
  "test_tree_forest"
  "test_tree_forest.pdb"
  "test_tree_forest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
