# Empty dependencies file for test_tree_forest.
# This may be replaced when dependencies are built.
