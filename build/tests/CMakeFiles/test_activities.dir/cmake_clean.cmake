file(REMOVE_RECURSE
  "CMakeFiles/test_activities.dir/test_activities.cpp.o"
  "CMakeFiles/test_activities.dir/test_activities.cpp.o.d"
  "test_activities"
  "test_activities.pdb"
  "test_activities[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_activities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
