file(REMOVE_RECURSE
  "CMakeFiles/test_eig.dir/test_eig.cpp.o"
  "CMakeFiles/test_eig.dir/test_eig.cpp.o.d"
  "test_eig"
  "test_eig.pdb"
  "test_eig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_eig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
