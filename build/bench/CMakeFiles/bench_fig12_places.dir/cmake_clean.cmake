file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_places.dir/bench_fig12_places.cpp.o"
  "CMakeFiles/bench_fig12_places.dir/bench_fig12_places.cpp.o.d"
  "bench_fig12_places"
  "bench_fig12_places.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_places.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
