# Empty dependencies file for bench_fig12_places.
# This may be replaced when dependencies are built.
