file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_objects.dir/bench_fig11_objects.cpp.o"
  "CMakeFiles/bench_fig11_objects.dir/bench_fig11_objects.cpp.o.d"
  "bench_fig11_objects"
  "bench_fig11_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
