# Empty compiler generated dependencies file for bench_fig11_objects.
# This may be replaced when dependencies are built.
