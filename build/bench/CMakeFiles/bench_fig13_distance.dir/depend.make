# Empty dependencies file for bench_fig13_distance.
# This may be replaced when dependencies are built.
