# Empty dependencies file for bench_fig16_inputs.
# This may be replaced when dependencies are built.
