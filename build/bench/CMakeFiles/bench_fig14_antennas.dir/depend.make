# Empty dependencies file for bench_fig14_antennas.
# This may be replaced when dependencies are built.
