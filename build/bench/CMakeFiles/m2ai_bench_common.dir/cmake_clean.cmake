file(REMOVE_RECURSE
  "CMakeFiles/m2ai_bench_common.dir/common/bench_common.cpp.o"
  "CMakeFiles/m2ai_bench_common.dir/common/bench_common.cpp.o.d"
  "libm2ai_bench_common.a"
  "libm2ai_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
