# Empty compiler generated dependencies file for m2ai_bench_common.
# This may be replaced when dependencies are built.
