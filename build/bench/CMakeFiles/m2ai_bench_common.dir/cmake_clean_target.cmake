file(REMOVE_RECURSE
  "libm2ai_bench_common.a"
)
