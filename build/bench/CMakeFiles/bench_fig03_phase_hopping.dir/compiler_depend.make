# Empty compiler generated dependencies file for bench_fig03_phase_hopping.
# This may be replaced when dependencies are built.
