file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_phase_hopping.dir/bench_fig03_phase_hopping.cpp.o"
  "CMakeFiles/bench_fig03_phase_hopping.dir/bench_fig03_phase_hopping.cpp.o.d"
  "bench_fig03_phase_hopping"
  "bench_fig03_phase_hopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_phase_hopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
