file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_confusion.dir/bench_tab1_confusion.cpp.o"
  "CMakeFiles/bench_tab1_confusion.dir/bench_tab1_confusion.cpp.o.d"
  "bench_tab1_confusion"
  "bench_tab1_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
