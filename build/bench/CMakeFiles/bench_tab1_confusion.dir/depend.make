# Empty dependencies file for bench_tab1_confusion.
# This may be replaced when dependencies are built.
