file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_aoa_scenarios.dir/bench_fig02_aoa_scenarios.cpp.o"
  "CMakeFiles/bench_fig02_aoa_scenarios.dir/bench_fig02_aoa_scenarios.cpp.o.d"
  "bench_fig02_aoa_scenarios"
  "bench_fig02_aoa_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_aoa_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
