# Empty dependencies file for bench_fig02_aoa_scenarios.
# This may be replaced when dependencies are built.
