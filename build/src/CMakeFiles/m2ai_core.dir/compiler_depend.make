# Empty compiler generated dependencies file for m2ai_core.
# This may be replaced when dependencies are built.
