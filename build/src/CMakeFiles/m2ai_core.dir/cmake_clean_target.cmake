file(REMOVE_RECURSE
  "libm2ai_core.a"
)
