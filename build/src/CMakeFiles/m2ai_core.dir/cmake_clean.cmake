file(REMOVE_RECURSE
  "CMakeFiles/m2ai_core.dir/core/config.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/config.cpp.o.d"
  "CMakeFiles/m2ai_core.dir/core/evaluator.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/evaluator.cpp.o.d"
  "CMakeFiles/m2ai_core.dir/core/experiment.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/m2ai_core.dir/core/features.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/features.cpp.o.d"
  "CMakeFiles/m2ai_core.dir/core/frames.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/frames.cpp.o.d"
  "CMakeFiles/m2ai_core.dir/core/model.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/model.cpp.o.d"
  "CMakeFiles/m2ai_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/m2ai_core.dir/core/trainer.cpp.o"
  "CMakeFiles/m2ai_core.dir/core/trainer.cpp.o.d"
  "libm2ai_core.a"
  "libm2ai_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
