
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/m2ai_core.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/config.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/CMakeFiles/m2ai_core.dir/core/evaluator.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/evaluator.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/m2ai_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/CMakeFiles/m2ai_core.dir/core/features.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/features.cpp.o.d"
  "/root/repo/src/core/frames.cpp" "src/CMakeFiles/m2ai_core.dir/core/frames.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/frames.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/CMakeFiles/m2ai_core.dir/core/model.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/model.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/m2ai_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/m2ai_core.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/m2ai_core.dir/core/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m2ai_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
