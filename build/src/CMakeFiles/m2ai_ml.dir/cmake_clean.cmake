file(REMOVE_RECURSE
  "CMakeFiles/m2ai_ml.dir/ml/adaboost.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/adaboost.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/dataset.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/dataset.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/decision_tree.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/decision_tree.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/gaussian_process.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/gaussian_process.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/hmm.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/hmm.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/knn.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/knn.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/mlp.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/mlp.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/naive_bayes.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/naive_bayes.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/qda.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/qda.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/random_forest.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/random_forest.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/svm_linear.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/svm_linear.cpp.o.d"
  "CMakeFiles/m2ai_ml.dir/ml/svm_rbf.cpp.o"
  "CMakeFiles/m2ai_ml.dir/ml/svm_rbf.cpp.o.d"
  "libm2ai_ml.a"
  "libm2ai_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
