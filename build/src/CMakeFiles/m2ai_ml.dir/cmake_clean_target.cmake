file(REMOVE_RECURSE
  "libm2ai_ml.a"
)
