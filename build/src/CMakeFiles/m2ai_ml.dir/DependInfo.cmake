
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/adaboost.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/adaboost.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/dataset.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/decision_tree.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gaussian_process.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/gaussian_process.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/gaussian_process.cpp.o.d"
  "/root/repo/src/ml/hmm.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/hmm.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/hmm.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/knn.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/knn.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/mlp.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/mlp.cpp.o.d"
  "/root/repo/src/ml/naive_bayes.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/naive_bayes.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/naive_bayes.cpp.o.d"
  "/root/repo/src/ml/qda.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/qda.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/qda.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/random_forest.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/random_forest.cpp.o.d"
  "/root/repo/src/ml/svm_linear.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/svm_linear.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/svm_linear.cpp.o.d"
  "/root/repo/src/ml/svm_rbf.cpp" "src/CMakeFiles/m2ai_ml.dir/ml/svm_rbf.cpp.o" "gcc" "src/CMakeFiles/m2ai_ml.dir/ml/svm_rbf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m2ai_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
