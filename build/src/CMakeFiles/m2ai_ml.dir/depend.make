# Empty dependencies file for m2ai_ml.
# This may be replaced when dependencies are built.
