file(REMOVE_RECURSE
  "CMakeFiles/m2ai_dsp.dir/dsp/calibration.cpp.o"
  "CMakeFiles/m2ai_dsp.dir/dsp/calibration.cpp.o.d"
  "CMakeFiles/m2ai_dsp.dir/dsp/covariance.cpp.o"
  "CMakeFiles/m2ai_dsp.dir/dsp/covariance.cpp.o.d"
  "CMakeFiles/m2ai_dsp.dir/dsp/eig.cpp.o"
  "CMakeFiles/m2ai_dsp.dir/dsp/eig.cpp.o.d"
  "CMakeFiles/m2ai_dsp.dir/dsp/fft.cpp.o"
  "CMakeFiles/m2ai_dsp.dir/dsp/fft.cpp.o.d"
  "CMakeFiles/m2ai_dsp.dir/dsp/music.cpp.o"
  "CMakeFiles/m2ai_dsp.dir/dsp/music.cpp.o.d"
  "CMakeFiles/m2ai_dsp.dir/dsp/periodogram.cpp.o"
  "CMakeFiles/m2ai_dsp.dir/dsp/periodogram.cpp.o.d"
  "CMakeFiles/m2ai_dsp.dir/dsp/phase.cpp.o"
  "CMakeFiles/m2ai_dsp.dir/dsp/phase.cpp.o.d"
  "libm2ai_dsp.a"
  "libm2ai_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
