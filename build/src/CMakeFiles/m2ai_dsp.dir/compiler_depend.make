# Empty compiler generated dependencies file for m2ai_dsp.
# This may be replaced when dependencies are built.
