
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/calibration.cpp" "src/CMakeFiles/m2ai_dsp.dir/dsp/calibration.cpp.o" "gcc" "src/CMakeFiles/m2ai_dsp.dir/dsp/calibration.cpp.o.d"
  "/root/repo/src/dsp/covariance.cpp" "src/CMakeFiles/m2ai_dsp.dir/dsp/covariance.cpp.o" "gcc" "src/CMakeFiles/m2ai_dsp.dir/dsp/covariance.cpp.o.d"
  "/root/repo/src/dsp/eig.cpp" "src/CMakeFiles/m2ai_dsp.dir/dsp/eig.cpp.o" "gcc" "src/CMakeFiles/m2ai_dsp.dir/dsp/eig.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/CMakeFiles/m2ai_dsp.dir/dsp/fft.cpp.o" "gcc" "src/CMakeFiles/m2ai_dsp.dir/dsp/fft.cpp.o.d"
  "/root/repo/src/dsp/music.cpp" "src/CMakeFiles/m2ai_dsp.dir/dsp/music.cpp.o" "gcc" "src/CMakeFiles/m2ai_dsp.dir/dsp/music.cpp.o.d"
  "/root/repo/src/dsp/periodogram.cpp" "src/CMakeFiles/m2ai_dsp.dir/dsp/periodogram.cpp.o" "gcc" "src/CMakeFiles/m2ai_dsp.dir/dsp/periodogram.cpp.o.d"
  "/root/repo/src/dsp/phase.cpp" "src/CMakeFiles/m2ai_dsp.dir/dsp/phase.cpp.o" "gcc" "src/CMakeFiles/m2ai_dsp.dir/dsp/phase.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m2ai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
