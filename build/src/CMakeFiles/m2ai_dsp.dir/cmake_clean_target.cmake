file(REMOVE_RECURSE
  "libm2ai_dsp.a"
)
