file(REMOVE_RECURSE
  "libm2ai_nn.a"
)
