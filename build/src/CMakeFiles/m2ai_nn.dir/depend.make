# Empty dependencies file for m2ai_nn.
# This may be replaced when dependencies are built.
