
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/conv1d.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/conv1d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/dropout.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/dropout.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/dropout.cpp.o.d"
  "/root/repo/src/nn/gradcheck.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/gradcheck.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/gradcheck.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/lstm.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/lstm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/pool.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/pool.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/softmax.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/softmax.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/softmax.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/m2ai_nn.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/m2ai_nn.dir/nn/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m2ai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
