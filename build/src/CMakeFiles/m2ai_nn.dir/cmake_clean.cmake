file(REMOVE_RECURSE
  "CMakeFiles/m2ai_nn.dir/nn/activations.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/activations.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/conv1d.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/conv1d.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/dense.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/dense.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/dropout.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/dropout.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/gradcheck.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/gradcheck.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/lstm.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/lstm.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/pool.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/pool.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/sequential.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/sequential.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/serialize.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/softmax.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/softmax.cpp.o.d"
  "CMakeFiles/m2ai_nn.dir/nn/tensor.cpp.o"
  "CMakeFiles/m2ai_nn.dir/nn/tensor.cpp.o.d"
  "libm2ai_nn.a"
  "libm2ai_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
