file(REMOVE_RECURSE
  "libm2ai_util.a"
)
