file(REMOVE_RECURSE
  "CMakeFiles/m2ai_util.dir/util/csv.cpp.o"
  "CMakeFiles/m2ai_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/m2ai_util.dir/util/log.cpp.o"
  "CMakeFiles/m2ai_util.dir/util/log.cpp.o.d"
  "CMakeFiles/m2ai_util.dir/util/rng.cpp.o"
  "CMakeFiles/m2ai_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/m2ai_util.dir/util/stats.cpp.o"
  "CMakeFiles/m2ai_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/m2ai_util.dir/util/table.cpp.o"
  "CMakeFiles/m2ai_util.dir/util/table.cpp.o.d"
  "libm2ai_util.a"
  "libm2ai_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
