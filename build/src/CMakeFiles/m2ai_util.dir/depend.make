# Empty dependencies file for m2ai_util.
# This may be replaced when dependencies are built.
