file(REMOVE_RECURSE
  "libm2ai_sim.a"
)
