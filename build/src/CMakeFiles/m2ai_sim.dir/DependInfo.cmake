
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/activities.cpp" "src/CMakeFiles/m2ai_sim.dir/sim/activities.cpp.o" "gcc" "src/CMakeFiles/m2ai_sim.dir/sim/activities.cpp.o.d"
  "/root/repo/src/sim/environment.cpp" "src/CMakeFiles/m2ai_sim.dir/sim/environment.cpp.o" "gcc" "src/CMakeFiles/m2ai_sim.dir/sim/environment.cpp.o.d"
  "/root/repo/src/sim/person.cpp" "src/CMakeFiles/m2ai_sim.dir/sim/person.cpp.o" "gcc" "src/CMakeFiles/m2ai_sim.dir/sim/person.cpp.o.d"
  "/root/repo/src/sim/propagation.cpp" "src/CMakeFiles/m2ai_sim.dir/sim/propagation.cpp.o" "gcc" "src/CMakeFiles/m2ai_sim.dir/sim/propagation.cpp.o.d"
  "/root/repo/src/sim/reader.cpp" "src/CMakeFiles/m2ai_sim.dir/sim/reader.cpp.o" "gcc" "src/CMakeFiles/m2ai_sim.dir/sim/reader.cpp.o.d"
  "/root/repo/src/sim/scene.cpp" "src/CMakeFiles/m2ai_sim.dir/sim/scene.cpp.o" "gcc" "src/CMakeFiles/m2ai_sim.dir/sim/scene.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m2ai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
