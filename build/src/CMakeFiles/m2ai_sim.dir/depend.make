# Empty dependencies file for m2ai_sim.
# This may be replaced when dependencies are built.
