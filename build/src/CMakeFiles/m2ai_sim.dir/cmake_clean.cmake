file(REMOVE_RECURSE
  "CMakeFiles/m2ai_sim.dir/sim/activities.cpp.o"
  "CMakeFiles/m2ai_sim.dir/sim/activities.cpp.o.d"
  "CMakeFiles/m2ai_sim.dir/sim/environment.cpp.o"
  "CMakeFiles/m2ai_sim.dir/sim/environment.cpp.o.d"
  "CMakeFiles/m2ai_sim.dir/sim/person.cpp.o"
  "CMakeFiles/m2ai_sim.dir/sim/person.cpp.o.d"
  "CMakeFiles/m2ai_sim.dir/sim/propagation.cpp.o"
  "CMakeFiles/m2ai_sim.dir/sim/propagation.cpp.o.d"
  "CMakeFiles/m2ai_sim.dir/sim/reader.cpp.o"
  "CMakeFiles/m2ai_sim.dir/sim/reader.cpp.o.d"
  "CMakeFiles/m2ai_sim.dir/sim/scene.cpp.o"
  "CMakeFiles/m2ai_sim.dir/sim/scene.cpp.o.d"
  "libm2ai_sim.a"
  "libm2ai_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
