file(REMOVE_RECURSE
  "CMakeFiles/m2ai_rf.dir/rf/channel_plan.cpp.o"
  "CMakeFiles/m2ai_rf.dir/rf/channel_plan.cpp.o.d"
  "CMakeFiles/m2ai_rf.dir/rf/geometry.cpp.o"
  "CMakeFiles/m2ai_rf.dir/rf/geometry.cpp.o.d"
  "CMakeFiles/m2ai_rf.dir/rf/steering.cpp.o"
  "CMakeFiles/m2ai_rf.dir/rf/steering.cpp.o.d"
  "libm2ai_rf.a"
  "libm2ai_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m2ai_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
