
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/channel_plan.cpp" "src/CMakeFiles/m2ai_rf.dir/rf/channel_plan.cpp.o" "gcc" "src/CMakeFiles/m2ai_rf.dir/rf/channel_plan.cpp.o.d"
  "/root/repo/src/rf/geometry.cpp" "src/CMakeFiles/m2ai_rf.dir/rf/geometry.cpp.o" "gcc" "src/CMakeFiles/m2ai_rf.dir/rf/geometry.cpp.o.d"
  "/root/repo/src/rf/steering.cpp" "src/CMakeFiles/m2ai_rf.dir/rf/steering.cpp.o" "gcc" "src/CMakeFiles/m2ai_rf.dir/rf/steering.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m2ai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
