# Empty compiler generated dependencies file for m2ai_rf.
# This may be replaced when dependencies are built.
