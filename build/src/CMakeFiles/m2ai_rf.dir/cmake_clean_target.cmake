file(REMOVE_RECURSE
  "libm2ai_rf.a"
)
