file(REMOVE_RECURSE
  "CMakeFiles/gym_exercise_tracker.dir/gym_exercise_tracker.cpp.o"
  "CMakeFiles/gym_exercise_tracker.dir/gym_exercise_tracker.cpp.o.d"
  "gym_exercise_tracker"
  "gym_exercise_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gym_exercise_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
