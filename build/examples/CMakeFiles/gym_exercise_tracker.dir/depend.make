# Empty dependencies file for gym_exercise_tracker.
# This may be replaced when dependencies are built.
