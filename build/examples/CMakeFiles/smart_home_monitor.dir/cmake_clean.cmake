file(REMOVE_RECURSE
  "CMakeFiles/smart_home_monitor.dir/smart_home_monitor.cpp.o"
  "CMakeFiles/smart_home_monitor.dir/smart_home_monitor.cpp.o.d"
  "smart_home_monitor"
  "smart_home_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_home_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
