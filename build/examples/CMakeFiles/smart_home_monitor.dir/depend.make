# Empty dependencies file for smart_home_monitor.
# This may be replaced when dependencies are built.
