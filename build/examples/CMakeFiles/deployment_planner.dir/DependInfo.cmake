
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/deployment_planner.cpp" "examples/CMakeFiles/deployment_planner.dir/deployment_planner.cpp.o" "gcc" "examples/CMakeFiles/deployment_planner.dir/deployment_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m2ai_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m2ai_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
