// Equivalence suite for the dual-mode kernel backends.
//
// The fast backend (SIMD/FMA, its own translation-unit flags) is allowed to
// reorder within-element accumulation, so its results are compared to the
// reference within a relative epsilon — at 1x1, prime, non-multiple-of-
// vector-width, and empty shapes, so every vector-tail path is exercised.
// Two properties ARE bitwise and tested as such: gemm_bias under the
// reference backend equals stacked gemv calls (the batched-inference
// contract), and the batched NN forwards equal their sequential
// counterparts under the reference backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/model.hpp"
#include "kern/backend.hpp"
#include "kern/kernels.hpp"
#include "kern/workspace.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/quantize.hpp"
#include "util/rng.hpp"

namespace m2ai {
namespace {

// Every test that switches the process-global backend restores the previous
// one so test order can't leak a fast backend into bitwise suites.
struct BackendGuard {
  kern::BackendKind saved = kern::active_backend_kind();
  ~BackendGuard() { kern::set_backend(saved); }
};

std::vector<float> random_floats(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// Relative-epsilon comparison with an absolute floor: inputs are unit-normal
// so accumulated sums are O(sqrt(k)) and FMA/lane reordering perturbs them
// at a few ulps of the largest intermediate.
void expect_close(float ref, float fast, const std::string& where) {
  EXPECT_NEAR(ref, fast, 5e-4f * std::max(1.0f, std::abs(ref))) << where;
}

void expect_close(double ref, double fast, const std::string& where) {
  EXPECT_NEAR(ref, fast, 1e-9 * std::max(1.0, std::abs(ref))) << where;
}

TEST(KernBackend, DispatchDefaultsToReferenceAndSwitchesAtomically) {
  BackendGuard guard;
  EXPECT_EQ(kern::set_backend(kern::BackendKind::kReference),
            kern::BackendKind::kReference);
  EXPECT_STREQ(kern::active().name, "ref");
  EXPECT_EQ(kern::active().gemv, kern::reference_backend().gemv);

  const kern::BackendKind got = kern::set_backend(kern::BackendKind::kFast);
  if (kern::fast_backend_supported()) {
    EXPECT_EQ(got, kern::BackendKind::kFast);
    EXPECT_STREQ(kern::active().name, "fast");
    EXPECT_EQ(kern::active().gemm_bias, kern::fast_backend().gemm_bias);
  } else {
    // CPUID fallback: a fast request on an unsupported host degrades to ref.
    EXPECT_EQ(got, kern::BackendKind::kReference);
    EXPECT_STREQ(kern::active().name, "ref");
  }
  EXPECT_EQ(kern::active_backend_kind(), got);
}

TEST(KernBackend, SetByNameParsesAndRejects) {
  BackendGuard guard;
  EXPECT_EQ(kern::set_backend_by_name("ref"), kern::BackendKind::kReference);
  EXPECT_EQ(kern::set_backend_by_name("reference"), kern::BackendKind::kReference);
  const kern::BackendKind fast = kern::set_backend_by_name("fast");
  EXPECT_EQ(fast, kern::fast_backend_supported() ? kern::BackendKind::kFast
                                                 : kern::BackendKind::kReference);
  const kern::BackendKind int8 = kern::set_backend_by_name("int8");
  EXPECT_EQ(int8, kern::int8_backend_supported() ? kern::BackendKind::kInt8
                                                 : kern::BackendKind::kReference);
  EXPECT_THROW(kern::set_backend_by_name("avx9000"), std::invalid_argument);
  EXPECT_THROW(kern::set_backend_by_name(""), std::invalid_argument);
}

TEST(KernBackend, Int8DispatchActivatesAndReportsItsName) {
  BackendGuard guard;
  const kern::BackendKind got = kern::set_backend(kern::BackendKind::kInt8);
  if (kern::int8_backend_supported()) {
    EXPECT_EQ(got, kern::BackendKind::kInt8);
    EXPECT_STREQ(kern::active().name, "int8");
    EXPECT_STREQ(kern::active_backend_name(), "int8");
    EXPECT_EQ(kern::active().gemv_s8, kern::int8_backend().gemv_s8);
    // Float kernels in the int8 table come from the fast table when the CPU
    // supports it (the conv branches stay float and should not slow down).
    if (kern::fast_backend_supported()) {
      EXPECT_EQ(kern::active().gemm_bias, kern::fast_backend().gemm_bias);
    }
  } else {
    EXPECT_EQ(got, kern::BackendKind::kReference);
    EXPECT_STREQ(kern::active_backend_name(), "ref");
  }
  EXPECT_EQ(kern::active_backend_kind(), got);
}

// M2AI_KERN_BACKEND regression: an unknown value must not throw out of
// static init or silently keep a stale backend — it logs a warning and
// falls back to the reference, and apply_env_backend() reports the kind
// actually active.
TEST(KernBackend, EnvOverrideAppliesValidValuesAndRejectsUnknown) {
  BackendGuard guard;

  ASSERT_EQ(setenv("M2AI_KERN_BACKEND", "bogus-simd", 1), 0);
  kern::set_backend(kern::BackendKind::kFast);  // poison: fallback must undo it
  EXPECT_EQ(kern::apply_env_backend(), kern::BackendKind::kReference);
  EXPECT_EQ(kern::active_backend_kind(), kern::BackendKind::kReference);

  ASSERT_EQ(setenv("M2AI_KERN_BACKEND", "fast", 1), 0);
  EXPECT_EQ(kern::apply_env_backend(),
            kern::fast_backend_supported() ? kern::BackendKind::kFast
                                           : kern::BackendKind::kReference);

  ASSERT_EQ(setenv("M2AI_KERN_BACKEND", "int8", 1), 0);
  EXPECT_EQ(kern::apply_env_backend(),
            kern::int8_backend_supported() ? kern::BackendKind::kInt8
                                           : kern::BackendKind::kReference);

  ASSERT_EQ(setenv("M2AI_KERN_BACKEND", "ref", 1), 0);
  EXPECT_EQ(kern::apply_env_backend(), kern::BackendKind::kReference);

  // Unset: apply is a no-op and reports whatever is already active.
  ASSERT_EQ(unsetenv("M2AI_KERN_BACKEND"), 0);
  kern::set_backend(kern::BackendKind::kReference);
  EXPECT_EQ(kern::apply_env_backend(), kern::BackendKind::kReference);
}

TEST(KernBackend, GemvEquivalence) {
  if (!kern::fast_backend_supported()) GTEST_SKIP() << "no fast backend";
  const kern::Backend& fast = kern::fast_backend();
  util::Rng rng(101);
  // 1x1, primes, multiples and non-multiples of the 8-lane width, empty.
  const int shapes[][2] = {{1, 1},  {3, 5},   {7, 13},   {8, 8},
                           {31, 17}, {33, 65}, {128, 96}, {5, 0}};
  for (const auto& s : shapes) {
    const int rows = s[0], cols = s[1];
    const auto w = random_floats(static_cast<std::size_t>(rows) * cols, rng);
    const auto x = random_floats(static_cast<std::size_t>(cols), rng);
    const auto b = random_floats(static_cast<std::size_t>(rows), rng);
    for (const bool with_bias : {true, false}) {
      std::vector<float> y_ref(static_cast<std::size_t>(rows), -7.0f);
      std::vector<float> y_fast(static_cast<std::size_t>(rows), 7.0f);
      const float* bias = with_bias ? b.data() : nullptr;
      kern::gemv(w.data(), x.data(), bias, y_ref.data(), rows, cols);
      fast.gemv(w.data(), x.data(), bias, y_fast.data(), rows, cols);
      for (int r = 0; r < rows; ++r) {
        expect_close(y_ref[static_cast<std::size_t>(r)],
                     y_fast[static_cast<std::size_t>(r)],
                     std::to_string(rows) + "x" + std::to_string(cols) + " r=" +
                         std::to_string(r));
      }
    }
  }
}

TEST(KernBackend, GemmBiasEquivalence) {
  if (!kern::fast_backend_supported()) GTEST_SKIP() << "no fast backend";
  const kern::Backend& fast = kern::fast_backend();
  util::Rng rng(102);
  const int shapes[][3] = {{1, 1, 1},    {3, 5, 7},  {13, 11, 17},
                           {8, 64, 128}, {2, 0, 3},  {4, 4, 4},
                           {5, 9, 33},   {1, 7, 40}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const auto a = random_floats(static_cast<std::size_t>(m) * k, rng);
    const auto b = random_floats(static_cast<std::size_t>(k) * n, rng);
    const auto bias = random_floats(static_cast<std::size_t>(n), rng);
    for (const bool with_bias : {true, false}) {
      std::vector<float> c_ref(static_cast<std::size_t>(m) * n, -7.0f);
      std::vector<float> c_fast(c_ref.size(), 7.0f);
      const float* bp = with_bias ? bias.data() : nullptr;
      kern::gemm_bias(a.data(), b.data(), bp, c_ref.data(), m, k, n);
      fast.gemm_bias(a.data(), b.data(), bp, c_fast.data(), m, k, n);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        expect_close(c_ref[i], c_fast[i],
                     std::to_string(m) + "x" + std::to_string(k) + "x" +
                         std::to_string(n) + " i=" + std::to_string(i));
      }
    }
  }
}

// The contract the batched serving path relies on: under the reference
// backend, one gemm_bias over stacked inputs is BITWISE-identical to the
// per-row gemv calls it replaces.
TEST(KernBackend, ReferenceGemmBiasBitwiseMatchesStackedGemv) {
  util::Rng rng(103);
  const int shapes[][3] = {{1, 1, 1}, {3, 5, 7}, {8, 64, 128}, {13, 11, 17}};
  for (const auto& s : shapes) {
    const int batch = s[0], in = s[1], out = s[2];
    // gemv takes W as [out, in]; gemm_bias takes its transpose [in, out].
    const auto w = random_floats(static_cast<std::size_t>(out) * in, rng);
    std::vector<float> wt(static_cast<std::size_t>(in) * out);
    for (int j = 0; j < out; ++j) {
      for (int k = 0; k < in; ++k) {
        wt[static_cast<std::size_t>(k) * out + j] =
            w[static_cast<std::size_t>(j) * in + k];
      }
    }
    const auto bias = random_floats(static_cast<std::size_t>(out), rng);
    const auto x = random_floats(static_cast<std::size_t>(batch) * in, rng);

    std::vector<float> c(static_cast<std::size_t>(batch) * out);
    kern::gemm_bias(x.data(), wt.data(), bias.data(), c.data(), batch, in, out);
    std::vector<float> y(static_cast<std::size_t>(out));
    for (int i = 0; i < batch; ++i) {
      kern::gemv(w.data(), x.data() + static_cast<std::size_t>(i) * in,
                 bias.data(), y.data(), out, in);
      for (int j = 0; j < out; ++j) {
        ASSERT_EQ(y[static_cast<std::size_t>(j)],
                  c[static_cast<std::size_t>(i) * out + j])
            << "sample " << i << " out " << j;
      }
    }
  }
}

TEST(KernBackend, Conv1dRowEquivalence) {
  if (!kern::fast_backend_supported()) GTEST_SKIP() << "no fast backend";
  const kern::Backend& fast = kern::fast_backend();
  util::Rng rng(104);
  // {len, kernel, stride, padding}: the model's layers, a kernel longer
  // than the input, stride 1 (the vectorized path), and 1x1.
  const int shapes[][4] = {{180, 7, 2, 3}, {60, 5, 3, 1}, {25, 5, 5, 0},
                           {4, 7, 1, 3},   {1, 1, 1, 0},  {17, 3, 1, 1},
                           {90, 9, 1, 4}};
  for (const auto& s : shapes) {
    const int len = s[0], kernel = s[1], stride = s[2], padding = s[3];
    const int out_len = (len + 2 * padding - kernel) / stride + 1;
    ASSERT_GT(out_len, 0);
    const auto x = random_floats(static_cast<std::size_t>(len), rng);
    const auto w = random_floats(static_cast<std::size_t>(kernel), rng);
    std::vector<float> p_ref(static_cast<std::size_t>(out_len), 0.0f);
    std::vector<float> p_fast(p_ref);
    kern::conv1d_row_acc(x.data(), len, w.data(), kernel, stride, padding,
                         p_ref.data(), out_len);
    fast.conv1d_row_acc(x.data(), len, w.data(), kernel, stride, padding,
                        p_fast.data(), out_len);
    for (int ol = 0; ol < out_len; ++ol) {
      expect_close(p_ref[static_cast<std::size_t>(ol)],
                   p_fast[static_cast<std::size_t>(ol)],
                   "len=" + std::to_string(len) + " k=" + std::to_string(kernel) +
                       " s=" + std::to_string(stride) + " ol=" + std::to_string(ol));
    }
  }
}

TEST(KernBackend, NoiseProjectionEquivalence) {
  if (!kern::fast_backend_supported()) GTEST_SKIP() << "no fast backend";
  const kern::Backend& fast = kern::fast_backend();
  util::Rng rng(105);
  // {bins, n, num_noise}: the paper's 180x4, 1x1, odd n (vector tail), and
  // an empty noise subspace.
  const int shapes[][3] = {{180, 4, 2}, {1, 1, 1}, {7, 3, 2},
                           {13, 5, 4},  {5, 2, 0}, {31, 6, 3}};
  for (const auto& s : shapes) {
    const int bins = s[0], n = s[1], num_noise = s[2];
    std::vector<std::complex<double>> un(static_cast<std::size_t>(num_noise) * n);
    std::vector<std::complex<double>> steer(static_cast<std::size_t>(bins) * n);
    for (auto& v : un) v = {rng.normal(), rng.normal()};
    for (auto& v : steer) v = {rng.normal(), rng.normal()};
    std::vector<double> d_ref(static_cast<std::size_t>(bins), -1.0);
    std::vector<double> d_fast(static_cast<std::size_t>(bins), 1.0);
    kern::noise_projection(un.data(), num_noise, steer.data(), bins, n,
                           d_ref.data());
    fast.noise_projection(un.data(), num_noise, steer.data(), bins, n,
                          d_fast.data());
    for (int bin = 0; bin < bins; ++bin) {
      expect_close(d_ref[static_cast<std::size_t>(bin)],
                   d_fast[static_cast<std::size_t>(bin)],
                   std::to_string(bins) + "x" + std::to_string(n) + "x" +
                       std::to_string(num_noise) + " bin=" + std::to_string(bin));
    }
  }
}

TEST(KernBackend, DenseForwardBatchBitwiseMatchesSequentialUnderReference) {
  BackendGuard guard;
  kern::set_backend(kern::BackendKind::kReference);
  util::Rng rng(106);
  nn::Dense dense(11, 7, rng);
  const int batch = 5;
  const auto x = random_floats(static_cast<std::size_t>(batch) * 11, rng);
  std::vector<float> y(static_cast<std::size_t>(batch) * 7);
  kern::Workspace ws;
  dense.forward_batch(x.data(), batch, y.data(), ws);
  for (int i = 0; i < batch; ++i) {
    nn::Tensor xi({11});
    for (int k = 0; k < 11; ++k) {
      xi[static_cast<std::size_t>(k)] = x[static_cast<std::size_t>(i) * 11 + k];
    }
    const nn::Tensor yi = dense.forward(xi, /*train=*/false);
    for (int j = 0; j < 7; ++j) {
      ASSERT_EQ(yi[static_cast<std::size_t>(j)],
                y[static_cast<std::size_t>(i) * 7 + j])
          << "sample " << i << " out " << j;
    }
  }
}

std::vector<std::vector<nn::Tensor>> random_sequences(int batch, int t_len,
                                                      int features,
                                                      util::Rng& rng) {
  std::vector<std::vector<nn::Tensor>> seqs(static_cast<std::size_t>(batch));
  for (auto& seq : seqs) {
    for (int t = 0; t < t_len; ++t) {
      nn::Tensor x({features});
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] = static_cast<float>(rng.normal());
      }
      seq.push_back(std::move(x));
    }
  }
  return seqs;
}

TEST(KernBackend, LstmForwardBatchBitwiseMatchesSequentialUnderReference) {
  BackendGuard guard;
  kern::set_backend(kern::BackendKind::kReference);
  util::Rng rng(107);
  nn::Lstm lstm(6, 8, rng);
  const auto seqs = random_sequences(3, 5, 6, rng);
  std::vector<const std::vector<nn::Tensor>*> ptrs;
  for (const auto& s : seqs) ptrs.push_back(&s);
  const auto batched = lstm.forward_batch(ptrs);
  ASSERT_EQ(batched.size(), seqs.size());
  for (std::size_t b = 0; b < seqs.size(); ++b) {
    const auto sequential = lstm.forward(seqs[b], /*train=*/false);
    ASSERT_EQ(batched[b].size(), sequential.size());
    for (std::size_t t = 0; t < sequential.size(); ++t) {
      for (std::size_t u = 0; u < sequential[t].size(); ++u) {
        ASSERT_EQ(sequential[t][u], batched[b][t][u])
            << "seq " << b << " t " << t << " u " << u;
      }
    }
  }
}

TEST(KernBackend, LstmForwardBatchCloseToReferenceUnderFast) {
  if (!kern::fast_backend_supported()) GTEST_SKIP() << "no fast backend";
  BackendGuard guard;
  util::Rng rng(108);
  nn::Lstm lstm(6, 8, rng);
  const auto seqs = random_sequences(4, 5, 6, rng);
  std::vector<const std::vector<nn::Tensor>*> ptrs;
  for (const auto& s : seqs) ptrs.push_back(&s);

  kern::set_backend(kern::BackendKind::kReference);
  const auto ref = lstm.forward_batch(ptrs);
  kern::set_backend(kern::BackendKind::kFast);
  const auto fast = lstm.forward_batch(ptrs);
  for (std::size_t b = 0; b < seqs.size(); ++b) {
    for (std::size_t t = 0; t < ref[b].size(); ++t) {
      for (std::size_t u = 0; u < ref[b][t].size(); ++u) {
        expect_close(ref[b][t][u], fast[b][t][u],
                     "seq " + std::to_string(b) + " t " + std::to_string(t));
      }
    }
  }
}

core::FrameSequence random_frames(int t_len, util::Rng& rng) {
  core::FrameSequence frames;
  for (int t = 0; t < t_len; ++t) {
    core::SpectrumFrame f;
    f.has_pseudo = true;
    f.has_aux = true;
    f.pseudo = nn::Tensor({6, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f.aux = nn::Tensor({6, 4});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(f));
  }
  return frames;
}

TEST(KernBackend, PredictBatchMatchesPredict) {
  BackendGuard guard;
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(109);
  // Mixed sequence lengths exercise the by-length grouping.
  std::vector<core::FrameSequence> sequences;
  for (const int t_len : {4, 6, 4, 5, 6}) {
    sequences.push_back(random_frames(t_len, rng));
  }
  std::vector<const core::FrameSequence*> batch;
  for (const auto& s : sequences) batch.push_back(&s);

  // Reference backend: labels AND the underlying math are identical, so the
  // comparison is exact.
  kern::set_backend(kern::BackendKind::kReference);
  const std::vector<int> batched = net.predict_batch(batch);
  ASSERT_EQ(batched.size(), sequences.size());
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(batched[i], net.predict(sequences[i])) << "sample " << i;
  }

  if (!kern::fast_backend_supported()) return;
  // Fast backend: epsilon math, so assert label equality only where the
  // reference top-2 margin is comfortably wider than the kernel tolerance.
  kern::set_backend(kern::BackendKind::kFast);
  const std::vector<int> fast = net.predict_batch(batch);
  kern::set_backend(kern::BackendKind::kReference);
  for (std::size_t i = 0; i < sequences.size(); ++i) {
    const std::vector<double> proba = net.predict_proba(sequences[i]);
    std::vector<double> sorted(proba);
    std::sort(sorted.begin(), sorted.end(), std::greater<double>());
    if (sorted.size() > 1 && sorted[0] - sorted[1] < 1e-4) continue;
    EXPECT_EQ(fast[i], batched[i]) << "sample " << i;
  }
}

// ---------------------------------------------------------------- int8

std::vector<std::int8_t> random_s8(std::size_t n, util::Rng& rng) {
  std::vector<std::int8_t> v(n);
  for (auto& x : v) x = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  return v;
}

// The int8 kernels' epilogue (convert, multiply, add — never contracted) and
// exact int32 accumulation make the AVX2 path BITWISE-identical to the
// scalar reference; equality here is exact, not epsilon.
TEST(KernBackend, GemvS8BitwiseMatchesScalarReference) {
  const kern::Backend& int8 = kern::int8_backend();
  util::Rng rng(110);
  // 1x1, primes, multiples/non-multiples of the 32- and 16-lane widths,
  // empty depth.
  const int shapes[][2] = {{1, 1},   {3, 5},   {7, 13},   {8, 32},
                           {31, 17}, {33, 64}, {128, 96}, {5, 0},
                           {2, 33},  {4, 48}};
  for (const auto& s : shapes) {
    const int rows = s[0], cols = s[1];
    const auto w = random_s8(static_cast<std::size_t>(rows) * cols, rng);
    const auto x = random_s8(static_cast<std::size_t>(cols), rng);
    const auto b = random_floats(static_cast<std::size_t>(rows), rng);
    const float scale = 0.01f + 0.001f * static_cast<float>(rows);
    for (const bool with_bias : {true, false}) {
      std::vector<float> y_ref(static_cast<std::size_t>(rows), -7.0f);
      std::vector<float> y_int8(static_cast<std::size_t>(rows), 7.0f);
      const float* bias = with_bias ? b.data() : nullptr;
      kern::gemv_s8(w.data(), x.data(), bias, y_ref.data(), rows, cols, scale);
      int8.gemv_s8(w.data(), x.data(), bias, y_int8.data(), rows, cols, scale);
      for (int r = 0; r < rows; ++r) {
        ASSERT_EQ(y_ref[static_cast<std::size_t>(r)],
                  y_int8[static_cast<std::size_t>(r)])
            << rows << "x" << cols << " r=" << r;
      }
    }
  }
}

TEST(KernBackend, GemmBiasS8BitwiseMatchesScalarReference) {
  const kern::Backend& int8 = kern::int8_backend();
  util::Rng rng(111);
  const int shapes[][3] = {{1, 1, 1},    {3, 5, 7},  {13, 11, 17},
                           {8, 64, 128}, {2, 0, 3},  {4, 32, 4},
                           {5, 9, 33},   {1, 80, 128}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const auto a = random_s8(static_cast<std::size_t>(m) * k, rng);
    const auto bt = random_s8(static_cast<std::size_t>(n) * k, rng);
    const auto bias = random_floats(static_cast<std::size_t>(n), rng);
    const float scale = 3.7e-4f;
    for (const bool with_bias : {true, false}) {
      std::vector<float> c_ref(static_cast<std::size_t>(m) * n, -7.0f);
      std::vector<float> c_int8(c_ref.size(), 7.0f);
      const float* bp = with_bias ? bias.data() : nullptr;
      kern::gemm_bias_s8(a.data(), bt.data(), bp, c_ref.data(), m, k, n, scale);
      int8.gemm_bias_s8(a.data(), bt.data(), bp, c_int8.data(), m, k, n, scale);
      for (std::size_t i = 0; i < c_ref.size(); ++i) {
        ASSERT_EQ(c_ref[i], c_int8[i])
            << m << "x" << k << "x" << n << " i=" << i;
      }
    }
  }
}

// The fast table's s8 entries must point at the pinned-TU reference wrappers
// (the fast TU compiles with -ffp-contract=fast, which would fuse the
// requantize epilogue and break the bitwise int8 contract).
TEST(KernBackend, FastTableS8EntriesAreThePinnedReference) {
  EXPECT_EQ(kern::fast_backend().gemv_s8, kern::reference_backend().gemv_s8);
  EXPECT_EQ(kern::fast_backend().gemm_bias_s8,
            kern::reference_backend().gemm_bias_s8);
  EXPECT_EQ(kern::fast_backend().quantize_s8,
            kern::reference_backend().quantize_s8);
}

// The SIMD activation quantizer (8-wide mul / round-to-nearest-even / clamp /
// pack) must agree BIT FOR BIT with the scalar nearbyint reference — it
// produces the operands the bitwise s8 matmuls consume, so any divergence
// here would cascade. Exercises RNE ties, clamp saturation in both
// directions, the zero-scale degenerate case, and non-multiple-of-8 tails.
TEST(KernBackend, QuantizeS8BitwiseMatchesScalarReference) {
  const kern::Backend& int8 = kern::int8_backend();
  util::Rng rng(112);
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                              std::size_t{15}, std::size_t{64},
                              std::size_t{257}}) {
    std::vector<float> x(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (i % 4) {
        case 0:  // in-range smooth values
          x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
          break;
        case 1:  // exact .5 multiples of the scale — RNE tie cases
          x[i] = 0.5f * 0.03125f * static_cast<float>(rng.uniform_int(-260, 260));
          break;
        case 2:  // far out of range — clamp to ±127
          x[i] = static_cast<float>(rng.uniform(-900.0, 900.0));
          break;
        default:  // exact zeros and tiny denormal-adjacent values
          x[i] = (i % 8 < 4) ? 0.0f : 1e-30f;
          break;
      }
    }
    for (const float scale : {0.03125f, 0.007f, 0.0f}) {
      std::vector<std::int8_t> q_ref(n, std::int8_t{-42});
      std::vector<std::int8_t> q_int8(n, std::int8_t{42});
      kern::quantize_s8(x.data(), n, scale, q_ref.data());
      int8.quantize_s8(x.data(), n, scale, q_int8.data());
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(q_ref[i], q_int8[i])
            << "n=" << n << " scale=" << scale << " i=" << i << " x=" << x[i];
      }
    }
  }
}

// The accuracy-degradation gate (ISSUE: int8 serving must keep >= 99%
// end-to-end activity-label agreement with the float reference). A TRAINED
// network is required: random weights give near-uniform posteriors where
// label flips measure tie-breaking, not quantization quality.
TEST(KernBackend, Int8AccuracyGateOnTrainedNetwork) {
  BackendGuard guard;
  kern::set_backend(kern::BackendKind::kReference);

  core::ExperimentConfig config;
  config.samples_per_class = 8;
  config.pipeline.windows_per_sample = 12;
  config.pipeline.bootstrap_sec = 4.0;
  config.train.epochs = 14;
  config.train.crop_frames = 10;
  config.seed = 424242;
  const core::DataSplit split = core::generate_dataset(config);
  std::unique_ptr<core::M2AINetwork> network;
  core::train_and_evaluate(config, split, &network);
  ASSERT_NE(network, nullptr);

  // Eval set: train + test sequences (96) plus fresh simulations (24) so a
  // single borderline flip cannot fail a >= 99% gate vacuously (120 * 0.99
  // = 118.8 -> one disagreement is tolerated).
  std::vector<const core::FrameSequence*> eval_set;
  for (const core::Sample& s : split.train) eval_set.push_back(&s.frames);
  for (const core::Sample& s : split.test) eval_set.push_back(&s.frames);
  std::vector<core::Sample> fresh;
  {
    core::PipelineConfig fresh_config = config.pipeline;
    core::Pipeline pipeline(fresh_config, config.seed ^ 0xe5a1u);
    for (int activity = 1; activity <= 12; ++activity) {
      fresh.push_back(pipeline.simulate_sample(activity));
      fresh.push_back(pipeline.simulate_sample(activity));
    }
  }
  for (const core::Sample& s : fresh) eval_set.push_back(&s.frames);
  ASSERT_GE(eval_set.size(), 100u);

  // Calibrate on the training split only — the gate must hold on data the
  // scales never saw.
  std::vector<const core::FrameSequence*> calib;
  for (const core::Sample& s : split.train) calib.push_back(&s.frames);
  const nn::QuantScales scales =
      network->calibrate(calib, nn::CalibrationOptions{});
  EXPECT_FALSE(scales.empty());
  ASSERT_TRUE(network->quant_ready());

  // Float reference labels and per-class probabilities.
  const std::vector<std::vector<double>> proba_ref =
      network->predict_proba_batch(eval_set);
  const std::vector<int> labels_ref = network->predict_batch(eval_set);

  // Int8 labels and probabilities on the same set.
  kern::set_backend(kern::BackendKind::kInt8);
  ASSERT_EQ(kern::active_backend_kind(),
            kern::int8_backend_supported() ? kern::BackendKind::kInt8
                                           : kern::BackendKind::kReference);
  const std::vector<std::vector<double>> proba_int8 =
      network->predict_proba_batch(eval_set);
  const std::vector<int> labels_int8 = network->predict_batch(eval_set);
  kern::set_backend(kern::BackendKind::kReference);

  ASSERT_EQ(labels_int8.size(), labels_ref.size());
  std::size_t agree = 0;
  double max_prob_err = 0.0;
  for (std::size_t i = 0; i < labels_ref.size(); ++i) {
    if (labels_int8[i] == labels_ref[i]) ++agree;
    ASSERT_EQ(proba_int8[i].size(), proba_ref[i].size());
    for (std::size_t c = 0; c < proba_ref[i].size(); ++c) {
      max_prob_err =
          std::max(max_prob_err, std::abs(proba_int8[i][c] - proba_ref[i][c]));
    }
  }
  const double agreement =
      static_cast<double>(agree) / static_cast<double>(labels_ref.size());
  // Report the measured agreement in the suite output (the gate's margin is
  // part of what a reviewer of a quantization change needs to see).
  std::printf("[ int8gate ] label agreement %.2f%% (%zu/%zu), "
              "max per-class probability error %.4f\n",
              agreement * 100.0, agree, labels_ref.size(), max_prob_err);
  EXPECT_GE(agreement, 0.99);
  // Per-logit degradation bound: normalized per-class probabilities move by
  // less than 0.05 absolute under int8.
  EXPECT_LT(max_prob_err, 0.05);
}

// clone() must carry calibrated scales so serving replicas (Service clones
// per worker) keep the quantized path ready.
TEST(KernBackend, CloneCarriesQuantScales) {
  BackendGuard guard;
  kern::set_backend(kern::BackendKind::kReference);
  core::ModelConfig model;
  core::M2AINetwork net(model, core::FeatureMode::kM2AI, 6, 4, 12);
  util::Rng rng(112);
  std::vector<core::FrameSequence> sequences;
  sequences.push_back(random_frames(5, rng));
  sequences.push_back(random_frames(5, rng));
  std::vector<const core::FrameSequence*> calib;
  for (const auto& s : sequences) calib.push_back(&s);
  net.calibrate(calib, nn::CalibrationOptions{});
  ASSERT_TRUE(net.quant_ready());

  const std::unique_ptr<core::M2AINetwork> copy = net.clone();
  ASSERT_TRUE(copy->quant_ready());
  EXPECT_EQ(copy->quant_scales().scales, net.quant_scales().scales);

  // Identical float weights + identical scales -> identical int8 labels.
  kern::set_backend(kern::BackendKind::kInt8);
  std::vector<const core::FrameSequence*> batch;
  for (const auto& s : sequences) batch.push_back(&s);
  EXPECT_EQ(net.predict_batch(batch), copy->predict_batch(batch));
}

}  // namespace
}  // namespace m2ai
