#include "sim/activities.hpp"

#include <gtest/gtest.h>

namespace m2ai::sim {
namespace {

TEST(Activities, CatalogHasTwelveScenarios) {
  EXPECT_EQ(num_activities(), 12);
  const auto& catalog = activity_catalog();
  ASSERT_EQ(catalog.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(catalog[static_cast<std::size_t>(i)].id, i + 1);
    EXPECT_FALSE(catalog[static_cast<std::size_t>(i)].description.empty());
  }
}

TEST(Activities, LabelsFormatted) {
  EXPECT_EQ(activity_catalog()[0].label, "A_01");
  EXPECT_EQ(activity_catalog()[11].label, "A_12");
}

TEST(Activities, InstantiatesRequestedPersonCount) {
  const Environment env = Environment::laboratory();
  util::Rng rng(3);
  for (int n = 1; n <= 3; ++n) {
    const auto persons =
        instantiate_activity(1, n, env, {env.width / 2, 0.4}, {}, rng);
    EXPECT_EQ(persons.size(), static_cast<std::size_t>(n));
  }
}

TEST(Activities, RejectsBadArguments) {
  const Environment env = Environment::laboratory();
  util::Rng rng(4);
  EXPECT_THROW(instantiate_activity(0, 2, env, {0, 0}, {}, rng), std::out_of_range);
  EXPECT_THROW(instantiate_activity(13, 2, env, {0, 0}, {}, rng), std::out_of_range);
  EXPECT_THROW(instantiate_activity(1, 0, env, {0, 0}, {}, rng), std::out_of_range);
  EXPECT_THROW(instantiate_activity(1, 4, env, {0, 0}, {}, rng), std::out_of_range);
}

TEST(Activities, PersonsPlacedInsideRoomAtRequestedDistance) {
  const Environment env = Environment::laboratory();
  util::Rng rng(5);
  PlacementOptions placement;
  placement.distance_m = 4.0;
  const rf::Vec2 front{env.width / 2, 0.4};
  for (int act = 1; act <= 12; ++act) {
    const auto persons = instantiate_activity(act, 2, env, front, placement, rng);
    for (const Person& p : persons) {
      const rf::Vec2 c = p.center_at(0.0);
      EXPECT_GT(c.x, 0.0);
      EXPECT_LT(c.x, env.width);
      EXPECT_GT(c.y, 0.0);
      EXPECT_LT(c.y, env.depth);
    }
  }
}

TEST(Activities, DistanceSweepRespected) {
  const Environment env = Environment::hall();
  util::Rng rng(6);
  const rf::Vec2 front{env.width / 2, 0.4};
  for (double d : {1.0, 2.0, 3.0, 4.0}) {
    PlacementOptions placement;
    placement.distance_m = d;
    placement.jitter = false;
    // A_01: both actors stand in place, so center_at(0) tracks the start.
    const auto persons = instantiate_activity(1, 2, env, front, placement, rng);
    for (const Person& p : persons) {
      EXPECT_NEAR(p.center_at(0.0).y - front.y, d, 0.3);
    }
  }
}

TEST(Activities, DifferentDrawsVaryVolunteers) {
  const Environment env = Environment::laboratory();
  util::Rng rng(7);
  const auto a = instantiate_activity(2, 2, env, {6.9, 0.4}, {}, rng);
  const auto b = instantiate_activity(2, 2, env, {6.9, 0.4}, {}, rng);
  EXPECT_NE(a[0].params().height_m, b[0].params().height_m);
}

TEST(Activities, SameSeedReproduces) {
  const Environment env = Environment::laboratory();
  util::Rng rng1(8), rng2(8);
  const auto a = instantiate_activity(5, 2, env, {6.9, 0.4}, {}, rng1);
  const auto b = instantiate_activity(5, 2, env, {6.9, 0.4}, {}, rng2);
  EXPECT_DOUBLE_EQ(a[1].params().height_m, b[1].params().height_m);
  EXPECT_DOUBLE_EQ(a[1].center_at(1.0).x, b[1].center_at(1.0).x);
}

TEST(Activities, ScenariosProduceDistinctMotion) {
  // Any two scenarios should differ in at least one actor's motion spec.
  const Environment env = Environment::laboratory();
  util::Rng rng(9);
  PlacementOptions placement;
  placement.jitter = false;
  for (int a = 1; a <= 12; ++a) {
    for (int b = a + 1; b <= 12; ++b) {
      util::Rng ra(1), rb(1);  // same volunteer randomization
      const auto pa = instantiate_activity(a, 2, env, {6.9, 0.4}, placement, ra);
      const auto pb = instantiate_activity(b, 2, env, {6.9, 0.4}, placement, rb);
      bool differs = false;
      for (int i = 0; i < 2 && !differs; ++i) {
        const MotionSpec& ma = pa[static_cast<std::size_t>(i)].motion();
        const MotionSpec& mb = pb[static_cast<std::size_t>(i)].motion();
        differs = ma.gait != mb.gait || ma.torso != mb.torso || ma.limb != mb.limb ||
                  ma.gait_freq_hz != mb.gait_freq_hz ||
                  ma.torso_freq_hz != mb.torso_freq_hz ||
                  ma.limb_freq_hz != mb.limb_freq_hz;
      }
      EXPECT_TRUE(differs) << "A_" << a << " vs A_" << b;
    }
  }
}

}  // namespace
}  // namespace m2ai::sim
