// The ten Fig. 9 baseline classifiers, validated on synthetic Gaussian
// blobs: every implementation must fit an easy separable problem well and
// expose sane failure behavior.
#include <gtest/gtest.h>

#include <memory>

#include "ml/adaboost.hpp"
#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gaussian_process.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/qda.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm_linear.hpp"
#include "ml/svm_rbf.hpp"

namespace m2ai::ml {
namespace {

// Three Gaussian blobs in 4 dimensions.
Dataset make_blobs(int per_class, double spread, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  const double centers[3][4] = {
      {0, 0, 0, 0}, {4, 4, 0, 0}, {0, 4, 4, 4}};
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < per_class; ++i) {
      std::vector<float> x(4);
      for (int j = 0; j < 4; ++j) {
        x[static_cast<std::size_t>(j)] =
            static_cast<float>(centers[c][j] + rng.normal(0.0, spread));
      }
      data.add(std::move(x), c);
    }
  }
  return data;
}

// A ring-vs-center problem no linear model can solve.
Dataset make_rings(int per_class, std::uint64_t seed) {
  util::Rng rng(seed);
  Dataset data;
  for (int i = 0; i < per_class; ++i) {
    // Inner blob.
    data.add({static_cast<float>(rng.normal(0.0, 0.3)),
              static_cast<float>(rng.normal(0.0, 0.3))},
             0);
    // Outer ring.
    const double ang = rng.uniform(0.0, 2.0 * M_PI);
    const double r = 2.0 + rng.normal(0.0, 0.2);
    data.add({static_cast<float>(r * std::cos(ang)),
              static_cast<float>(r * std::sin(ang))},
             1);
  }
  return data;
}

struct Factory {
  const char* name;
  std::unique_ptr<Classifier> (*make)();
};

std::unique_ptr<Classifier> mk_knn() { return std::make_unique<KnnClassifier>(5); }
std::unique_ptr<Classifier> mk_lsvm() { return std::make_unique<LinearSvm>(); }
std::unique_ptr<Classifier> mk_rsvm() { return std::make_unique<RbfSvm>(); }
std::unique_ptr<Classifier> mk_gp() {
  return std::make_unique<GaussianProcessClassifier>();
}
std::unique_ptr<Classifier> mk_tree() { return std::make_unique<DecisionTree>(); }
std::unique_ptr<Classifier> mk_forest() { return std::make_unique<RandomForest>(); }
std::unique_ptr<Classifier> mk_ada() { return std::make_unique<AdaBoost>(); }
std::unique_ptr<Classifier> mk_nb() { return std::make_unique<GaussianNaiveBayes>(); }
std::unique_ptr<Classifier> mk_qda() { return std::make_unique<Qda>(); }
std::unique_ptr<Classifier> mk_mlp() { return std::make_unique<MlpClassifier>(); }

class AllBaselines : public ::testing::TestWithParam<Factory> {};

TEST_P(AllBaselines, FitsGaussianBlobs) {
  auto classifier = GetParam().make();
  const Dataset train = make_blobs(60, 0.8, 1);
  const Dataset test = make_blobs(40, 0.8, 2);
  classifier->fit(train);
  EXPECT_GT(classifier->accuracy(test), 0.9) << classifier->name();
}

TEST_P(AllBaselines, PerfectOnWellSeparatedData) {
  auto classifier = GetParam().make();
  const Dataset train = make_blobs(40, 0.2, 3);
  const Dataset test = make_blobs(30, 0.2, 4);
  classifier->fit(train);
  EXPECT_GT(classifier->accuracy(test), 0.97) << classifier->name();
}

TEST_P(AllBaselines, RejectsEmptyTrainSet) {
  auto classifier = GetParam().make();
  EXPECT_THROW(classifier->fit(Dataset{}), std::invalid_argument);
}

INSTANTIATE_TEST_SUITE_P(
    Classifiers, AllBaselines,
    ::testing::Values(Factory{"knn", mk_knn}, Factory{"linear_svm", mk_lsvm},
                      Factory{"rbf_svm", mk_rsvm}, Factory{"gp", mk_gp},
                      Factory{"tree", mk_tree}, Factory{"forest", mk_forest},
                      Factory{"adaboost", mk_ada}, Factory{"naive_bayes", mk_nb},
                      Factory{"qda", mk_qda}, Factory{"mlp", mk_mlp}),
    [](const ::testing::TestParamInfo<Factory>& info) { return info.param.name; });

TEST(NonlinearBaselines, SolveRingsWhereLinearFails) {
  const Dataset train = make_rings(150, 5);
  const Dataset test = make_rings(80, 6);

  LinearSvm linear;
  linear.fit(train);
  EXPECT_LT(linear.accuracy(test), 0.75);  // structurally linear: must fail

  RbfSvm rbf;
  rbf.fit(train);
  EXPECT_GT(rbf.accuracy(test), 0.9);

  KnnClassifier knn(5);
  knn.fit(train);
  EXPECT_GT(knn.accuracy(test), 0.9);
}

TEST(MajorityVote, BasicAndTieBreak) {
  EXPECT_EQ(majority_vote({1, 1, 2}, 3), 1);
  EXPECT_EQ(majority_vote({2, 2, 1, 1}, 3), 1);  // tie -> smaller label
  EXPECT_EQ(majority_vote({}, 3), 0);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Dataset data = make_blobs(100, 1.0, 7);
  StandardScaler scaler;
  scaler.fit(data);
  const Dataset scaled = scaler.transform(data);
  for (std::size_t j = 0; j < scaled.dim(); ++j) {
    double mean = 0.0, var = 0.0;
    for (const auto& x : scaled.features) mean += x[j];
    mean /= static_cast<double>(scaled.size());
    for (const auto& x : scaled.features) var += (x[j] - mean) * (x[j] - mean);
    var /= static_cast<double>(scaled.size());
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(StandardScaler, ConstantFeaturePassthrough) {
  Dataset data;
  data.add({1.0f, 5.0f}, 0);
  data.add({2.0f, 5.0f}, 1);
  StandardScaler scaler;
  scaler.fit(data);
  const auto t = scaler.transform(std::vector<float>{1.5f, 5.0f});
  EXPECT_FALSE(std::isnan(t[1]));
  EXPECT_NEAR(t[1], 0.0f, 1e-6);
}

TEST(Dataset, SubsampleAndShuffle) {
  util::Rng rng(8);
  Dataset data = make_blobs(50, 1.0, 9);
  const Dataset sub = data.subsample(30, rng);
  EXPECT_EQ(sub.size(), 30u);
  EXPECT_EQ(sub.num_classes, data.num_classes);
  const Dataset shuf = data.shuffled(rng);
  EXPECT_EQ(shuf.size(), data.size());
}

TEST(Dataset, InconsistentDimensionRejected) {
  Dataset data;
  data.add({1.0f, 2.0f}, 0);
  EXPECT_THROW(data.add({1.0f}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace m2ai::ml
