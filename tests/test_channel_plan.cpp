#include "rf/channel_plan.hpp"

#include <gtest/gtest.h>

#include <set>

namespace m2ai::rf {
namespace {

TEST(ChannelPlan, EndpointFrequencies) {
  EXPECT_DOUBLE_EQ(channel_frequency_hz(0), 902.75e6);
  EXPECT_DOUBLE_EQ(channel_frequency_hz(kNumChannels - 1), 927.25e6);
}

TEST(ChannelPlan, StepIs500kHz) {
  for (int ch = 1; ch < kNumChannels; ++ch) {
    EXPECT_DOUBLE_EQ(channel_frequency_hz(ch) - channel_frequency_hz(ch - 1), 0.5e6);
  }
}

TEST(ChannelPlan, WavelengthMatchesFrequency) {
  for (int ch : {0, 10, 25, 49}) {
    EXPECT_NEAR(channel_wavelength_m(ch) * channel_frequency_hz(ch), kSpeedOfLight, 1.0);
  }
}

TEST(ChannelPlan, NearestChannelRoundTrips) {
  for (int ch = 0; ch < kNumChannels; ++ch) {
    EXPECT_EQ(nearest_channel(channel_frequency_hz(ch)), ch);
  }
}

TEST(ChannelPlan, NearestChannelClamps) {
  EXPECT_EQ(nearest_channel(800e6), 0);
  EXPECT_EQ(nearest_channel(1000e6), kNumChannels - 1);
}

TEST(ChannelPlan, CommonChannelIs910_25MHz) {
  EXPECT_DOUBLE_EQ(channel_frequency_hz(common_channel()), 910.25e6);
}

TEST(ChannelPlan, TypicalWavelengthIsAbout32cm) {
  EXPECT_NEAR(kTypicalWavelengthM, 0.3293, 0.0005);
}

TEST(HopSequence, DwellSchedule) {
  HopSequence hops{util::Rng(1)};
  // Within one dwell the channel is constant.
  const int ch = hops.channel_at(0.01);
  EXPECT_EQ(hops.channel_at(0.2), ch);
  EXPECT_EQ(hops.channel_at(0.399), ch);
  EXPECT_EQ(hops.hop_index(0.399), 0);
  EXPECT_EQ(hops.hop_index(0.401), 1);
}

TEST(HopSequence, EveryChannelOncePerCycle) {
  HopSequence hops{util::Rng(2)};
  std::set<int> seen;
  for (int hop = 0; hop < kNumChannels; ++hop) {
    seen.insert(hops.channel_at((hop + 0.5) * kDwellTimeSec));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kNumChannels));
}

TEST(HopSequence, CyclesDifferInOrder) {
  HopSequence hops{util::Rng(3)};
  std::vector<int> cycle1, cycle2;
  for (int hop = 0; hop < kNumChannels; ++hop) {
    cycle1.push_back(hops.channel_at((hop + 0.5) * kDwellTimeSec));
    cycle2.push_back(hops.channel_at((kNumChannels + hop + 0.5) * kDwellTimeSec));
  }
  EXPECT_NE(cycle1, cycle2);
}

TEST(HopSequence, DeterministicForSeed) {
  HopSequence a{util::Rng(4)}, b{util::Rng(4)};
  for (int hop = 0; hop < 100; ++hop) {
    const double t = (hop + 0.3) * kDwellTimeSec;
    EXPECT_EQ(a.channel_at(t), b.channel_at(t));
  }
}

}  // namespace
}  // namespace m2ai::rf
