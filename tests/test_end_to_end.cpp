// Integration tests across the whole stack: simulation -> preprocessing ->
// learning -> evaluation. Sized to stay test-suite friendly (< ~1 min);
// the bench binaries run the full-scale versions.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/features.hpp"
#include "dsp/phase.hpp"
#include "ml/svm_linear.hpp"

namespace m2ai::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.samples_per_class = 8;
  config.pipeline.windows_per_sample = 12;
  config.pipeline.bootstrap_sec = 4.0;
  config.train.epochs = 14;
  config.train.crop_frames = 10;
  config.seed = 424242;
  return config;
}

TEST(EndToEnd, DatasetGenerationStratified) {
  const ExperimentConfig config = tiny_config();
  const DataSplit split = generate_dataset(config);
  EXPECT_EQ(split.num_classes, 12);
  EXPECT_EQ(split.train.size() + split.test.size(), 12u * 8u);
  // Stratified: each class appears in both sides.
  std::vector<int> train_counts(12, 0), test_counts(12, 0);
  for (const Sample& s : split.train) ++train_counts[static_cast<std::size_t>(s.label)];
  for (const Sample& s : split.test) ++test_counts[static_cast<std::size_t>(s.label)];
  for (int c = 0; c < 12; ++c) {
    EXPECT_EQ(train_counts[static_cast<std::size_t>(c)], 6);
    EXPECT_EQ(test_counts[static_cast<std::size_t>(c)], 2);
  }
}

TEST(EndToEnd, M2AITrainsAboveChance) {
  const ExperimentConfig config = tiny_config();
  const DataSplit split = generate_dataset(config);
  const M2AIResult result = train_and_evaluate(config, split);
  // Chance on 12 classes is 8.3%; even this tiny run must beat it clearly.
  EXPECT_GT(result.accuracy, 0.2);
  EXPECT_GT(result.num_parameters, 1000u);
  EXPECT_EQ(result.confusion.total(), static_cast<int>(split.test.size()));
}

TEST(EndToEnd, BaselineHarnessRuns) {
  const ExperimentConfig config = tiny_config();
  const DataSplit split = generate_dataset(config);
  ml::LinearSvm svm;
  const double acc = baseline_accuracy(svm, split, 1, 600);
  EXPECT_GE(acc, 0.0);
  EXPECT_LE(acc, 1.0);
}

TEST(EndToEnd, FrameFeaturesHaveStableDimension) {
  const ExperimentConfig config = tiny_config();
  Pipeline pipeline(config.pipeline, 77);
  const Sample s1 = pipeline.simulate_sample(1);
  const Sample s2 = pipeline.simulate_sample(9);
  const auto f1 = frame_feature_vector(s1.frames[0]);
  const auto f2 = frame_feature_vector(s2.frames[3]);
  EXPECT_EQ(f1.size(), f2.size());
  // 6 tags x (36 pooled pseudo bins + 4 antennas).
  EXPECT_EQ(f1.size(), 6u * (36u + 4u));
}

TEST(EndToEnd, CalibrationRemovesHoppingOffsets) {
  // The core claim behind Fig. 10, tested at the DSP level: calibrated
  // phases of a stationary tag are far more concentrated across hops than
  // raw phases.
  PipelineConfig config;
  config.windows_per_sample = 8;
  config.bootstrap_sec = 20.0;
  Pipeline pipeline(config, 5);
  pipeline.simulate_sample(1);
  const auto* cal = pipeline.last_calibrator();
  ASSERT_NE(cal, nullptr);

  // Collect raw vs calibrated phase spread over the activity reports of a
  // near-stationary tag (person 2 of A_01 stands in place).
  double raw_spread = 0.0, cal_spread = 0.0;
  int count = 0;
  std::vector<double> raw, calibrated;
  for (const auto& r : pipeline.last_reports()) {
    if (r.tag_id != 6 || r.antenna != 0) continue;  // shoulder tag, one port
    raw.push_back(r.phase_rad);
    calibrated.push_back(cal->apply(r.tag_id, r.antenna, r.channel, r.phase_rad));
  }
  ASSERT_GT(raw.size(), 10u);
  const double raw_mean = dsp::circular_mean(raw);
  const double cal_mean = dsp::circular_mean(calibrated);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw_spread += dsp::circular_distance(raw[i], raw_mean);
    cal_spread += dsp::circular_distance(calibrated[i], cal_mean);
    ++count;
  }
  raw_spread /= count;
  cal_spread /= count;
  EXPECT_LT(cal_spread, raw_spread * 0.5);
}

TEST(EndToEnd, DeterministicExperiment) {
  const ExperimentConfig config = tiny_config();
  const DataSplit a = generate_dataset(config);
  const DataSplit b = generate_dataset(config);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].label, b.train[i].label);
    for (std::size_t t = 0; t < a.train[i].frames.size(); ++t) {
      for (std::size_t k = 0; k < a.train[i].frames[t].aux.size(); ++k) {
        EXPECT_EQ(a.train[i].frames[t].aux[k], b.train[i].frames[t].aux[k]);
      }
    }
  }
}

}  // namespace
}  // namespace m2ai::core
