#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/export.hpp"

namespace m2ai::obs {
namespace {

// Global obs state is shared across tests in this binary: every test starts
// from a clean, enabled registry and leaves the layer disabled again.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_all();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_all();
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = registry().counter("test.counter");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(MetricsTest, CounterDisabledIsNoop) {
  set_enabled(false);
  Counter& c = registry().counter("test.counter");
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, RegistryReturnsSameInstrument) {
  Counter& a = registry().counter("same");
  Counter& b = registry().counter("same");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST_F(MetricsTest, CounterIsThreadSafe) {
  Counter& c = registry().counter("mt.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_F(MetricsTest, GaugeKeepsLastValue) {
  Gauge& g = registry().gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST_F(MetricsTest, GaugeDisabledIsNoop) {
  set_enabled(false);
  Gauge& g = registry().gauge("test.gauge");
  g.set(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(MetricsTest, HistogramBasicStats) {
  Histogram& h = registry().histogram("test.hist");
  for (int v = 1; v <= 100; ++v) h.record(static_cast<double>(v));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  // util::percentile interpolates linearly between ranks.
  EXPECT_NEAR(s.p50, 50.5, 1e-9);
  EXPECT_NEAR(s.p95, 95.05, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST_F(MetricsTest, HistogramDisabledIsNoop) {
  set_enabled(false);
  Histogram& h = registry().histogram("test.hist");
  h.record(5.0);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(MetricsTest, HistogramReservoirKeepsExactAggregates) {
  // Far beyond the reservoir cap: count/sum/min/max stay exact and the
  // percentiles stay inside the recorded range.
  Histogram& h = registry().histogram("big.hist");
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) h.record(static_cast<double>(i % 1000));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kN));
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 999.0);
  EXPECT_GE(s.p50, 0.0);
  EXPECT_LE(s.p50, 999.0);
  EXPECT_GE(s.p95, s.p50);
  EXPECT_GE(s.p99, s.p95);
}

TEST_F(MetricsTest, HistogramIsThreadSafe) {
  Histogram& h = registry().histogram("mt.hist");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.record(static_cast<double>(t));
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST_F(MetricsTest, SnapshotListsAreSorted) {
  registry().counter("b").add(2);
  registry().counter("a").add(1);
  const auto counters = registry().counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a");
  EXPECT_EQ(counters[1].first, "b");
}

TEST_F(MetricsTest, ClearResetsValuesButKeepsReferencesValid) {
  // Regression: clear() used to drop the map entries, dangling any cached
  // Counter&/Gauge&/Histogram& held by long-lived call sites. It now resets
  // values in place.
  Counter& c = registry().counter("kept.counter");
  Gauge& g = registry().gauge("kept.gauge");
  Histogram& h = registry().histogram("kept.hist");
  c.add(5);
  g.set(2.5);
  h.record(1.0);

  registry().clear();

  // Entries survive (same addresses) with zeroed values...
  EXPECT_EQ(&registry().counter("kept.counter"), &c);
  EXPECT_EQ(&registry().gauge("kept.gauge"), &g);
  EXPECT_EQ(&registry().histogram("kept.hist"), &h);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.snapshot().count, 0u);

  // ...and the old references still record.
  c.add(3);
  EXPECT_EQ(registry().counter("kept.counter").value(), 3u);
}

TEST_F(MetricsTest, HardClearDropsEntries) {
  registry().counter("gone").add(1);
  registry().gauge("gone.g").set(1.0);
  registry().histogram("gone.h").record(1.0);
  registry().hard_clear();
  EXPECT_TRUE(registry().counters().empty());
  EXPECT_TRUE(registry().gauges().empty());
  EXPECT_TRUE(registry().histograms().empty());
}

TEST_F(MetricsTest, ResetAllClearsEverything) {
  registry().counter("x").add(7);
  registry().gauge("y").set(1.0);
  registry().histogram("z").record(3.0);
  reset_all();
  EXPECT_TRUE(registry().counters().empty());
  EXPECT_TRUE(registry().gauges().empty());
  EXPECT_TRUE(registry().histograms().empty());
}

}  // namespace
}  // namespace m2ai::obs
