// End-to-end learning sanity on the nn library itself: a small network must
// be able to fit a nonlinear synthetic task, and checkpoints must round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "nn/softmax.hpp"

namespace m2ai::nn {
namespace {

// Two-class XOR-style problem: label = (x0 > 0) XOR (x1 > 0).
struct Xor {
  std::vector<Tensor> inputs;
  std::vector<int> labels;
};

Xor make_xor(int n, std::uint64_t seed) {
  util::Rng rng(seed);
  Xor data;
  for (int i = 0; i < n; ++i) {
    const float x0 = static_cast<float>(rng.uniform(-1.0, 1.0));
    const float x1 = static_cast<float>(rng.uniform(-1.0, 1.0));
    data.inputs.push_back(Tensor::from({x0, x1}));
    data.labels.push_back(((x0 > 0) != (x1 > 0)) ? 1 : 0);
  }
  return data;
}

double accuracy(Sequential& net, const Xor& data) {
  int correct = 0;
  for (std::size_t i = 0; i < data.inputs.size(); ++i) {
    const Tensor logits = net.forward(data.inputs[i], false);
    const int pred = logits.at(0) > logits.at(1) ? 0 : 1;
    if (pred == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.inputs.size());
}

Sequential build_net(std::uint64_t seed) {
  util::Rng rng(seed);
  Sequential net;
  net.emplace<Dense>(2, 16, rng);
  net.emplace<ReLU>();
  net.emplace<Dense>(16, 2, rng);
  return net;
}

TEST(Training, LearnsXor) {
  Sequential net = build_net(1);
  const Xor train = make_xor(400, 2);
  const Xor test = make_xor(200, 3);
  Adam opt(0.01);
  const auto params = net.params();
  for (int epoch = 0; epoch < 40; ++epoch) {
    for (std::size_t i = 0; i < train.inputs.size(); ++i) {
      const Tensor logits = net.forward(train.inputs[i], true);
      const auto lag = softmax_cross_entropy(logits, train.labels[i]);
      net.backward(lag.grad_logits);
      if (i % 8 == 7) {
        clip_gradient_norm(params, 5.0);
        opt.step(params);
      }
    }
    clip_gradient_norm(params, 5.0);
    opt.step(params);
  }
  EXPECT_GT(accuracy(net, test), 0.93);
}

TEST(Training, LossDecreasesMonotonicallyOnAverage) {
  Sequential net = build_net(4);
  const Xor train = make_xor(300, 5);
  Adam opt(0.01);
  const auto params = net.params();
  auto epoch_loss = [&]() {
    double total = 0.0;
    for (std::size_t i = 0; i < train.inputs.size(); ++i) {
      const Tensor logits = net.forward(train.inputs[i], true);
      const auto lag = softmax_cross_entropy(logits, train.labels[i]);
      total += lag.loss;
      net.backward(lag.grad_logits);
      if (i % 8 == 7) opt.step(params);
    }
    opt.step(params);
    return total / static_cast<double>(train.inputs.size());
  };
  const double first = epoch_loss();
  double last = first;
  for (int e = 0; e < 15; ++e) last = epoch_loss();
  EXPECT_LT(last, first * 0.6);
}

TEST(Serialize, RoundTripPreservesPredictions) {
  Sequential net = build_net(6);
  const Xor data = make_xor(50, 7);
  const std::string path = testing::TempDir() + "m2ai_params.bin";
  save_params(path, net.params());

  Sequential net2 = build_net(999);  // different init
  load_params(path, net2.params());
  for (const Tensor& x : data.inputs) {
    const Tensor a = net.forward(x, false);
    const Tensor b = net2.forward(x, false);
    EXPECT_FLOAT_EQ(a.at(0), b.at(0));
    EXPECT_FLOAT_EQ(a.at(1), b.at(1));
  }
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  Sequential net = build_net(8);
  const std::string path = testing::TempDir() + "m2ai_params_bad.bin";
  save_params(path, net.params());

  util::Rng rng(9);
  Sequential other;
  other.emplace<Dense>(2, 8, rng);  // different hidden size
  other.emplace<ReLU>();
  other.emplace<Dense>(8, 2, rng);
  EXPECT_THROW(load_params(path, other.params()), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileRejected) {
  Sequential net = build_net(10);
  EXPECT_THROW(load_params("/nonexistent/m2ai.bin", net.params()), std::runtime_error);
}

TEST(Serialize, CountMismatchRejected) {
  Sequential net = build_net(11);
  const std::string path = testing::TempDir() + "m2ai_params_count.bin";
  save_params(path, net.params());
  util::Rng rng(12);
  Sequential other;
  other.emplace<Dense>(2, 16, rng);
  EXPECT_THROW(load_params(path, other.params()), std::runtime_error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Hardening: checkpoints from a different architecture and corrupt/truncated
// files must fail cleanly (no warn-and-continue, no giant allocations from
// garbage length fields).

void write_raw_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

TEST(Serialize, NameMismatchRejected) {
  // Same shape, different name: a checkpoint from a different architecture
  // whose shapes coincidentally match must NOT load.
  Param saved("encoder.weight", {2, 2});
  saved.value.fill(1.5f);
  const std::string path = testing::TempDir() + "m2ai_params_name.bin";
  save_params(path, {&saved});

  Param loaded("decoder.weight", {2, 2});
  EXPECT_THROW(load_params(path, std::vector<Param*>{&loaded}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, HugeStringLengthRejectedBeforeAllocating) {
  // A corrupt name length of ~4 GB must be rejected against the file size,
  // not allocated.
  const std::string path = testing::TempDir() + "m2ai_params_hugestr.bin";
  {
    std::ofstream out(path, std::ios::binary);
    write_raw_u32(out, 0x4d324149);  // magic "M2AI"
    write_raw_u32(out, 1);           // version
    write_raw_u32(out, 1);           // count
    write_raw_u32(out, 0xfffffff0u); // absurd name length
  }
  Param p("dense.weight", {2, 2});
  EXPECT_THROW(load_params(path, std::vector<Param*>{&p}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, HugeRankRejected) {
  const std::string path = testing::TempDir() + "m2ai_params_hugerank.bin";
  {
    std::ofstream out(path, std::ios::binary);
    write_raw_u32(out, 0x4d324149);
    write_raw_u32(out, 1);
    write_raw_u32(out, 1);
    const std::string name = "dense.weight";
    write_raw_u32(out, static_cast<std::uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_raw_u32(out, 0x40000000u);  // corrupt rank
  }
  Param p("dense.weight", {2, 2});
  EXPECT_THROW(load_params(path, std::vector<Param*>{&p}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedTensorDataRejected) {
  Sequential net = build_net(13);
  const std::string path = testing::TempDir() + "m2ai_params_trunc.bin";
  save_params(path, net.params());
  // Chop off the tail so the last tensor's data can't be satisfied.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<char> bytes(size - 8);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  Sequential other = build_net(14);
  EXPECT_THROW(load_params(path, other.params()), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedHeaderRejected) {
  const std::string path = testing::TempDir() + "m2ai_params_hdr.bin";
  {
    std::ofstream out(path, std::ios::binary);
    write_raw_u32(out, 0x4d324149);  // magic only, nothing else
  }
  Sequential net = build_net(15);
  EXPECT_THROW(load_params(path, net.params()), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace m2ai::nn
