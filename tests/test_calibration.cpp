#include "dsp/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/phase.hpp"
#include "rf/channel_plan.hpp"
#include "util/rng.hpp"

namespace m2ai::dsp {
namespace {

TEST(CalibrationTable, RemovesPlantedLinearOffsets) {
  // Offsets linear in channel index (Fig. 3 model).
  const int common = rf::common_channel();
  auto offset = [&](int ch) { return 0.11 * (ch - common); };

  CalibrationTable table;
  util::Rng rng(1);
  const double true_phase = 1.3;
  for (int ch = 0; ch < rf::kNumChannels; ++ch) {
    for (int k = 0; k < 9; ++k) {
      table.add_sample(ch, wrap_2pi(true_phase + offset(ch) + rng.normal(0.0, 0.02)));
    }
  }
  table.finalize(common);
  for (int ch = 0; ch < rf::kNumChannels; ++ch) {
    const double cal = table.apply(ch, wrap_2pi(true_phase + offset(ch)));
    EXPECT_LT(circular_distance(cal, true_phase), 0.05) << "channel " << ch;
  }
}

TEST(CalibrationTable, RemovesHalfCycleOffsets) {
  // A pi offset on some channels (the reader's half-cycle reporting state)
  // must be calibrated out like any other constant.
  const int common = rf::common_channel();
  CalibrationTable table;
  const double true_phase = 2.0;
  auto offset = [&](int ch) { return (ch % 3 == 0) ? M_PI : 0.0; };
  for (int ch = 0; ch < rf::kNumChannels; ++ch) {
    for (int k = 0; k < 5; ++k) table.add_sample(ch, wrap_2pi(true_phase + offset(ch)));
  }
  table.finalize(common);
  // Calibration references everything to the common channel, whose own
  // constant (here possibly pi) is part of the reference — what matters is
  // that all channels agree after calibration.
  const double reference =
      table.apply(common, wrap_2pi(true_phase + offset(common)));
  for (int ch = 0; ch < rf::kNumChannels; ++ch) {
    const double cal = table.apply(ch, wrap_2pi(true_phase + offset(ch)));
    EXPECT_LT(circular_distance(cal, reference), 1e-6);
  }
}

TEST(CalibrationTable, ExtrapolatesUnseenChannels) {
  // Only even channels observed; odd channels must follow the linear fit.
  const int common = rf::common_channel();
  auto offset = [&](int ch) { return 0.04 * (ch - common); };
  CalibrationTable table;
  const double true_phase = 0.7;
  for (int ch = 0; ch < rf::kNumChannels; ch += 2) {
    for (int k = 0; k < 5; ++k) table.add_sample(ch, wrap_2pi(true_phase + offset(ch)));
  }
  table.finalize(common);
  for (int ch = 1; ch < rf::kNumChannels; ch += 2) {
    const double cal = table.apply(ch, wrap_2pi(true_phase + offset(ch)));
    EXPECT_LT(circular_distance(cal, true_phase), 0.1) << "channel " << ch;
  }
}

TEST(CalibrationTable, ApplyBeforeFinalizeThrows) {
  CalibrationTable table;
  table.add_sample(0, 1.0);
  EXPECT_THROW(table.apply(0, 1.0), std::logic_error);
  EXPECT_THROW(table.offset(0), std::logic_error);
}

TEST(CalibrationTable, BadChannelThrows) {
  CalibrationTable table;
  EXPECT_THROW(table.add_sample(-1, 0.0), std::out_of_range);
  EXPECT_THROW(table.add_sample(rf::kNumChannels, 0.0), std::out_of_range);
}

TEST(CalibrationTable, SampleCountTracks) {
  CalibrationTable table;
  table.add_sample(3, 0.1);
  table.add_sample(3, 0.2);
  table.add_sample(7, 0.3);
  EXPECT_EQ(table.sample_count(), 3u);
}

TEST(PhaseCalibrator, PerTagPerAntennaTables) {
  PhaseCalibrator cal;
  // Tag 1 antenna 0: offset +0.5 on channel 4; tag 2 antenna 1: offset -0.3.
  const int common = rf::common_channel();
  for (int k = 0; k < 5; ++k) {
    cal.add_sample(1, 0, common, 1.0);
    cal.add_sample(1, 0, 4, wrap_2pi(1.0 + 0.5));
    cal.add_sample(2, 1, common, 2.0);
    cal.add_sample(2, 1, 4, wrap_2pi(2.0 - 0.3));
  }
  cal.finalize();
  EXPECT_LT(circular_distance(cal.apply(1, 0, 4, wrap_2pi(1.0 + 0.5)), 1.0), 1e-6);
  EXPECT_LT(circular_distance(cal.apply(2, 1, 4, wrap_2pi(2.0 - 0.3)), 2.0), 1e-6);
}

TEST(PhaseCalibrator, UnknownTagPassesThrough) {
  PhaseCalibrator cal;
  cal.add_sample(1, 0, 0, 0.4);
  cal.finalize();
  EXPECT_DOUBLE_EQ(cal.apply(99, 0, 0, 1.234), 1.234);
}

TEST(PhaseCalibrator, TableLookup) {
  PhaseCalibrator cal;
  cal.add_sample(5, 2, 10, 0.1);
  cal.finalize();
  EXPECT_NE(cal.table(5, 2), nullptr);
  EXPECT_EQ(cal.table(5, 3), nullptr);
}

}  // namespace
}  // namespace m2ai::dsp
