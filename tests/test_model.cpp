#include "core/model.hpp"

#include <gtest/gtest.h>

#include "nn/gradcheck.hpp"
#include "nn/optimizer.hpp"

namespace m2ai::core {
namespace {

constexpr int kTags = 3;
constexpr int kAntennas = 4;
constexpr int kClasses = 5;

SpectrumFrame random_frame(FeatureMode mode, util::Rng& rng) {
  SpectrumFrame f;
  f.has_pseudo = (mode == FeatureMode::kM2AI || mode == FeatureMode::kMusicOnly);
  f.has_aux = (mode != FeatureMode::kMusicOnly);
  if (f.has_pseudo) {
    f.pseudo = nn::Tensor({kTags, 180});
    f.pseudo.randomize_uniform(rng, 0.0f, 1.0f);
  }
  if (f.has_aux) {
    f.aux = nn::Tensor({kTags, kAntennas});
    f.aux.randomize_uniform(rng, 0.0f, 1.0f);
  }
  return f;
}

Sample random_sample(FeatureMode mode, int t_len, int label, util::Rng& rng) {
  Sample s;
  s.label = label;
  for (int t = 0; t < t_len; ++t) s.frames.push_back(random_frame(mode, rng));
  return s;
}

ModelConfig small_model() {
  ModelConfig m;
  m.lstm_hidden = 8;
  m.merge_features = 12;
  m.dropout = 0.0;  // deterministic for grad checks
  return m;
}

class AllArchitectures : public ::testing::TestWithParam<NetworkArch> {};

TEST_P(AllArchitectures, TrainStepAndPredictRun) {
  util::Rng rng(1);
  ModelConfig m = small_model();
  m.arch = GetParam();
  M2AINetwork net(m, FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  const Sample s = random_sample(FeatureMode::kM2AI, 6, 2, rng);
  const auto step = net.train_step(s);
  EXPECT_GT(step.loss, 0.0);
  EXPECT_GE(step.predicted, 0);
  EXPECT_LT(step.predicted, kClasses);
  const int pred = net.predict(s.frames);
  EXPECT_GE(pred, 0);
  EXPECT_LT(pred, kClasses);
}

TEST_P(AllArchitectures, GradientsAccumulate) {
  util::Rng rng(2);
  ModelConfig m = small_model();
  m.arch = GetParam();
  M2AINetwork net(m, FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  const Sample s = random_sample(FeatureMode::kM2AI, 4, 1, rng);
  net.train_step(s);
  double grad_norm = 0.0;
  for (nn::Param* p : net.params()) grad_norm += p->grad.l2_norm();
  EXPECT_GT(grad_norm, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Archs, AllArchitectures,
                         ::testing::Values(NetworkArch::kCnnLstm,
                                           NetworkArch::kCnnOnly,
                                           NetworkArch::kLstmOnly));

class AllFeatureModes : public ::testing::TestWithParam<FeatureMode> {};

TEST_P(AllFeatureModes, NetworkAdaptsInputShape) {
  util::Rng rng(3);
  M2AINetwork net(small_model(), GetParam(), kTags, kAntennas, kClasses);
  const Sample s = random_sample(GetParam(), 5, 0, rng);
  const auto step = net.train_step(s);
  EXPECT_TRUE(std::isfinite(step.loss));
  EXPECT_GT(net.num_parameters(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Modes, AllFeatureModes,
                         ::testing::Values(FeatureMode::kM2AI, FeatureMode::kMusicOnly,
                                           FeatureMode::kFftOnly,
                                           FeatureMode::kPhaseOnly,
                                           FeatureMode::kRssiOnly));

TEST(M2AINetwork, PredictProbaNormalized) {
  util::Rng rng(4);
  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  const Sample s = random_sample(FeatureMode::kM2AI, 4, 0, rng);
  const auto probs = net.predict_proba(s.frames);
  ASSERT_EQ(probs.size(), static_cast<std::size_t>(kClasses));
  double total = 0.0;
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(M2AINetwork, EmptySampleRejected) {
  M2AINetwork net(small_model(), FeatureMode::kM2AI, kTags, kAntennas, kClasses);
  Sample s;
  EXPECT_THROW(net.train_step(s), std::invalid_argument);
}

TEST(M2AINetwork, FullGradCheckTinyModel) {
  // End-to-end analytic-vs-numeric gradients through conv branches, merge,
  // stacked LSTM, and head on a 2-step sequence.
  util::Rng rng(5);
  ModelConfig m = small_model();
  m.lstm_hidden = 4;
  m.merge_features = 6;
  M2AINetwork net(m, FeatureMode::kM2AI, 2, 3, 3);

  SpectrumFrame f1, f2;
  for (SpectrumFrame* f : {&f1, &f2}) {
    f->has_pseudo = true;
    f->has_aux = true;
    f->pseudo = nn::Tensor({2, 180});
    f->pseudo.randomize_uniform(rng, 0.0f, 1.0f);
    f->aux = nn::Tensor({2, 3});
    f->aux.randomize_uniform(rng, 0.0f, 1.0f);
  }
  Sample s;
  s.label = 1;
  s.frames = {f1, f2};

  auto loss_fn = [&]() { return net.train_step(s).loss; };
  // Wide epsilon: the loss is float32, so small perturbations drown in
  // rounding noise on a network this deep; ReLU kinks additionally break
  // the max-error criterion on a few components. Require broad agreement.
  const auto result = nn::check_param_gradients(loss_fn, net.params(), 1e-2, 8e-2);
  EXPECT_GT(result.fraction_within, 0.9)
      << "fraction " << result.fraction_within << ", max rel err "
      << result.max_rel_error;
}

TEST(M2AINetwork, LearnsToSeparateSyntheticClasses) {
  // Two classes with distinct pseudospectrum peak locations must be
  // separable within a few epochs.
  util::Rng rng(6);
  ModelConfig m = small_model();
  M2AINetwork net(m, FeatureMode::kM2AI, kTags, kAntennas, 2);

  auto make_class_sample = [&](int label) {
    Sample s;
    s.label = label;
    for (int t = 0; t < 4; ++t) {
      SpectrumFrame f;
      f.has_pseudo = true;
      f.has_aux = true;
      f.pseudo = nn::Tensor({kTags, 180});
      f.aux = nn::Tensor({kTags, kAntennas});
      const int peak = label == 0 ? 45 : 135;
      for (int tag = 0; tag < kTags; ++tag) {
        for (int b = 0; b < 180; ++b) {
          const double d = b - peak;
          f.pseudo.at(tag, b) = static_cast<float>(
              std::exp(-d * d / 50.0) + 0.05 * rng.uniform());
        }
        for (int a = 0; a < kAntennas; ++a) {
          f.aux.at(tag, a) = static_cast<float>(0.5 + 0.1 * rng.normal());
        }
      }
      s.frames.push_back(std::move(f));
    }
    return s;
  };

  std::vector<Sample> train;
  for (int i = 0; i < 20; ++i) train.push_back(make_class_sample(i % 2));

  nn::Adam opt(3e-3);
  const auto params = net.params();
  for (int epoch = 0; epoch < 20; ++epoch) {
    for (const Sample& s : train) {
      net.train_step(s);
      nn::clip_gradient_norm(params, 5.0);
      opt.step(params);
    }
  }
  int correct = 0;
  for (int i = 0; i < 10; ++i) {
    const Sample s = make_class_sample(i % 2);
    if (net.predict(s.frames) == s.label) ++correct;
  }
  EXPECT_GE(correct, 9);
}

}  // namespace
}  // namespace m2ai::core
