#include "nn/lstm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/gradcheck.hpp"

namespace m2ai::nn {
namespace {

std::vector<Tensor> random_sequence(int t_len, int dim, util::Rng& rng) {
  std::vector<Tensor> seq;
  for (int t = 0; t < t_len; ++t) {
    Tensor x({dim});
    x.randomize_normal(rng, 1.0f);
    seq.push_back(std::move(x));
  }
  return seq;
}

double sequence_half_square(const std::vector<Tensor>& outputs) {
  double s = 0.0;
  for (const Tensor& y : outputs) {
    for (std::size_t i = 0; i < y.size(); ++i) s += 0.5 * y[i] * y[i];
  }
  return s;
}

TEST(Lstm, OutputShapes) {
  util::Rng rng(1);
  Lstm lstm(3, 5, rng);
  const auto outputs = lstm.forward(random_sequence(7, 3, rng), false);
  ASSERT_EQ(outputs.size(), 7u);
  for (const Tensor& h : outputs) EXPECT_EQ(h.size(), 5u);
}

TEST(Lstm, HiddenStateBounded) {
  // h = o * tanh(c) keeps |h| < 1.
  util::Rng rng(2);
  Lstm lstm(4, 8, rng);
  const auto outputs = lstm.forward(random_sequence(20, 4, rng), false);
  for (const Tensor& h : outputs) {
    for (std::size_t i = 0; i < h.size(); ++i) EXPECT_LT(std::abs(h[i]), 1.0f);
  }
}

TEST(Lstm, RejectsWrongInputSize) {
  util::Rng rng(3);
  Lstm lstm(4, 4, rng);
  std::vector<Tensor> bad{Tensor({3})};
  EXPECT_THROW(lstm.forward(bad, false), std::invalid_argument);
}

TEST(Lstm, BackwardRequiresMatchingLength) {
  util::Rng rng(4);
  Lstm lstm(2, 3, rng);
  lstm.forward(random_sequence(4, 2, rng), true);
  std::vector<Tensor> grads(3, Tensor({3}));
  EXPECT_THROW(lstm.backward(grads), std::logic_error);
}

TEST(Lstm, BpttGradCheck) {
  util::Rng rng(5);
  Lstm lstm(3, 4, rng);
  const auto inputs = random_sequence(5, 3, rng);
  auto loss_fn = [&]() {
    lstm.clear_cache();
    const auto outputs = lstm.forward(inputs, true);
    const double loss = sequence_half_square(outputs);
    lstm.backward(outputs);  // dL/dh_t = h_t
    return loss;
  };
  const auto result = check_param_gradients(loss_fn, lstm.params(), 1e-3, 3e-2);
  EXPECT_TRUE(result.ok) << "max rel err " << result.max_rel_error;
}

TEST(Lstm, InputGradientsFlowToEarlySteps) {
  util::Rng rng(6);
  Lstm lstm(2, 6, rng);
  const auto inputs = random_sequence(8, 2, rng);
  const auto outputs = lstm.forward(inputs, true);
  // Loss only on the LAST step: gradient must still reach step 0.
  std::vector<Tensor> grads(8, Tensor({6}));
  grads.back() = outputs.back();
  const auto gin = lstm.backward(grads);
  ASSERT_EQ(gin.size(), 8u);
  EXPECT_GT(gin.front().l2_norm(), 0.0f);
}

TEST(Lstm, MemoryDistinguishesEarlyInputs) {
  // The defining LSTM property (Sec. IV-B.2): the final state depends on an
  // input seen many steps earlier.
  util::Rng rng(7);
  Lstm lstm(1, 8, rng);
  std::vector<Tensor> seq_a, seq_b;
  for (int t = 0; t < 12; ++t) {
    seq_a.push_back(Tensor::from({t == 0 ? 2.0f : 0.1f}));
    seq_b.push_back(Tensor::from({t == 0 ? -2.0f : 0.1f}));
  }
  const auto ha = lstm.forward(seq_a, false);
  const auto hb = lstm.forward(seq_b, false);
  Tensor diff = ha.back();
  diff.add_scaled(hb.back(), -1.0f);
  EXPECT_GT(diff.l2_norm(), 0.01f);
}

TEST(Lstm, ForgetBiasStartsAtOne) {
  util::Rng rng(8);
  Lstm lstm(2, 4, rng);
  const Tensor& bias = lstm.params()[1]->value;
  for (int h = 0; h < 4; ++h) {
    EXPECT_FLOAT_EQ(bias.at(4 + h), 1.0f);  // forget-gate block
    EXPECT_FLOAT_EQ(bias.at(h), 0.0f);      // input-gate block
  }
}

TEST(Lstm, TrainForwardClearsStaleCacheFromAbandonedStep) {
  // Regression: an abandoned train_step (e.g. an exception between forward
  // and backward) used to leave its StepCaches behind, so the next backward
  // paired gradients with the wrong timesteps (or threw on the length
  // mismatch). A training-mode forward must start from a clean cache.
  util::Rng rng(11);
  Lstm lstm(3, 4, rng);
  util::Rng ref_rng(11);
  Lstm ref(3, 4, ref_rng);
  util::Rng data_rng(12);
  const auto inputs = random_sequence(5, 3, data_rng);

  // Reference gradients from a clean forward/backward pair.
  const auto ref_outputs = ref.forward(inputs, true);
  ref.backward(ref_outputs);

  lstm.forward(inputs, true);  // abandoned: no backward consumes this cache
  const auto outputs = lstm.forward(inputs, true);
  const auto grad_inputs = lstm.backward(outputs);  // must not mispair or throw
  ASSERT_EQ(grad_inputs.size(), 5u);

  const auto lhs = lstm.params();
  const auto rhs = ref.params();
  for (std::size_t p = 0; p < lhs.size(); ++p) {
    ASSERT_EQ(lhs[p]->grad.size(), rhs[p]->grad.size());
    for (std::size_t i = 0; i < lhs[p]->grad.size(); ++i) {
      EXPECT_FLOAT_EQ(lhs[p]->grad[i], rhs[p]->grad[i]) << "param " << p << " idx " << i;
    }
  }
}

TEST(Lstm, DeterministicForSeed) {
  util::Rng rng_a(9), rng_b(9);
  Lstm a(3, 4, rng_a), b(3, 4, rng_b);
  util::Rng data_rng(10);
  const auto inputs = random_sequence(4, 3, data_rng);
  const auto ha = a.forward(inputs, false);
  const auto hb = b.forward(inputs, false);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(ha[t][i], hb[t][i]);
  }
}

}  // namespace
}  // namespace m2ai::nn
