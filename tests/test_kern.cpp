// Regression tests for the deterministic compute-kernel layer: every kernel
// must be bitwise-identical to the naive reference loop it replaced, at any
// shape (including degenerate ones) and any thread count.
#include <gtest/gtest.h>

#include <complex>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/frames.hpp"
#include "core/pipeline.hpp"
#include "dsp/cmatrix.hpp"
#include "dsp/covariance.hpp"
#include "dsp/eig.hpp"
#include "dsp/fft.hpp"
#include "kern/eig4.hpp"
#include "kern/kernels.hpp"
#include "kern/workspace.hpp"
#include "nn/conv1d.hpp"
#include "par/parallel_for.hpp"
#include "util/rng.hpp"

namespace m2ai {
namespace {

std::vector<float> random_floats(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// The naive forward loop the GEMV kernel replaced (Dense/LSTM gates).
std::vector<float> naive_gemv(const std::vector<float>& w,
                              const std::vector<float>& x,
                              const std::vector<float>& b, int rows, int cols) {
  std::vector<float> y(static_cast<std::size_t>(rows));
  for (int r = 0; r < rows; ++r) {
    float acc = b.empty() ? 0.0f : b[static_cast<std::size_t>(r)];
    for (int k = 0; k < cols; ++k) {
      acc += w[static_cast<std::size_t>(r) * cols + k] * x[static_cast<std::size_t>(k)];
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

TEST(KernGemv, BitwiseMatchesNaiveAtOddShapes) {
  util::Rng rng(7);
  const int shapes[][2] = {{1, 1}, {3, 5}, {7, 13}, {31, 17}, {128, 96}, {5, 0}};
  for (const auto& s : shapes) {
    const int rows = s[0], cols = s[1];
    const auto w = random_floats(static_cast<std::size_t>(rows) * cols, rng);
    const auto x = random_floats(static_cast<std::size_t>(cols), rng);
    const auto b = random_floats(static_cast<std::size_t>(rows), rng);
    std::vector<float> y(static_cast<std::size_t>(rows), -1.0f);
    kern::gemv(w.data(), x.data(), b.data(), y.data(), rows, cols);
    const auto ref = naive_gemv(w, x, b, rows, cols);
    ASSERT_EQ(0, std::memcmp(y.data(), ref.data(), y.size() * sizeof(float)))
        << rows << "x" << cols;
  }
}

TEST(KernGemv, NullBiasStartsFromZero) {
  util::Rng rng(8);
  const auto w = random_floats(6, rng);
  const auto x = random_floats(3, rng);
  std::vector<float> y(2);
  kern::gemv(w.data(), x.data(), nullptr, y.data(), 2, 3);
  const auto ref = naive_gemv(w, x, {}, 2, 3);
  EXPECT_EQ(0, std::memcmp(y.data(), ref.data(), y.size() * sizeof(float)));
}

TEST(KernGemvBackward, BitwiseMatchesNaiveWithAndWithoutSkip) {
  util::Rng rng(9);
  const int rows = 12, cols = 7;
  const auto w = random_floats(static_cast<std::size_t>(rows) * cols, rng);
  const auto x = random_floats(cols, rng);
  auto g = random_floats(rows, rng);
  g[2] = 0.0f;  // exercise the skip branch
  g[9] = 0.0f;

  for (const bool skip : {true, false}) {
    // Start all accumulators from nonzero state: the kernel accumulates.
    auto wg_k = random_floats(w.size(), rng);
    auto wg_n = wg_k;
    auto bg_k = random_floats(rows, rng);
    auto bg_n = bg_k;
    auto dx_k = random_floats(cols, rng);
    auto dx_n = dx_k;

    kern::gemv_backward_acc(w.data(), wg_k.data(), x.data(), g.data(), bg_k.data(),
                            dx_k.data(), rows, cols, skip);
    for (int r = 0; r < rows; ++r) {
      const float gr = g[static_cast<std::size_t>(r)];
      if (skip && gr == 0.0f) continue;
      bg_n[static_cast<std::size_t>(r)] += gr;
      for (int k = 0; k < cols; ++k) {
        wg_n[static_cast<std::size_t>(r) * cols + k] += gr * x[static_cast<std::size_t>(k)];
        dx_n[static_cast<std::size_t>(k)] += gr * w[static_cast<std::size_t>(r) * cols + k];
      }
    }
    EXPECT_EQ(0, std::memcmp(wg_k.data(), wg_n.data(), wg_k.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(bg_k.data(), bg_n.data(), bg_k.size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(dx_k.data(), dx_n.data(), dx_k.size() * sizeof(float)));
  }
}

TEST(KernGemm, BitwiseMatchesNaiveTripleLoop) {
  util::Rng rng(10);
  const int shapes[][3] = {{1, 1, 1}, {3, 5, 7}, {4, 4, 4}, {2, 0, 3}, {13, 11, 17}};
  for (const auto& s : shapes) {
    const int m = s[0], k = s[1], n = s[2];
    const auto a = random_floats(static_cast<std::size_t>(m) * k, rng);
    const auto b = random_floats(static_cast<std::size_t>(k) * n, rng);
    std::vector<float> c(static_cast<std::size_t>(m) * n, -1.0f);
    kern::gemm(a.data(), b.data(), c.data(), m, k, n);
    std::vector<float> ref(c.size());
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (int kk = 0; kk < k; ++kk) {
          acc += a[static_cast<std::size_t>(i) * k + kk] *
                 b[static_cast<std::size_t>(kk) * n + j];
        }
        ref[static_cast<std::size_t>(i) * n + j] = acc;
      }
    }
    ASSERT_EQ(0, std::memcmp(c.data(), ref.data(), c.size() * sizeof(float)))
        << m << "x" << k << "x" << n;
  }
}

TEST(KernConv1dRow, BitwiseMatchesNaivePerElementLoop) {
  util::Rng rng(11);
  // (len, kernel, stride, padding) including kernel > len and zero padding.
  const int shapes[][4] = {{19, 5, 2, 3}, {180, 7, 2, 3}, {10, 3, 1, 1},
                           {4, 7, 1, 3},  {9, 3, 3, 0},   {1, 1, 1, 0}};
  for (const auto& s : shapes) {
    const int len = s[0], kernel = s[1], stride = s[2], padding = s[3];
    const int out_len = (len + 2 * padding - kernel) / stride + 1;
    ASSERT_GT(out_len, 0);
    const auto x = random_floats(static_cast<std::size_t>(len), rng);
    const auto w = random_floats(static_cast<std::size_t>(kernel), rng);
    std::vector<float> partial(static_cast<std::size_t>(out_len), 0.0f);
    kern::conv1d_row_acc(x.data(), len, w.data(), kernel, stride, padding,
                         partial.data(), out_len);
    for (int ol = 0; ol < out_len; ++ol) {
      float acc = 0.0f;
      for (int k = 0; k < kernel; ++k) {
        const int pos = ol * stride - padding + k;
        if (pos < 0 || pos >= len) continue;
        acc += w[static_cast<std::size_t>(k)] * x[static_cast<std::size_t>(pos)];
      }
      ASSERT_EQ(partial[static_cast<std::size_t>(ol)], acc)
          << "ol=" << ol << " len=" << len << " k=" << kernel;
    }
  }
}

TEST(KernNoiseProjection, BitwiseMatchesColumnInnerReference) {
  util::Rng rng(12);
  const int n = 4, num_noise = 3, num_bins = 37;
  // Noise vectors as columns of a CMatrix, the way the old MUSIC loop held them.
  dsp::CMatrix un_mat(static_cast<std::size_t>(n), static_cast<std::size_t>(num_noise));
  for (std::size_t r = 0; r < static_cast<std::size_t>(n); ++r) {
    for (std::size_t c = 0; c < static_cast<std::size_t>(num_noise); ++c) {
      un_mat(r, c) = dsp::cdouble{rng.normal(), rng.normal()};
    }
  }
  std::vector<dsp::cdouble> steer(static_cast<std::size_t>(num_bins) * n);
  for (auto& v : steer) v = dsp::cdouble{rng.normal(), rng.normal()};

  std::vector<dsp::cdouble> un_flat(static_cast<std::size_t>(num_noise) * n);
  for (int k = 0; k < num_noise; ++k) {
    for (int i = 0; i < n; ++i) {
      un_flat[static_cast<std::size_t>(k) * n + i] =
          un_mat(static_cast<std::size_t>(i), static_cast<std::size_t>(k));
    }
  }
  std::vector<double> denom(static_cast<std::size_t>(num_bins), -1.0);
  kern::noise_projection(un_flat.data(), num_noise, steer.data(), num_bins, n,
                         denom.data());

  for (int bin = 0; bin < num_bins; ++bin) {
    std::vector<dsp::cdouble> a(steer.begin() + static_cast<std::ptrdiff_t>(bin) * n,
                                steer.begin() + static_cast<std::ptrdiff_t>(bin + 1) * n);
    double d = 0.0;
    for (int k = 0; k < num_noise; ++k) {
      d += std::norm(dsp::inner(un_mat.column(static_cast<std::size_t>(k)), a));
    }
    ASSERT_EQ(denom[static_cast<std::size_t>(bin)], d) << "bin " << bin;
  }
}

TEST(KernEig4, BitwiseMatchesGenericJacobi) {
  util::Rng rng(13);
  for (int trial = 0; trial < 8; ++trial) {
    // Hermitian 4x4 from a real sample covariance of noisy snapshots.
    std::vector<std::vector<dsp::cdouble>> snaps(16);
    for (auto& snap : snaps) {
      snap.resize(4);
      for (auto& v : snap) v = dsp::cdouble{rng.normal(), rng.normal()};
    }
    const dsp::CMatrix r = dsp::sample_covariance(snaps);
    const dsp::EigResult fast = dsp::eig_hermitian(r);      // dispatches to eig4
    const dsp::EigResult ref = dsp::eig_hermitian_generic(r);
    ASSERT_EQ(fast.values.size(), ref.values.size());
    for (std::size_t i = 0; i < ref.values.size(); ++i) {
      ASSERT_EQ(fast.values[i], ref.values[i]) << "eigenvalue " << i;
    }
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        ASSERT_EQ(fast.vectors(i, j), ref.vectors(i, j)) << i << "," << j;
      }
    }
  }
}

TEST(KernFftPlan, BitwiseMatchesFftAtPow2AndBluesteinSizes) {
  util::Rng rng(14);
  for (const std::size_t n : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                              std::size_t{1024}, std::size_t{3}, std::size_t{25},
                              std::size_t{180}}) {
    std::vector<dsp::cdouble> x(n);
    for (auto& v : x) v = dsp::cdouble{rng.normal(), rng.normal()};
    const auto plan = dsp::shared_fft_plan(n);
    ASSERT_EQ(plan->size(), n);
    std::vector<dsp::cdouble> out(n), scratch;
    for (const bool inverse : {false, true}) {
      const auto ref = dsp::fft(x, inverse);
      plan->transform(x.data(), out.data(), inverse, scratch);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], ref[i]) << "n=" << n << " inverse=" << inverse << " i=" << i;
      }
      // In-place (aliased) transform must give the same bits.
      std::vector<dsp::cdouble> inplace = x;
      plan->transform(inplace.data(), inplace.data(), inverse, scratch);
      for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(inplace[i], ref[i]);
    }
    // The cache hands out one plan per size.
    EXPECT_EQ(plan.get(), dsp::shared_fft_plan(n).get());
  }
}

TEST(KernWorkspace, PointersStableAcrossGrowthAndReusedAfterReset) {
  kern::Workspace ws;
  float* a = ws.alloc(16);
  for (int i = 0; i < 16; ++i) a[i] = static_cast<float>(i);
  // Force a new block; the first allocation must not move.
  float* big = ws.alloc(1 << 20);
  big[0] = 1.0f;
  for (int i = 0; i < 16; ++i) ASSERT_EQ(a[i], static_cast<float>(i));

  const std::size_t reserved = ws.floats_reserved();
  ws.reset();
  EXPECT_EQ(ws.floats_reserved(), reserved);  // reset keeps the blocks
  // Steady state: the same request sequence reuses the same memory.
  EXPECT_EQ(ws.alloc(16), a);
  EXPECT_EQ(ws.alloc(1 << 20), big);
  EXPECT_EQ(ws.floats_reserved(), reserved);
}

TEST(KernWorkspace, EveryAllocationIs64ByteAligned) {
  // The fast kernel backend uses cache-line-aligned vector loads; the
  // workspace guarantees 64-byte alignment for every returned pointer, not
  // just the first per block, at any awkward request size.
  kern::Workspace ws;
  for (const std::size_t n : {1ul, 3ul, 16ul, 17ul, 63ul, 4096ul, 4097ul}) {
    const float* p = ws.alloc(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << "n=" << n;
  }
  ws.reset();
  // Reuse after reset keeps the guarantee (same bump sequence, same blocks).
  for (const std::size_t n : {5ul, 100ul, 7ul}) {
    const float* p = ws.alloc_zero(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 64, 0u) << "n=" << n;
  }
}

TEST(KernWorkspace, AllocZeroZeroesReusedMemory) {
  kern::Workspace ws;
  float* p = ws.alloc(64);
  for (int i = 0; i < 64; ++i) p[i] = 3.0f;
  ws.reset();
  const float* z = ws.alloc_zero(64);
  EXPECT_EQ(z, p);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(z[i], 0.0f);
  // Zero-length requests still return distinct usable pointers.
  EXPECT_NE(ws.alloc(0), nullptr);
}

// Satellite: Conv1d::backward must validate grad_output against the cached
// forward shape instead of reading out of bounds / silently misindexing.
TEST(Conv1dBackward, RejectsGradShapeMismatch) {
  util::Rng rng(15);
  nn::Conv1d conv(2, 3, 3, 1, 1, rng);
  nn::Tensor x({2, 10});
  x.randomize_normal(rng, 1.0f);
  conv.forward(x, true);
  const int out_len = conv.output_length(10);

  nn::Tensor wrong_rank({3 * out_len});
  EXPECT_THROW(conv.backward(wrong_rank), std::invalid_argument);
  conv.forward(x, true);
  nn::Tensor wrong_channels({4, out_len});
  EXPECT_THROW(conv.backward(wrong_channels), std::invalid_argument);
  conv.forward(x, true);
  nn::Tensor wrong_len({3, out_len + 1});
  EXPECT_THROW(conv.backward(wrong_len), std::invalid_argument);

  conv.forward(x, true);
  nn::Tensor ok({3, out_len});
  ok.randomize_normal(rng, 1.0f);
  EXPECT_NO_THROW(conv.backward(ok));
}

// Spectrum frames must be bitwise-identical whether the windows are built on
// one thread or fanned out — the kernels changed the code under the
// parallel_map, not its determinism.
TEST(KernThreading, FrameSpectraBitwiseIdenticalAcrossThreadCounts) {
  core::PipelineConfig config;
  config.windows_per_sample = 4;
  core::FrameBuilder builder(config, nullptr, 3);
  std::vector<sim::TagReport> reports;
  util::Rng rng(16);
  for (int w = 0; w < 4; ++w) {
    for (int tag = 1; tag <= 3; ++tag) {
      for (int ant = 0; ant < 4; ++ant) {
        for (int k = 0; k < 6; ++k) {
          sim::TagReport r;
          r.time_sec = w * config.window_sec + 0.01 + 0.03 * k;
          r.tag_id = static_cast<std::uint32_t>(tag);
          r.antenna = ant;
          r.channel = 9;
          r.phase_rad = rng.uniform(0.0, 2.0 * M_PI);
          r.rssi_dbm = -50.0 - rng.uniform(0.0, 10.0);
          reports.push_back(r);
        }
      }
    }
  }

  par::set_num_threads(1);
  const auto frames_t1 = builder.build(reports, 0.0);
  par::set_num_threads(4);
  const auto frames_t4 = builder.build(reports, 0.0);
  par::set_num_threads(0);  // restore default

  ASSERT_EQ(frames_t1.size(), frames_t4.size());
  for (std::size_t f = 0; f < frames_t1.size(); ++f) {
    const auto& a = frames_t1[f];
    const auto& b = frames_t4[f];
    ASSERT_EQ(a.pseudo.size(), b.pseudo.size());
    for (std::size_t i = 0; i < a.pseudo.size(); ++i) {
      ASSERT_EQ(a.pseudo[i], b.pseudo[i]) << "frame " << f << " pseudo[" << i << "]";
    }
    for (std::size_t i = 0; i < a.aux.size(); ++i) {
      ASSERT_EQ(a.aux[i], b.aux[i]) << "frame " << f << " aux[" << i << "]";
    }
  }
}

}  // namespace
}  // namespace m2ai
