// Streaming serve layer:
//   * SpscQueue — FIFO integrity single-threaded and under a concurrent
//     producer/consumer (the TSan CI job runs these for the race contract);
//   * IncrementalCovariance — push-only bitwise equality with the batch
//     sample_covariance, epsilon drift under eviction, bitwise recovery at
//     resync points (manual and automatic);
//   * StreamAssembler — frames bitwise identical to core::FrameBuilder over
//     a real simulated report stream, for the spectral and the ablation
//     feature modes;
//   * Service — end-to-end determinism: N streams replaying a sample give
//     the offline prediction for that sample, independent of stream count,
//     worker count, and batch size.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <complex>
#include <functional>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "kern/backend.hpp"
#include "nn/quantize.hpp"
#include "par/spsc_queue.hpp"
#include "serve/assembler.hpp"
#include "serve/incremental.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

namespace {

using m2ai::dsp::cdouble;

std::vector<std::vector<cdouble>> random_snapshots(std::size_t count,
                                                   std::size_t n,
                                                   std::uint64_t seed) {
  m2ai::util::Rng rng(seed);
  std::vector<std::vector<cdouble>> out(count);
  for (auto& snap : out) {
    snap.resize(n);
    for (auto& x : snap) {
      x = cdouble{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    }
  }
  return out;
}

void expect_bitwise_equal(const m2ai::dsp::CMatrix& a, const m2ai::dsp::CMatrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_EQ(a(i, j).real(), b(i, j).real()) << "(" << i << "," << j << ")";
      EXPECT_EQ(a(i, j).imag(), b(i, j).imag()) << "(" << i << "," << j << ")";
    }
  }
}

// ---------------------------------------------------------------- SpscQueue

TEST(SpscQueue, RoundsCapacityUpToPowerOfTwo) {
  m2ai::par::SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  m2ai::par::SpscQueue<int> q2(1);
  EXPECT_EQ(q2.capacity(), 2u);
}

TEST(SpscQueue, FifoAndFullEmptySingleThreaded) {
  m2ai::par::SpscQueue<int> q(4);
  int out = -1;
  EXPECT_FALSE(q.try_pop(out));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.try_pop(out));
  // Wrap-around across the index mask.
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.try_push(round));
    ASSERT_TRUE(q.try_pop(out));
    EXPECT_EQ(out, round);
  }
}

TEST(SpscQueue, ConcurrentProducerConsumerKeepsOrderAndCount) {
  constexpr int kItems = 200000;
  m2ai::par::SpscQueue<int> q(256);
  std::atomic<bool> start{false};
  std::uint64_t sum = 0;
  int received = 0;
  std::thread consumer([&] {
    while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
    int expected = 0;
    int v;
    while (expected < kItems) {
      if (q.try_pop(v)) {
        ASSERT_EQ(v, expected);  // strict FIFO
        sum += static_cast<std::uint64_t>(v);
        ++expected;
      } else {
        std::this_thread::yield();
      }
    }
    received = expected;
  });
  std::thread producer([&] {
    start.store(true, std::memory_order_release);
    for (int i = 0; i < kItems; ++i) {
      while (!q.try_push(int(i))) std::this_thread::yield();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sum, static_cast<std::uint64_t>(kItems) * (kItems - 1) / 2);
  EXPECT_TRUE(q.empty_approx());
}

TEST(SpscQueue, MoveOnlyPayload) {
  m2ai::par::SpscQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(42)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(q.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

// ------------------------------------------------- IncrementalCovariance

TEST(IncrementalCovariance, PushOnlyBitwiseMatchesBatch) {
  const auto snaps = random_snapshots(40, 4, 0xc0f1);
  m2ai::dsp::CovarianceOptions opts;  // defaults: FB on, loading on
  m2ai::serve::IncrementalCovariance inc(4);
  for (const auto& s : snaps) inc.push(s);
  expect_bitwise_equal(inc.covariance(opts),
                       m2ai::dsp::sample_covariance(snaps, opts));
  // Smoothing subarray exercises the sliced finalization.
  opts.smoothing_subarray = 3;
  expect_bitwise_equal(inc.covariance(opts),
                       m2ai::dsp::sample_covariance(snaps, opts));
}

TEST(IncrementalCovariance, SlidingDriftIsEpsilonAndResyncIsBitwise) {
  const auto snaps = random_snapshots(128, 4, 0x51de);
  m2ai::dsp::CovarianceOptions opts;
  m2ai::serve::IncrementalCovariance inc(4, /*resync_every=*/0);  // manual
  const std::size_t window = 32;
  for (std::size_t i = 0; i < window; ++i) inc.push(snaps[i]);
  bool saw_drift = false;
  for (std::size_t i = window; i < snaps.size(); ++i) {
    inc.evict_oldest();
    inc.push(snaps[i]);
    const std::vector<std::vector<cdouble>> ref(
        snaps.begin() + static_cast<std::ptrdiff_t>(i + 1 - window),
        snaps.begin() + static_cast<std::ptrdiff_t>(i + 1));
    const auto drifted = inc.covariance(opts);
    const auto exact = m2ai::dsp::sample_covariance(ref, opts);
    double max_abs = 0.0;
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        max_abs = std::max(max_abs, std::abs(drifted(r, c) - exact(r, c)));
        saw_drift = saw_drift || drifted(r, c) != exact(r, c);
      }
    }
    // Downdates drift, but only at rounding scale.
    EXPECT_LT(max_abs, 1e-10);
  }
  // Resync restores bitwise agreement with the batch recompute.
  inc.resync();
  const std::vector<std::vector<cdouble>> ref(snaps.end() - window, snaps.end());
  expect_bitwise_equal(inc.covariance(opts),
                       m2ai::dsp::sample_covariance(ref, opts));
  EXPECT_EQ(inc.downdates_since_resync(), 0u);
}

TEST(IncrementalCovariance, AutomaticResyncEveryNDowndates) {
  const auto snaps = random_snapshots(64, 4, 0xfeed);
  m2ai::serve::IncrementalCovariance inc(4, /*resync_every=*/8);
  for (std::size_t i = 0; i < 16; ++i) inc.push(snaps[i]);
  for (std::size_t i = 16; i < 48; ++i) {
    inc.evict_oldest();
    inc.push(snaps[i]);
  }
  EXPECT_EQ(inc.resyncs(), 4u);  // 32 evictions / 8
  EXPECT_EQ(inc.size(), 16u);
  // 32 downdates happened but at most 7 since the last resync: the sum must
  // sit bitwise on the batch value at each resync point. Force one more.
  inc.resync();
  const std::vector<std::vector<cdouble>> ref(snaps.begin() + 32,
                                              snaps.begin() + 48);
  expect_bitwise_equal(inc.covariance({}),
                       m2ai::dsp::sample_covariance(ref, {}));
}

// --------------------------------------------------------- StreamAssembler

class ServeAssembler : public ::testing::Test {
 protected:
  // One real simulated sample: reports + calibrator + the batch frames.
  void run_mode(m2ai::core::FeatureMode mode) {
    m2ai::core::PipelineConfig config;
    config.windows_per_sample = 6;  // keep the sim cheap
    config.feature_mode = mode;
    m2ai::core::Pipeline pipeline(config, 917);
    const m2ai::core::SampleRun run =
        pipeline.run_sample(3, pipeline.fork_sample_rng());
    const double t0 = config.bootstrap_sec + 0.5 * config.window_sec;

    m2ai::serve::StreamAssembler assembler(config, run.calibrator.get(),
                                           pipeline.num_tags(), t0);
    std::vector<m2ai::core::SpectrumFrame> streamed;
    for (const auto& report : run.reports) {
      for (auto& f : assembler.ingest(report)) streamed.push_back(std::move(f));
    }
    for (auto& f : assembler.flush()) streamed.push_back(std::move(f));

    ASSERT_EQ(streamed.size(), run.sample.frames.size());
    for (std::size_t w = 0; w < streamed.size(); ++w) {
      const auto& a = streamed[w];
      const auto& b = run.sample.frames[w];
      ASSERT_EQ(a.has_pseudo, b.has_pseudo);
      ASSERT_EQ(a.has_aux, b.has_aux);
      if (a.has_pseudo) {
        ASSERT_EQ(a.pseudo.size(), b.pseudo.size());
        for (std::size_t i = 0; i < a.pseudo.size(); ++i) {
          // Bitwise: the incremental covariance path must not perturb a
          // single mantissa bit relative to the batch FrameBuilder.
          EXPECT_EQ(a.pseudo.data()[i], b.pseudo.data()[i])
              << "pseudo window " << w << " flat index " << i;
        }
      }
      if (a.has_aux) {
        ASSERT_EQ(a.aux.size(), b.aux.size());
        for (std::size_t i = 0; i < a.aux.size(); ++i) {
          EXPECT_EQ(a.aux.data()[i], b.aux.data()[i])
              << "aux window " << w << " flat index " << i;
        }
      }
    }
    EXPECT_EQ(assembler.stats().frames, streamed.size());
    EXPECT_EQ(assembler.stats().late_dropped, 0u);
  }
};

TEST_F(ServeAssembler, BitwiseMatchesFrameBuilder) {
  run_mode(m2ai::core::FeatureMode::kM2AI);
}

TEST_F(ServeAssembler, BitwiseMatchesFrameBuilderMusicOnly) {
  run_mode(m2ai::core::FeatureMode::kMusicOnly);
}

TEST_F(ServeAssembler, BitwiseMatchesFrameBuilderPhaseOnly) {
  run_mode(m2ai::core::FeatureMode::kPhaseOnly);
}

TEST_F(ServeAssembler, BitwiseMatchesFrameBuilderRssiOnly) {
  run_mode(m2ai::core::FeatureMode::kRssiOnly);
}

TEST(ServeAssemblerEdge, LateReportsDropAndEmptyWindowsCloseAsZero) {
  m2ai::core::PipelineConfig config;
  m2ai::serve::StreamAssembler assembler(config, nullptr, 1, /*t_begin=*/0.0);

  m2ai::sim::TagReport r;
  r.tag_id = 1;
  r.antenna = 0;
  r.rssi_dbm = -50.0;
  r.time_sec = 0.1;  // window 0
  EXPECT_TRUE(assembler.ingest(r).empty());

  r.time_sec = 1.0;  // window 2: closes windows 0 and 1 (1 is empty)
  const auto closed = assembler.ingest(r);
  ASSERT_EQ(closed.size(), 2u);
  for (const auto& frame : closed) {
    ASSERT_TRUE(frame.has_pseudo);
    for (std::size_t i = 0; i < frame.pseudo.size(); ++i) {
      EXPECT_EQ(frame.pseudo.data()[i], 0.0f);  // < 2 snapshots -> zero row
    }
  }

  r.time_sec = 0.2;  // back into the already-closed window 0
  EXPECT_TRUE(assembler.ingest(r).empty());
  EXPECT_EQ(assembler.stats().late_dropped, 1u);
  EXPECT_EQ(assembler.window_index(), 2);
}

// ------------------------------------------------------------------ Service

TEST(ServeService, DeterministicAcrossStreamCountsAndMatchesOffline) {
  m2ai::core::PipelineConfig config;
  config.windows_per_sample = 4;  // sequence length T = 4
  m2ai::core::Pipeline pipeline(config, 2024);
  const double t0 = config.bootstrap_sec + 0.5 * config.window_sec;

  // Two distinct source samples; streams alternate between them.
  std::vector<m2ai::core::SampleRun> runs;
  runs.push_back(pipeline.run_sample(1, pipeline.fork_sample_rng()));
  runs.push_back(pipeline.run_sample(5, pipeline.fork_sample_rng()));

  m2ai::core::ModelConfig model_config;
  m2ai::core::M2AINetwork reference(model_config, config.feature_mode,
                                    pipeline.num_tags(), config.num_antennas, 12);
  std::vector<int> offline;
  for (const auto& run : runs) offline.push_back(reference.predict(run.sample.frames));

  for (const int num_streams : {1, 64}) {
    m2ai::serve::ServeConfig serve_config;
    serve_config.dsp_workers = 3;
    serve_config.max_batch = 4;
    m2ai::serve::Service service(serve_config, config, reference.clone());
    for (int s = 0; s < num_streams; ++s) {
      service.add_stream(runs[static_cast<std::size_t>(s % 2)].calibrator.get(), t0);
    }
    service.start();
    // One producer per batch of streams; each stream replays its sample.
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        for (int s = p; s < num_streams; s += 2) {
          for (const auto& report : runs[static_cast<std::size_t>(s % 2)].reports) {
            service.push(s, report);
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    service.finish();

    const m2ai::serve::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.late_dropped, 0u);
    EXPECT_EQ(stats.frames,
              static_cast<std::uint64_t>(num_streams * config.windows_per_sample));
    for (int s = 0; s < num_streams; ++s) {
      const auto& preds = service.predictions(s);
      // T frames, sequence length T: exactly one full-sequence request,
      // fired when window T-1 closed.
      ASSERT_EQ(preds.size(), 1u) << "stream " << s;
      EXPECT_EQ(preds[0].frame_index,
                static_cast<std::size_t>(config.windows_per_sample - 1));
      EXPECT_EQ(preds[0].label, offline[static_cast<std::size_t>(s % 2)])
          << "stream " << s << " of " << num_streams;
      EXPECT_GE(preds[0].latency_ms, 0.0);
    }
  }
}

// End-to-end contract of the fast kernel backend: serving under
// --backend fast yields the same activity labels as the offline reference
// prediction. The fast path is epsilon-equivalent (SIMD/FMA reassociation in
// both the MUSIC projection and the batched NN), so label equality is only
// asserted where the reference posterior's top-2 margin is comfortably wider
// than the kernel tolerance — a near-tie flipping is not a backend bug.
TEST(ServeService, FastBackendMatchesReferenceLabels) {
  if (!m2ai::kern::fast_backend_supported()) {
    GTEST_SKIP() << "CPU lacks AVX2/FMA; fast backend falls back to ref";
  }
  const m2ai::kern::BackendKind saved = m2ai::kern::active_backend_kind();

  m2ai::core::PipelineConfig config;
  config.windows_per_sample = 4;
  m2ai::core::Pipeline pipeline(config, 2024);
  const double t0 = config.bootstrap_sec + 0.5 * config.window_sec;

  std::vector<m2ai::core::SampleRun> runs;
  runs.push_back(pipeline.run_sample(1, pipeline.fork_sample_rng()));
  runs.push_back(pipeline.run_sample(5, pipeline.fork_sample_rng()));

  m2ai::core::ModelConfig model_config;
  m2ai::core::M2AINetwork reference(model_config, config.feature_mode,
                                    pipeline.num_tags(), config.num_antennas, 12);
  m2ai::kern::set_backend(m2ai::kern::BackendKind::kReference);
  std::vector<int> offline;
  std::vector<double> margin;
  for (const auto& run : runs) {
    offline.push_back(reference.predict(run.sample.frames));
    std::vector<double> proba = reference.predict_proba(run.sample.frames);
    std::sort(proba.begin(), proba.end(), std::greater<double>());
    margin.push_back(proba.size() > 1 ? proba[0] - proba[1] : 1.0);
  }

  // Enough streams that the nn loop forms multi-request batches and takes
  // the batched gemm path (exercised only under the fast backend).
  m2ai::kern::set_backend(m2ai::kern::BackendKind::kFast);
  const int num_streams = 16;
  m2ai::serve::ServeConfig serve_config;
  serve_config.dsp_workers = 3;
  serve_config.max_batch = 4;
  m2ai::serve::Service service(serve_config, config, reference.clone());
  for (int s = 0; s < num_streams; ++s) {
    service.add_stream(runs[static_cast<std::size_t>(s % 2)].calibrator.get(), t0);
  }
  service.start();
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int s = p; s < num_streams; s += 2) {
        for (const auto& report : runs[static_cast<std::size_t>(s % 2)].reports) {
          service.push(s, report);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  service.finish();
  m2ai::kern::set_backend(saved);

  for (int s = 0; s < num_streams; ++s) {
    const auto& preds = service.predictions(s);
    ASSERT_EQ(preds.size(), 1u) << "stream " << s;
    if (margin[static_cast<std::size_t>(s % 2)] < 1e-3) continue;
    EXPECT_EQ(preds[0].label, offline[static_cast<std::size_t>(s % 2)])
        << "stream " << s;
  }
}

// End-to-end contract of the int8 kernel backend: serving a calibrated
// network under --backend int8 yields the same activity labels as the
// offline float reference. Quantization error is larger than the fast
// backend's epsilon, so the margin filter is wider; the statistical gate
// (>= 99% agreement over a trained network) lives in test_kern_backend.
// This test also covers the clone() contract: Service owns a clone and the
// calibration must survive it.
TEST(ServeService, Int8BackendMatchesReferenceLabels) {
  const m2ai::kern::BackendKind saved = m2ai::kern::active_backend_kind();

  m2ai::core::PipelineConfig config;
  config.windows_per_sample = 4;
  m2ai::core::Pipeline pipeline(config, 2024);
  const double t0 = config.bootstrap_sec + 0.5 * config.window_sec;

  std::vector<m2ai::core::SampleRun> runs;
  runs.push_back(pipeline.run_sample(1, pipeline.fork_sample_rng()));
  runs.push_back(pipeline.run_sample(5, pipeline.fork_sample_rng()));

  m2ai::core::ModelConfig model_config;
  m2ai::core::M2AINetwork reference(model_config, config.feature_mode,
                                    pipeline.num_tags(), config.num_antennas, 12);
  m2ai::kern::set_backend(m2ai::kern::BackendKind::kReference);
  std::vector<int> offline;
  std::vector<double> margin;
  for (const auto& run : runs) {
    offline.push_back(reference.predict(run.sample.frames));
    std::vector<double> proba = reference.predict_proba(run.sample.frames);
    std::sort(proba.begin(), proba.end(), std::greater<double>());
    margin.push_back(proba.size() > 1 ? proba[0] - proba[1] : 1.0);
  }

  // Calibrate on the source sequences; the Service receives a CLONE, so the
  // scales must propagate through clone() for the quantized path to engage.
  std::vector<const m2ai::core::FrameSequence*> calib;
  for (const auto& run : runs) calib.push_back(&run.sample.frames);
  reference.calibrate(calib, m2ai::nn::CalibrationOptions{});
  ASSERT_TRUE(reference.quant_ready());

  m2ai::kern::set_backend(m2ai::kern::BackendKind::kInt8);
  const int num_streams = 16;
  m2ai::serve::ServeConfig serve_config;
  serve_config.dsp_workers = 3;
  serve_config.max_batch = 4;
  m2ai::serve::Service service(serve_config, config, reference.clone());
  for (int s = 0; s < num_streams; ++s) {
    service.add_stream(runs[static_cast<std::size_t>(s % 2)].calibrator.get(), t0);
  }
  service.start();
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int s = p; s < num_streams; s += 2) {
        for (const auto& report : runs[static_cast<std::size_t>(s % 2)].reports) {
          service.push(s, report);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  service.finish();
  m2ai::kern::set_backend(saved);

  for (int s = 0; s < num_streams; ++s) {
    const auto& preds = service.predictions(s);
    ASSERT_EQ(preds.size(), 1u) << "stream " << s;
    if (margin[static_cast<std::size_t>(s % 2)] < 2e-2) continue;
    EXPECT_EQ(preds[0].label, offline[static_cast<std::size_t>(s % 2)])
        << "stream " << s;
  }
}

// Wrong producer thread per stream is a race; this test stays within the
// contract but hammers the full pipeline with more streams than workers so
// ownership partitioning, backpressure, and shutdown interleave under TSan.
TEST(ServeService, ManyStreamsFewWorkersDrainCleanly) {
  m2ai::core::PipelineConfig config;
  config.windows_per_sample = 3;
  m2ai::core::Pipeline pipeline(config, 77);
  const m2ai::core::SampleRun run =
      pipeline.run_sample(2, pipeline.fork_sample_rng());
  const double t0 = config.bootstrap_sec + 0.5 * config.window_sec;

  m2ai::core::ModelConfig model_config;
  auto network = std::make_unique<m2ai::core::M2AINetwork>(
      model_config, config.feature_mode, pipeline.num_tags(),
      config.num_antennas, 12);

  m2ai::serve::ServeConfig serve_config;
  serve_config.dsp_workers = 2;
  serve_config.ingest_capacity = 64;  // tiny rings force backpressure
  serve_config.request_capacity = 2;
  const int num_streams = 9;
  m2ai::serve::Service service(serve_config, config, std::move(network));
  for (int s = 0; s < num_streams; ++s) {
    service.add_stream(run.calibrator.get(), t0);
  }
  service.start();
  std::vector<std::thread> producers;
  for (int s = 0; s < num_streams; ++s) {
    producers.emplace_back([&, s] {
      for (const auto& report : run.reports) service.push(s, report);
    });
  }
  for (auto& t : producers) t.join();
  service.finish();

  const m2ai::serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.reports,
            static_cast<std::uint64_t>(num_streams) * run.reports.size());
  EXPECT_EQ(stats.frames,
            static_cast<std::uint64_t>(num_streams * config.windows_per_sample));
  EXPECT_EQ(stats.predictions, static_cast<std::uint64_t>(num_streams));
  for (int s = 0; s < num_streams; ++s) {
    EXPECT_EQ(service.predictions(s).size(), 1u);
  }
}

}  // namespace
