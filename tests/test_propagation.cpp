#include "sim/propagation.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2ai::sim {
namespace {

PropagationOptions no_extras() {
  PropagationOptions opts;
  opts.enable_wall_reflections = false;
  opts.enable_scatterers = false;
  return opts;
}

TEST(Propagation, DirectPathLengthIs3D) {
  PropagationModel model(Environment::open_space(), no_extras());
  const Vec3 tag{3.0, 4.0, 2.25};
  const Vec3 ant{0.0, 0.0, 1.25};
  const auto paths = model.paths(tag, ant, {}, -1, {0.0, 0.0}, {1.0, 0.0});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].kind, PathKind::kDirect);
  EXPECT_NEAR(paths[0].length_m, std::sqrt(3.0 * 3.0 + 4.0 * 4.0 + 1.0), 1e-9);
}

TEST(Propagation, DirectPathAoAMatchesBearing) {
  PropagationModel model(Environment::open_space(), no_extras());
  const Vec3 tag{4.0, 4.0, 1.25};
  const Vec3 ant{0.0, 0.0, 1.25};
  const auto paths = model.paths(tag, ant, {}, -1, {0.0, 0.0}, {1.0, 0.0});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_NEAR(paths[0].aoa_deg, 45.0, 1e-9);
}

TEST(Propagation, GainFallsWithDistance) {
  PropagationModel model(Environment::open_space(), no_extras());
  const Vec3 ant{0.0, 0.0, 1.25};
  const auto near = model.paths({0.0, 2.0, 1.25}, ant, {}, -1, {0, 0}, {1, 0});
  const auto far = model.paths({0.0, 8.0, 1.25}, ant, {}, -1, {0, 0}, {1, 0});
  EXPECT_GT(near[0].gain, far[0].gain * 3.0);
}

TEST(Propagation, BodyOcclusionAttenuates) {
  PropagationOptions opts = no_extras();
  opts.body_loss_db = 10.0;
  PropagationModel model(Environment::open_space(), opts);
  const Vec3 tag{0.0, 6.0, 1.25};
  const Vec3 ant{0.0, 0.0, 1.25};
  const std::vector<BodyDisk> blocker{{{0.0, 3.0}, 0.25, 0}};
  const auto clear = model.paths(tag, ant, {}, -1, {0, 0}, {1, 0});
  const auto blocked = model.paths(tag, ant, blocker, -1, {0, 0}, {1, 0});
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0].blocked_by, 1);
  EXPECT_NEAR(blocked[0].gain / clear[0].gain, std::pow(10.0, -0.5), 1e-9);
}

TEST(Propagation, WearerDoesNotBlockOwnTag) {
  PropagationOptions opts = no_extras();
  PropagationModel model(Environment::open_space(), opts);
  // Tag on the wearer's body surface; the wearer disk covers the tag.
  const Vec3 tag{0.0, 3.0, 1.25};
  const Vec3 ant{0.0, 0.0, 1.25};
  const std::vector<BodyDisk> wearer{{{0.0, 3.1}, 0.25, 7}};
  const auto paths = model.paths(tag, ant, wearer, /*owner=*/7, {0, 0}, {1, 0});
  EXPECT_EQ(paths[0].blocked_by, 0);
}

TEST(Propagation, OtherPersonStillBlocks) {
  PropagationOptions opts = no_extras();
  PropagationModel model(Environment::open_space(), opts);
  const Vec3 tag{0.0, 6.0, 1.25};
  const Vec3 ant{0.0, 0.0, 1.25};
  const std::vector<BodyDisk> bodies{{{0.0, 6.1}, 0.25, 7},   // wearer near tag
                                     {{0.0, 3.0}, 0.25, 8}};  // other person mid-path
  const auto paths = model.paths(tag, ant, bodies, /*owner=*/7, {0, 0}, {1, 0});
  EXPECT_EQ(paths[0].blocked_by, 1);
}

TEST(Propagation, WallReflectionAddsPath) {
  Environment env = Environment::open_space(10.0, 10.0);
  env.walls.push_back(rf::Wall{true, 0.0, 0.0, 10.0, 6.0});  // x = 0 wall
  PropagationOptions opts;
  opts.enable_scatterers = false;
  PropagationModel model(env, opts);
  const Vec3 tag{2.0, 5.0, 1.25};
  const Vec3 ant{2.0, 1.0, 1.25};
  const auto paths = model.paths(tag, ant, {}, -1, {2.0, 1.0}, {1.0, 0.0});
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1].kind, PathKind::kWallReflection);
  // Image method: reflected ground length equals antenna -> mirrored tag.
  const double expect_ground = std::hypot(2.0 + 2.0, 5.0 - 1.0);
  EXPECT_NEAR(paths[1].length_m, expect_ground, 1e-9);
  // Reflection is weaker than direct (longer + loss).
  EXPECT_LT(paths[1].gain, paths[0].gain);
}

TEST(Propagation, ScattererAddsDeflectedPath) {
  Environment env = Environment::open_space();
  env.scatterers.push_back(Scatterer{{1.0, 2.0}, 0.3, 6.0});
  PropagationOptions opts;
  opts.enable_wall_reflections = false;
  PropagationModel model(env, opts);
  const Vec3 tag{3.0, 4.0, 1.25};
  const Vec3 ant{0.0, 0.0, 1.25};
  const auto paths = model.paths(tag, ant, {}, -1, {0, 0}, {1, 0});
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[1].kind, PathKind::kScatterer);
  const double via = rf::distance({3.0, 4.0}, {1.0, 2.0}) + rf::distance({1.0, 2.0}, {0.0, 0.0});
  EXPECT_NEAR(paths[1].length_m, via, 1e-9);
  // The deflected path arrives from the scatterer's direction.
  EXPECT_NEAR(paths[1].aoa_deg, rf::bearing_deg({0, 0}, {1, 0}, {1.0, 2.0}), 1e-9);
}

TEST(Propagation, LaboratoryProducesManyPaths) {
  PropagationModel model(Environment::laboratory());
  const Vec3 tag{7.0, 5.0, 1.25};
  const Vec3 ant{6.875, 0.4, 1.25};
  const auto paths = model.paths(tag, ant, {}, -1, {6.875, 0.4}, {1, 0});
  EXPECT_GT(paths.size(), 5u);  // direct + reflections + scatterers
}

TEST(Propagation, ChannelPhaseIsRoundTrip) {
  PropagationModel model(Environment::open_space(), no_extras());
  std::vector<PathContribution> single(1);
  single[0].length_m = 1.0;
  single[0].gain = 1.0;
  const double lambda = 0.4;
  const std::complex<double> h = model.channel(single, lambda);
  // Round-trip 2 m over lambda 0.4 m -> phase = -2*pi*5 = 0 (mod 2*pi).
  EXPECT_NEAR(std::arg(h), 0.0, 1e-9);
  EXPECT_NEAR(std::abs(h), 1.0, 1e-12);
}

TEST(Propagation, ChannelSumsCoherently) {
  PropagationModel model(Environment::open_space(), no_extras());
  std::vector<PathContribution> two(2);
  two[0].length_m = 1.0;
  two[0].gain = 1.0;
  two[1].length_m = 1.0 + 0.4 / 4.0;  // quarter wavelength longer one-way
  two[1].gain = 1.0;
  // Round trip: half wavelength difference -> destructive.
  const std::complex<double> h = model.channel(two, 0.4);
  EXPECT_NEAR(std::abs(h), 0.0, 1e-9);
}

TEST(Propagation, WeakPathsDropped) {
  PropagationOptions opts;
  opts.min_relative_gain = 0.5;  // aggressive floor
  opts.enable_wall_reflections = false;
  opts.enable_scatterers = false;
  PropagationModel model(Environment::open_space(), opts);
  const auto paths =
      model.paths({0.0, 10.0, 1.25}, {0.0, 0.0, 1.25}, {}, -1, {0, 0}, {1, 0});
  EXPECT_TRUE(paths.empty());  // 1/10 gain < 0.5 floor
}

}  // namespace
}  // namespace m2ai::sim
