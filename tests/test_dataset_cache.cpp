#include "exp/dataset_cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include "exp/fingerprint.hpp"

namespace m2ai::exp {
namespace {

namespace fs = std::filesystem;

// A scratch directory per test, removed on teardown.
class DatasetCacheFiles : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("m2ai_cache_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  fs::path dir_;
};

// Synthetic split exercising every serialized feature: both tensor flags,
// empty frames, rank-2 shapes, and awkward float values (signed zero,
// denormal, infinity, NaN) that a text round trip would mangle.
core::DataSplit synthetic_split() {
  core::DataSplit split;
  split.num_classes = 3;

  core::Sample a;
  a.label = 0;
  a.activity_id = 1;
  core::SpectrumFrame fa;
  fa.has_pseudo = true;
  fa.pseudo = nn::Tensor({2, 4});
  const float weird[] = {0.0f, -0.0f, std::numeric_limits<float>::denorm_min(),
                         std::numeric_limits<float>::infinity(),
                         -std::numeric_limits<float>::infinity(),
                         std::numeric_limits<float>::quiet_NaN(),
                         1.0f / 3.0f, -2.5e-38f};
  for (std::size_t i = 0; i < fa.pseudo.size(); ++i) fa.pseudo[i] = weird[i];
  fa.has_aux = true;
  fa.aux = nn::Tensor({1, 3});
  for (std::size_t i = 0; i < fa.aux.size(); ++i) {
    fa.aux[i] = static_cast<float>(i) * 0.1f;
  }
  a.frames.push_back(fa);

  core::Sample b;  // aux-only frame plus a frame with no tensors at all
  b.label = 2;
  b.activity_id = 3;
  core::SpectrumFrame fb;
  fb.has_aux = true;
  fb.aux = nn::Tensor({2, 2});
  for (std::size_t i = 0; i < fb.aux.size(); ++i) fb.aux[i] = -static_cast<float>(i);
  b.frames.push_back(fb);
  b.frames.push_back(core::SpectrumFrame{});

  split.train.push_back(a);
  split.test.push_back(b);
  return split;
}

void expect_bitwise_equal(const nn::Tensor& x, const nn::Tensor& y) {
  ASSERT_EQ(x.shape(), y.shape());
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::uint32_t xb = 0, yb = 0;
    std::memcpy(&xb, &x.data()[i], sizeof(xb));
    std::memcpy(&yb, &y.data()[i], sizeof(yb));
    ASSERT_EQ(xb, yb) << "element " << i;
  }
}

void expect_splits_equal(const core::DataSplit& x, const core::DataSplit& y) {
  ASSERT_EQ(x.num_classes, y.num_classes);
  const auto check_samples = [](const std::vector<core::Sample>& a,
                                const std::vector<core::Sample>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t s = 0; s < a.size(); ++s) {
      ASSERT_EQ(a[s].label, b[s].label);
      ASSERT_EQ(a[s].activity_id, b[s].activity_id);
      ASSERT_EQ(a[s].frames.size(), b[s].frames.size());
      for (std::size_t f = 0; f < a[s].frames.size(); ++f) {
        ASSERT_EQ(a[s].frames[f].has_pseudo, b[s].frames[f].has_pseudo);
        ASSERT_EQ(a[s].frames[f].has_aux, b[s].frames[f].has_aux);
        if (a[s].frames[f].has_pseudo) {
          expect_bitwise_equal(a[s].frames[f].pseudo, b[s].frames[f].pseudo);
        }
        if (a[s].frames[f].has_aux) {
          expect_bitwise_equal(a[s].frames[f].aux, b[s].frames[f].aux);
        }
      }
    }
  };
  check_samples(x.train, y.train);
  check_samples(x.test, y.test);
}

TEST_F(DatasetCacheFiles, SaveLoadRoundTripsBitwise) {
  const core::DataSplit split = synthetic_split();
  DatasetCache::save_split(path("split.m2aids"), split);
  const auto loaded = DatasetCache::load_split(path("split.m2aids"));
  ASSERT_NE(loaded, nullptr);
  expect_splits_equal(split, *loaded);
}

TEST_F(DatasetCacheFiles, LoadReturnsNullOnMissingFile) {
  EXPECT_EQ(DatasetCache::load_split(path("nope.m2aids")), nullptr);
}

TEST_F(DatasetCacheFiles, LoadRejectsTruncatedFile) {
  DatasetCache::save_split(path("split.m2aids"), synthetic_split());
  const auto full_size = fs::file_size(path("split.m2aids"));
  for (const std::uintmax_t keep : {full_size / 2, full_size - 1}) {
    fs::copy_file(path("split.m2aids"), path("cut.m2aids"),
                  fs::copy_options::overwrite_existing);
    fs::resize_file(path("cut.m2aids"), keep);
    EXPECT_EQ(DatasetCache::load_split(path("cut.m2aids")), nullptr)
        << "kept " << keep << " of " << full_size << " bytes";
  }
}

TEST_F(DatasetCacheFiles, LoadRejectsBadMagicAndTrailingGarbage) {
  DatasetCache::save_split(path("split.m2aids"), synthetic_split());
  {
    std::fstream f(path("split.m2aids"), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('X');
  }
  EXPECT_EQ(DatasetCache::load_split(path("split.m2aids")), nullptr);

  DatasetCache::save_split(path("split2.m2aids"), synthetic_split());
  {
    std::ofstream f(path("split2.m2aids"), std::ios::app | std::ios::binary);
    f << "extra";
  }
  EXPECT_EQ(DatasetCache::load_split(path("split2.m2aids")), nullptr);
}

// Tiny real configuration so generation stays cheap; the suite's scaled
// configs go through exactly this path.
core::ExperimentConfig tiny_config() {
  core::ExperimentConfig config;
  config.samples_per_class = 4;
  config.pipeline.windows_per_sample = 2;
  return config;
}

TEST(DatasetCache, SecondGetIsAHitAndSharesThePointer) {
  DatasetCache cache(4);
  const core::ExperimentConfig config = tiny_config();
  const auto first = cache.get(config);
  const auto second = cache.get(config);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.resident(), 1u);
}

TEST(DatasetCache, ModelSweepSharesOneEntry) {
  DatasetCache cache(4);
  core::ExperimentConfig cnn_lstm = tiny_config();
  core::ExperimentConfig cnn_only = tiny_config();
  cnn_only.model.arch = core::NetworkArch::kCnnOnly;
  cnn_only.train.epochs = 3;
  ASSERT_EQ(dataset_fingerprint(cnn_lstm), dataset_fingerprint(cnn_only));
  const auto a = cache.get(cnn_lstm);
  const auto b = cache.get(cnn_only);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(DatasetCache, CapacityOneEvictsTheColdEntry) {
  DatasetCache cache(1);
  core::ExperimentConfig a = tiny_config();
  core::ExperimentConfig b = tiny_config();
  b.seed += 1;
  (void)cache.get(a);
  (void)cache.get(b);
  EXPECT_EQ(cache.resident(), 1u);
  // `a` was evicted: fetching it again is a fresh miss.
  (void)cache.get(a);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(DatasetCacheFiles, DiskStoreRoundTripsAcrossCacheInstances) {
  const core::ExperimentConfig config = tiny_config();
  std::shared_ptr<const core::DataSplit> generated;
  {
    DatasetCache writer(4, dir_.string());
    generated = writer.get(config);
    EXPECT_EQ(writer.stats().disk_writes, 1u);
    EXPECT_EQ(writer.stats().disk_hits, 0u);
  }
  DatasetCache reader(4, dir_.string());
  const auto reloaded = reader.get(config);
  EXPECT_EQ(reader.stats().disk_hits, 1u);
  EXPECT_EQ(reader.stats().disk_writes, 0u);
  EXPECT_EQ(reader.stats().misses, 1u);  // a disk hit is still a memory miss
  expect_splits_equal(*generated, *reloaded);
}

}  // namespace
}  // namespace m2ai::exp
