#include "dsp/eig.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace m2ai::dsp {
namespace {

CMatrix random_hermitian(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  CMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) = cdouble{rng.normal() * 2.0, 0.0};
    for (std::size_t j = i + 1; j < n; ++j) {
      const cdouble v{rng.normal(), rng.normal()};
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  return a;
}

TEST(Eig, DiagonalMatrix) {
  CMatrix a(3, 3);
  a(0, 0) = 1.0;
  a(1, 1) = 5.0;
  a(2, 2) = 3.0;
  const EigResult r = eig_hermitian(a);
  EXPECT_NEAR(r.values[0], 5.0, 1e-10);
  EXPECT_NEAR(r.values[1], 3.0, 1e-10);
  EXPECT_NEAR(r.values[2], 1.0, 1e-10);
}

TEST(Eig, Known2x2) {
  // [[2, 1],[1, 2]] -> eigenvalues 3 and 1.
  CMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  const EigResult r = eig_hermitian(a);
  EXPECT_NEAR(r.values[0], 3.0, 1e-10);
  EXPECT_NEAR(r.values[1], 1.0, 1e-10);
}

TEST(Eig, Complex2x2) {
  // [[1, i], [-i, 1]] -> eigenvalues 2 and 0.
  CMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  a(0, 1) = cdouble{0.0, 1.0};
  a(1, 0) = cdouble{0.0, -1.0};
  const EigResult r = eig_hermitian(a);
  EXPECT_NEAR(r.values[0], 2.0, 1e-10);
  EXPECT_NEAR(r.values[1], 0.0, 1e-10);
}

TEST(Eig, RejectsNonSquare) {
  CMatrix a(2, 3);
  EXPECT_THROW(eig_hermitian(a), std::invalid_argument);
}

class EigSizes : public ::testing::TestWithParam<std::size_t> {};

// Property: A v_k = lambda_k v_k for every eigenpair.
TEST_P(EigSizes, EigenEquationHolds) {
  const std::size_t n = GetParam();
  const CMatrix a = random_hermitian(n, 40 + n);
  const EigResult r = eig_hermitian(a);
  for (std::size_t k = 0; k < n; ++k) {
    const auto v = r.vectors.column(k);
    // ||A v - lambda v||
    for (std::size_t i = 0; i < n; ++i) {
      cdouble av{0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j) av += a(i, j) * v[j];
      EXPECT_NEAR(std::abs(av - r.values[k] * v[i]), 0.0, 1e-8);
    }
  }
}

// Property: eigenvectors are orthonormal.
TEST_P(EigSizes, VectorsOrthonormal) {
  const std::size_t n = GetParam();
  const CMatrix a = random_hermitian(n, 80 + n);
  const EigResult r = eig_hermitian(a);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const cdouble dot = inner(r.vectors.column(i), r.vectors.column(j));
      const cdouble expected = (i == j) ? cdouble(1.0, 0.0) : cdouble(0.0, 0.0);
      EXPECT_NEAR(std::abs(dot - expected), 0.0, 1e-9);
    }
  }
}

// Property: trace equals sum of eigenvalues; values sorted descending.
TEST_P(EigSizes, TraceAndOrdering) {
  const std::size_t n = GetParam();
  const CMatrix a = random_hermitian(n, 120 + n);
  const EigResult r = eig_hermitian(a);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i).real();
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += r.values[k];
    if (k > 0) EXPECT_GE(r.values[k - 1], r.values[k] - 1e-12);
  }
  EXPECT_NEAR(sum, trace, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigSizes, ::testing::Values(1, 2, 3, 4, 5, 6, 8));

TEST(Eig, ToleratesMildAsymmetry) {
  CMatrix a = random_hermitian(4, 999);
  a(1, 2) += cdouble{1e-9, -1e-9};  // sample-covariance style asymmetry
  const EigResult r = eig_hermitian(a);
  EXPECT_EQ(r.values.size(), 4u);
}

TEST(Eig, PsdRankOne) {
  // Outer product v v^H has one nonzero eigenvalue = |v|^2.
  const std::size_t n = 4;
  std::vector<cdouble> v{{1, 0}, {0, 1}, {0.5, -0.5}, {-1, 0.25}};
  CMatrix a(n, n);
  double norm2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    norm2 += std::norm(v[i]);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = v[i] * std::conj(v[j]);
  }
  const EigResult r = eig_hermitian(a);
  EXPECT_NEAR(r.values[0], norm2, 1e-9);
  for (std::size_t k = 1; k < n; ++k) EXPECT_NEAR(r.values[k], 0.0, 1e-9);
}

}  // namespace
}  // namespace m2ai::dsp
