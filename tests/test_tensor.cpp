#include "nn/tensor.hpp"

#include <gtest/gtest.h>

namespace m2ai::nn {
namespace {

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.rank(), 3);
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_EQ(t.shape_string(), "[2x3x4]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({5, 5});
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RowMajorIndexing) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t[5], 7.0f);
  Tensor u({2, 2, 2});
  u.at(1, 0, 1) = 3.0f;
  EXPECT_EQ(u[5], 3.0f);
}

TEST(Tensor, RejectsBadShape) {
  EXPECT_THROW(Tensor({0}), std::invalid_argument);
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, FromVector) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.rank(), 1);
  EXPECT_EQ(t.at(2), 3.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({2, 3});
  EXPECT_EQ(r.at(1, 0), 4.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(Tensor, FlattenedIsRankOne) {
  Tensor t({3, 4});
  t.at(2, 1) = 9.0f;
  Tensor f = t.flattened();
  EXPECT_EQ(f.rank(), 1);
  EXPECT_EQ(f.at(9), 9.0f);
}

TEST(Tensor, AddScaledAndScale) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({10, 20, 30});
  a.add_scaled(b, 0.1f);
  EXPECT_FLOAT_EQ(a.at(0), 2.0f);
  a.scale(2.0f);
  EXPECT_FLOAT_EQ(a.at(2), 12.0f);
  Tensor c({2});
  EXPECT_THROW(a.add_scaled(c, 1.0f), std::invalid_argument);
}

TEST(Tensor, Norms) {
  Tensor t = Tensor::from({3, -4});
  EXPECT_FLOAT_EQ(t.l2_norm(), 5.0f);
  EXPECT_FLOAT_EQ(t.max_abs(), 4.0f);
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
}

TEST(Tensor, RandomizeNormalStatistics) {
  util::Rng rng(3);
  Tensor t({10000});
  t.randomize_normal(rng, 2.0f);
  double sum = 0.0, sum2 = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sum2 += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / 10000.0, 0.0, 0.1);
  EXPECT_NEAR(sum2 / 10000.0, 4.0, 0.3);
}

TEST(Tensor, Concat) {
  Tensor a = Tensor::from({1, 2});
  Tensor b = Tensor::from({3, 4, 5});
  Tensor c = concat(a, b);
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.at(4), 5.0f);
}

}  // namespace
}  // namespace m2ai::nn
