#include "dsp/phase.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace m2ai::dsp {
namespace {

TEST(Phase, WrapPiRange) {
  for (double p = -20.0; p <= 20.0; p += 0.37) {
    const double w = wrap_pi(p);
    EXPECT_GT(w, -M_PI - 1e-12);
    EXPECT_LE(w, M_PI + 1e-12);
    // Same angle modulo 2*pi.
    EXPECT_NEAR(std::sin(w), std::sin(p), 1e-9);
    EXPECT_NEAR(std::cos(w), std::cos(p), 1e-9);
  }
}

TEST(Phase, Wrap2PiRange) {
  for (double p = -20.0; p <= 20.0; p += 0.31) {
    const double w = wrap_2pi(p);
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 2.0 * M_PI);
    EXPECT_NEAR(std::sin(w), std::sin(p), 1e-9);
  }
}

TEST(Phase, DoublePhaseCancelsPiOffset) {
  for (double p = 0.1; p < 2.0 * M_PI; p += 0.5) {
    EXPECT_NEAR(double_phase(p), double_phase(wrap_2pi(p + M_PI)), 1e-9);
  }
}

TEST(Phase, UnwrapRecoversLinearRamp) {
  std::vector<double> wrapped;
  std::vector<double> truth;
  for (int i = 0; i < 100; ++i) {
    const double p = 0.4 * i;
    truth.push_back(p);
    wrapped.push_back(wrap_pi(p));
  }
  const std::vector<double> un = unwrap(wrapped);
  for (std::size_t i = 1; i < un.size(); ++i) {
    EXPECT_NEAR(un[i] - un[0], truth[i] - truth[0], 1e-9);
  }
}

TEST(Phase, UnwrapHandlesDescendingRamp) {
  std::vector<double> wrapped;
  for (int i = 0; i < 60; ++i) wrapped.push_back(wrap_pi(-0.5 * i));
  const std::vector<double> un = unwrap(wrapped);
  for (std::size_t i = 1; i < un.size(); ++i) {
    EXPECT_NEAR(un[i] - un[i - 1], -0.5, 1e-9);
  }
}

TEST(Phase, CircularMeanNearWrapBoundary) {
  // Phases clustered around 0 from both sides.
  const double m = circular_mean({0.1, -0.1, 0.2, -0.2});
  EXPECT_NEAR(m, 0.0, 1e-9);
  const double m2 = circular_mean({M_PI - 0.1, -M_PI + 0.1});
  EXPECT_NEAR(std::abs(m2), M_PI, 0.01);
}

TEST(Phase, CircularDistanceSymmetricAndBounded) {
  EXPECT_NEAR(circular_distance(0.1, 2 * M_PI - 0.1), 0.2, 1e-9);
  EXPECT_NEAR(circular_distance(0.0, M_PI), M_PI, 1e-9);
  EXPECT_DOUBLE_EQ(circular_distance(1.0, 1.0), 0.0);
}

TEST(Phase, CircularMedianRobustToOutlier) {
  // Cluster at ~0.5 with one outlier at pi.
  const double med = circular_median({0.45, 0.5, 0.55, 0.5, M_PI});
  EXPECT_NEAR(med, 0.5, 0.1);
}

TEST(Phase, CircularMedianOfWrappedCluster) {
  // Cluster straddling the 0/2pi boundary.
  const double med = circular_median({0.05, 2 * M_PI - 0.05, 0.1, 2 * M_PI - 0.1});
  EXPECT_LT(circular_distance(med, 0.0), 0.15);
}

TEST(Phase, CircularMedianEmpty) { EXPECT_DOUBLE_EQ(circular_median({}), 0.0); }

}  // namespace
}  // namespace m2ai::dsp
