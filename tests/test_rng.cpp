#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace m2ai::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(99);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // every value hit in 1000 draws
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end()), b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(11);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(v, shuffled);
}

TEST(Rng, ForkStreamsAreIndependent) {
  Rng a(42);
  Rng child = a.fork();
  // The fork must not replay the parent's stream.
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(42), b(42);
  Rng ca = a.fork(), cb = b.fork();
  EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace m2ai::util
