#include "ml/linalg.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace m2ai::ml {
namespace {

TEST(Cholesky, KnownFactorization) {
  // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]].
  std::vector<double> a{4, 2, 2, 3};
  ASSERT_TRUE(cholesky(a, 2));
  EXPECT_NEAR(a[0], 2.0, 1e-12);
  EXPECT_NEAR(a[2], 1.0, 1e-12);
  EXPECT_NEAR(a[3], std::sqrt(2.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  std::vector<double> a{1, 2, 2, 1};  // eigenvalues 3, -1
  EXPECT_FALSE(cholesky(a, 2));
}

TEST(Cholesky, SolveMatchesDirect) {
  // A x = b with A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> a{4, 2, 2, 3};
  ASSERT_TRUE(cholesky(a, 2));
  const auto x = cholesky_solve(a, 2, {10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(Cholesky, LogDetMatches) {
  // det([[4,2],[2,3]]) = 8.
  std::vector<double> a{4, 2, 2, 3};
  ASSERT_TRUE(cholesky(a, 2));
  EXPECT_NEAR(cholesky_log_det(a, 2), std::log(8.0), 1e-12);
}

TEST(Cholesky, RandomSpdRoundTrip) {
  util::Rng rng(3);
  const std::size_t n = 12;
  // A = B B^T + n*I is SPD.
  std::vector<double> b(n * n);
  for (auto& v : b) v = rng.normal();
  std::vector<double> a(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) a[i * n + j] += b[i * n + k] * b[j * n + k];
    }
    a[i * n + i] += static_cast<double>(n);
  }
  std::vector<double> truth(n);
  for (std::size_t i = 0; i < n; ++i) truth[i] = rng.normal();
  // rhs = A * truth
  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) rhs[i] += a[i * n + j] * truth[j];
  }
  std::vector<double> chol = a;
  ASSERT_TRUE(cholesky(chol, n));
  const auto x = cholesky_solve(chol, n, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-8);
}

TEST(RobustCholesky, RegularizesSemidefinite) {
  // Rank-deficient matrix: [[1,1],[1,1]].
  std::vector<double> a{1, 1, 1, 1};
  const auto chol = robust_cholesky(a, 2);
  // Factor of a slightly-ridged matrix: finite log det.
  EXPECT_TRUE(std::isfinite(cholesky_log_det(chol, 2)));
}

TEST(RobustCholesky, ThrowsOnHopelesslyIndefinite) {
  std::vector<double> a{-1, 0, 0, -1};
  EXPECT_THROW(robust_cholesky(a, 2), std::runtime_error);
}

}  // namespace
}  // namespace m2ai::ml
