#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace m2ai::util {
namespace {

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  // Each data line starts at a consistent column.
  std::istringstream in(s);
  std::string header, rule, r1, r2;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, r1);
  std::getline(in, r2);
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.97, 1), "97.0%");
  EXPECT_EQ(Table::pct(0.5, 0), "50%");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "m2ai_csv_test.csv";
  {
    CsvWriter csv(path, {"x", "y"});
    csv.add_row({"1", "2"});
    csv.add_row({"3", "4"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

TEST(Csv, EscapesSpecialCharacters) {
  const std::string path = testing::TempDir() + "m2ai_csv_escape.csv";
  {
    CsvWriter csv(path, {"v"});
    csv.add_row({"has,comma"});
    csv.add_row({"has\"quote"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  std::getline(in, line);
  EXPECT_EQ(line, "\"has,comma\"");
  std::getline(in, line);
  EXPECT_EQ(line, "\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(Csv, ArityMismatchThrows) {
  const std::string path = testing::TempDir() + "m2ai_csv_arity.csv";
  CsvWriter csv(path, {"a", "b"});
  EXPECT_THROW(csv.add_row({"1"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-m2ai/file.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace m2ai::util
