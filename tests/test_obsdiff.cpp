#include "obs/diff.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/json.hpp"

namespace m2ai::obs {
namespace {

std::string metrics_report(double music_p50, double eig_p50) {
  return R"({"schema_version":1,"spans":[)"
         R"({"name":"music","p50_ms":)" + std::to_string(music_p50) +
         R"(,"p95_ms":2.0},)"
         R"({"name":"eig","p50_ms":)" + std::to_string(eig_p50) +
         R"(,"p95_ms":0.5}]})";
}

std::string suite_report(double headline_seconds) {
  return R"({"schema_version":1,"suite":"m2ai_bench","experiments":[)"
         R"({"id":"fig9_headline","cell_seconds":)" +
         std::to_string(headline_seconds) + R"(,"cells":4}]})";
}

TEST(ObsDiff, IdenticalReportsPass) {
  const std::string report = metrics_report(1.0, 0.2);
  const DiffResult result = diff_reports(report, report, {});
  EXPECT_FALSE(result.has_regression);
  EXPECT_EQ(result.mode, "spans");
  EXPECT_EQ(result.field, "p50_ms");
  ASSERT_EQ(result.entries.size(), 2u);
  for (const EntryDelta& e : result.entries) {
    EXPECT_FALSE(e.regression);
    EXPECT_DOUBLE_EQ(e.delta_pct, 0.0);
  }
}

TEST(ObsDiff, FlagsRegressionBeyondThreshold) {
  // +100% on music trips the default +25% gate; eig stays flat.
  const DiffResult result =
      diff_reports(metrics_report(1.0, 0.2), metrics_report(2.0, 0.2), {});
  EXPECT_TRUE(result.has_regression);
  // Regressions sort first.
  ASSERT_FALSE(result.entries.empty());
  EXPECT_EQ(result.entries[0].name, "music");
  EXPECT_TRUE(result.entries[0].regression);
  EXPECT_NEAR(result.entries[0].delta_pct, 100.0, 1e-6);
}

TEST(ObsDiff, AbsoluteFloorSuppressesNoise) {
  // +100% relative but only +0.02 absolute: under the default 0.05 floor.
  const DiffResult result =
      diff_reports(metrics_report(0.02, 0.2), metrics_report(0.04, 0.2), {});
  EXPECT_FALSE(result.has_regression);
}

TEST(ObsDiff, ThresholdIsConfigurable) {
  DiffOptions options;
  options.threshold = 0.05;
  options.min_abs = 0.0;
  const DiffResult result =
      diff_reports(metrics_report(1.0, 0.2), metrics_report(1.10, 0.2), options);
  EXPECT_TRUE(result.has_regression);
}

TEST(ObsDiff, ImprovementNeverGates) {
  const DiffResult result =
      diff_reports(metrics_report(2.0, 0.2), metrics_report(0.5, 0.2), {});
  EXPECT_FALSE(result.has_regression);
}

TEST(ObsDiff, ComparesSuiteReportsByCellSeconds) {
  const DiffResult result =
      diff_reports(suite_report(10.0), suite_report(20.0), {});
  EXPECT_TRUE(result.has_regression);
  EXPECT_EQ(result.mode, "experiments");
  EXPECT_EQ(result.field, "cell_seconds");
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].name, "fig9_headline");
}

TEST(ObsDiff, NewAndDeletedSpansAreListedButNeverGate) {
  const std::string base = R"({"spans":[{"name":"old_span","p50_ms":1.0}]})";
  const std::string cand = R"({"spans":[{"name":"new_span","p50_ms":99.0}]})";
  const DiffResult result = diff_reports(base, cand, {});
  EXPECT_FALSE(result.has_regression);
  EXPECT_TRUE(result.entries.empty());
  ASSERT_EQ(result.only_baseline.size(), 1u);
  EXPECT_EQ(result.only_baseline[0], "old_span");
  ASSERT_EQ(result.only_candidate.size(), 1u);
  EXPECT_EQ(result.only_candidate[0], "new_span");
}

TEST(ObsDiff, AlternateFieldSelectsThatStatistic) {
  DiffOptions options;
  options.field = "p95_ms";
  const std::string base = R"({"spans":[{"name":"s","p50_ms":1.0,"p95_ms":1.0}]})";
  const std::string cand = R"({"spans":[{"name":"s","p50_ms":1.0,"p95_ms":3.0}]})";
  EXPECT_TRUE(diff_reports(base, cand, options).has_regression);
  EXPECT_FALSE(diff_reports(base, cand, {}).has_regression);
}

TEST(ObsDiff, MismatchedSchemasThrow) {
  EXPECT_THROW(diff_reports(metrics_report(1.0, 0.2), suite_report(1.0), {}),
               std::runtime_error);
}

TEST(ObsDiff, UnknownSchemaThrows) {
  EXPECT_THROW(diff_reports(R"({"other":1})", R"({"other":1})", {}),
               std::runtime_error);
}

TEST(ObsDiff, MissingFieldThrows) {
  DiffOptions options;
  options.field = "p42_ms";
  EXPECT_THROW(
      diff_reports(metrics_report(1.0, 0.2), metrics_report(1.0, 0.2), options),
      std::runtime_error);
}

TEST(ObsDiff, MalformedJsonThrows) {
  EXPECT_THROW(diff_reports("{not json", metrics_report(1.0, 0.2), {}),
               util::JsonError);
}

TEST(ObsDiff, RenderFlagsRegressions) {
  const DiffOptions options;
  const DiffResult result =
      diff_reports(metrics_report(1.0, 0.2), metrics_report(2.0, 0.2), options);
  const std::string text = render_diff(result, options);
  EXPECT_NE(text.find("music"), std::string::npos);
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("RESULT: REGRESSION"), std::string::npos);

  const DiffResult ok = diff_reports(metrics_report(1.0, 0.2),
                                     metrics_report(1.0, 0.2), options);
  EXPECT_NE(render_diff(ok, options).find("RESULT: OK"), std::string::npos);
}

}  // namespace
}  // namespace m2ai::obs
