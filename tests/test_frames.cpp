#include "core/frames.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"

namespace m2ai::core {
namespace {

PipelineConfig small_config(FeatureMode mode = FeatureMode::kM2AI) {
  PipelineConfig config;
  config.windows_per_sample = 4;
  config.feature_mode = mode;
  return config;
}

// Synthetic report stream: every (tag, antenna) pair read 4 times per
// window on one channel.
std::vector<sim::TagReport> synthetic_reports(int num_tags, int num_ant,
                                              int num_windows, double window_sec) {
  std::vector<sim::TagReport> reports;
  for (int w = 0; w < num_windows; ++w) {
    for (int tag = 1; tag <= num_tags; ++tag) {
      for (int ant = 0; ant < num_ant; ++ant) {
        for (int k = 0; k < 4; ++k) {
          sim::TagReport r;
          r.time_sec = w * window_sec + 0.05 + 0.08 * k;
          r.tag_id = static_cast<std::uint32_t>(tag);
          r.antenna = ant;
          r.channel = 15;
          r.phase_rad = 0.5 + 0.3 * ant + 0.01 * k;
          r.rssi_dbm = -55.0 - tag;
          reports.push_back(r);
        }
      }
    }
  }
  return reports;
}

TEST(FrameBuilder, M2AIFrameShapes) {
  PipelineConfig config = small_config();
  FrameBuilder builder(config, nullptr, 6);
  const auto frames = builder.build(synthetic_reports(6, 4, 4, config.window_sec), 0.0);
  ASSERT_EQ(frames.size(), 4u);
  for (const auto& f : frames) {
    EXPECT_TRUE(f.has_pseudo);
    EXPECT_TRUE(f.has_aux);
    EXPECT_EQ(f.pseudo.dim(0), 6);
    EXPECT_EQ(f.pseudo.dim(1), 180);
    EXPECT_EQ(f.aux.dim(0), 6);
    EXPECT_EQ(f.aux.dim(1), 4);
  }
}

TEST(FrameBuilder, FeatureModeShapes) {
  for (FeatureMode mode : {FeatureMode::kMusicOnly, FeatureMode::kFftOnly,
                           FeatureMode::kPhaseOnly, FeatureMode::kRssiOnly}) {
    PipelineConfig config = small_config(mode);
    FrameBuilder builder(config, nullptr, 3);
    const auto frames =
        builder.build(synthetic_reports(3, 4, 4, config.window_sec), 0.0);
    const auto& f = frames.front();
    EXPECT_EQ(f.has_pseudo, mode == FeatureMode::kMusicOnly);
    EXPECT_EQ(f.has_aux, mode != FeatureMode::kMusicOnly);
    if (f.has_aux) {
      EXPECT_EQ(f.aux.dim(0), 3);
      EXPECT_EQ(f.aux.dim(1), 4);
    }
  }
}

TEST(FrameBuilder, MissingTagYieldsZeroRow) {
  PipelineConfig config = small_config();
  FrameBuilder builder(config, nullptr, 4);  // tag 4 never reported
  const auto frames = builder.build(synthetic_reports(3, 4, 4, config.window_sec), 0.0);
  const auto& f = frames.front();
  float row_sum = 0.0f;
  for (int b = 0; b < 180; ++b) row_sum += f.pseudo.at(3, b);
  EXPECT_EQ(row_sum, 0.0f);
  for (int a = 0; a < 4; ++a) EXPECT_EQ(f.aux.at(3, a), 0.0f);
}

TEST(FrameBuilder, ReportsOutsideSpanIgnored) {
  PipelineConfig config = small_config();
  FrameBuilder builder(config, nullptr, 2);
  auto reports = synthetic_reports(2, 4, 2, config.window_sec);
  // Shift to start at t = 100: all reports fall before the span.
  const auto frames = builder.build(reports, 100.0);
  ASSERT_EQ(frames.size(), static_cast<std::size_t>(config.windows_per_sample));
  float total = 0.0f;
  for (const auto& f : frames) total += f.pseudo.flattened().l2_norm();
  EXPECT_EQ(total, 0.0f);
}

TEST(FrameBuilder, PseudoSpectrumNormalizedPerTag) {
  PipelineConfig config = small_config();
  FrameBuilder builder(config, nullptr, 2);
  const auto frames = builder.build(synthetic_reports(2, 4, 4, config.window_sec), 0.0);
  for (int tag = 0; tag < 2; ++tag) {
    float mx = 0.0f;
    for (int b = 0; b < 180; ++b) mx = std::max(mx, frames[0].pseudo.at(tag, b));
    EXPECT_NEAR(mx, 1.0f, 1e-5);
  }
}

TEST(FrameBuilder, RssiModeEncodesPower) {
  PipelineConfig config = small_config(FeatureMode::kRssiOnly);
  FrameBuilder builder(config, nullptr, 2);
  const auto frames = builder.build(synthetic_reports(2, 4, 4, config.window_sec), 0.0);
  // rssi = -56 (tag 1) -> (−56+90)/60 ≈ 0.567; tag 2 slightly lower.
  EXPECT_NEAR(frames[0].aux.at(0, 0), (90.0 - 56.0) / 60.0, 1e-5);
  EXPECT_GT(frames[0].aux.at(0, 0), frames[0].aux.at(1, 0));
}

TEST(FrameBuilder, PhaseModeUsesCalibratedMean) {
  PipelineConfig config = small_config(FeatureMode::kPhaseOnly);
  FrameBuilder builder(config, nullptr, 1);
  const auto frames = builder.build(synthetic_reports(1, 4, 4, config.window_sec), 0.0);
  // Antenna 2 phase ≈ 0.5 + 0.6 + ~0.015 -> normalized by 2*pi.
  EXPECT_NEAR(frames[0].aux.at(0, 2), (0.5 + 0.6 + 0.015) / (2 * M_PI), 0.01);
}

TEST(FrameBuilder, TooFewSnapshotsGiveZeroRow) {
  PipelineConfig config = small_config();
  FrameBuilder builder(config, nullptr, 1);
  // Single read per antenna -> fewer than 2 aligned snapshots.
  std::vector<sim::TagReport> reports;
  for (int ant = 0; ant < 4; ++ant) {
    sim::TagReport r;
    r.time_sec = 0.1;
    r.tag_id = 1;
    r.antenna = ant;
    r.channel = 3;
    r.phase_rad = 1.0;
    r.rssi_dbm = -50;
    reports.push_back(r);
  }
  const auto frames = builder.build(reports, 0.0);
  EXPECT_EQ(frames[0].pseudo.flattened().l2_norm(), 0.0f);
}

}  // namespace
}  // namespace m2ai::core
